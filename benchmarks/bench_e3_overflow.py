"""E3 — Lemmas 3.3/3.4: counter-overflow probability vanishes like b·n/√m.

Workload: standalone bounded coin with deliberately small counter bounds m,
swept upward to the paper's default (f(b)·n)².  Measured: the fraction of
tosses in which any process's counter left {-m..m} (forcing the
deterministic-heads rule), against the paper's C·b·n/√m shape.
"""

from _common import bench_timer, bench_workers, record, reset

from repro.analysis.experiment import repeat_runs
from repro.analysis.stats import wilson_interval
from repro.analysis.theory import e3_overflow_bound
from repro.coin import BoundedWalkSharedCoin, coin_flipper_program
from repro.coin.logic import default_m
from repro.runtime import RandomScheduler, Simulation

N = 3
B = 2
REPS = 100


def toss_overflows(n, b, m, seed):
    sim = Simulation(n, RandomScheduler(seed=seed), seed=seed)
    coin = BoundedWalkSharedCoin(sim, "coin", n, b_barrier=b, m_bound=m)
    sim.spawn_all(coin_flipper_program(coin))
    sim.run(20_000_000)
    return coin.any_overflow()


def run_experiment(workers=None):
    reset("e3")
    workers = bench_workers() if workers is None else workers
    with bench_timer("e3", workers=workers):
        return _run_table(workers)


def _run_table(workers):
    m_values = [9, 36, 144, default_m(B, N)]  # default_m(2, 3) = 576
    rows = []
    for m in m_values:
        flags = repeat_runs(
            lambda seed: toss_overflows(N, B, m, seed), range(REPS), workers=workers
        )
        overflows = sum(flags)
        rate, _, high = wilson_interval(overflows, REPS)
        rows.append(
            {
                "m": m,
                "overflow rate": rate,
                "wilson high": high,
                "paper shape b·n/sqrt(m)": min(1.0, e3_overflow_bound(B, N, m)),
                "tosses": REPS,
            }
        )
    record("e3", rows, f"E3 Lemmas 3.3/3.4 — overflow frequency vs m (n={N}, b={B})")
    return rows


def test_e3_overflow(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rates = [row["overflow rate"] for row in rows]
    # Shape: overflow frequency is (weakly) decreasing in m...
    assert all(a >= b - 0.05 for a, b in zip(rates, rates[1:]))
    # ...vanishes at the paper's default m...
    assert rates[-1] == 0.0
    # ...and sits below the paper's bound everywhere.
    for row in rows:
        assert row["overflow rate"] <= row["paper shape b·n/sqrt(m)"] + 0.05


if __name__ == "__main__":
    run_experiment()
