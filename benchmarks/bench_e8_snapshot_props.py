"""E8 — Lemmas 2.1–2.4: P1/P2/P3 hold on every execution.

Workload: randomized write/scan mixes over both scannable-memory
implementations and over the layered (two-writer-register-backed) arrow
variant, across many seeds.  Measured: property violations found by the
checkers (paper: zero), plus how many scans/writes were actually checked
— silence must mean "checked and clean", not "nothing ran".
"""

from _common import bench_timer, bench_workers, record, reset

from repro.runtime import RandomScheduler, Simulation
from repro.snapshot import (
    ArrowScannableMemory,
    EmbeddedScanSnapshot,
    SequencedScannableMemory,
    check_all_properties,
)

SEEDS = range(25)
N = 4
WRITES = 4


def run_workload(make_memory, seed):
    sim = Simulation(N, RandomScheduler(seed=seed), seed=seed)
    mem = make_memory(sim)

    def factory(pid):
        def body(ctx):
            for k in range(WRITES):
                yield from mem.write(ctx, (pid, k))
                yield from mem.scan(ctx)

        return body

    sim.spawn_all(factory)
    sim.run(2_000_000)
    violations = check_all_properties(sim.trace, "M", N)
    scans = len(sim.trace.spans_of_kind("scan", "M"))
    writes = len(sim.trace.spans_of_kind("write", "M"))
    return len(violations), scans, writes


def run_experiment(workers=None):
    reset("e8")
    workers = bench_workers() if workers is None else workers
    with bench_timer("e8", workers=workers):
        return _run_body()


def _run_body():
    variants = {
        "arrows": lambda sim: ArrowScannableMemory(sim, "M", N),
        "arrows-on-bloom": lambda sim: ArrowScannableMemory(
            sim, "M", N, arrow_kind="bloom"
        ),
        "sequenced": lambda sim: SequencedScannableMemory(sim, "M", N),
        "embedded": lambda sim: EmbeddedScanSnapshot(sim, "M", N),
    }
    rows = []
    for name, make_memory in variants.items():
        total_violations = total_scans = total_writes = 0
        for seed in SEEDS:
            violations, scans, writes = run_workload(make_memory, seed)
            total_violations += violations
            total_scans += scans
            total_writes += writes
        rows.append(
            {
                "implementation": name,
                "runs": len(SEEDS),
                "scans checked": total_scans,
                "writes checked": total_writes,
                "P1+P2+P3 violations": total_violations,
                "paper": 0,
            }
        )
    record("e8", rows, "E8 Lemmas 2.1–2.4 — snapshot properties, checked per trace")
    return rows


def test_e8_snapshot_properties(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    for row in rows:
        assert row["P1+P2+P3 violations"] == 0
        assert row["scans checked"] >= 100  # the check had teeth


if __name__ == "__main__":
    run_experiment()
