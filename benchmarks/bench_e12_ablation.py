"""E12 — ablations over the paper's design choices.

Three knobs the paper fixes, swept:

1. snapshot substrate: the bounded arrow construction vs the unbounded
   sequenced comparator vs arrows built on the layered two-writer
   registers (boundedness all the way down, at a constant-factor step
   cost);
2. the distance cap K (the paper sets K=2): correctness must be
   K-independent; larger K delays decisions slightly (more rounds of
   separation needed);
3. the coin barrier b: larger b lowers disagreement (fewer wasted rounds)
   but each coin costs (b+1)²n² flips — the paper's b=2 sits at the
   sweet spot for total work.
"""

import statistics

from _common import bench_timer, bench_workers, record, reset

from repro.consensus import AdsConsensus, validate_run
from repro.runtime import RandomScheduler

REPS = 8
N = 4
INPUTS = [0, 1, 0, 1]


def measure(protocol, label, rows):
    steps, rounds, magnitude = [], [], []
    for seed in range(REPS):
        run = protocol.run(
            INPUTS, scheduler=RandomScheduler(seed=seed), seed=seed,
            max_steps=100_000_000,
        )
        assert validate_run(run).ok
        steps.append(run.total_steps)
        rounds.append(run.max_rounds())
        magnitude.append(run.audit.max_magnitude)
    row = {
        "variant": label,
        "mean steps": statistics.mean(steps),
        "mean rounds": statistics.mean(rounds),
        "max int stored": max(magnitude),
    }
    rows.append(row)
    return row


def run_experiment(workers=None):
    reset("e12")
    workers = bench_workers() if workers is None else workers
    with bench_timer("e12", workers=workers):
        return _run_body()


def _run_body():
    snapshot_rows = []
    for kind in ("arrows", "sequenced", "arrows-bloom", "embedded"):
        measure(AdsConsensus(snapshot_kind=kind), kind, snapshot_rows)
    record("e12", snapshot_rows, "E12a — snapshot substrate ablation")

    k_rows = []
    for K in (2, 3, 4):
        measure(AdsConsensus(K=K), f"K={K}", k_rows)
    record("e12", k_rows, "E12b — distance cap K sweep (paper: K=2)")

    b_rows = []
    for b in (2, 3, 4):
        measure(AdsConsensus(b_barrier=b), f"b={b}", b_rows)
    record("e12", b_rows, "E12c — coin barrier b sweep (paper: b=2)")
    return snapshot_rows, k_rows, b_rows


def test_e12_ablation(benchmark):
    snapshot_rows, k_rows, b_rows = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    by_variant = {r["variant"]: r for r in snapshot_rows}
    # The layered substrate pays a constant-factor step cost over plain
    # arrows (each arrow op becomes 2-5 SWMR ops).
    assert by_variant["arrows-bloom"]["mean steps"] > by_variant["arrows"]["mean steps"]
    # All snapshot variants keep the bounded-memory property of the cells
    # (the sequenced comparator's growing seqs live in its own registers
    # and show up in its audit).
    assert by_variant["arrows"]["max int stored"] <= 600  # m+1 for n=4, b=2

    # K and b sweeps: correctness everywhere (asserted in measure); the
    # sweeps exist to quantify cost trends, which can be flat at this n.
    assert len(k_rows) == 3 and len(b_rows) == 3


if __name__ == "__main__":
    run_experiment()
