"""E2 — Lemma 3.2: expected flips until the shared coin decides ≈ (b+1)²n².

Workload: standalone bounded coin, swept over n at fixed b=2, fair and
adversarial schedules.  Measured: mean total walk steps, the log-log growth
exponent in n (paper: 2), and the ratio to the paper's (b+1)²·n² (the
adversary pushes the ratio towards 1; fair schedules decide sooner).
"""

import statistics

from _common import bench_timer, bench_workers, record, reset

from repro.analysis.experiment import repeat_runs
from repro.analysis.stats import growth_exponent
from repro.analysis.theory import e2_expected_flips
from repro.coin import BoundedWalkSharedCoin, coin_flipper_program
from repro.runtime import RandomScheduler, Simulation, WalkBalancingAdversary

B = 2
N_VALUES = (2, 3, 4, 6, 8)
REPS = 12


def flips_for(n, seed, adversarial):
    scheduler = (
        WalkBalancingAdversary("coin", seed=seed)
        if adversarial
        else RandomScheduler(seed=seed)
    )
    sim = Simulation(n, scheduler, seed=seed)
    coin = BoundedWalkSharedCoin(sim, "coin", n, b_barrier=B)
    sim.spawn_all(coin_flipper_program(coin))
    sim.run(20_000_000)
    return coin.total_steps


def run_experiment(workers=None):
    reset("e2")
    workers = bench_workers() if workers is None else workers
    results = {}
    with bench_timer("e2", workers=workers):
        return _run_tables(workers, results)


def _run_tables(workers, results):
    for adversarial in (False, True):
        rows = []
        means = []
        for n in N_VALUES:
            samples = repeat_runs(
                lambda seed: flips_for(n, seed, adversarial),
                range(REPS),
                workers=workers,
            )
            mean = statistics.mean(samples)
            means.append(mean)
            predicted = e2_expected_flips(B, n)
            rows.append(
                {
                    "n": n,
                    "mean flips": mean,
                    "paper (b+1)^2 n^2": predicted,
                    "ratio": mean / predicted,
                }
            )
        slope = growth_exponent(list(N_VALUES), means)
        rows.append({"n": "slope", "mean flips": slope, "paper (b+1)^2 n^2": 2.0})
        label = "adversary" if adversarial else "random"
        results[label] = (rows, slope)
        record("e2", rows, f"E2 Lemma 3.2 — coin flips vs n (b={B}, {label})")
    return results


def test_e2_coin_steps(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    for label, (rows, slope) in results.items():
        # Shape: quadratic-ish growth in n.
        assert 1.4 <= slope <= 2.6, f"{label}: slope {slope}"
        # Never more than a small constant above the paper's bound.
        for row in rows[:-1]:
            assert row["ratio"] <= 2.0
    # The adversary forces more work than fair scheduling.
    assert results["adversary"][0][-2]["mean flips"] >= results["random"][0][-2][
        "mean flips"
    ]


if __name__ == "__main__":
    run_experiment()
