"""P1 — step-loop throughput: serial instrumentation modes + batched struct-of-arrays mode.

The reproduction's semantic claims are gated exactly (steps, metrics,
audits are deterministic per seed); this benchmark records the *physical*
counterpart: atomic steps per wall-clock second sustained by the serial
step loop, for three workloads (full ADS consensus, arrow-scan traffic
only, bounded-coin traffic only) under three instrumentation modes
(bare / metrics-on / full trace recording).

Gated values: the step counts, which are deterministic per seed and must
be identical across modes (instrumentation that changed the schedule
would be a correctness bug — ``throughput_table`` raises on it, and the
A/B golden tests pin the same invariant).  The ``steps_per_sec`` and
``overhead_vs_bare_wall`` columns measure the host and are skipped by the
regression gate (``per_sec`` / ``wall`` are timing-key markers); CI runs
the gate on this artifact with a wide tolerance anyway, so even incidental
numeric drift in future columns fails soft rather than flaky.

The ``batched`` mode measures the struct-of-arrays engine
(:mod:`repro.batch`) driving 32 consensus lanes through one fused step
loop.  Its gated values: the aggregate step count (deterministic — the
lanes are seeded), ``matches_serial`` (the lanes sharing the serial
cell's seeds reproduced its step counts bit-for-bit) and
``meets_floor_5x`` (aggregate steps/sec at least 5x the serial
consensus/bare row *on the same host*, so the boolean is
host-independent even though the underlying wall-clocks are not).
"""

from _common import attach_timing, bench_timer, bench_workers, record, reset

from repro.analysis.perfbench import (
    BATCHED_LANES,
    DEFAULT_SEEDS,
    batched_rows,
    measure_batched_throughput,
    overhead_rows,
    throughput_table,
)

REPEATS = 3


def run_experiment(workers=None):
    reset("p1")
    workers = bench_workers() if workers is None else workers
    with bench_timer("p1", workers=workers):
        return _run_body()


def _run_body():
    samples = throughput_table(seeds=DEFAULT_SEEDS, repeats=REPEATS)
    by_cell = {(s.workload, s.mode): s for s in samples}
    rows = []
    for row in overhead_rows(samples):
        rows.append(
            {
                "workload": row["workload"],
                "mode": row["mode"],
                "steps": row["steps"],
                "steps_per_sec": row["steps_per_sec"],
                "overhead_vs_bare_wall": row["overhead_vs_bare"],
            }
        )
    record(
        "p1",
        rows,
        "P1 — serial steps/sec by workload and instrumentation mode",
    )
    bare = by_cell[("consensus", "bare")]
    attach_timing(
        "p1",
        "consensus_bare",
        bare.wall_seconds,
        steps_per_sec=round(bare.steps_per_sec),
        repeats=REPEATS,
    )
    batched = measure_batched_throughput(seeds=DEFAULT_SEEDS, repeats=REPEATS)
    brows = batched_rows(bare, batched, seeds=DEFAULT_SEEDS)
    record(
        "p1",
        brows,
        "P1 — batched struct-of-arrays aggregate throughput",
    )
    attach_timing(
        "p1",
        "consensus_batched",
        batched.wall_seconds,
        steps_per_sec=round(batched.steps_per_sec),
        lanes=BATCHED_LANES,
        repeats=REPEATS,
    )
    return rows + brows


def test_p1_throughput(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    serial = [row for row in rows if row["mode"] != "batched"]
    batched = [row for row in rows if row["mode"] == "batched"]
    by_workload = {}
    for row in serial:
        by_workload.setdefault(row["workload"], set()).add(row["steps"])
    # Instrumentation must not change the schedule: per workload, every
    # mode took exactly the same number of atomic steps.
    for workload, counts in by_workload.items():
        assert len(counts) == 1, (workload, counts)
        assert counts.pop() > 0
    # Throughput was actually measured (host-dependent, so no magnitude
    # assertion here — the 2x acceptance number is recorded in the PR).
    assert all(row["steps_per_sec"] > 0 for row in rows)
    # Batched struct-of-arrays mode: bit-identical to serial on the shared
    # seeds, and at least 5x the serial bare row's aggregate steps/sec.
    assert len(batched) == 1
    assert batched[0]["matches_serial"] is True
    assert batched[0]["meets_floor_5x"] is True


if __name__ == "__main__":
    run_experiment()
