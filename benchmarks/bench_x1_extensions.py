"""X1 (extension, beyond the paper) — the universal-primitive payoff.

The paper's introduction motivates randomized consensus as the engine for
universal synchronization primitives.  This extension experiment measures
what that costs with the paper's protocol as the engine:

- multivalued consensus: atomic steps vs n (⌈log₂ n⌉ binary instances);
- universal objects (queue / sticky bit / fetch&cons): atomic steps per
  operation vs n, and the exactly-once guarantee across all runs.

There is no paper row to compare against — the numbers document the
extension and guard it against regressions.
"""

import statistics

from _common import bench_timer, bench_workers, record, reset

from repro.consensus import MultivaluedAdsConsensus, validate_run
from repro.runtime import RandomScheduler, Simulation
from repro.universal import CounterSpec, QueueSpec, UniversalObject

N_VALUES = (2, 3, 4)
REPS = 4


def _multivalued_steps(n, seed):
    run = MultivaluedAdsConsensus().run(
        [f"v{p}" for p in range(n)], scheduler=RandomScheduler(seed=seed),
        seed=seed, max_steps=100_000_000,
    )
    assert validate_run(run).ok
    return run.total_steps


def _universal_steps_per_op(n, spec, ops_per_pid, seed):
    sim = Simulation(n, RandomScheduler(seed=seed), seed=seed)
    obj = UniversalObject(sim, "obj", n, spec)

    def factory(pid):
        def body(ctx):
            for operation in ops_per_pid(pid):
                yield from obj.invoke(ctx, operation)

        return body

    sim.spawn_all(factory)
    outcome = sim.run(200_000_000)
    total_ops = sum(len(ops_per_pid(pid)) for pid in range(n))
    assert len(obj.effective_operations()) == total_ops  # exactly once
    return outcome.total_steps / total_ops


def run_experiment(workers=None):
    reset("x1")
    workers = bench_workers() if workers is None else workers
    with bench_timer("x1", workers=workers):
        return _run_body()


def _run_body():
    rows = []
    for n in N_VALUES:
        mv = [_multivalued_steps(n, seed) for seed in range(REPS)]
        queue = [
            _universal_steps_per_op(
                n, QueueSpec(), lambda pid: [("enq", pid), ("deq",)], seed
            )
            for seed in range(REPS)
        ]
        counter = [
            _universal_steps_per_op(
                n, CounterSpec(), lambda pid: [("add", 1)] * 2, seed
            )
            for seed in range(REPS)
        ]
        rows.append(
            {
                "n": n,
                "multivalued consensus steps": statistics.mean(mv),
                "queue steps/op": statistics.mean(queue),
                "counter steps/op": statistics.mean(counter),
            }
        )
    record("x1", rows, "X1 extension — universal primitives over ADS consensus")
    return rows


def test_x1_universal_extension(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    # Costs grow with n but stay polynomial-small at these sizes.
    assert rows[-1]["queue steps/op"] < 50_000
    steps = [row["multivalued consensus steps"] for row in rows]
    assert steps[0] < steps[-1]


if __name__ == "__main__":
    run_experiment()
