"""Shared infrastructure for the experiment benchmarks (E1–E12).

Each benchmark runs one experiment from the DESIGN.md index, prints its
paper-vs-measured table (visible with ``pytest -s`` and in the benchmark
logs), persists it under ``benchmarks/results/`` for EXPERIMENTS.md, and
asserts the *shape* of the paper's claim (growth exponents, orderings,
bounds) rather than absolute constants.
"""

from __future__ import annotations

import pathlib

from repro.analysis.reporting import format_table

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def record(experiment: str, rows, title: str) -> str:
    """Format, print and persist an experiment's result table."""
    text = format_table(rows, title=title)
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{experiment}.txt"
    existing = path.read_text() if path.exists() else ""
    if title not in existing:
        path.write_text(existing + text + "\n\n")
    print("\n" + text + "\n")
    return text


def reset(experiment: str) -> None:
    """Clear a previous run's persisted table (called at bench start)."""
    path = RESULTS_DIR / f"{experiment}.txt"
    if path.exists():
        path.unlink()
