"""Shared infrastructure for the experiment benchmarks (E1–E12).

Each benchmark runs one experiment from the DESIGN.md index, prints its
paper-vs-measured table (visible with ``pytest -s`` and in the benchmark
logs), persists it under ``benchmarks/results/`` for EXPERIMENTS.md, and
asserts the *shape* of the paper's claim (growth exponents, orderings,
bounds) rather than absolute constants.

Two artifacts are written per experiment:

- ``<experiment>.txt`` — the human-readable table(s), rewritten from
  scratch on every run (``record`` is idempotent per experiment: rerunning
  a benchmark, even with different parameters in the title, replaces the
  file instead of appending duplicates);
- ``BENCH_<EXPERIMENT>.json`` — a machine-readable artifact carrying the
  same rows plus any attached metrics snapshots (see ``attach_metrics``)
  and wall-clock timings (``bench_timer`` / ``record_speedup``), the input
  to trend tracking, the CI ``bench-gate`` job and ``repro bench --check``.

Benchmarks accept a worker-process count (``--workers N`` on the script,
``REPRO_BENCH_WORKERS`` in the environment — see ``bench_workers``) and
fan replications out through :mod:`repro.parallel`; results are identical
at any worker count because every replication seeds its own simulation.
The regression gate compares measured values only — timing keys record
the host and are skipped (see ``repro.analysis.benchgate``).
"""

from __future__ import annotations

import contextlib
import json
import os
import pathlib
import sys
import time
from typing import Any, Callable, Mapping, Sequence

from repro.analysis.reporting import format_table
from repro.parallel import available_workers, resolve_workers
from repro.version import provenance

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
BASELINES_DIR = pathlib.Path(__file__).parent / "baselines"

# Per-process accumulator: experiment -> ordered {title: table rows}.
# ``record`` rewrites both artifacts from this state, so reruns replace
# rather than append, while multi-table benchmarks keep every table of the
# current run.
_TABLES: dict[str, dict[str, str]] = {}
_JSON_TABLES: dict[str, dict[str, list[dict[str, Any]]]] = {}
_JSON_EXTRAS: dict[str, dict[str, Any]] = {}


def _txt_path(experiment: str) -> pathlib.Path:
    return RESULTS_DIR / f"{experiment}.txt"


def json_path(experiment: str) -> pathlib.Path:
    """Path of the machine-readable artifact, e.g. ``BENCH_E6.json``."""
    return RESULTS_DIR / f"BENCH_{experiment.upper()}.json"


def _jsonable(value: Any) -> Any:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, Mapping):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_jsonable(v) for v in value]
    return repr(value)


def _rewrite(experiment: str) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    tables = _TABLES.get(experiment, {})
    _txt_path(experiment).write_text("\n\n".join(tables.values()) + "\n")
    payload = {
        "experiment": experiment,
        # Which code produced this artifact (package version, git SHA,
        # ledger schema).  A top-level key the regression gate never
        # compares — provenance identifies, it does not gate.
        "provenance": provenance(),
        "tables": [
            {"title": title, "rows": rows}
            for title, rows in _JSON_TABLES.get(experiment, {}).items()
        ],
    }
    payload.update(_JSON_EXTRAS.get(experiment, {}))
    json_path(experiment).write_text(json.dumps(payload, indent=2, sort_keys=True))


def record(experiment: str, rows: Sequence[Mapping[str, Any]], title: str) -> str:
    """Format, print and persist an experiment's result table.

    Idempotent per ``(experiment, title)``: recording the same title again
    replaces that table, and both artifacts are always rewritten whole, so
    stale tables from earlier runs (e.g. a title that differed only in a
    parameter value) never accumulate.
    """
    text = format_table(rows, title=title)
    _TABLES.setdefault(experiment, {})[title] = text
    _JSON_TABLES.setdefault(experiment, {})[title] = [
        {str(k): _jsonable(v) for k, v in row.items()} for row in rows
    ]
    _rewrite(experiment)
    print("\n" + text + "\n")
    return text


def attach_metrics(experiment: str, name: str, snapshot: Any) -> None:
    """Attach a ``MetricsSnapshot`` (or any JSON-able mapping) under
    ``metrics.<name>`` in the experiment's ``BENCH_*.json`` artifact."""
    if hasattr(snapshot, "to_json"):
        snapshot = json.loads(snapshot.to_json())
    extras = _JSON_EXTRAS.setdefault(experiment, {})
    extras.setdefault("metrics", {})[name] = _jsonable(snapshot)
    _rewrite(experiment)


def attach_series(experiment: str, name: str, snapshot: Any) -> None:
    """Attach a snapshot's time series under ``series.<name>`` in the
    experiment's ``BENCH_*.json``.

    Accepts a ``MetricsSnapshot`` (its ``.series`` payloads are taken) or a
    raw ``{key: payload}`` mapping.  Series live under their own top-level
    key, which the regression gate does not compare — they enrich the
    artifact (and the ``repro report`` dashboard) without changing what is
    gated, so attaching series to a benchmark never breaks its baseline.
    """
    payloads = getattr(snapshot, "series", snapshot)
    extras = _JSON_EXTRAS.setdefault(experiment, {})
    extras.setdefault("series", {})[name] = _jsonable(
        dict(sorted(payloads.items()))
    )
    _rewrite(experiment)


def bench_workers(default: int = 1) -> int:
    """Worker-process count for this benchmark run.

    Priority: a ``--workers N`` argument (benches run as scripts), then
    the ``REPRO_BENCH_WORKERS`` environment variable (how CI opts every
    bench in at once), then ``default``.  ``0`` means all available CPUs.
    """
    argv = sys.argv
    for i, arg in enumerate(argv):
        if arg == "--workers" and i + 1 < len(argv):
            return resolve_workers(int(argv[i + 1]))
        if arg.startswith("--workers="):
            return resolve_workers(int(arg.split("=", 1)[1]))
    raw = os.environ.get("REPRO_BENCH_WORKERS", "").strip()
    if raw:
        return resolve_workers(int(raw))
    return resolve_workers(default)


def attach_timing(
    experiment: str, name: str, seconds: float, workers: int = 1, **extra: Any
) -> None:
    """Record a wall-clock measurement under ``timings.<name>`` in the
    experiment's ``BENCH_*.json``.  Timing keys are host measurements: the
    regression gate (``repro bench --check``) skips them by design."""
    extras = _JSON_EXTRAS.setdefault(experiment, {})
    extras.setdefault("timings", {})[name] = _jsonable(
        {
            "wall_seconds": round(seconds, 4),
            "workers": workers,
            "cpus_available": available_workers(),
            **extra,
        }
    )
    _rewrite(experiment)


@contextlib.contextmanager
def bench_timer(experiment: str, workers: int = 1):
    """Time a benchmark's main body and attach it as ``timings.total``, so
    every artifact carries its wall-clock alongside the measured metric.
    On exit the finished artifact is also appended to the run ledger when
    ``REPRO_LEDGER`` names one (see :func:`record_ledger`)."""
    start = time.perf_counter()
    try:
        yield
    finally:
        attach_timing(experiment, "total", time.perf_counter() - start, workers)
        record_ledger(experiment)


def record_ledger(experiment: str) -> bool:
    """Append this benchmark's finished artifact to the run ledger.

    Off unless the ``REPRO_LEDGER`` environment variable names a ledger
    file (how the CI perf-smoke job opts in).  The record's deterministic
    identity is the artifact minus its timing-marker keys — exactly what
    the regression gate compares — so reruns at the same code version are
    cache hits, while a changed *measured* value under an unchanged
    fingerprint is preserved as determinism-violation evidence for
    ``repro history check``.  Wall-clock data rides in the record's
    ``timings`` field, outside the identity.
    """
    from repro.analysis.benchgate import strip_timing_values
    from repro.obs.ledger import ledger_from_env, make_record

    ledger = ledger_from_env()
    if ledger is None:
        return False
    tables = [
        {"title": title, "rows": rows}
        for title, rows in _JSON_TABLES.get(experiment, {}).items()
    ]
    extras = _JSON_EXTRAS.get(experiment, {})
    outcome = strip_timing_values(
        {"tables": tables, "metrics": extras.get("metrics", {})}
    )
    return ledger.append(
        make_record(
            kind="bench",
            experiment=f"bench:{experiment}",
            seed=0,
            config={"experiment": experiment, "kind": "bench"},
            outcome=outcome,
            timings=extras.get("timings", {}),
        )
    )


def record_speedup(
    experiment: str,
    run: Callable[[int], Any],
    workers: int = 4,
    name: str = "speedup_probe",
) -> float:
    """Time ``run(1)`` vs ``run(workers)`` and attach the observed speedup.

    The probe measures the parallel engine on this benchmark's own
    workload.  The artifact records the CPU count alongside, so a ~1×
    result on a single-core host reads as what it is — no parallel
    hardware — rather than an engine regression; the bench gate never
    compares timing values.
    """
    start = time.perf_counter()
    run(1)
    serial_s = time.perf_counter() - start
    start = time.perf_counter()
    run(workers)
    parallel_s = time.perf_counter() - start
    speedup = serial_s / parallel_s if parallel_s > 0 else 0.0
    extras = _JSON_EXTRAS.setdefault(experiment, {})
    extras.setdefault("timings", {})[name] = {
        "serial_seconds": round(serial_s, 4),
        "parallel_seconds": round(parallel_s, 4),
        "workers": workers,
        "speedup": round(speedup, 3),
        "cpus_available": available_workers(),
    }
    _rewrite(experiment)
    print(
        f"[{experiment}] speedup probe: serial {serial_s:.2f}s, "
        f"{workers} workers {parallel_s:.2f}s -> {speedup:.2f}x "
        f"({available_workers()} CPUs available)"
    )
    return speedup


def reset(experiment: str) -> None:
    """Clear a previous run's persisted artifacts (called at bench start)."""
    _TABLES.pop(experiment, None)
    _JSON_TABLES.pop(experiment, None)
    _JSON_EXTRAS.pop(experiment, None)
    for path in (_txt_path(experiment), json_path(experiment)):
        if path.exists():
            path.unlink()
