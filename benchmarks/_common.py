"""Shared infrastructure for the experiment benchmarks (E1–E12).

Each benchmark runs one experiment from the DESIGN.md index, prints its
paper-vs-measured table (visible with ``pytest -s`` and in the benchmark
logs), persists it under ``benchmarks/results/`` for EXPERIMENTS.md, and
asserts the *shape* of the paper's claim (growth exponents, orderings,
bounds) rather than absolute constants.

Two artifacts are written per experiment:

- ``<experiment>.txt`` — the human-readable table(s), rewritten from
  scratch on every run (``record`` is idempotent per experiment: rerunning
  a benchmark, even with different parameters in the title, replaces the
  file instead of appending duplicates);
- ``BENCH_<EXPERIMENT>.json`` — a machine-readable artifact carrying the
  same rows plus any attached metrics snapshots (see ``attach_metrics``),
  the input to trend tracking across runs and the CI smoke job.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Mapping, Sequence

from repro.analysis.reporting import format_table

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

# Per-process accumulator: experiment -> ordered {title: table rows}.
# ``record`` rewrites both artifacts from this state, so reruns replace
# rather than append, while multi-table benchmarks keep every table of the
# current run.
_TABLES: dict[str, dict[str, str]] = {}
_JSON_TABLES: dict[str, dict[str, list[dict[str, Any]]]] = {}
_JSON_EXTRAS: dict[str, dict[str, Any]] = {}


def _txt_path(experiment: str) -> pathlib.Path:
    return RESULTS_DIR / f"{experiment}.txt"


def json_path(experiment: str) -> pathlib.Path:
    """Path of the machine-readable artifact, e.g. ``BENCH_E6.json``."""
    return RESULTS_DIR / f"BENCH_{experiment.upper()}.json"


def _jsonable(value: Any) -> Any:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, Mapping):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_jsonable(v) for v in value]
    return repr(value)


def _rewrite(experiment: str) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    tables = _TABLES.get(experiment, {})
    _txt_path(experiment).write_text("\n\n".join(tables.values()) + "\n")
    payload = {
        "experiment": experiment,
        "tables": [
            {"title": title, "rows": rows}
            for title, rows in _JSON_TABLES.get(experiment, {}).items()
        ],
    }
    payload.update(_JSON_EXTRAS.get(experiment, {}))
    json_path(experiment).write_text(json.dumps(payload, indent=2, sort_keys=True))


def record(experiment: str, rows: Sequence[Mapping[str, Any]], title: str) -> str:
    """Format, print and persist an experiment's result table.

    Idempotent per ``(experiment, title)``: recording the same title again
    replaces that table, and both artifacts are always rewritten whole, so
    stale tables from earlier runs (e.g. a title that differed only in a
    parameter value) never accumulate.
    """
    text = format_table(rows, title=title)
    _TABLES.setdefault(experiment, {})[title] = text
    _JSON_TABLES.setdefault(experiment, {})[title] = [
        {str(k): _jsonable(v) for k, v in row.items()} for row in rows
    ]
    _rewrite(experiment)
    print("\n" + text + "\n")
    return text


def attach_metrics(experiment: str, name: str, snapshot: Any) -> None:
    """Attach a ``MetricsSnapshot`` (or any JSON-able mapping) under
    ``metrics.<name>`` in the experiment's ``BENCH_*.json`` artifact."""
    if hasattr(snapshot, "to_json"):
        snapshot = json.loads(snapshot.to_json())
    extras = _JSON_EXTRAS.setdefault(experiment, {})
    extras.setdefault("metrics", {})[name] = _jsonable(snapshot)
    _rewrite(experiment)


def reset(experiment: str) -> None:
    """Clear a previous run's persisted artifacts (called at bench start)."""
    _TABLES.pop(experiment, None)
    _JSON_TABLES.pop(experiment, None)
    _JSON_EXTRAS.pop(experiment, None)
    for path in (_txt_path(experiment), json_path(experiment)):
        if path.exists():
            path.unlink()
