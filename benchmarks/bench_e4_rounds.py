"""E4 — §6.3: the expected number of rounds to decide is O(1) in n.

Per round, the protocol decides deterministically or with the shared coin's
agreement probability ε > 0 (Lemmas 3.1 + 3.4, via Lemma 6.8 independence),
so the expected number of rounds is a constant — *independent of n*.

Workload: ADS consensus with split inputs, n swept, under random and
lockstep schedules.  Measured: mean max-rounds per run and its log-log
slope in n (paper: ≈ 0).
"""

import statistics

from _common import bench_timer, bench_workers, record, reset

from repro.analysis.experiment import repeat_runs
from repro.analysis.stats import growth_exponent
from repro.consensus import AdsConsensus, validate_run
from repro.runtime import RandomScheduler
from repro.runtime.adversary import LockstepAdversary

N_VALUES = (2, 3, 4, 5, 6, 7)
REPS = 10


def rounds_for(n, seed, lockstep):
    scheduler = (
        LockstepAdversary("mem", seed=seed) if lockstep else RandomScheduler(seed=seed)
    )
    inputs = [p % 2 for p in range(n)]
    run = AdsConsensus().run(
        inputs, scheduler=scheduler, seed=seed, max_steps=100_000_000
    )
    assert validate_run(run).ok
    return run.max_rounds()


def run_experiment(workers=None):
    reset("e4")
    workers = bench_workers() if workers is None else workers
    results = {}
    with bench_timer("e4", workers=workers):
        return _run_tables(workers, results)


def _run_tables(workers, results):
    for lockstep in (False, True):
        rows, means = [], []
        for n in N_VALUES:
            samples = repeat_runs(
                lambda seed: rounds_for(n, seed, lockstep),
                range(REPS),
                workers=workers,
            )
            mean = statistics.mean(samples)
            means.append(mean)
            rows.append(
                {
                    "n": n,
                    "mean rounds": mean,
                    "max rounds": max(samples),
                    "paper": "O(1)",
                }
            )
        slope = growth_exponent(list(N_VALUES), means)
        rows.append({"n": "slope", "mean rounds": slope, "paper": "~0"})
        label = "lockstep" if lockstep else "random"
        results[label] = (means, slope)
        record("e4", rows, f"E4 §6.3 — ADS rounds to decide vs n ({label})")
    return results


def test_e4_rounds_constant(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    for label, (means, slope) in results.items():
        assert abs(slope) < 0.5, f"{label}: rounds grow with n (slope {slope})"
        assert max(means) <= 8, f"{label}: expected-constant rounds too large"


if __name__ == "__main__":
    run_experiment()
