"""E5 — the headline: polynomial total work, vs the exponential regime.

Workload: split inputs under the lockstep adversary (the schedule that
realizes Abrahamson's exponential lower-bound behaviour), n swept.

Measured:
- ADS total atomic steps: log-log growth exponent in n — a polynomial of
  low degree (paper: per-round O(1) coins × O(n²) flips × O(n)-step scans
  ⇒ ≈ n³);
- local-coin rounds: consecutive doubling ratio ≈ 2 (2^{n-1} rounds);
- the crossover: exponential beats polynomial at small n, loses after.
"""

import statistics

from _common import bench_timer, bench_workers, record, reset

from repro.analysis.charts import log_series_chart
from repro.analysis.experiment import repeat_runs
from repro.analysis.stats import doubling_ratio, growth_exponent
from repro.consensus import AdsConsensus, LocalCoinConsensus, validate_run
from repro.runtime.adversary import LockstepAdversary

N_VALUES = (3, 4, 5, 6, 7, 8)
REPS = 6


def measure(protocol_cls, n, seed):
    inputs = [p % 2 for p in range(n)]
    run = protocol_cls().run(
        inputs,
        scheduler=LockstepAdversary("mem", seed=seed),
        seed=seed,
        max_steps=200_000_000,
    )
    assert validate_run(run).ok
    return run.total_steps, run.max_rounds()


def run_experiment(workers=None):
    reset("e5")
    workers = bench_workers() if workers is None else workers
    with bench_timer("e5", workers=workers):
        return _run_table(workers)


def _run_table(workers):
    rows = []
    ads_steps, local_steps, local_rounds = [], [], []
    for n in N_VALUES:
        ads = repeat_runs(
            lambda seed: measure(AdsConsensus, n, seed), range(REPS), workers=workers
        )
        local = repeat_runs(
            lambda seed: measure(LocalCoinConsensus, n, seed),
            range(REPS),
            workers=workers,
        )
        ads_mean = statistics.mean(s for s, _ in ads)
        local_mean = statistics.mean(s for s, _ in local)
        local_rounds_mean = statistics.mean(r for _, r in local)
        ads_steps.append(ads_mean)
        local_steps.append(local_mean)
        local_rounds.append(local_rounds_mean)
        rows.append(
            {
                "n": n,
                "ads steps": ads_mean,
                "local-coin steps": local_mean,
                "local-coin rounds": local_rounds_mean,
                "paper local rounds": 2 ** (n - 1),
            }
        )
    ads_slope = growth_exponent(list(N_VALUES), ads_steps)
    rounds_ratio = doubling_ratio(local_rounds)
    rows.append(
        {
            "n": "shape",
            "ads steps": f"slope {ads_slope:.2f} (paper ~3)",
            "local-coin rounds": f"x{rounds_ratio:.2f}/n (paper x2)",
        }
    )
    record("e5", rows, "E5 — total work under the lockstep adversary")
    print(
        log_series_chart(
            list(N_VALUES),
            {"ads steps": ads_steps, "xlocal rounds": local_rounds},
            title="E5 growth shapes (even steps = exponential)",
        )
    )
    return ads_slope, rounds_ratio, ads_steps, local_steps


def test_e5_polynomial_vs_exponential(benchmark):
    ads_slope, rounds_ratio, ads_steps, local_steps = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    # ADS: a low-degree polynomial (and certainly not exponential).
    assert 1.5 <= ads_slope <= 4.5
    # Local coins: rounds roughly double with each added process.
    assert rounds_ratio >= 1.5
    # Who wins: the exponential regime is cheaper at n=3 but the
    # polynomial protocol's *growth* is milder — its step ratio between
    # the largest and smallest n is far smaller.
    assert local_steps[0] < ads_steps[0]
    assert (local_steps[-1] / local_steps[0]) > (ads_steps[-1] / ads_steps[0])


if __name__ == "__main__":
    run_experiment()
