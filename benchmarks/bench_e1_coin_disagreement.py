"""E1 — Lemma 3.1: shared-coin disagreement probability falls like ~1/b.

Workload: one standalone bounded weak shared coin per repetition; all n
processes flip until they see a value.  Swept over the barrier parameter b
under both a fair scheduler and the walk-balancing adversary.  Measured:
the fraction of tosses on which any two processes saw different outcomes,
with a Wilson upper confidence bound compared against the paper's 1/b.
"""

from _common import bench_timer, bench_workers, record, record_speedup, reset

from repro.analysis.experiment import repeat_runs
from repro.analysis.stats import wilson_interval
from repro.analysis.theory import e1_disagreement_bound
from repro.coin import BoundedWalkSharedCoin, coin_flipper_program
from repro.runtime import RandomScheduler, Simulation, WalkBalancingAdversary
from repro.runtime.adversary import CoinDisagreementAdversary

N = 3
REPS = 120
B_VALUES = (2, 4, 8)
PROBE_REPS = 60  # replications for the serial-vs-4-worker speedup probe


SCHEDULERS = {
    "random": lambda seed: RandomScheduler(seed=seed),
    "walk-balancing": lambda seed: WalkBalancingAdversary("coin", seed=seed),
    "splitting": lambda seed: CoinDisagreementAdversary("coin", seed=seed),
}


def toss(n, b, seed, scheduler_name):
    scheduler = SCHEDULERS[scheduler_name](seed)
    sim = Simulation(n, scheduler, seed=seed)
    coin = BoundedWalkSharedCoin(sim, "coin", n, b_barrier=b)
    sim.spawn_all(coin_flipper_program(coin))
    outcome = sim.run(10_000_000)
    return len(set(outcome.decisions.values())) > 1


def run_experiment(workers=None):
    reset("e1")
    workers = bench_workers() if workers is None else workers
    tables = {}
    with bench_timer("e1", workers=workers):
        for label in SCHEDULERS:
            rows = []
            for b in B_VALUES:
                flags = repeat_runs(
                    lambda seed: float(toss(N, b, seed, label)),
                    range(REPS),
                    workers=workers,
                )
                disagreements = int(sum(flags))
                rate, low, high = wilson_interval(disagreements, REPS)
                rows.append(
                    {
                        "b": b,
                        "disagree rate": rate,
                        "wilson high": high,
                        "paper bound 1/b": e1_disagreement_bound(b),
                        "tosses": REPS,
                    }
                )
            tables[label] = rows
            record(
                "e1",
                rows,
                f"E1 Lemma 3.1 — coin disagreement vs b (n={N}, {label} scheduler)",
            )
    record_speedup(
        "e1",
        lambda w: repeat_runs(
            lambda seed: float(toss(N, 8, seed, "walk-balancing")),
            range(PROBE_REPS),
            workers=w,
        ),
        workers=4,
    )
    return tables


def test_e1_coin_disagreement(benchmark):
    tables = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    for rows in tables.values():
        for row in rows:
            # Shape: measured disagreement under the paper's 1/b bound
            # (Wilson-adjusted to be robust at these sample sizes).
            assert row["wilson high"] <= row["paper bound 1/b"] + 0.05
        # Direction: the bound (and the rates, weakly) tighten as b grows.
        bounds = [row["paper bound 1/b"] for row in rows]
        assert bounds == sorted(bounds, reverse=True)


if __name__ == "__main__":
    run_experiment()
