"""E11 — Lemmas 6.1–6.6: consistency and validity on EVERY execution.

Safety must hold with probability 1, not merely in expectation, so this
experiment is a volume test: a grid of protocols × schedulers × crash
plans × seeds, every run validated for consistency, validity, decision
domain and completion.  Measured: violations (paper: zero, by Lemmas
6.1–6.6), with run counts printed so zero is meaningful.
"""

from _common import bench_timer, bench_workers, record, reset

from repro.consensus import (
    AdsConsensus,
    AspnesHerlihyConsensus,
    AtomicCoinConsensus,
    LocalCoinConsensus,
    validate_run,
)
from repro.consensus.ads import pref_reader
from repro.parallel import run_tasks
from repro.runtime import (
    CrashPlan,
    RandomScheduler,
    RoundRobinScheduler,
    SplitAdversary,
)
from repro.runtime.adversary import LockstepAdversary
from repro.runtime.rng import derive_rng

SEEDS = range(12)
N = 4

SCHEDULERS = {
    "random": lambda seed: RandomScheduler(seed=seed),
    "round-robin": lambda seed: RoundRobinScheduler(),
    "split": lambda seed: SplitAdversary(pref_reader, seed=seed),
    "lockstep": lambda seed: LockstepAdversary("mem", seed=seed),
}

PROTOCOLS = [
    AdsConsensus,
    AspnesHerlihyConsensus,
    LocalCoinConsensus,
    AtomicCoinConsensus,
]


def _grid_cell(spec):
    """One (protocol, scheduler) cell; every run's rng derives from its
    seed, so cells can run in any process in any order."""
    protocol_cls, scheduler_name = spec
    scheduler_factory = SCHEDULERS[scheduler_name]
    runs = violations = 0
    for seed in SEEDS:
        rng = derive_rng(seed, "e11", protocol_cls.name, scheduler_name)
        inputs = [rng.randint(0, 1) for _ in range(N)]
        crash_plan = (
            CrashPlan.random(N, rng, horizon=400) if seed % 2 else CrashPlan()
        )
        run = protocol_cls().run(
            inputs,
            scheduler=scheduler_factory(seed),
            seed=seed,
            crash_plan=crash_plan,
            max_steps=100_000_000,
        )
        runs += 1
        if not validate_run(run).ok:
            violations += 1
    return {
        "protocol": protocol_cls.name,
        "scheduler": scheduler_name,
        "runs": runs,
        "safety violations": violations,
        "paper": 0,
    }


def run_experiment(workers=None):
    reset("e11")
    workers = bench_workers() if workers is None else workers
    with bench_timer("e11", workers=workers):
        specs = [(p, s) for p in PROTOCOLS for s in SCHEDULERS]
        rows = run_tasks(_grid_cell, specs, workers=workers)
    record(
        "e11", rows, f"E11 Lemmas 6.1–6.6 — safety grid (n={N}, crashes mixed in)"
    )
    return rows


def test_e11_safety_grid(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    assert sum(r["runs"] for r in rows) >= 150
    for row in rows:
        assert row["safety violations"] == 0, row


if __name__ == "__main__":
    run_experiment()
