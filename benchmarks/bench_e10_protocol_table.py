"""E10 — the paper's prior-work table, regenerated live.

|                    | expected time | memory    | extra assumptions    |
|--------------------|---------------|-----------|----------------------|
| CIL 1987           | polynomial    | (n/a here)| atomic coin flip     |
| Abrahamson 1988    | exponential   | unbounded | —                    |
| bounded local coin | exponential   | bounded   | — ([ADS89] cell, via the §4 strip) |
| Aspnes–Herlihy 88  | polynomial    | unbounded | —                    |
| **ADS 1989**       | polynomial    | bounded   | —                    |

Workload: all four protocols, same split inputs, lockstep adversary (the
schedule separating the regimes), n swept.  Measured: rounds, steps and
the memory audit; the assertions encode the table's qualitative cells.
"""

import statistics

from _common import bench_timer, bench_workers, record, reset

from repro.consensus import (
    AdsConsensus,
    AspnesHerlihyConsensus,
    AtomicCoinConsensus,
    BoundedLocalCoinConsensus,
    LocalCoinConsensus,
    validate_run,
)
from repro.runtime.adversary import LockstepAdversary

N_VALUES = (3, 5, 7)
REPS = 5
PROTOCOLS = [
    AtomicCoinConsensus,
    LocalCoinConsensus,
    BoundedLocalCoinConsensus,
    AspnesHerlihyConsensus,
    AdsConsensus,
]


def run_experiment(workers=None):
    reset("e10")
    workers = bench_workers() if workers is None else workers
    with bench_timer("e10", workers=workers):
        return _run_body()


def _run_body():
    table = {}
    rows = []
    for n in N_VALUES:
        inputs = [p % 2 for p in range(n)]
        for protocol_cls in PROTOCOLS:
            rounds, steps, magnitude = [], [], []
            for seed in range(REPS):
                run = protocol_cls().run(
                    inputs,
                    scheduler=LockstepAdversary("mem", seed=seed),
                    seed=seed,
                    max_steps=200_000_000,
                )
                assert validate_run(run).ok
                rounds.append(run.max_rounds())
                steps.append(run.total_steps)
                magnitude.append(run.audit.max_magnitude)
            table[(protocol_cls.name, n)] = {
                "rounds": statistics.mean(rounds),
                "steps": statistics.mean(steps),
                "max int": max(magnitude),
            }
            rows.append(
                {
                    "n": n,
                    "protocol": protocol_cls.name,
                    "mean rounds": statistics.mean(rounds),
                    "mean steps": statistics.mean(steps),
                    "max int stored": max(magnitude),
                }
            )
    record("e10", rows, "E10 — five regimes under the lockstep adversary")
    return table


def test_e10_regime_table(benchmark):
    table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    n_small, n_large = min(N_VALUES), max(N_VALUES)

    # Exponential vs polynomial: local-coin round growth dwarfs everyone's
    # (in both its unbounded and bounded-strip forms).
    local_growth = table[("local-coin", n_large)]["rounds"] / max(
        table[("local-coin", n_small)]["rounds"], 1
    )
    bounded_local_growth = table[("bounded-local-coin", n_large)]["rounds"] / max(
        table[("bounded-local-coin", n_small)]["rounds"], 1
    )
    assert bounded_local_growth > 2
    # The 2x2 matrix's bounded column: both strip-based protocols store
    # small integers even at the largest n.
    assert table[("bounded-local-coin", n_large)]["max int"] <= 20
    for name in ("ads", "aspnes-herlihy", "atomic-coin"):
        poly_growth = table[(name, n_large)]["rounds"] / max(
            table[(name, n_small)]["rounds"], 1
        )
        assert local_growth > 2 * poly_growth

    # Bounded vs unbounded: ADS stores smaller integers than AH at the
    # largest n even though it runs more steps.
    ads_int = table[("ads", n_large)]["max int"]
    assert ads_int < table[("aspnes-herlihy", n_large)]["max int"]

    # The atomic-coin primitive buys the least work of all regimes.
    for name in ("ads", "aspnes-herlihy", "local-coin"):
        atomic_steps = table[("atomic-coin", n_large)]["steps"]
        assert atomic_steps <= table[(name, n_large)]["steps"]


if __name__ == "__main__":
    run_experiment()
