"""E9 — Claim 4.1: game ≡ graph ≡ counters, and the cost of a move.

Two measurements:

1. correctness: long random plays over (n, K) grids; after every move the
   three representations' distance graphs must be identical and the §4.2
   invariants must hold (paper: zero divergence);
2. cost: pytest-benchmark timing of a single ``inc_counters`` move (the
   only part of the rounds strip on the protocol's critical path).
"""

import random

from _common import bench_timer, bench_workers, record, reset

from repro.strip import (
    DistanceGraph,
    EdgeCounters,
    ShrunkenTokenGame,
    check_graph_invariants,
    inc_counters,
)

GRID = [(2, 2), (3, 2), (4, 2), (5, 2), (3, 3), (4, 3)]
MOVES = 120
SEEDS = range(5)


def play(n, K, seed):
    rng = random.Random(seed)
    game = ShrunkenTokenGame(n, K)
    graph = DistanceGraph.initial(n, K)
    counters = EdgeCounters(n, K)
    mismatches = invariant_failures = 0
    for _ in range(MOVES):
        mover = rng.randrange(n)
        game.move_token(mover)
        graph.inc(mover)
        counters.inc(mover)
        expected = DistanceGraph.from_positions(game.positions, K)
        if graph != expected or counters.graph() != expected:
            mismatches += 1
        if check_graph_invariants(expected):
            invariant_failures += 1
    return mismatches, invariant_failures


def run_experiment(workers=None):
    reset("e9")
    workers = bench_workers() if workers is None else workers
    with bench_timer("e9", workers=workers):
        return _run_body()


def _run_body():
    rows = []
    for n, K in GRID:
        mismatches = failures = 0
        for seed in SEEDS:
            m, f = play(n, K, seed)
            mismatches += m
            failures += f
        rows.append(
            {
                "n": n,
                "K": K,
                "moves checked": MOVES * len(SEEDS),
                "divergences": mismatches,
                "invariant failures": failures,
                "paper": 0,
            }
        )
    record("e9", rows, "E9 Claim 4.1 — game/graph/counter equivalence")
    return rows


def test_e9_equivalence(benchmark):
    rows = run_experiment()
    for row in rows:
        assert row["divergences"] == 0
        assert row["invariant failures"] == 0

    # Time one counter move in a mid-game state (n=5, K=2).
    counters = EdgeCounters(5, 2)
    rng = random.Random(0)
    for _ in range(40):
        counters.inc(rng.randrange(5))

    benchmark(inc_counters, 2, counters.rows, 2)


if __name__ == "__main__":
    run_experiment()
