"""E6 — the paper's raison d'être: bounded memory.

Workload: ADS and Aspnes–Herlihy on identical conflicted workloads of
increasing size (n swept under the lockstep adversary, which lengthens
runs).  Measured, per protocol: the largest integer magnitude and the
widest structure any register ever held, against the run length.

Shape to reproduce: Aspnes–Herlihy's numbers grow with the run (round
numbers and the per-round coin strip); ADS's stay below the static bound
max(m+1, 3K-1) regardless of run length.

The bound is checked against the live ``memory.max_magnitude`` gauges of
the run's metrics registry (per-register max-value-held), which subsume
the ad-hoc audit; the audit numbers are kept in the table as the
cross-check that gauge and audit agree.
"""

from _common import attach_metrics, bench_timer, bench_workers, record, reset

from repro.analysis.theory import e6_bounded_magnitude
from repro.consensus import AdsConsensus, AspnesHerlihyConsensus, validate_run
from repro.runtime.adversary import LockstepAdversary

N_VALUES = (3, 5, 7)
SEEDS = range(4)
M_BOUND = 60  # small fixed m so the ADS bound is visibly tight
K = 2


def run_experiment(workers=None):
    reset("e6")
    workers = bench_workers() if workers is None else workers
    with bench_timer("e6", workers=workers):
        return _run_body()


def _run_body():
    rows = []
    ads_bound = e6_bounded_magnitude(K, 2, max(N_VALUES), M_BOUND)
    for n in N_VALUES:
        inputs = [p % 2 for p in range(n)]
        for seed in SEEDS:
            ads = AdsConsensus(K=K, m_bound=M_BOUND).run(
                inputs, scheduler=LockstepAdversary("mem", seed=seed), seed=seed,
                max_steps=200_000_000,
            )
            ah = AspnesHerlihyConsensus(K=K).run(
                inputs, scheduler=LockstepAdversary("mem", seed=seed), seed=seed,
                max_steps=200_000_000,
            )
            assert validate_run(ads).ok and validate_run(ah).ok
            # The live observability gauge: largest value any audited
            # register ever held, straight from the run's metrics registry.
            ads_gauge = ads.metrics.gauge_max("memory.max_magnitude")
            ah_gauge = ah.metrics.gauge_max("memory.max_magnitude")
            rows.append(
                {
                    "n": n,
                    "seed": seed,
                    "ads steps": ads.total_steps,
                    "ads max int": ads_gauge,
                    "ads audit": ads.audit.max_magnitude,
                    "ads bound": ads_bound,
                    "ah steps": ah.total_steps,
                    "ah max int": ah_gauge,
                    "ah audit": ah.audit.max_magnitude,
                    "ah max width": ah.audit.max_width,
                }
            )
            if n == max(N_VALUES) and seed == 0:
                attach_metrics("e6", "ads", ads.metrics)
                attach_metrics("e6", "aspnes-herlihy", ah.metrics)
    record("e6", rows, f"E6 — memory audit: ADS (m={M_BOUND}) vs Aspnes–Herlihy")
    return rows, ads_bound


def test_e6_memory_bounded(benchmark):
    rows, ads_bound = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    for row in rows:
        # ADS: every stored integer under the static bound, at every n —
        # read from the metrics gauge, cross-checked against the audit.
        assert row["ads max int"] <= ads_bound
        assert row["ads max int"] == row["ads audit"]
        assert row["ah max int"] == row["ah audit"]
    # AH: stored integers grow with the workload (coin counters scale with
    # b·n and rounds accumulate) — compare small-n vs large-n maxima.
    small = max(r["ah max int"] for r in rows if r["n"] == min(N_VALUES))
    large = max(r["ah max int"] for r in rows if r["n"] == max(N_VALUES))
    assert large > small
    # And AH cells widen as the coin strip accumulates rounds.
    assert max(r["ah max width"] for r in rows) > 4


if __name__ == "__main__":
    run_experiment()
