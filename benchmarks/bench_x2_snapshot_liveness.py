"""X2 (extension) — snapshot liveness: §2's scan vs the wait-free successor.

Under an adversary that keeps scheduling fresh writes, the paper's arrow
scan retries forever (by design — the protocol only needs system-wide
progress), while the embedded-scan snapshot (Afek et al. style) always
completes within n+2 collects by borrowing a mover's published view.

Workload: one starved scanner, endless writers, fixed step budget.
Measured: whether the scan completed, collect rounds burned, and the
price the wait-free variant pays (unbounded sequence numbers, audited).
"""

from _common import bench_timer, bench_workers, record, reset

from repro.registers import MemoryAudit
from repro.runtime import ScanStarvingAdversary, Simulation
from repro.snapshot import ArrowScannableMemory, EmbeddedScanSnapshot

N = 4
BUDGET = 30_000
SEEDS = range(6)


def starve(memory_cls, seed):
    audit = MemoryAudit()
    sim = Simulation(
        N, ScanStarvingAdversary(victim=0, period=10, seed=seed), seed=seed
    )
    mem = memory_cls(sim, "M", N, audit=audit)

    def factory(pid):
        def body(ctx):
            if pid == 0:
                view = yield from mem.scan(ctx)
                return tuple(view)
            k = 0
            while True:
                # bounded payloads so the audit isolates mechanism overhead
                yield from mem.write(ctx, (pid, k % 10))
                k += 1

        return body

    sim.spawn_all(factory)
    outcome = sim.run(BUDGET, raise_on_budget=False)
    return {
        "completed": 0 in outcome.decisions,
        "collect rounds": mem.scan_attempts(),
        "max int stored": audit.max_magnitude,
    }


def run_experiment(workers=None):
    reset("x2")
    workers = bench_workers() if workers is None else workers
    with bench_timer("x2", workers=workers):
        return _run_body()


def _run_body():
    rows = []
    for label, memory_cls in [
        ("arrows (the paper)", ArrowScannableMemory),
        ("embedded (wait-free)", EmbeddedScanSnapshot),
    ]:
        results = [starve(memory_cls, seed) for seed in SEEDS]
        rows.append(
            {
                "snapshot": label,
                "scans completed": sum(r["completed"] for r in results),
                "of": len(results),
                "collects (incl. embedded)": max(r["collect rounds"] for r in results),
                "max int stored": max(r["max int stored"] for r in results),
            }
        )
    record(
        "x2",
        rows,
        f"X2 extension — scan liveness under starvation (n={N}, {BUDGET} steps)",
    )
    return rows


def test_x2_snapshot_liveness(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    arrows, embedded = rows
    assert arrows["scans completed"] == 0  # starved forever, as designed
    assert embedded["scans completed"] == embedded["of"]  # wait-free
    # The price: the wait-free variant's sequence numbers grow with the
    # churn; the arrow variant's registers stay small.
    assert embedded["max int stored"] > 10 * arrows["max int stored"]


if __name__ == "__main__":
    run_experiment()
