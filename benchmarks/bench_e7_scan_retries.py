"""E7 — §2.2: scans retry exactly as often as fresh writes interfere.

The arrow scan costs 4(n-1) register operations per collect round and
retries whenever a write completes during the round; under w active
writers the retry pressure grows with w (and with w > 0 the scan is no
longer guaranteed to finish at all — the starvation case is exercised in
the test-suite; here writers churn a *finite* burst so every scan
completes and the per-scan round counts are measurable).

Workload: one scanner scanning while w writers each perform a fixed burst
of writes; only scans that overlap writer activity are counted.  Measured:
mean collect rounds per scan vs w (paper: 1 round iff quiescent).
"""

import statistics

from _common import attach_series, bench_timer, bench_workers, record, reset

from repro.obs import SeriesSpec
from repro.runtime import RandomScheduler, Simulation
from repro.snapshot import ArrowScannableMemory

N = 6
BURST = 60
SEEDS = range(10)

#: Sampling period for the representative run's retry/scan time series.
SERIES_EVERY = 32


def rounds_with_writers(writers, seed, series=None):
    sim = Simulation(N, RandomScheduler(seed=seed), seed=seed, series=series)
    mem = ArrowScannableMemory(sim, "M", N)
    active = {"writers": writers}

    def factory(pid):
        def body(ctx):
            if pid == 0:
                contended = []
                while active["writers"] > 0 and len(contended) < 12:
                    view_span_count = len(contended)
                    yield from mem.scan(ctx)
                    contended.append(view_span_count)
                if not contended:  # quiescent fallback: one clean scan
                    yield from mem.scan(ctx)
                return len(contended)
            if pid <= writers:
                for k in range(BURST):
                    yield from mem.write(ctx, (pid, k))
                active["writers"] -= 1
            return None

        return body

    sim.spawn_all(factory)
    outcome = sim.run(5_000_000)
    spans = [s for s in sim.trace.spans if s.kind == "scan" and not s.is_open]
    counts = [s.meta["rounds"] for s in spans]
    mean = statistics.mean(counts) if counts else 1.0
    return (mean, outcome.metrics) if series is not None else mean


def run_experiment(workers=None):
    reset("e7")
    workers = bench_workers() if workers is None else workers
    with bench_timer("e7", workers=workers):
        return _run_body()


def _run_body():
    rows = []
    for writers in (0, 1, 2, 3, 5):
        samples = [rounds_with_writers(writers, seed) for seed in SEEDS]
        rows.append(
            {
                "active writers": writers,
                "mean rounds/scan": statistics.mean(samples),
                "ops/round": 4 * (N - 1),
                "paper": "1 round iff quiescent",
            }
        )
    record("e7", rows, f"E7 §2.2 — scan collect rounds vs writer pressure (n={N})")
    # One representative max-contention run re-executed with a series
    # recorder: the artifact then shows *when* the retries happened, not
    # just how many (the gate never compares the series key).
    _, snapshot = rounds_with_writers(5, 0, series=SeriesSpec(every=SERIES_EVERY))
    attach_series("e7", "writers5_seed0", snapshot)
    return rows


def test_e7_scan_retries(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    # Quiescent scans need exactly one round.
    assert rows[0]["mean rounds/scan"] == 1.0
    # Retry pressure grows with writers.
    assert rows[-1]["mean rounds/scan"] > rows[0]["mean rounds/scan"]
    assert rows[-1]["mean rounds/scan"] >= rows[1]["mean rounds/scan"]


if __name__ == "__main__":
    run_experiment()
