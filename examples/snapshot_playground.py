#!/usr/bin/env python3
"""The scannable memory (§2) in action.

Three demonstrations:

1. concurrent writers + scanners, with the P1–P3 property checkers run on
   the recorded trace (the empirical Lemmas 2.1–2.4);
2. the cost of contention: scan retry counts as writer pressure grows (the
   reason the scan alone is not wait-free);
3. starvation: a scan that never completes under an adversary that keeps
   scheduling fresh writes — while the system as a whole keeps progressing.

Run:  python examples/snapshot_playground.py
"""

from repro.analysis import format_table
from repro.runtime import RandomScheduler, ScanStarvingAdversary, Simulation
from repro.snapshot import ArrowScannableMemory, check_all_properties
from repro.snapshot.properties import scan_round_counts


def demo_properties(n=4, writes=4, seed=7):
    print(f"== 1. {n} processes write+scan concurrently (seed {seed})")
    sim = Simulation(n, RandomScheduler(seed=seed), seed=seed)
    mem = ArrowScannableMemory(sim, "M", n)

    def factory(pid):
        def body(ctx):
            last = None
            for k in range(writes):
                yield from mem.write(ctx, f"p{pid}.v{k}")
                last = yield from mem.scan(ctx)
            return tuple(last)

        return body

    sim.spawn_all(factory)
    outcome = sim.run(1_000_000)
    for pid, view in sorted(outcome.decisions.items()):
        print(f"   p{pid} final view: {view}")
    violations = check_all_properties(sim.trace, "M", n)
    print(
        f"   P1 regularity + P2 snapshot + P3 serializability: "
        f"{'ALL HOLD' if not violations else violations}"
    )
    print()


def demo_contention(n=5, seed=3):
    print("== 2. scan retries vs writer pressure")
    rows = []
    for writers in range(0, n):
        sim = Simulation(n, RandomScheduler(seed=seed), seed=seed)
        mem = ArrowScannableMemory(sim, "M", n)

        def factory(pid):
            def body(ctx):
                if pid == 0:
                    views = []
                    for _ in range(5):
                        views.append((yield from mem.scan(ctx)))
                    return len(views)
                if pid <= writers:
                    for k in range(40):
                        yield from mem.write(ctx, (pid, k))
                return None

            return body

        sim.spawn_all(factory)
        sim.run(1_000_000)
        rounds = scan_round_counts(sim.trace, "M")
        rows.append(
            {
                "active writers": writers,
                "scans": len(rounds),
                "total collect rounds": sum(rounds),
                "worst scan": max(rounds),
            }
        )
    print(format_table(rows))
    print()


def demo_starvation(n=3, seed=1):
    print("== 3. adversarial starvation (scan is not wait-free)")
    sim = Simulation(n, ScanStarvingAdversary(victim=0, period=9, seed=seed), seed=seed)
    mem = ArrowScannableMemory(sim, "M", n)
    progress = {"writes": 0}

    def factory(pid):
        def body(ctx):
            if pid == 0:
                view = yield from mem.scan(ctx)
                return tuple(view)
            k = 0
            while True:
                yield from mem.write(ctx, (pid, k))
                progress["writes"] += 1
                k += 1

        return body

    sim.spawn_all(factory)
    outcome = sim.run(30_000, raise_on_budget=False)
    print(
        f"   after {outcome.total_steps} steps: victim decided? "
        f"{0 in outcome.decisions}"
    )
    print(f"   collect rounds burned by the victim: {mem.scan_attempts()}")
    print(f"   writes completed by others: {progress['writes']}")
    print("   -> the scan starves, but some write completes infinitely often:")
    print("      exactly the progress property the paper's protocol needs.")


if __name__ == "__main__":
    demo_properties()
    demo_contention()
    demo_starvation()
