#!/usr/bin/env python3
"""§6.1 live: watching virtual global rounds.

The bounded protocol stores no round numbers — yet its correctness proof
assigns every process a *virtual global round* at every scan, monotone and
unbounded, reconstructed purely from the compressed strip state.  This demo
runs the protocol, computes the assignment from the recorded trace, prints
each process's round trajectory, and checks the proof's claims
(monotonicity; nobody runs more than K rounds past a decider).

Run:  python examples/virtual_rounds_demo.py [seed]
"""

import sys

from repro import AdsConsensus, validate_run
from repro.analysis.charts import bar_chart
from repro.consensus.virtual_rounds import analyze_run, compute_virtual_rounds


def trajectory_line(series, width=72):
    """Compress a round series into a fixed-width digit strip."""
    if len(series) <= width:
        sampled = series
    else:
        step = len(series) / width
        sampled = [series[int(i * step)] for i in range(width)]
    return "".join(str(int(r)) if r == int(r) else "?" for r in sampled)


def main(seed: int = 3) -> None:
    inputs = [0, 1, 0, 1]
    protocol = AdsConsensus(ghost_wseqs=True)
    run = protocol.run(
        inputs, seed=seed, record_spans=True, keep_simulation=True
    )
    assert validate_run(run).ok

    trace = compute_virtual_rounds(run, K=protocol.K)
    print(f"inputs {inputs}, seed {seed}: decided {run.decisions}")
    print(f"{len(trace.rounds)} serialized scans; per-scan virtual rounds:\n")
    for pid in range(run.n):
        series = trace.rounds_of(pid)
        print(f"  p{pid}: {trajectory_line(series)}  (final {series[-1]:g})")

    _, problems = analyze_run(run, K=protocol.K)
    print(
        "\nmonotonicity + decision-window checks: "
        + ("ALL HOLD" if not problems else str(problems))
    )

    print("\nwhere the time went (local stats):")
    print(
        bar_chart(
            [f"p{pid}" for pid in range(run.n)],
            [run.stats["flips_by_pid"][pid] for pid in range(run.n)],
            title="coin flips per process",
            width=40,
        )
    )
    print(
        "\nnote the long flat stretch at round 1: that is the shared coin "
        "being\nflipped until it decides — after which the strip races "
        "through rounds 2..3\nand everyone decides (§6.3's constant expected "
        "number of rounds)."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 3)
