#!/usr/bin/env python3
"""Wait-freedom under crashes.

The paper's protocol tolerates any number of crash failures short of all n:
survivors still decide, consistently, in finite expected time.  This demo
crashes processes at adversarially chosen moments — including everyone but
one — and shows the survivors deciding anyway.

Run:  python examples/crash_fault_tolerance.py
"""

from repro import AdsConsensus, CrashPlan, validate_run
from repro.analysis import format_table
from repro.runtime.rng import derive_rng

SCENARIOS = [
    ("no crashes", lambda n, rng: CrashPlan()),
    ("one early crash", lambda n, rng: CrashPlan({0: 0})),
    ("minority mid-run", lambda n, rng: CrashPlan({0: 150, 1: 300})),
    (
        "all but one, immediately",
        lambda n, rng: CrashPlan({pid: 0 for pid in range(1, n)}),
    ),
    (
        "all but one, staggered",
        lambda n, rng: CrashPlan({pid: pid * 200 for pid in range(1, n)}),
    ),
    ("random plan", lambda n, rng: CrashPlan.random(n, rng, horizon=600)),
]


def main(n: int = 5, seed: int = 11) -> None:
    inputs = [p % 2 for p in range(n)]
    rows = []
    for label, plan_factory in SCENARIOS:
        rng = derive_rng(seed, "crash-demo", label)
        plan = plan_factory(n, rng)
        run = AdsConsensus().run(
            inputs, seed=seed, crash_plan=plan, max_steps=30_000_000
        )
        report = validate_run(run)
        rows.append(
            {
                "scenario": label,
                "crashed": sorted(run.outcome.crashed) or "-",
                "survivors decided": sorted(run.decisions) or "-",
                "value": run.decided_values.pop() if run.decisions else "-",
                "steps": run.total_steps,
                "safe": report.ok,
            }
        )
        assert report.ok, report.problems
    print(f"inputs: {inputs}\n")
    print(format_table(rows, title=f"ADS consensus under crash failures (n={n})"))
    print("\nevery scenario: consistency + validity + completion hold;")
    print("a lone survivor decides by itself (wait-freedom).")


if __name__ == "__main__":
    main()
