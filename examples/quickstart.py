#!/usr/bin/env python3
"""Quickstart: run the paper's consensus protocol once and inspect it.

Five asynchronous processes with mixed inputs agree on a single value using
only read/write shared memory — no locks, no atomic coin primitive, bounded
registers — in polynomial expected time.

Run:  python examples/quickstart.py [seed]
"""

import sys

from repro import AdsConsensus, validate_run


def main(seed: int = 2026) -> None:
    inputs = [0, 1, 1, 0, 1]
    protocol = AdsConsensus()  # K=2, b=2, m=(4·b·n)² — the paper's defaults

    print(f"running ADS consensus: n={len(inputs)}, inputs={inputs}, seed={seed}")
    run = protocol.run(inputs, seed=seed)

    report = validate_run(run)
    print(f"\ndecisions : {run.decisions}")
    print(f"agreed on : {run.decided_values.pop()}")
    print(f"safe      : {report.ok} (consistency + validity + completion)")

    print(f"\ntotal atomic steps : {run.total_steps}")
    print(f"steps per process  : {run.outcome.steps_by_pid}")
    print(f"rounds per process : {run.stats['rounds_by_pid']}")
    print(f"coin flips         : {run.stats['flips_by_pid']}")
    print(f"snapshot scans     : {run.stats['scans_by_pid']}")

    print("\nmemory audit (the paper's headline — everything bounded):")
    print(f"  largest integer ever stored : {run.audit.max_magnitude}")
    print(f"  widest register content     : {run.audit.max_width} fields")
    print(f"  register writes audited     : {run.audit.writes}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 2026)
