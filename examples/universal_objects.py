#!/usr/bin/env python3
"""Universal wait-free objects from the paper's consensus.

The paper's introduction motivates randomized consensus as the engine for
"novel universal synchronization primitives, such as the fetch&cons of
[H88], or the sticky bits of [P89]".  This demo builds exactly those — plus
a FIFO queue and a fetch&add counter — via Herlihy's universal
construction, with every log slot decided by the paper's bounded
polynomial consensus protocol.

None of these objects has a wait-free implementation from read/write
registers alone (they have consensus number > 1); with consensus, they all
fall out of one construction.

Run:  python examples/universal_objects.py [seed]
"""

import sys

from repro import RandomScheduler, Simulation
from repro.universal import (
    CounterSpec,
    FetchAndConsSpec,
    QueueSpec,
    StickyBitSpec,
    UniversalObject,
)


def run_object(title, spec, script, n=3, seed=0):
    sim = Simulation(n, RandomScheduler(seed=seed), seed=seed)
    obj = UniversalObject(sim, "obj", n, spec)

    def factory(pid):
        def body(ctx):
            responses = []
            for operation in script(pid):
                responses.append((yield from obj.invoke(ctx, operation)))
            return responses

        return body

    sim.spawn_all(factory)
    outcome = sim.run(200_000_000)
    print(f"== {title}  (n={n}, {outcome.total_steps} atomic steps)")
    for pid in range(n):
        pairs = list(zip(script(pid), outcome.decisions[pid]))
        print(f"   p{pid}: " + ", ".join(f"{op} -> {resp!r}" for op, resp in pairs))
    print(f"   agreed operation order: {obj.effective_operations()}")
    print(f"   final state: {obj.current_state()!r}\n")
    return obj, outcome


def main(seed: int = 0) -> None:
    run_object(
        "fetch&add counter — every pre-value handed out exactly once",
        CounterSpec(),
        lambda pid: [("add", 1), ("add", 1)],
        seed=seed,
    )
    run_object(
        "FIFO queue — concurrent enqueues/dequeues, linearized by consensus",
        QueueSpec(),
        lambda pid: [("enq", f"item{pid}"), ("deq",)],
        seed=seed + 1,
    )
    run_object(
        "sticky bit [P89] — first set wins, everyone learns the winner",
        StickyBitSpec(),
        lambda pid: [("set", pid % 2), ("read",)],
        seed=seed + 2,
    )
    run_object(
        "fetch&cons [H88] — atomically prepend, get the previous list",
        FetchAndConsSpec(),
        lambda pid: [("cons", f"p{pid}")],
        seed=seed + 3,
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 0)
