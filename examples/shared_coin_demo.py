#!/usr/bin/env python3
"""The bounded weak shared coin (§3), measured.

Runs the random-walk shared coin standalone, under a fair scheduler and
under the walk-balancing adversary, sweeping the barrier parameter b:

- agreement rate rises with b        (Lemma 3.1: disagreement ≲ 1/b);
- flips grow quadratically with b·n  (Lemma 3.2: ≈ (b+1)²·n²);
- bounded counters never leave {-(m+1)..m+1}, and overflows are rare
  for the default m = (4·b·n)²       (Lemmas 3.3/3.4).

Run:  python examples/shared_coin_demo.py [n] [repetitions]
"""

import statistics
import sys

from repro.analysis import format_table
from repro.coin import BoundedWalkSharedCoin, coin_flipper_program
from repro.coin.logic import predicted_expected_steps
from repro.runtime import RandomScheduler, Simulation, WalkBalancingAdversary


def toss_once(n, b, seed, adversarial):
    scheduler = (
        WalkBalancingAdversary("coin", seed=seed)
        if adversarial
        else RandomScheduler(seed=seed)
    )
    sim = Simulation(n, scheduler, seed=seed)
    coin = BoundedWalkSharedCoin(sim, "coin", n, b_barrier=b)
    sim.spawn_all(coin_flipper_program(coin))
    outcome = sim.run(10_000_000)
    values = set(outcome.decisions.values())
    return {
        "agreed": len(values) == 1,
        "flips": coin.total_steps,
        "max_counter": coin.max_counter_magnitude(),
        "overflowed": coin.any_overflow(),
        "m": coin.m_bound,
    }


def main(n: int = 4, repetitions: int = 40) -> None:
    for adversarial in (False, True):
        rows = []
        for b in (2, 4, 8):
            results = [
                toss_once(n, b, seed, adversarial) for seed in range(repetitions)
            ]
            rows.append(
                {
                    "b": b,
                    "agreement rate": statistics.mean(r["agreed"] for r in results),
                    "paper bound (disagree)": f"<= {1 / b:.3f}",
                    "mean flips": statistics.mean(r["flips"] for r in results),
                    "paper flips": predicted_expected_steps(b, n),
                    "max |counter|": max(r["max_counter"] for r in results),
                    "counter cap": results[0]["m"] + 1,
                    "overflows": sum(r["overflowed"] for r in results),
                }
            )
        title = (
            "WALK-BALANCING ADVERSARY" if adversarial else "random scheduler"
        ) + f"  (n={n}, {repetitions} tosses per row)"
        print(format_table(rows, title=title))
        print()


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    repetitions = int(sys.argv[2]) if len(sys.argv) > 2 else 40
    main(n, repetitions)
