#!/usr/bin/env python3
"""The four regimes of randomized consensus under a worst-case adversary.

Reproduces the paper's motivating comparison live:

- CIL 1987: polynomial, but needs an atomic shared coin-flip primitive;
- Abrahamson 1988: plain read/write memory, local coins — exponential;
- Aspnes–Herlihy 1988: polynomial via a weak shared coin — unbounded memory;
- **this paper (ADS 1989)**: polynomial AND bounded.

All four run the same inputs under the lockstep adversary (the schedule that
forces local-coin protocols into their exponential regime) and a random
scheduler, printing rounds, steps and the memory audit.

Run:  python examples/adversarial_showdown.py [n] [repetitions]
"""

import statistics
import sys

from repro import (
    AdsConsensus,
    AspnesHerlihyConsensus,
    AtomicCoinConsensus,
    LocalCoinConsensus,
    LockstepAdversary,
    RandomScheduler,
    validate_run,
)
from repro.analysis import format_table

PROTOCOLS = [
    (AtomicCoinConsensus, "atomic coin primitive"),
    (LocalCoinConsensus, "local coins only"),
    (AspnesHerlihyConsensus, "weak shared coin, unbounded"),
    (AdsConsensus, "weak shared coin, BOUNDED (the paper)"),
]


def measure(protocol_cls, scheduler_factory, inputs, repetitions):
    rounds, steps, magnitude = [], [], []
    for seed in range(repetitions):
        protocol = protocol_cls()
        run = protocol.run(
            inputs,
            scheduler=scheduler_factory(seed),
            seed=seed,
            max_steps=100_000_000,
        )
        assert validate_run(run).ok, f"unsafe run: {protocol.name} seed {seed}"
        rounds.append(run.max_rounds())
        steps.append(run.total_steps)
        magnitude.append(run.audit.max_magnitude)
    return {
        "rounds": statistics.mean(rounds),
        "steps": statistics.mean(steps),
        "max int stored": max(magnitude),
    }


def main(n: int = 6, repetitions: int = 5) -> None:
    inputs = [p % 2 for p in range(n)]
    print(f"inputs: {inputs}   ({repetitions} runs per cell)\n")

    for label, scheduler_factory in [
        (
            "LOCKSTEP ADVERSARY (worst case for local coins)",
            lambda s: LockstepAdversary("mem", seed=s),
        ),
        ("random scheduler", lambda s: RandomScheduler(seed=s)),
    ]:
        rows = []
        for protocol_cls, description in PROTOCOLS:
            cells = measure(protocol_cls, scheduler_factory, inputs, repetitions)
            rows.append({"protocol": protocol_cls.name, "regime": description, **cells})
        print(format_table(rows, title=label))
        print()

    print("reading the table:")
    print(" - 'local-coin' rounds explode exponentially under lockstep;")
    print(" - 'aspnes-herlihy' is polynomial but its stored integers grow")
    print("   with the run (round numbers, coin strip);")
    print(" - 'ads' matches the polynomial shape with a FIXED memory bound.")


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 6
    repetitions = int(sys.argv[2]) if len(sys.argv) > 2 else 5
    main(n, repetitions)
