#!/usr/bin/env python3
"""Watch the rounds strip compress (§4), move by move.

Plays a random sequence of token moves simultaneously on:

- the unbounded token game (what Aspnes–Herlihy would store),
- the normalized shrunken game (positions confined to [0, K·n]),
- the distance graph under ``inc`` (what the protocol stores), and
- the mod-3K edge counters (how it is stored: n integers < 3K per process),

printing an ASCII strip per step and verifying Claim 4.1 at every move.

Run:  python examples/rounds_strip_visualizer.py [moves] [seed]
"""

import random
import sys

from repro.strip import (
    DistanceGraph,
    EdgeCounters,
    ShrunkenTokenGame,
    TokenGame,
)

GLYPHS = "ABCDEF"


def strip_line(positions, width):
    cells = ["."] * (width + 1)
    for i, p in enumerate(positions):
        cells[p] = GLYPHS[i] if cells[p] == "." else "*"
    return "".join(cells)


def main(moves: int = 18, seed: int = 5, n: int = 3, K: int = 2) -> None:
    rng = random.Random(seed)
    unbounded = TokenGame(n)
    shrunken = ShrunkenTokenGame(n, K)
    graph = DistanceGraph.initial(n, K)
    counters = EdgeCounters(n, K)

    print(f"n={n}, K={K}; tokens {GLYPHS[:n]}; '*' marks a tie")
    print(
        f"{'mv':>3} {'unbounded strip':<{moves + 3}} "
        f"{'shrunken [0..' + str(K * n) + ']':<{K * n + 3}} counters (mod {3 * K})"
    )
    for step in range(moves):
        mover = rng.randrange(n)
        unbounded.move_token(mover)
        shrunken.move_token(mover)
        graph.inc(mover)
        counters.inc(mover)

        expected = DistanceGraph.from_positions(shrunken.positions, K)
        assert graph == expected and counters.graph() == expected, "Claim 4.1!"

        flat = ",".join(
            "".join(str(v) for j, v in enumerate(row) if j != i)
            for i, row in enumerate(counters.rows)
        )
        print(
            f"{GLYPHS[mover]:>3} "
            f"{strip_line(unbounded.positions, moves):<{moves + 3}} "
            f"{strip_line(shrunken.positions, K * n):<{K * n + 3}} {flat}"
        )

    print("\nfinal unbounded positions :", unbounded.positions)
    print("final shrunken positions  :", shrunken.positions)
    print("final distance graph      :", graph)
    print(
        "max edge counter          :",
        counters.max_counter(),
        f"(always < 3K = {3 * K})",
    )
    print("\nevery move checked: game == graph == counters (Claim 4.1).")


if __name__ == "__main__":
    moves = int(sys.argv[1]) if len(sys.argv) > 1 else 18
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 5
    main(moves, seed)
