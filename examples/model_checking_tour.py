#!/usr/bin/env python3
"""A tour of the bounded model checker (repro.verify).

Three demonstrations on the register substrate the paper builds on:

1. **verify** — every schedule of a small two-writer-register workload is
   enumerated and checked for linearizability (the construction §2's arrow
   registers rely on);
2. **refute** — the same explorer *finds* the classic stalled-reader bug
   in a naive reader variant and prints the witness schedule;
3. **classify** — it separates regular from atomic registers by finding a
   new/old inversion schedule that regular semantics permit.

Run:  python examples/model_checking_tour.py
"""

from repro.registers import (
    AtomicRegister,
    RegularRegister,
    TwoWriterRegister,
    check_register_history,
    history_from_spans,
)
from repro.verify import explore_schedules


def check_linearizable(sim, outcome):
    spans = [s for s in sim.trace.spans if s.target == "A"]
    history = history_from_spans(spans)
    if check_register_history(history, initial="init") is None:
        return ["non-linearizable: " + "; ".join(str(s) for s in spans)]
    return []


def demo_verify():
    print("== 1. exhaustive verification of the two-writer register")

    def setup(sim):
        reg = TwoWriterRegister(sim, "A", 0, 1, initial="init")
        warmup = AtomicRegister(sim, "warmup", 0)

        def factory(pid):
            def body(ctx):
                if pid == 0:
                    yield from reg.write(ctx, "c")
                elif pid == 1:
                    yield from reg.write(ctx, "d")
                    yield from reg.write(ctx, "e")
                else:
                    yield from warmup.read(ctx)
                    return (yield from reg.read(ctx))

            return body

        return factory

    result = explore_schedules(3, setup, check_linearizable, max_steps=12)
    print(f"   {result.summary()}")
    print("   -> every interleaving of 2 writers x 1 reader is atomic\n")


def demo_refute():
    print("== 2. refuting the naive (no re-read) reader")

    class NaiveTwoWriterRegister(TwoWriterRegister):
        def read(self, ctx):
            span = ctx.begin_span("read", self.name)
            first0 = yield from self.cell0.read(ctx)
            first1 = yield from self.cell1.read(ctx)
            value = first0[0] if first0[1] == first1[1] else first1[0]
            ctx.end_span(span, value)
            return value

    def setup(sim):
        reg = NaiveTwoWriterRegister(sim, "A", 0, 1, initial="init")
        warmup = AtomicRegister(sim, "warmup", 0)

        def factory(pid):
            def body(ctx):
                if pid == 0:
                    yield from reg.write(ctx, "c")
                elif pid == 1:
                    yield from reg.write(ctx, "d")
                    yield from reg.write(ctx, "e")
                else:
                    yield from warmup.read(ctx)
                    return (yield from reg.read(ctx))

            return body

        return factory

    result = explore_schedules(
        3, setup, check_linearizable, max_steps=12, stop_on_first_violation=True
    )
    print(f"   {result.summary()}")
    print(f"   witness schedule: {result.witness_schedules[0]}")
    print(f"   violation: {result.violations[0][:90]}...")
    print("   -> the single re-read in the real reader is load-bearing\n")


def demo_classify():
    print("== 3. regular is not atomic (new/old inversion)")

    def setup(sim):
        reg = RegularRegister(sim, "r", domain=[0, 1], initial=0, writer=0)

        def factory(pid):
            def body(ctx):
                if pid == 0:
                    yield from reg.write(ctx, 1)
                else:
                    a = yield from reg.read(ctx)
                    b = yield from reg.read(ctx)
                    return (a, b)

            return body

        return factory

    def check(sim, outcome):
        if outcome.decisions[1] == (1, 0):
            return ["reads returned new-then-old"]
        return []

    result = explore_schedules(
        2, setup, check, max_steps=10, stop_on_first_violation=True
    )
    print(f"   {result.summary()}")
    print(f"   inversion schedule: {result.witness_schedules[0]}")
    print("   -> exactly the gap Lamport's atomic constructions close")


if __name__ == "__main__":
    demo_verify()
    demo_refute()
    demo_classify()
