"""Legacy setup shim.

Allows ``pip install -e .`` / ``python setup.py develop`` on environments
whose setuptools predates PEP 660 editable-wheel support (no ``wheel``
package available offline).  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
