"""Tests for the sequential object specifications."""

import pytest

from repro.universal import (
    CasRegisterSpec,
    CounterSpec,
    FetchAndConsSpec,
    QueueSpec,
    StackSpec,
    StickyBitSpec,
)


def test_counter_fetch_and_add():
    spec = CounterSpec()
    state = spec.initial_state()
    state, old = spec.apply(state, ("add", 5))
    assert old == 0
    state, old = spec.apply(state, ("add", 2))
    assert old == 5
    state, value = spec.apply(state, ("read",))
    assert value == 7 and state == 7


def test_queue_fifo_order():
    spec = QueueSpec()
    _, responses = spec.replay(
        [("enq", "a"), ("enq", "b"), ("deq",), ("deq",), ("deq",)]
    )
    assert responses == [None, None, "a", "b", None]


def test_stack_lifo_order():
    spec = StackSpec()
    _, responses = spec.replay([("push", 1), ("push", 2), ("pop",), ("pop",), ("pop",)])
    assert responses == [None, None, 2, 1, None]


def test_cas_register_semantics():
    spec = CasRegisterSpec(initial=0)
    state = spec.initial_state()
    state, ok = spec.apply(state, ("cas", 0, 10))
    assert ok is True and state == 10
    state, ok = spec.apply(state, ("cas", 0, 20))
    assert ok is False and state == 10
    state, _ = spec.apply(state, ("write", 99))
    state, value = spec.apply(state, ("read",))
    assert value == 99


def test_sticky_bit_first_set_wins():
    spec = StickyBitSpec()
    state = spec.initial_state()
    assert state is None
    state, value = spec.apply(state, ("set", 1))
    assert value == 1
    state, value = spec.apply(state, ("set", 0))  # too late
    assert value == 1
    state, value = spec.apply(state, ("read",))
    assert value == 1


def test_fetch_and_cons_returns_previous_contents():
    spec = FetchAndConsSpec()
    state, responses = spec.replay([("cons", "x"), ("cons", "y"), ("read",)])
    assert responses == [(), ("x",), ("y", "x")]
    assert state == ("y", "x")


@pytest.mark.parametrize(
    "spec",
    [
        CounterSpec(),
        QueueSpec(),
        StackSpec(),
        CasRegisterSpec(),
        StickyBitSpec(),
        FetchAndConsSpec(),
    ],
)
def test_unknown_operation_rejected(spec):
    with pytest.raises(ValueError, match="unknown operation"):
        spec.apply(spec.initial_state(), ("frobnicate",))


def test_replay_from_scratch_is_pure():
    spec = QueueSpec()
    ops = [("enq", 1), ("deq",)]
    assert spec.replay(ops) == spec.replay(ops)
