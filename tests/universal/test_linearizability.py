"""Black-box linearizability of the universal objects.

These tests do NOT look at the construction's internal log: they take only
the invocation/response spans a client could observe and ask the
object-level Wing–Gong checker whether a linearization exists — the
definition of correctness for a shared object.
"""

import pytest

from repro.runtime import RandomScheduler, Simulation
from repro.universal import CounterSpec, QueueSpec, StackSpec, UniversalObject
from repro.universal.linearizability import (
    ObjectOp,
    check_object_history,
    object_history_from_spans,
)


def _run_and_history(spec, script, n=3, seed=0):
    sim = Simulation(n, RandomScheduler(seed=seed), seed=seed)
    obj = UniversalObject(sim, "obj", n, spec)

    def factory(pid):
        def body(ctx):
            for operation in script(pid):
                yield from obj.invoke(ctx, operation)

        return body

    sim.spawn_all(factory)
    sim.run(200_000_000)
    spans = sim.trace.spans_of_kind("invoke", "obj")
    return object_history_from_spans(spans)


# -- the checker itself ---------------------------------------------------------


def test_checker_accepts_sequential_queue_history():
    ops = [
        ObjectOp(0, 0, ("enq", "a"), None, 0, 1),
        ObjectOp(1, 1, ("deq",), "a", 2, 3),
        ObjectOp(2, 1, ("deq",), None, 4, 5),
    ]
    assert check_object_history(QueueSpec(), ops) == [0, 1, 2]


def test_checker_rejects_wrong_response():
    ops = [
        ObjectOp(0, 0, ("enq", "a"), None, 0, 1),
        ObjectOp(1, 1, ("deq",), "b", 2, 3),  # never enqueued
    ]
    assert check_object_history(QueueSpec(), ops) is None


def test_checker_rejects_reordered_fifo():
    # enq a fully precedes enq b; two later deqs return b then a.
    ops = [
        ObjectOp(0, 0, ("enq", "a"), None, 0, 1),
        ObjectOp(1, 0, ("enq", "b"), None, 2, 3),
        ObjectOp(2, 1, ("deq",), "b", 4, 5),
        ObjectOp(3, 1, ("deq",), "a", 6, 7),
    ]
    assert check_object_history(QueueSpec(), ops) is None


def test_checker_allows_concurrent_reordering():
    # The two enqueues overlap, so either dequeue order linearizes.
    ops = [
        ObjectOp(0, 0, ("enq", "a"), None, 0, 10),
        ObjectOp(1, 1, ("enq", "b"), None, 0, 10),
        ObjectOp(2, 2, ("deq",), "b", 11, 12),
        ObjectOp(3, 2, ("deq",), "a", 13, 14),
    ]
    assert check_object_history(QueueSpec(), ops) is not None


def test_checker_empty_history():
    assert check_object_history(CounterSpec(), []) == []


# -- black-box validation of the construction -------------------------------------


@pytest.mark.parametrize("seed", range(4))
def test_universal_queue_is_linearizable_black_box(seed):
    history = _run_and_history(
        QueueSpec(),
        lambda pid: [("enq", (pid, 0)), ("deq",), ("enq", (pid, 1)), ("deq",)],
        seed=seed,
    )
    assert len(history) == 12
    assert check_object_history(QueueSpec(), history) is not None


@pytest.mark.parametrize("seed", range(4))
def test_universal_counter_is_linearizable_black_box(seed):
    history = _run_and_history(
        CounterSpec(), lambda pid: [("add", 1)] * 3, seed=seed
    )
    assert check_object_history(CounterSpec(), history) is not None


def test_universal_stack_is_linearizable_black_box():
    history = _run_and_history(
        StackSpec(), lambda pid: [("push", pid), ("pop",)], seed=9
    )
    assert check_object_history(StackSpec(), history) is not None


def test_witness_respects_real_time_precedence():
    history = _run_and_history(
        CounterSpec(), lambda pid: [("add", 1)] * 2, n=2, seed=1
    )
    witness = check_object_history(CounterSpec(), history)
    assert witness is not None
    position = {op_id: index for index, op_id in enumerate(witness)}
    by_id = {op.op_id: op for op in history}
    for a in history:
        for b in history:
            if a.precedes(b):
                assert position[a.op_id] < position[b.op_id]
