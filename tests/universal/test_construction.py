"""Tests for the universal construction over the paper's consensus.

Correctness criterion: the decided log is one agreed sequence; every
invocation appears exactly once (after dedup); every process's responses
equal the sequential replay of that log — i.e. the object is linearizable
with the log order as the witness.
"""

import pytest

from repro.runtime import RandomScheduler, Simulation
from repro.universal import (
    CounterSpec,
    FetchAndConsSpec,
    QueueSpec,
    StickyBitSpec,
    UniversalObject,
)


def _run(n, spec, script, seed=0, max_steps=100_000_000):
    """script(pid) -> list of operations for that process."""
    sim = Simulation(n, RandomScheduler(seed=seed), seed=seed)
    obj = UniversalObject(sim, "obj", n, spec)

    def factory(pid):
        def body(ctx):
            responses = []
            for operation in script(pid):
                responses.append((yield from obj.invoke(ctx, operation)))
            return responses

        return body

    sim.spawn_all(factory)
    outcome = sim.run(max_steps)
    return obj, outcome


def _check_against_log(obj, outcome, script, n):
    """Replay the agreed (deduplicated) log; responses must match."""
    effective = obj.effective_operations()
    _, replay_responses = obj.spec.replay(effective)
    # Each invocation applied exactly once.
    total_invocations = sum(len(script(pid)) for pid in range(n))
    assert len(effective) == total_invocations
    # Per-process program order appears in the log in order.
    log = [entry for entry in obj.decided_log()]
    seen = set()
    per_pid_seqs = {pid: [] for pid in range(n)}
    for pid, seq, _ in log:
        if (pid, seq) in seen:
            continue
        seen.add((pid, seq))
        per_pid_seqs[pid].append(seq)
    for pid, seqs in per_pid_seqs.items():
        assert seqs == sorted(seqs)
    # Responses match the replay at each op's position.
    position = {}
    index = 0
    seen.clear()
    for pid, seq, _ in log:
        if (pid, seq) in seen:
            continue
        seen.add((pid, seq))
        position[(pid, seq)] = index
        index += 1
    for pid, responses in outcome.decisions.items():
        for op_index, response in enumerate(responses, start=1):
            assert replay_responses[position[(pid, op_index)]] == response


def test_sequential_counter():
    obj, outcome = _run(1, CounterSpec(), lambda pid: [("add", 1)] * 5 + [("read",)])
    assert outcome.decisions[0] == [0, 1, 2, 3, 4, 5]
    assert obj.current_state() == 5


@pytest.mark.parametrize("seed", range(5))
def test_concurrent_counter_every_add_counted_once(seed):
    n = 3
    script = lambda pid: [("add", 1)] * 4
    obj, outcome = _run(n, CounterSpec(), script, seed=seed)
    assert obj.current_state() == n * 4
    # fetch&add responses are distinct pre-values 0..11 in some partition.
    all_pre = sorted(v for vs in outcome.decisions.values() for v in vs)
    assert all_pre == list(range(12))
    _check_against_log(obj, outcome, script, n)


@pytest.mark.parametrize("seed", range(4))
def test_concurrent_queue_linearizable(seed):
    n = 3
    script = lambda pid: [("enq", (pid, 0)), ("enq", (pid, 1)), ("deq",), ("deq",)]
    obj, outcome = _run(n, QueueSpec(), script, seed=seed)
    _check_against_log(obj, outcome, script, n)
    # Everything enqueued was dequeued exactly once (6 enq, 6 deq).
    dequeued = [v for vs in outcome.decisions.values() for v in vs if v is not None]
    assert sorted(dequeued) == sorted((pid, k) for pid in range(n) for k in (0, 1))


def test_sticky_bit_is_consensus():
    # n processes all try to set their own pid parity: everyone must see
    # the same winner — a consensus object built from consensus.
    n = 4
    script = lambda pid: [("set", pid % 2)]
    obj, outcome = _run(n, StickyBitSpec(), script, seed=9)
    winners = {vs[0] for vs in outcome.decisions.values()}
    assert len(winners) == 1
    assert obj.current_state() in (0, 1)


@pytest.mark.parametrize("seed", range(3))
def test_fetch_and_cons_total_order(seed):
    # Each response is the list before the cons: lengths must be a
    # permutation of 0..total-1 and each response a prefix-chain member.
    n = 3
    script = lambda pid: [("cons", f"{pid}a"), ("cons", f"{pid}b")]
    obj, outcome = _run(n, FetchAndConsSpec(), script, seed=seed)
    responses = [v for vs in outcome.decisions.values() for v in vs]
    lengths = sorted(len(r) for r in responses)
    assert lengths == list(range(6))
    final = obj.current_state()
    for response in responses:
        # every returned snapshot is a suffix of the final list
        assert final[len(final) - len(response):] == response


def test_helping_rule_logs_announced_ops():
    # Process 1 does one op; process 0 does many: 0's helping must carry
    # 1's op into the log even if 1 is slow (scheduled rarely).
    n = 2
    sim = Simulation(
        n, RandomScheduler(seed=4, weights={1: 0.02}), seed=4
    )
    obj = UniversalObject(sim, "obj", n, CounterSpec())

    def factory(pid):
        def body(ctx):
            ops = [("add", 1)] * (6 if pid == 0 else 1)
            out = []
            for op in ops:
                out.append((yield from obj.invoke(ctx, op)))
            return out

        return body

    sim.spawn_all(factory)
    outcome = sim.run(100_000_000)
    assert obj.current_state() == 7
    assert len(outcome.decisions[1]) == 1


def test_log_grows_but_consensus_instances_stay_bounded():
    from repro.registers import MemoryAudit

    n = 2
    sim = Simulation(n, RandomScheduler(seed=0), seed=0)
    audit = MemoryAudit()
    obj = UniversalObject(sim, "obj", n, CounterSpec(), audit=audit, m_bound=20)

    def factory(pid):
        def body(ctx):
            for _ in range(3):
                yield from obj.invoke(ctx, ("add", 1))

        return body

    sim.spawn_all(factory)
    sim.run(100_000_000)
    # Consensus-internal integers bounded by max(m+1, 3K-1); announce
    # registers carry (pid, seq<=3, op) tuples.
    assert audit.max_magnitude <= 21


def test_two_objects_coexist():
    sim = Simulation(2, RandomScheduler(seed=6), seed=6)
    counter = UniversalObject(sim, "ctr", 2, CounterSpec())
    queue = UniversalObject(sim, "q", 2, QueueSpec())

    def factory(pid):
        def body(ctx):
            pre = yield from counter.invoke(ctx, ("add", 10))
            yield from queue.invoke(ctx, ("enq", pid))
            popped = yield from queue.invoke(ctx, ("deq",))
            return (pre, popped)

        return body

    sim.spawn_all(factory)
    outcome = sim.run(100_000_000)
    assert counter.current_state() == 20
    assert sorted(v for _, v in outcome.decisions.values()) == [0, 1]


def test_crashed_invoker_does_not_block_others():
    """Helping tolerates crashes: a process that dies mid-invoke leaves its
    announced op behind; survivors keep completing their own operations."""
    from repro.runtime import CrashPlan

    n = 3
    sim = Simulation(
        n, RandomScheduler(seed=8), seed=8, crash_plan=CrashPlan({0: 40})
    )
    obj = UniversalObject(sim, "obj", n, CounterSpec())

    def factory(pid):
        def body(ctx):
            results = []
            for _ in range(3):
                results.append((yield from obj.invoke(ctx, ("add", 1))))
            return results

        return body

    sim.spawn_all(factory)
    outcome = sim.run(200_000_000)
    assert outcome.crashed == {0}
    for pid in (1, 2):
        assert len(outcome.decisions[pid]) == 3
    # The survivors' six adds all took effect exactly once; the crashed
    # process contributed between 0 and 3 (its announced op may have been
    # helped into the log posthumously).
    assert 6 <= obj.current_state() <= 9


def test_announced_op_of_crashed_process_helped_at_most_once():
    from repro.runtime import CrashPlan, ScriptedScheduler

    n = 2
    # Let pid 0 announce (1 write) then crash; pid 1 must help it exactly
    # once and still complete its own op.
    sim = Simulation(n, ScriptedScheduler([0]), seed=0, crash_plan=CrashPlan({0: 1}))
    obj = UniversalObject(sim, "obj", n, CounterSpec())

    def factory(pid):
        def body(ctx):
            return (yield from obj.invoke(ctx, ("add", 10 if pid == 0 else 1)))

        return body

    sim.spawn_all(factory)
    outcome = sim.run(100_000_000)
    assert outcome.crashed == {0}
    assert 1 in outcome.decisions
    ops = obj.effective_operations()
    assert ops.count(("add", 10)) <= 1  # helped at most once
    assert ops.count(("add", 1)) == 1
