"""Tests for the sequential time-stamp systems.

The bounded system's full contract is property-tested: after any sequence
of takes, the freshly issued label dominates every other live label, the
dominance order on live labels is a strict total order, and that order
agrees with recency.
"""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.timestamps import BoundedSequentialTimestamps, UnboundedTimestamps, dominates

take_sequences = st.tuples(
    st.integers(min_value=2, max_value=5),  # processes
    st.lists(st.integers(min_value=0, max_value=4), min_size=1, max_size=60),
)


def test_digit_dominance_is_the_three_cycle():
    assert dominates((1,), (0,))
    assert dominates((2,), (1,))
    assert dominates((0,), (2,))
    assert not dominates((0,), (1,))
    assert not dominates((1,), (1,))  # equal labels do not dominate


def test_dominates_rejects_mismatched_lengths():
    with pytest.raises(ValueError):
        dominates((1, 0), (1,))


def test_first_differing_position_decides():
    assert dominates((1, 0, 0), (1, 2, 9 % 3))  # 0 beats 2 at position 1
    assert not dominates((1, 2, 0), (1, 0, 0))


def test_two_process_system_cycles_through_three_labels():
    system = BoundedSequentialTimestamps(2)
    seen = set()
    taker = 0
    for _ in range(9):
        label = system.take(taker)
        seen.add(label)
        assert dominates(label, system.label_of(1 - taker))
        taker = 1 - taker
    assert seen == {(0,), (1,), (2,)}  # the classic 3-value 2-process TSS


def test_fresh_label_dominates_all_others_small_run():
    system = BoundedSequentialTimestamps(3)
    for taker in [0, 1, 2, 0, 1, 2, 2, 1, 0, 0]:
        label = system.take(taker)
        for other in range(3):
            if other != taker:
                assert dominates(label, system.label_of(other))


@settings(max_examples=300, deadline=None)
@given(take_sequences)
def test_bounded_system_contract(params):
    n, raw_takers = params
    system = BoundedSequentialTimestamps(n)
    last_take_time = {}
    for time, raw in enumerate(raw_takers):
        taker = raw % n
        label = system.take(taker)
        last_take_time[taker] = time
        # (1) fresh label dominates every other live label
        for other in range(n):
            if other != taker:
                assert dominates(label, system.label_of(other))
        # (2) live labels are bounded
        assert system.max_component() <= 2
        # (3) dominance agrees with recency among processes that have taken
        takers = sorted(last_take_time, key=last_take_time.get)
        for earlier, later in itertools.combinations(takers, 2):
            assert dominates(
                system.label_of(later), system.label_of(earlier)
            ), (
                f"label of later taker {later} does not dominate earlier "
                f"{earlier}: {system.labels}"
            )
        # (4) strict total order: antisymmetry on all distinct live pairs
        for p, q in itertools.combinations(range(n), 2):
            x, y = system.label_of(p), system.label_of(q)
            if x != y:
                assert dominates(x, y) != dominates(y, x)


@settings(max_examples=100, deadline=None)
@given(take_sequences)
def test_bounded_matches_unbounded_order(params):
    """Both systems must induce the same live order for the same takes."""
    n, raw_takers = params
    bounded = BoundedSequentialTimestamps(n)
    unbounded = UnboundedTimestamps(n)
    touched = set()
    for raw in raw_takers:
        taker = raw % n
        bounded.take(taker)
        unbounded.take(taker)
        touched.add(taker)
    for p, q in itertools.combinations(sorted(touched), 2):
        expect = unbounded.dominates(unbounded.label_of(p), unbounded.label_of(q))
        assert dominates(bounded.label_of(p), bounded.label_of(q)) == expect


def test_domain_size_and_length():
    assert BoundedSequentialTimestamps(2).domain_size() == 3
    assert BoundedSequentialTimestamps(4).domain_size() == 27
    assert len(BoundedSequentialTimestamps(5).take(0)) == 4


def test_unbounded_counter_grows_without_bound():
    system = UnboundedTimestamps(2)
    for _ in range(50):
        system.take(0)
        system.take(1)
    assert system.max_component() == 100  # one per take: unbounded growth


def test_single_process_system():
    system = BoundedSequentialTimestamps(1)
    first = system.take(0)
    second = system.take(0)
    assert len(first) == 1  # minimum length guard
