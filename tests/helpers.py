"""Shared helpers for the test-suite."""

from __future__ import annotations

from typing import Any, Callable

from repro.runtime import RandomScheduler, Simulation


def run_simulation(
    n: int,
    factory: Callable[[int], Any],
    scheduler=None,
    seed: int = 0,
    max_steps: int = 1_000_000,
    record_events: bool = False,
    **sim_kwargs,
):
    """Build, spawn and run a simulation; return (sim, outcome)."""
    sim = Simulation(
        n,
        scheduler=scheduler or RandomScheduler(seed=seed),
        seed=seed,
        record_events=record_events,
        **sim_kwargs,
    )
    sim.spawn_all(factory)
    outcome = sim.run(max_steps)
    return sim, outcome


def run_with_setup(
    n: int,
    setup: Callable[[Simulation], Callable[[int], Any]],
    scheduler=None,
    seed: int = 0,
    max_steps: int = 1_000_000,
    **sim_kwargs,
):
    """Like :func:`run_simulation` but ``setup(sim)`` builds the shared
    objects first and returns the program factory."""
    sim = Simulation(
        n, scheduler=scheduler or RandomScheduler(seed=seed), seed=seed, **sim_kwargs
    )
    sim.spawn_all(setup(sim))
    outcome = sim.run(max_steps)
    return sim, outcome


def counter_program(register):
    """Program factory: read-increment-write loop on one register."""

    def factory(pid: int):
        def body(ctx):
            for _ in range(3):
                value = yield from register.read(ctx)
                yield from register.write(ctx, value + 1)
            return ctx.pid

        return body

    return factory
