"""Tests for the benchmark artifact helpers in ``benchmarks/_common.py``:
idempotent recording and the machine-readable BENCH_*.json artifacts."""

import importlib
import json
import sys
import pathlib

import pytest

BENCH_DIR = pathlib.Path(__file__).parent.parent / "benchmarks"


@pytest.fixture()
def common(tmp_path, monkeypatch):
    monkeypatch.syspath_prepend(str(BENCH_DIR))
    module = importlib.import_module("_common")
    monkeypatch.setattr(module, "RESULTS_DIR", tmp_path)
    module.reset("etest")
    yield module
    module.reset("etest")
    sys.modules.pop("_common", None)


def test_record_is_idempotent_per_title(common, tmp_path, capsys):
    rows = [{"n": 3, "steps": 10}]
    common.record("etest", rows, "table A")
    common.record("etest", rows, "table A")  # rerun: replaces, not appends
    text = (tmp_path / "etest.txt").read_text()
    assert text.count("table A") == 1
    payload = json.loads(common.json_path("etest").read_text())
    assert payload["experiment"] == "etest"
    assert len(payload["tables"]) == 1
    assert payload["tables"][0]["rows"] == [{"n": 3, "steps": 10}]


def test_record_replaces_stale_titles_on_rerun(common, tmp_path):
    common.record("etest", [{"x": 1}], "old title (m=5)")
    common.reset("etest")  # what every benchmark does at run start
    common.record("etest", [{"x": 2}], "new title (m=9)")
    text = (tmp_path / "etest.txt").read_text()
    assert "old title" not in text and "new title" in text


def test_multiple_tables_accumulate_within_a_run(common, tmp_path):
    common.record("etest", [{"a": 1}], "first")
    common.record("etest", [{"b": 2}], "second")
    text = (tmp_path / "etest.txt").read_text()
    assert "first" in text and "second" in text
    payload = json.loads(common.json_path("etest").read_text())
    assert [t["title"] for t in payload["tables"]] == ["first", "second"]


def test_attach_metrics_lands_in_json_artifact(common):
    from repro import MetricsRegistry

    registry = MetricsRegistry()
    registry.counter("demo", pid=0).inc(7)
    common.record("etest", [{"r": 1}], "t")
    common.attach_metrics("etest", "ads", registry.snapshot())
    payload = json.loads(common.json_path("etest").read_text())
    assert payload["metrics"]["ads"]["counters"]["demo{pid=0}"] == 7


def test_reset_removes_both_artifacts(common, tmp_path):
    common.record("etest", [{"r": 1}], "t")
    txt = tmp_path / "etest.txt"
    js = common.json_path("etest")
    assert txt.exists() and js.exists()
    common.reset("etest")
    assert not txt.exists() and not js.exists()


def test_json_path_uppercases_experiment(common, tmp_path):
    assert common.json_path("e6").name == "BENCH_E6.json"


def test_artifact_carries_provenance_stamp(common):
    common.record("etest", [{"r": 1}], "t")
    payload = json.loads(common.json_path("etest").read_text())
    provenance = payload["provenance"]
    assert provenance["ledger_schema"] >= 1
    assert provenance["package"]
    assert "code_version" in provenance


def test_record_ledger_appends_once_per_identity(common, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CODE_VERSION", "test-code-v1")
    ledger_path = tmp_path / "bench.jsonl"
    monkeypatch.setenv("REPRO_LEDGER", str(ledger_path))
    common.record("etest", [{"n": 3, "steps": 10}], "t")
    common.attach_timing("etest", "total", 1.0)
    assert common.record_ledger("etest") is True

    from repro.obs.ledger import read_records

    records = read_records(ledger_path)
    assert len(records) == 1
    record = records[0]
    assert record.kind == "bench"
    assert record.experiment == "bench:etest"
    assert record.outcome["tables"][0]["rows"] == [{"n": 3, "steps": 10}]
    # Host timings ride outside the deterministic identity...
    assert record.timings["total"]["wall_seconds"] == 1.0
    # ...so a rerun with different wall-clock is a cache hit, not a dupe.
    common.attach_timing("etest", "total", 99.0)
    assert common.record_ledger("etest") is False
    assert len(read_records(ledger_path)) == 1


def test_record_ledger_off_without_env(common, monkeypatch):
    monkeypatch.delenv("REPRO_LEDGER", raising=False)
    common.record("etest", [{"n": 3}], "t")
    assert common.record_ledger("etest") is False
