"""Tests for the distance graph and the sequential inc move (§4.2)."""

import pytest

from repro.strip import DistanceGraph
from repro.strip.invariants import check_graph_invariants, check_property_5

NEG_INF = float("-inf")


def test_initial_graph_all_ties():
    graph = DistanceGraph.initial(3, 2)
    for i in range(3):
        for j in range(3):
            if i != j:
                assert graph.weight(i, j) == 0
    assert sorted(graph.leaders()) == [0, 1, 2]


def test_from_positions_weights_capped():
    graph = DistanceGraph.from_positions([7, 0, 5], K=2)
    assert graph.weight(0, 1) == 2  # 7 vs 0, capped
    assert graph.weight(0, 2) == 2
    assert graph.weight(2, 1) == 2
    assert not graph.has_edge(1, 0)


def test_dist_follows_max_paths():
    # positions 5, 3, 1 with K=2: the direct edge 0->2 is capped at 2 but
    # the chained path 0->1->2 carries the full distance 4.
    graph = DistanceGraph.from_positions([5, 3, 1], K=2)
    assert graph.dist(0, 2) == 4
    assert graph.dist(0, 1) == 2
    assert graph.dist(1, 2) == 2


def test_dist_unreachable_is_neg_inf():
    graph = DistanceGraph.from_positions([0, 5], K=2)
    assert graph.dist(0, 1) == NEG_INF
    assert graph.dist(1, 0) == 2


def test_leaders_are_maximal_tokens():
    graph = DistanceGraph.from_positions([3, 3, 1], K=2)
    assert sorted(graph.leaders()) == [0, 1]


def test_inc_moves_token_up():
    graph = DistanceGraph.initial(2, 2)
    graph.inc(0)
    assert graph.weight(0, 1) == 1
    assert not graph.has_edge(1, 0)
    graph.inc(1)
    assert graph.weight(0, 1) == 0
    assert graph.weight(1, 0) == 0  # tie restored


def test_inc_saturates_at_k():
    graph = DistanceGraph.initial(2, 2)
    for _ in range(5):
        graph.inc(0)
    assert graph.weight(0, 1) == 2


def test_inc_closes_gap_only_on_max_paths():
    # tokens: j=5, l=3, i=1 (K=2).  The direct edge (j, i) is saturated and
    # NOT on the maximum path j->l->i, so i's move must not shrink it.
    positions = [5, 3, 1]
    graph = DistanceGraph.from_positions(positions, K=2)
    graph.inc(2)
    expected = DistanceGraph.from_positions([5, 3, 2], K=2)
    assert graph == expected
    assert graph.weight(0, 2) == 2  # still capped
    assert graph.weight(1, 2) == 1  # really closed


def test_edge_on_max_path_direct_and_detour():
    graph = DistanceGraph.from_positions([5, 3, 1], K=2)
    assert graph.edge_on_max_path_to(1, 2)  # (l, i) on j->l->i
    assert not graph.edge_on_max_path_to(0, 2)  # direct (j, i) is a shortcut


def test_positive_cycle_detected():
    graph = DistanceGraph(2, 2)
    graph.weights[(0, 1)] = 1
    graph.weights[(1, 0)] = 1
    with pytest.raises(ValueError, match="positive cycle"):
        graph.all_dists_to(0)
    with pytest.raises(ValueError, match="positive cycle"):
        graph.all_dists_from(0)


def test_invariants_on_game_graphs():
    graph = DistanceGraph.from_positions([4, 4, 2, 0], K=2)
    assert check_graph_invariants(graph) == []
    assert check_property_5(graph, [4, 4, 2, 0]) == []


def test_invariant_checker_flags_weight_out_of_range():
    graph = DistanceGraph.initial(2, 2)
    graph.weights[(0, 1)] = 7
    violations = check_graph_invariants(graph)
    assert any(v.name == "P4.3" for v in violations)


def test_invariant_checker_flags_missing_pair():
    graph = DistanceGraph(2, 2)  # no edges at all
    violations = check_graph_invariants(graph)
    assert any(v.name == "P4.1" for v in violations)


def test_weight_matrix_roundtrip():
    graph = DistanceGraph.from_positions([2, 0], K=2)
    matrix = graph.as_weight_matrix()
    assert matrix[0][1] == 2
    assert matrix[1][0] is None


def test_copy_is_independent():
    graph = DistanceGraph.initial(2, 2)
    clone = graph.copy()
    clone.inc(0)
    assert graph != clone


def test_repr_readable():
    graph = DistanceGraph.from_positions([1, 0], K=2)
    assert "0->1:1" in repr(graph)
