"""Tests for the unbounded token game."""

import pytest

from repro.strip import TokenGame


def test_initial_state_all_zero():
    game = TokenGame(3)
    assert game.state() == (0, 0, 0)
    assert game.gaps() == [0, 0]


def test_moves_advance_single_tokens():
    game = TokenGame(3)
    game.move_token(1)
    game.move_token(1)
    game.move_token(2)
    assert game.state() == (0, 2, 1)
    assert game.moves == [1, 1, 2]


def test_gaps_sorted():
    game = TokenGame(3).replay([0] * 5 + [1] * 2)
    assert game.gaps() == [2, 3]  # sorted positions 0, 2, 5


def test_replay_reproduces_state():
    moves = [0, 1, 1, 2, 0, 0]
    a = TokenGame(3).replay(moves)
    b = TokenGame(3).replay(moves)
    assert a.state() == b.state()


def test_rejects_empty_game():
    with pytest.raises(ValueError):
        TokenGame(0)
