"""Property-based validation of Claim 4.1 (the heart of §4).

For any play of the game, three state machines must stay in lock-step:

1. the normalized shrunken token game (positions in [0, K·n]);
2. the sequential distance graph under ``inc(i, G)``;
3. the mod-3K edge-counter representation under ``inc_counters``.

After every single move, the distance graphs derived from all three must be
identical, and the §4.2 invariants must hold.
"""

from hypothesis import given, settings, strategies as st

from repro.strip import (
    DistanceGraph,
    EdgeCounters,
    ShrunkenTokenGame,
    check_graph_invariants,
)

plays = st.tuples(
    st.integers(min_value=2, max_value=5),  # processes
    st.integers(min_value=2, max_value=3),  # K (the protocol needs >= 2)
    st.lists(st.integers(min_value=0, max_value=4), min_size=0, max_size=60),
)


@settings(max_examples=120, deadline=None)
@given(plays)
def test_game_graph_and_counters_stay_equivalent(play):
    n, K, raw_moves = play
    game = ShrunkenTokenGame(n, K)
    graph = DistanceGraph.initial(n, K)
    counters = EdgeCounters(n, K)
    for raw in raw_moves:
        mover = raw % n
        game.move_token(mover)
        graph.inc(mover)
        counters.inc(mover)
        expected = DistanceGraph.from_positions(game.positions, K)
        assert graph == expected, (
            f"sequential inc diverged after move {mover}: "
            f"positions={game.positions}"
        )
        assert counters.graph() == expected, (
            f"counter inc diverged after move {mover}: "
            f"positions={game.positions}"
        )


@settings(max_examples=60, deadline=None)
@given(plays)
def test_graph_invariants_hold_along_any_play(play):
    n, K, raw_moves = play
    graph = DistanceGraph.initial(n, K)
    for raw in raw_moves:
        graph.inc(raw % n)
        assert check_graph_invariants(graph) == []


@settings(max_examples=60, deadline=None)
@given(plays)
def test_leaders_match_game_maxima(play):
    n, K, raw_moves = play
    game = ShrunkenTokenGame(n, K)
    graph = DistanceGraph.initial(n, K)
    for raw in raw_moves:
        mover = raw % n
        game.move_token(mover)
        graph.inc(mover)
        top = max(game.positions)
        expected_leaders = sorted(
            i for i, p in enumerate(game.positions) if p == top
        )
        assert sorted(graph.leaders()) == expected_leaders


@settings(max_examples=60, deadline=None)
@given(plays)
def test_dist_equals_position_difference(play):
    """Property 5: dist(i, j) in the graph = r_i - r_j in the game."""
    n, K, raw_moves = play
    game = ShrunkenTokenGame(n, K)
    graph = DistanceGraph.initial(n, K)
    for raw in raw_moves:
        mover = raw % n
        game.move_token(mover)
        graph.inc(mover)
    for i in range(n):
        for j in range(n):
            if i == j:
                continue
            d = graph.dist(i, j)
            if d != float("-inf"):
                assert d == game.positions[i] - game.positions[j]
