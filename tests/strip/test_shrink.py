"""Tests for shrink_K / normalize_K and the normalized shrunken game."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.strip import (
    ShrunkenTokenGame,
    TokenGame,
    normalize_k,
    shrink_k,
    shrink_normalize,
)
from repro.strip.invariants import check_nonpassive_shrinking

positions_strategy = st.lists(
    st.integers(min_value=0, max_value=50), min_size=1, max_size=6
)
k_strategy = st.integers(min_value=1, max_value=4)


def test_shrink_caps_large_gaps_only():
    # positions 0, 2, 10 with K=3: gap 2 kept, gap 8 -> 3.
    assert shrink_k([0, 2, 10], 3) == [0, 2, 5]


def test_shrink_preserves_small_gaps_exactly():
    assert shrink_k([4, 5, 7], 3) == [4, 5, 7]


def test_shrink_anchors_at_minimum():
    assert shrink_k([100, 7], 2)[1] == 7


def test_shrink_handles_ties():
    assert shrink_k([5, 5, 9], 2) == [5, 5, 7]


def test_normalize_puts_max_at_kn():
    assert normalize_k([0, 2, 5], 3) == [4, 6, 9]  # K·n = 9


def test_shrink_normalize_range():
    result = shrink_normalize([0, 100, 200], 2)
    assert max(result) == 2 * 3
    assert all(0 <= p <= 6 for p in result)


@settings(max_examples=200, deadline=None)
@given(positions_strategy, k_strategy)
def test_shrink_normalize_always_lands_in_bounded_range(positions, K):
    n = len(positions)
    result = shrink_normalize(positions, K)
    assert all(0 <= p <= K * n for p in result)
    assert max(result) == K * n


@settings(max_examples=200, deadline=None)
@given(positions_strategy, k_strategy)
def test_shrink_preserves_order_and_capped_pairwise_distances(positions, K):
    shrunk = shrink_k(positions, K)
    n = len(positions)
    for i in range(n):
        for j in range(n):
            if positions[i] <= positions[j]:
                assert shrunk[i] <= shrunk[j]
            # pairwise distances capped at K agree (one-shot shrink).
            if positions[i] >= positions[j]:
                assert min(positions[i] - positions[j], K) == min(
                    shrunk[i] - shrunk[j], K
                )


@settings(max_examples=100, deadline=None)
@given(positions_strategy, k_strategy)
def test_shrink_is_idempotent(positions, K):
    once = shrink_k(positions, K)
    assert shrink_k(once, K) == once


def test_shrunken_game_tracks_iterated_semantics():
    # A single runaway leader saturates at gap K and stops gaining ground.
    game = ShrunkenTokenGame(2, K=2)
    start = game.positions[0]
    for _ in range(10):
        game.move_token(0)
    assert game.positions[0] - game.positions[1] == 2  # capped at K


def test_shrunken_game_distances_are_underestimates():
    moves = [0] * 6 + [1] * 2
    unbounded = TokenGame(2).replay(moves)
    shrunk = ShrunkenTokenGame.from_unbounded(unbounded, K=2)
    real_gap = unbounded.positions[0] - unbounded.positions[1]
    shrunk_gap = shrunk.positions[0] - shrunk.positions[1]
    assert shrunk_gap <= real_gap


@settings(max_examples=100, deadline=None)
@given(
    st.integers(min_value=2, max_value=4),
    k_strategy,
    st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=40),
)
def test_nonpassive_shrinking_holds_along_any_play(n, K, moves):
    game = ShrunkenTokenGame(n, K)
    for raw in moves:
        mover = raw % n
        before = list(game.positions)
        game.move_token(mover)
        violations = check_nonpassive_shrinking(before, game.positions, mover, K)
        assert violations == []


@settings(max_examples=100, deadline=None)
@given(
    st.integers(min_value=2, max_value=4),
    k_strategy,
    st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=40),
)
def test_shrunken_game_positions_stay_in_range_forever(n, K, moves):
    game = ShrunkenTokenGame(n, K)
    for raw in moves:
        game.move_token(raw % n)
        assert all(0 <= p <= K * n for p in game.positions)


def test_invalid_k_rejected():
    with pytest.raises(ValueError):
        shrink_k([1, 2], 0)
    with pytest.raises(ValueError):
        ShrunkenTokenGame(2, 0)
