"""Tests for the mod-3K edge counter representation (§4.3)."""

import pytest

from repro.strip import EdgeCounters, decode_graph, inc_counters
from repro.strip.edge_counters import IllFormedCounters, cycle_size


def test_cycle_size():
    assert cycle_size(2) == 6
    assert cycle_size(4) == 12


def test_decode_all_zero_is_all_ties():
    graph = decode_graph([[0, 0], [0, 0]], K=2)
    assert graph.weight(0, 1) == 0
    assert graph.weight(1, 0) == 0


def test_decode_simple_lead():
    rows = [[0, 2], [0, 0]]  # e_0[1]=2, e_1[0]=0: 0 leads by 2
    graph = decode_graph(rows, K=2)
    assert graph.weight(0, 1) == 2
    assert not graph.has_edge(1, 0)


def test_decode_wraps_modularly():
    # e_0[1]=1, e_1[0]=5 on a cycle of 6: (1-5) mod 6 = 2 -> 0 leads by 2.
    rows = [[0, 1], [5, 0]]
    graph = decode_graph(rows, K=2)
    assert graph.weight(0, 1) == 2


def test_decode_rejects_ambiguous_pair():
    # d = 3 both ways on a cycle of 6.
    rows = [[0, 3], [0, 0]]
    with pytest.raises(IllFormedCounters):
        decode_graph(rows, K=2)


def test_inc_counters_changes_only_own_row():
    counters = EdgeCounters(3, 2)
    before = [list(r) for r in counters.rows]
    new_row = inc_counters(1, counters.rows, 2)
    assert counters.rows == before  # pure function
    assert new_row != before[1]


def test_inc_increments_mod_cycle():
    counters = EdgeCounters(2, 2)
    for _ in range(7):
        counters.inc(0)
        counters.inc(1)
    # Ties throughout: both rows incremented 7 times, mod 6 -> 1.
    assert counters.rows[0][1] == 7 % 6
    assert counters.rows[1][0] == 7 % 6
    assert counters.graph().weight(0, 1) == 0


def test_runaway_leader_saturates_and_stops_incrementing():
    counters = EdgeCounters(2, 2)
    for _ in range(50):
        counters.inc(0)
    graph = counters.graph()
    assert graph.weight(0, 1) == 2  # capped at K
    # The counter itself stayed within {0..3K-1} by construction.
    assert 0 <= counters.rows[0][1] < 6


def test_trailing_process_catches_up():
    counters = EdgeCounters(2, 2)
    counters.inc(0)
    counters.inc(0)  # 0 leads by 2
    counters.inc(1)
    assert counters.graph().weight(0, 1) == 1
    counters.inc(1)
    assert counters.graph().weight(0, 1) == 0
    counters.inc(1)  # overtakes
    assert counters.graph().weight(1, 0) == 1


def test_max_counter_bounded_forever():
    counters = EdgeCounters(3, 2)
    import random

    rng = random.Random(7)
    for _ in range(500):
        counters.inc(rng.randrange(3))
        assert counters.max_counter() < 6


def test_shrinking_respected_via_max_paths():
    """Three processes: 0 races ahead, 2 trails far; when 2 catches up the
    saturated shortcut edge (0, 2) must not be decremented (it is not on
    the maximum path), matching the shrunken game."""
    counters = EdgeCounters(3, 2)
    # Build positions (4, 2, 0) step by step, never letting any gap exceed
    # K so no intermediate shrink interferes.
    for mover in (0, 0, 1, 0, 1, 0):
        counters.inc(mover)
    graph = counters.graph()
    assert graph.weight(0, 2) == 2
    assert graph.weight(1, 2) == 2
    assert graph.weight(0, 1) == 2
    counters.inc(2)
    graph = counters.graph()
    # 2 closed the gap to 1 (on the max path) but not the capped shortcut.
    assert graph.weight(1, 2) == 1
    assert graph.weight(0, 2) == 2
