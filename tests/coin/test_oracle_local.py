"""Tests for the oracle (CIL) coin and the local (Abrahamson) coin."""

import statistics

from repro.coin import HEADS, TAILS, OracleCoin, coin_flipper_program, local_coin_flip
from repro.runtime import RandomScheduler, Simulation


def test_oracle_coin_perfect_agreement():
    for seed in range(20):
        sim = Simulation(4, RandomScheduler(seed=seed), seed=seed)
        coin = OracleCoin(sim, "oc", 4)
        sim.spawn_all(coin_flipper_program(coin))
        outcome = sim.run()
        assert len(set(outcome.decisions.values())) == 1


def test_oracle_outcome_fixed_by_first_toucher():
    sim = Simulation(2, RandomScheduler(seed=0), seed=0)
    coin = OracleCoin(sim, "oc", 2)

    def factory(pid):
        def body(ctx):
            first = yield from coin.read_value(ctx)
            second = yield from coin.read_value(ctx)
            return (first, second)

        return body

    sim.spawn_all(factory)
    outcome = sim.run()
    values = {v for pair in outcome.decisions.values() for v in pair}
    assert len(values) == 1


def test_oracle_outcomes_vary_across_seeds():
    outcomes = set()
    for seed in range(20):
        sim = Simulation(1, seed=seed)
        coin = OracleCoin(sim, "oc", 1)
        sim.spawn_all(coin_flipper_program(coin))
        outcomes.add(sim.run().decisions[0])
    assert outcomes == {HEADS, TAILS}


def test_oracle_walk_step_is_noop():
    sim = Simulation(1, seed=0)
    coin = OracleCoin(sim, "oc", 1)

    def program(ctx):
        yield from coin.walk_step(ctx)
        return "ok"

    sim.spawn(0, program)
    assert sim.run().decisions[0] == "ok"
    assert coin.true_walk_value() == 0
    assert coin.counter_of(0) == 0


def test_local_coin_is_fair_and_deterministic_per_seed():
    sim = Simulation(1, seed=9)
    ctx = sim.context(0)
    draws = [local_coin_flip(ctx) for _ in range(2000)]
    rate = statistics.mean(draws)
    assert 0.45 < rate < 0.55
    ctx2 = Simulation(1, seed=9).context(0)
    assert [local_coin_flip(ctx2) for _ in range(10)] == draws[:10]


def test_local_coins_independent_across_pids():
    sim = Simulation(2, seed=3)
    a = [local_coin_flip(sim.context(0)) for _ in range(50)]
    b = [local_coin_flip(sim.context(1)) for _ in range(50)]
    assert a != b
