"""Tests for the pure coin decision logic (§3's ``coin_value``)."""

import pytest

from repro.coin.logic import (
    HEADS,
    TAILS,
    UNDECIDED,
    coin_value,
    counter_range,
    default_m,
    predicted_disagreement_bound,
    predicted_expected_steps,
    walk_step_value,
    walk_value,
)


def test_walk_value_sums_counters():
    assert walk_value([1, -2, 3]) == 2
    assert walk_value([]) == 0


def test_thresholds():
    n, b = 4, 2  # barrier at ±8
    assert coin_value(0, [3, 3, 2, 0], n, b, None) is UNDECIDED  # sum 8 = b·n
    assert coin_value(0, [3, 3, 3, 1], n, b, None) is HEADS  # sum 10 > 8
    assert coin_value(0, [-3, -3, -3, -1], n, b, None) is TAILS
    assert coin_value(0, [8, 0, 0, 0], n, b, None) is UNDECIDED  # exactly b·n


def test_overflow_rule_beats_thresholds():
    # Own counter out of {-m..m} returns heads even if the walk says tails.
    n, b, m = 2, 2, 5
    assert coin_value(6, [-100, 6], n, b, m) is HEADS
    assert coin_value(-6, [-100, -6], n, b, m) is HEADS
    assert coin_value(5, [-100, 5], n, b, m) is TAILS  # in range: walk rules


def test_unbounded_mode_ignores_overflow_rule():
    assert coin_value(10**9, [-(10**10), 10**9], 2, 2, None) is TAILS


def test_walk_step_value_moves_by_one():
    assert walk_step_value(0, True, None) == 1
    assert walk_step_value(0, False, None) == -1
    assert walk_step_value(-3, True, 5) == -2


def test_walk_step_value_range_check():
    low, high = counter_range(5)
    assert low == -6 and high == 6
    assert walk_step_value(5, True, 5) == 6  # to m+1: allowed
    with pytest.raises(OverflowError):
        walk_step_value(6, True, 5)  # beyond m+1: protocol bug
    with pytest.raises(OverflowError):
        walk_step_value(-6, False, 5)


def test_default_m_matches_lemma_shape():
    # m = (f_factor·b·n)²
    assert default_m(2, 4) == (4 * 2 * 4) ** 2
    assert default_m(3, 2, f_factor=2) == (2 * 3 * 2) ** 2


def test_predictions_monotone():
    assert predicted_expected_steps(2, 4) == 9 * 16
    assert predicted_disagreement_bound(2) > predicted_disagreement_bound(8)
