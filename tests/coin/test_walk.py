"""Tests for the random-walk shared coins (unbounded and bounded)."""

import statistics

from repro.coin import (
    BoundedWalkSharedCoin,
    HEADS,
    TAILS,
    WalkSharedCoin,
    coin_flipper_program,
)
from repro.runtime import (
    RandomScheduler,
    RoundRobinScheduler,
    Simulation,
    WalkBalancingAdversary,
)


def _run_coin(coin_cls, n=3, b=2, seed=0, scheduler=None, **kwargs):
    sim = Simulation(n, scheduler or RandomScheduler(seed=seed), seed=seed)
    coin = coin_cls(sim, "coin", n, b_barrier=b, **kwargs)
    sim.spawn_all(coin_flipper_program(coin))
    outcome = sim.run(5_000_000)
    return coin, outcome


def test_all_processes_decide_some_value():
    coin, outcome = _run_coin(WalkSharedCoin)
    assert set(outcome.decisions) == {0, 1, 2}
    assert all(v in (HEADS, TAILS) for v in outcome.decisions.values())


def test_walk_moves_by_single_steps():
    sim = Simulation(1, RoundRobinScheduler(), seed=3)
    coin = WalkSharedCoin(sim, "coin", 1, b_barrier=2)

    def program(ctx):
        for _ in range(5):
            yield from coin.walk_step(ctx)
        return coin.true_walk_value()

    sim.spawn(0, program)
    value = sim.run().decisions[0]
    assert abs(value) <= 5 and value % 2 == 5 % 2
    assert coin.total_steps == 5


def test_decided_value_matches_final_walk_side():
    for seed in range(10):
        coin, outcome = _run_coin(WalkSharedCoin, seed=seed)
        values = set(outcome.decisions.values())
        if len(values) == 1:
            side = coin.true_walk_value()
            if values == {HEADS}:
                assert side > 0
            elif values == {TAILS}:
                assert side < 0


def test_agreement_is_overwhelming_under_random_scheduling():
    disagreements = 0
    for seed in range(60):
        _, outcome = _run_coin(BoundedWalkSharedCoin, seed=seed)
        if len(set(outcome.decisions.values())) > 1:
            disagreements += 1
    assert disagreements <= 6  # well under the 1/b = 0.5 bound


def test_bounded_counters_never_leave_legal_range():
    for seed in range(15):
        coin, _ = _run_coin(BoundedWalkSharedCoin, seed=seed, m_bound=10)
        assert coin.max_counter_magnitude() <= 11  # m + 1


def test_tiny_m_forces_overflow_and_heads():
    # With m=0 every first step overflows a counter; overflowing processes
    # must return heads.
    coin, outcome = _run_coin(BoundedWalkSharedCoin, n=2, seed=4, m_bound=0)
    for pid, value in outcome.decisions.items():
        if abs(coin.counter_of(pid)) > 0:
            assert value is HEADS


def test_counter_bits_reflects_m():
    sim = Simulation(2, seed=0)
    coin = BoundedWalkSharedCoin(sim, "c", 2, b_barrier=2, m_bound=100)
    assert coin.counter_bits() == (203).bit_length()


def test_adversary_prolongs_but_cannot_prevent_decision():
    flips_random, flips_adv = [], []
    for seed in range(8):
        coin, _ = _run_coin(BoundedWalkSharedCoin, n=3, seed=seed)
        flips_random.append(coin.total_steps)
        coin, outcome = _run_coin(
            BoundedWalkSharedCoin,
            n=3,
            seed=seed,
            scheduler=WalkBalancingAdversary("coin", seed=seed),
        )
        flips_adv.append(coin.total_steps)
        assert len(outcome.decisions) == 3  # everyone still decided
    assert statistics.mean(flips_adv) >= statistics.mean(flips_random)


def test_expected_flips_scale_quadratically_in_n():
    means = []
    for n in (2, 4):
        flips = []
        for seed in range(10):
            coin, _ = _run_coin(BoundedWalkSharedCoin, n=n, seed=seed)
            flips.append(coin.total_steps)
        means.append(statistics.mean(flips))
    # Doubling n should multiply flips by roughly 4 (allow slack: > 2x).
    assert means[1] > 2 * means[0]


def test_disagreement_adversary_splits_but_respects_the_bound():
    from repro.runtime.adversary import CoinDisagreementAdversary

    splits = 0
    for seed in range(40):
        coin, outcome = _run_coin(
            BoundedWalkSharedCoin,
            n=4,
            b=2,
            seed=seed,
            scheduler=CoinDisagreementAdversary("coin", seed=seed),
        )
        assert len(outcome.decisions) == 4  # everyone still decides
        if len(set(outcome.decisions.values())) > 1:
            splits += 1
    # The attack succeeds sometimes (unlike the balancing adversary)...
    assert splits >= 1
    # ...but stays under Lemma 3.1's 1/b = 0.5 bound with slack.
    assert splits / 40 <= 0.5
