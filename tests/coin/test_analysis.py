"""Tests for the random-walk theory helpers (Lemmas 3.1-3.4 shapes)."""

import random

import pytest

from repro.coin.analysis import (
    absorption_expected_steps,
    agreement_probability_lower_bound,
    disagreement_probability_upper_bound,
    hitting_probability_asymmetric,
    stay_inside_bound,
    stay_inside_probability,
)


def test_absorption_expected_steps_exact_quadratic():
    assert absorption_expected_steps(1) == 1
    assert absorption_expected_steps(10) == 100


def test_absorption_matches_monte_carlo():
    rng = random.Random(0)
    barrier = 5
    times = []
    for _ in range(2000):
        pos = steps = 0
        while abs(pos) < barrier:
            pos += 1 if rng.random() < 0.5 else -1
            steps += 1
        times.append(steps)
    mean = sum(times) / len(times)
    assert abs(mean - barrier**2) < 3  # E = 25, generous tolerance


def test_stay_inside_probability_edge_cases():
    assert stay_inside_probability(0, 3) == 1.0
    assert stay_inside_probability(5, 0) == 0.0
    # With barrier 1 the first step always escapes.
    assert stay_inside_probability(1, 1) == 0.0


def test_stay_inside_probability_decreases_with_steps():
    p_short = stay_inside_probability(10, 4)
    p_long = stay_inside_probability(100, 4)
    assert p_long < p_short < 1.0


def test_stay_inside_probability_matches_monte_carlo():
    rng = random.Random(1)
    steps, barrier = 30, 4
    stayed = 0
    trials = 4000
    for _ in range(trials):
        pos = 0
        ok = True
        for _ in range(steps):
            pos += 1 if rng.random() < 0.5 else -1
            if abs(pos) >= barrier:
                ok = False
                break
        stayed += ok
    exact = stay_inside_probability(steps, barrier)
    assert abs(stayed / trials - exact) < 0.03


def test_stay_inside_bound_dominates_exact_value():
    # Lemma 3.3 shape: C·barrier/√steps upper-bounds the exact probability.
    for steps in (25, 100, 400):
        for barrier in (2, 4, 8):
            assert stay_inside_probability(steps, barrier) <= stay_inside_bound(
                steps, barrier
            ) + 1e-9


def test_hitting_probability_gamblers_ruin():
    assert hitting_probability_asymmetric(0, -10, 10) == pytest.approx(0.5)
    assert hitting_probability_asymmetric(5, -10, 10) == pytest.approx(0.75)
    with pytest.raises(ValueError):
        hitting_probability_asymmetric(20, -10, 10)


def test_lemma_31_bounds():
    assert agreement_probability_lower_bound(2) == pytest.approx(0.25)
    assert disagreement_probability_upper_bound(2) == pytest.approx(0.5)
    assert disagreement_probability_upper_bound(10) == pytest.approx(0.1)
    # b = 1 gives no guarantee at all.
    assert agreement_probability_lower_bound(1) == 0.0
    assert disagreement_probability_upper_bound(1) == 1.0


def test_bounds_tighten_with_b():
    values = [disagreement_probability_upper_bound(b) for b in (2, 4, 8, 16)]
    assert values == sorted(values, reverse=True)
    assert values[-1] == pytest.approx(1 / 16)
