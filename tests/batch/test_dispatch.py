"""The batch dispatch layer: validation, grouping, and entry-point identity.

Batching is a pure execution-strategy knob — these tests pin that it is
*observably absent* from every result: sweep ledger bytes, fuzz reports
and repeat_runs values are byte/value-identical at any batch size, flat
task indices survive the grouping, and the ``batch_size``/``REPRO_BATCH``
knobs reject nonsense with messages that name the knob.
"""

import dataclasses

import pytest

from repro.analysis.experiment import repeat_runs
from repro.batch import (
    BATCH_ENV,
    make_batch_task,
    resolve_batch_size,
    run_tasks_batched,
)
from repro.consensus import AdsConsensus
from repro.obs.ledger import RunLedger
from repro.runtime import RandomScheduler
from repro.verify.fuzz import fuzz_consensus
from repro.workloads import build_sweep


# ---------------------------------------------------------------------------
# Knob validation
# ---------------------------------------------------------------------------


def test_resolve_none_without_env(monkeypatch):
    monkeypatch.delenv(BATCH_ENV, raising=False)
    assert resolve_batch_size(None) is None
    monkeypatch.setenv(BATCH_ENV, "   ")
    assert resolve_batch_size(None) is None


def test_resolve_reads_env(monkeypatch):
    monkeypatch.setenv(BATCH_ENV, "16")
    assert resolve_batch_size(None) == 16
    # An explicit argument wins over the environment.
    assert resolve_batch_size(4) == 4


@pytest.mark.parametrize("raw", ["zero", "4.5", "1e3"])
def test_env_non_integer_names_the_variable(monkeypatch, raw):
    monkeypatch.setenv(BATCH_ENV, raw)
    with pytest.raises(ValueError, match=BATCH_ENV):
        resolve_batch_size(None)


@pytest.mark.parametrize("raw", ["0", "-3"])
def test_env_non_positive_names_the_variable(monkeypatch, raw):
    monkeypatch.setenv(BATCH_ENV, raw)
    with pytest.raises(ValueError, match=BATCH_ENV):
        resolve_batch_size(None)


@pytest.mark.parametrize("bad", [0, -1])
def test_argument_must_be_positive(bad):
    with pytest.raises(ValueError, match=">= 1"):
        resolve_batch_size(bad)


@pytest.mark.parametrize("bad", [True, 4.0, "4"])
def test_argument_must_be_an_int(bad):
    with pytest.raises(TypeError, match="batch_size"):
        resolve_batch_size(bad)


@pytest.mark.parametrize("raw", ["nope", "2.5"])
def test_cli_batch_arg_rejects_non_integers(raw):
    import argparse

    from repro.cli import _batch_arg

    with pytest.raises(argparse.ArgumentTypeError, match="not an integer"):
        _batch_arg(raw)


@pytest.mark.parametrize("raw", ["0", "-2"])
def test_cli_batch_arg_rejects_non_positive(raw):
    import argparse

    from repro.cli import _batch_arg

    with pytest.raises(argparse.ArgumentTypeError, match=">= 1"):
        _batch_arg(raw)


# ---------------------------------------------------------------------------
# Grouping mechanics
# ---------------------------------------------------------------------------


def test_flat_indices_and_order():
    seen = []
    partial = run_tasks_batched(
        lambda task: task * 10,
        list(range(7)),
        batch_size=3,
        workers=0,
        on_result=lambda index, value: seen.append((index, value)),
    )
    assert partial.results == [0, 10, 20, 30, 40, 50, 60]
    assert sorted(seen) == [(i, i * 10) for i in range(7)]
    assert not partial.errors


def test_group_error_reanchored_at_flat_index():
    def boom(task):
        if task == 5:
            raise RuntimeError("cell 5 exploded")
        return task

    partial = run_tasks_batched(boom, list(range(8)), batch_size=3, workers=0)
    assert len(partial.errors) == 1
    # Task 5 lives in group 1 (tasks 3..5): the error anchors at the
    # group's first flat index, and the whole group is a None hole.
    assert partial.errors[0].index == 3
    assert partial.results[3:6] == [None, None, None]
    assert partial.results[:3] == [0, 1, 2]
    assert partial.results[6:] == [6, 7]


def test_make_batch_task_without_hooks_is_plain_map():
    run_batch = make_batch_task(lambda task: task + 1)
    assert run_batch([1, 2, 3]) == [2, 3, 4]


def test_make_batch_task_hook_refusal_falls_back():
    calls = []

    def run_task(task):
        calls.append(task)
        return ("serial", task)

    run_task.batch_lane = lambda task: None  # refuse every task
    run_task.batch_value = lambda task, lane: ("fused", task)
    run_batch = make_batch_task(run_task)
    assert run_batch([7, 8]) == [("serial", 7), ("serial", 8)]
    assert calls == [7, 8]


def test_progress_counts_flat_tasks():
    ticks = []
    run_tasks_batched(
        lambda task: task,
        list(range(5)),
        batch_size=2,
        workers=0,
        progress=lambda done, total: ticks.append((done, total)),
    )
    assert ticks[-1] == (5, 5)
    assert all(total == 5 for _, total in ticks)


# ---------------------------------------------------------------------------
# Entry-point identity: batching must be invisible in the results
# ---------------------------------------------------------------------------


def _sweep_points(tmp_path, tag, batch_size, workers=0):
    ledger = RunLedger(tmp_path / f"{tag}.jsonl")
    sweep = build_sweep(
        n_values=(2, 3), reps=4, ledger=ledger, batch_size=batch_size
    )
    points = sweep.execute(workers=workers)
    return points, (tmp_path / f"{tag}.jsonl").read_bytes()


@pytest.mark.parametrize("batch_size", [1, 4, 16])
def test_sweep_ledger_bytes_identical_at_any_batch_size(tmp_path, batch_size):
    serial_points, serial_bytes = _sweep_points(tmp_path, "serial", None)
    batched_points, batched_bytes = _sweep_points(
        tmp_path, f"batched{batch_size}", batch_size
    )
    assert batched_points == serial_points
    assert batched_bytes == serial_bytes


def test_sweep_batching_composes_with_workers(tmp_path):
    serial_points, serial_bytes = _sweep_points(tmp_path, "serial", None)
    batched_points, batched_bytes = _sweep_points(
        tmp_path, "batched-pool", 4, workers=2
    )
    assert batched_points == serial_points
    assert batched_bytes == serial_bytes


def test_sweep_reads_env_knob(tmp_path, monkeypatch):
    serial_points, _ = _sweep_points(tmp_path, "serial", None)
    monkeypatch.setenv(BATCH_ENV, "4")
    env_points, _ = _sweep_points(tmp_path, "env", None)
    assert env_points == serial_points


def test_repeat_runs_identical_when_batched():
    def run_once(seed):
        return float(
            AdsConsensus()
            .run(
                [seed % 2, (seed + 1) % 2],
                scheduler=RandomScheduler(seed=seed),
                seed=seed,
            )
            .total_steps
        )

    seeds = range(9)
    serial = repeat_runs(run_once, seeds, workers=0)
    batched = repeat_runs(run_once, seeds, workers=0, batch_size=4)
    assert batched == serial


def test_fuzz_report_identical_when_batched():
    kwargs = dict(
        n_values=(2, 3),
        runs_per_cell=3,
        schedulers={"random": lambda seed: RandomScheduler(seed=seed)},
        crash_probability=0.0,
        workers=0,
    )
    serial = fuzz_consensus(AdsConsensus, **kwargs)
    batched = fuzz_consensus(AdsConsensus, batch_size=4, **kwargs)
    assert dataclasses.asdict(batched) == dataclasses.asdict(serial)
    assert batched.ok
