"""Lane RNG stream identity with the serial ``RandomScheduler``.

The engine inlines ``RandomScheduler.choose``'s rejection-sampling loop
over its own runnable list.  These tests pin the two properties that make
that sound: (1) the granted-pid sequence of a lane equals what a traced
serial run records, draw for draw; (2) scheduler streams are strictly
per-lane, so lanes retiring mid-batch cannot shift a surviving lane's
draws.
"""

import pytest

from repro.batch import LaneSpec, run_lanes
from repro.consensus import AdsConsensus
from repro.runtime import RandomScheduler, TracingScheduler


def traced_schedule(inputs, seed):
    tracer = TracingScheduler(RandomScheduler(seed=seed), history=10**7)
    AdsConsensus().run(list(inputs), scheduler=tracer, seed=seed)
    return list(tracer.recent)


@pytest.mark.parametrize("seed", range(8))
def test_lane_schedule_equals_serial_draw_sequence(seed):
    inputs = tuple((seed + i) % 2 for i in range(3))
    (lane,) = run_lanes([LaneSpec(inputs=inputs, seed=seed)], record_schedule=True)
    assert lane.fallback is None
    assert lane.schedule == traced_schedule(inputs, seed)


def test_retirement_order_cannot_perturb_surviving_lanes():
    # The same lane, alone vs sandwiched between lanes that retire much
    # earlier/later, must be granted the identical pid sequence: lane RNG
    # streams never observe the rest of the batch.
    spec = LaneSpec(inputs=(1, 0, 1, 0), seed=42)
    (alone,) = run_lanes([spec], record_schedule=True)
    neighbours = [
        LaneSpec(inputs=(s % 2, (s + 1) % 2), seed=s) for s in range(6)
    ]
    batch = run_lanes(
        neighbours[:3] + [spec] + neighbours[3:], record_schedule=True
    )
    sandwiched = batch[3]
    assert sandwiched.fallback is None
    assert sandwiched.schedule == alone.schedule
    assert sandwiched.decisions == alone.decisions
    assert sandwiched.total_steps == alone.total_steps


def test_schedule_not_recorded_by_default():
    (lane,) = run_lanes([LaneSpec(inputs=(0, 1), seed=0)])
    assert lane.schedule is None
