"""Bit-identity of the struct-of-arrays engine against the serial runtime.

The engine's whole contract is "same bits, fewer dispatch layers": every
lane must reproduce the serial ``AdsConsensus().run(...)`` outcome —
decisions, total steps, per-pid step/round/flip/scan counts — exactly,
and anything it cannot interpret must surface as a ``fallback`` reason
rather than an approximated result.
"""

import pytest

from repro.batch import LaneSpec, run_lanes
from repro.consensus import AdsConsensus
from repro.runtime import RandomScheduler

SEEDS = range(12)


def serial_run(inputs, seed, max_steps=2_000_000):
    return AdsConsensus().run(
        list(inputs),
        scheduler=RandomScheduler(seed=seed),
        seed=seed,
        max_steps=max_steps,
    )


def lane_spec(n, seed, max_steps=2_000_000):
    return LaneSpec(
        inputs=tuple((seed + i) % 2 for i in range(n)),
        seed=seed,
        max_steps=max_steps,
    )


@pytest.mark.parametrize("n", [2, 3, 4, 5])
def test_lane_outcomes_bit_identical_to_serial(n):
    specs = [lane_spec(n, seed) for seed in SEEDS]
    lanes = run_lanes(specs)
    for seed, lane in zip(SEEDS, lanes):
        assert lane.fallback is None, (seed, lane.fallback)
        run = serial_run(lane.spec.inputs, seed)
        assert lane.decisions == run.decisions, seed
        assert lane.total_steps == run.total_steps, seed
        assert lane.steps_by_pid == run.outcome.steps_by_pid, seed
        assert lane.rounds_by_pid == run.stats["rounds_by_pid"], seed
        assert lane.flips_by_pid == run.stats["flips_by_pid"], seed
        assert lane.scans_by_pid == run.stats["scans_by_pid"], seed
        assert lane.max_rounds() == run.max_rounds(), seed


def test_mixed_sizes_one_batch():
    # Lanes of different n interleave in one batch; each still matches
    # its own serial run (retirement of small lanes must not perturb the
    # survivors — their RNG streams are per-lane).
    specs = [lane_spec(n, seed) for n in (2, 4, 3) for seed in range(4)]
    for spec, lane in zip(specs, run_lanes(specs)):
        assert lane.fallback is None
        run = serial_run(spec.inputs, spec.seed)
        assert lane.decisions == run.decisions
        assert lane.total_steps == run.total_steps


def test_chunk_size_is_invisible():
    specs = [lane_spec(3, seed) for seed in range(6)]
    coarse = run_lanes(specs)
    fine = run_lanes(specs, chunk=7)
    for a, b in zip(coarse, fine):
        assert a.decisions == b.decisions
        assert a.total_steps == b.total_steps
        assert a.steps_by_pid == b.steps_by_pid


def test_single_process_lane_falls_back():
    (lane,) = run_lanes([LaneSpec(inputs=(1,), seed=0)])
    assert lane.fallback is not None


def test_non_binary_inputs_fall_back():
    (lane,) = run_lanes([LaneSpec(inputs=(0, 2, 1), seed=0)])
    assert lane.fallback is not None


def test_exhausted_budget_falls_back():
    (lane,) = run_lanes([lane_spec(3, 0, max_steps=10)])
    assert lane.fallback is not None
    # A sibling lane with a real budget is untouched by the fallback.
    strict, healthy = run_lanes([lane_spec(3, 0, max_steps=10), lane_spec(3, 0)])
    assert strict.fallback is not None
    assert healthy.fallback is None
    assert healthy.total_steps == serial_run(healthy.spec.inputs, 0).total_steps


def test_results_keep_submission_order():
    specs = [lane_spec(3, seed) for seed in (5, 1, 9)]
    lanes = run_lanes(specs)
    assert [lane.spec.seed for lane in lanes] == [5, 1, 9]
