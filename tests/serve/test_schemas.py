"""Spec validation and job identity (the service's content addressing)."""

import pytest

from repro.serve.schemas import (
    JOB_KINDS,
    PARAM_DEFAULTS,
    SpecError,
    job_fingerprint,
    validate_spec,
)
from repro.workloads import SWEEP_DEFAULTS


def test_empty_sweep_spec_gets_the_cli_defaults():
    spec = validate_spec({"kind": "sweep"})
    assert spec["params"] == SWEEP_DEFAULTS
    assert spec["priority"] == "normal"


@pytest.mark.parametrize("kind", JOB_KINDS)
def test_every_kind_validates_with_defaults(kind):
    spec = validate_spec({"kind": kind})
    assert spec["kind"] == kind
    assert spec["params"] == PARAM_DEFAULTS[kind]


def test_overrides_merge_over_defaults():
    spec = validate_spec(
        {"kind": "sweep", "params": {"n_values": [5], "reps": 2}}
    )
    assert spec["params"]["n_values"] == [5]
    assert spec["params"]["reps"] == 2
    assert spec["params"]["protocol"] == SWEEP_DEFAULTS["protocol"]


@pytest.mark.parametrize(
    "payload, fragment",
    [
        (None, "JSON object"),
        ({"kind": "nope"}, "kind must be one of"),
        ({"kind": "sweep", "extra": 1}, "unknown spec keys"),
        ({"kind": "sweep", "priority": "urgent"}, "priority must be"),
        ({"kind": "sweep", "params": {"nope": 1}}, "unknown sweep params"),
        ({"kind": "sweep", "params": {"reps": 0}}, "reps must be >= 1"),
        ({"kind": "sweep", "params": {"reps": True}}, "must be an integer"),
        ({"kind": "sweep", "params": {"n_values": []}}, "n_values"),
        ({"kind": "sweep", "params": {"n_values": [2, "x"]}}, "n_values"),
        ({"kind": "sweep", "params": {"protocol": "nope"}}, "protocol"),
        ({"kind": "sweep", "params": {"scheduler": "nope"}}, "scheduler"),
        (
            {"kind": "fuzz", "params": {"crash_probability": 1.5}},
            "must be in [0, 1]",
        ),
        ({"kind": "campaign", "params": {"seed": -1}}, "seed must be >= 0"),
    ],
)
def test_invalid_specs_are_refused_with_a_reason(payload, fragment):
    with pytest.raises(SpecError) as excinfo:
        validate_spec(payload)
    assert fragment in str(excinfo.value)


def test_fingerprint_is_canonical_and_code_versioned():
    a = validate_spec({"kind": "sweep", "params": {"reps": 2, "seed_base": 0}})
    b = validate_spec({"kind": "sweep", "params": {"seed_base": 0, "reps": 2}})
    assert job_fingerprint(a, code="c1") == job_fingerprint(b, code="c1")
    assert job_fingerprint(a, code="c1") != job_fingerprint(a, code="c2")
    different = validate_spec({"kind": "sweep", "params": {"reps": 3}})
    assert job_fingerprint(a, code="c1") != job_fingerprint(different, code="c1")


def test_fingerprint_ignores_priority():
    normal = validate_spec({"kind": "sweep"})
    critical = validate_spec({"kind": "sweep", "priority": "critical"})
    assert job_fingerprint(normal, code="c1") == job_fingerprint(
        critical, code="c1"
    )
