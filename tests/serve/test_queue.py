"""The persistent job queue: transitions, replay, restart requeue."""

import json

import pytest

from repro.serve.queue import Job, JobLogCorruption, JobQueue, JobStates

SPEC = {"kind": "sweep", "priority": "normal", "params": {"reps": 1}}


def test_lifecycle_queued_running_done(tmp_path):
    queue = JobQueue(tmp_path / "jobs.jsonl")
    queue.submit("j1", SPEC)
    assert queue.depth() == 1
    job = queue.claim()
    assert job is not None and job.id == "j1"
    assert job.state == JobStates.RUNNING and job.attempts == 1
    assert queue.claim() is None  # nothing else queued
    queue.finish("j1", {"ok": True})
    done = queue.get("j1")
    assert done.state == JobStates.DONE
    assert done.result == {"ok": True}


def test_claim_is_fifo_by_submission_order(tmp_path):
    queue = JobQueue(tmp_path / "jobs.jsonl")
    for job_id in ("a", "b", "c"):
        queue.submit(job_id, SPEC)
    assert [queue.claim().id for _ in range(3)] == ["a", "b", "c"]


def test_log_replay_restores_state_and_results(tmp_path):
    path = tmp_path / "jobs.jsonl"
    queue = JobQueue(path)
    queue.submit("done-job", SPEC)
    queue.claim()
    queue.finish("done-job", {"table": [1, 2]})
    queue.submit("failed-job", SPEC)
    queue.claim()
    queue.fail("failed-job", "boom")
    queue.submit("shed-job", SPEC)
    queue.shed("shed-job", "budget exhausted")

    reloaded = JobQueue(path)
    assert reloaded.get("done-job").state == JobStates.DONE
    assert reloaded.get("done-job").result == {"table": [1, 2]}
    assert reloaded.get("failed-job").state == JobStates.FAILED
    assert reloaded.get("failed-job").error == "boom"
    assert reloaded.get("shed-job").state == JobStates.SHED
    assert reloaded.get("shed-job").reason == "budget exhausted"


def test_running_jobs_requeue_on_reload(tmp_path):
    path = tmp_path / "jobs.jsonl"
    queue = JobQueue(path)
    queue.submit("j1", SPEC)
    queue.claim()  # RUNNING when the "server" dies

    reloaded = JobQueue(path)
    job = reloaded.get("j1")
    assert job.state == JobStates.QUEUED
    assert reloaded.wake.is_set()
    # The requeue is itself an audited log event.
    events = [
        json.loads(line)
        for line in path.read_text().splitlines()
    ]
    assert events[-1]["state"] == JobStates.QUEUED
    assert "restart" in events[-1]["reason"]


def test_readonly_reload_does_not_mutate_the_log(tmp_path):
    path = tmp_path / "jobs.jsonl"
    queue = JobQueue(path)
    queue.submit("j1", SPEC)
    queue.claim()
    before = path.read_bytes()
    reloaded = JobQueue(path, requeue_running=False)
    assert reloaded.get("j1").state == JobStates.RUNNING
    assert path.read_bytes() == before


def test_requeue_only_applies_to_terminal_resubmittable_states(tmp_path):
    queue = JobQueue(tmp_path / "jobs.jsonl")
    queue.submit("j1", SPEC)
    queue.claim()
    queue.fail("j1", "boom")
    assert queue.requeue("j1").state == JobStates.QUEUED
    queue.claim()
    queue.finish("j1", {})
    assert queue.requeue("j1").state == JobStates.DONE  # DONE stays DONE


def test_torn_trailing_line_is_tolerated(tmp_path):
    path = tmp_path / "jobs.jsonl"
    queue = JobQueue(path)
    queue.submit("j1", SPEC)
    with open(path, "a") as handle:
        handle.write('{"event": "state", "job": "j1", "sta')  # torn append
    reloaded = JobQueue(path)
    assert reloaded.get("j1").state == JobStates.QUEUED


def test_midfile_corruption_reports_file_and_line(tmp_path):
    path = tmp_path / "jobs.jsonl"
    queue = JobQueue(path)
    queue.submit("j1", SPEC)
    queue.submit("j2", SPEC)
    lines = path.read_text().splitlines()
    lines[0] = "garbage{{{"
    path.write_text("\n".join(lines) + "\n")
    with pytest.raises(JobLogCorruption, match=rf"{path}:1:"):
        JobQueue(path)


def test_invalid_event_reports_file_and_line(tmp_path):
    path = tmp_path / "jobs.jsonl"
    path.write_text('{"event": "teleport", "job": "j1"}\n')
    with pytest.raises(JobLogCorruption, match=rf"{path}:1:"):
        JobQueue(path)


def test_snapshot_shape():
    job = Job(id="abc", spec=dict(SPEC), state=JobStates.FAILED, error="x")
    snapshot = job.snapshot()
    assert snapshot["id"] == "abc"
    assert snapshot["kind"] == "sweep"
    assert snapshot["priority"] == "normal"
    assert snapshot["state"] == JobStates.FAILED
    assert snapshot["error"] == "x"
    assert "result" not in snapshot  # served by /jobs/{id}/result only
