"""SSE integration tests: live streams against a real server socket.

The edge cases that matter operationally:

- a full consume sees ``accepted`` first, ``progress`` frames with
  done/total, and exactly one terminal event;
- a client that disconnects mid-stream must not wedge the dispatcher
  thread (subsequent jobs still run) and its broker subscription must
  be reaped;
- heartbeats keep flowing on a quiet stream (job parked in the queue);
- the end-to-end trace proof: one job's trace records reconstruct into
  a Chrome trace with the queue-wait → dispatch → task → checkpoint
  span chain via the *existing* exporter.
"""

import http.client
import json
import threading
import time

import pytest

from repro.obs.export import trace_to_chrome
from repro.serve import ServeClient, ServeError, build_server
from repro.serve.telemetry import job_trace_to_trace, load_job_trace

SWEEP_PARAMS = {"n_values": [2, 3], "reps": 3, "max_steps": 100_000}


@pytest.fixture(autouse=True)
def _pinned_code_version(monkeypatch):
    monkeypatch.setenv("REPRO_CODE_VERSION", "test-events-v1")


@pytest.fixture
def server(tmp_path):
    srv = build_server(
        port=0,
        state_dir=str(tmp_path / "state"),
        workers=1,
        heartbeat=0.1,  # fast keep-alives so disconnects surface quickly
    )
    srv.start()
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.stop()
    thread.join(timeout=5)


@pytest.fixture
def client(server):
    return ServeClient(server.url)


def test_full_stream_has_accepted_progress_and_one_terminal(server, client):
    job = client.submit("sweep", SWEEP_PARAMS)
    events = list(client.stream_events(job["id"], timeout=60))
    names = [e["event"] for e in events]
    assert names[0] == "accepted"
    assert events[0]["data"]["id"] == job["id"]
    progress = [e["data"] for e in events if e["event"] == "progress"]
    assert progress, f"no progress frames in {names}"
    assert progress[-1] == {"id": job["id"], "done": 6, "total": 6}
    dones = [d["done"] for d in progress]
    assert dones == sorted(dones)  # monotone progress
    terminals = [n for n in names if n in ("done", "failed", "shed")]
    assert terminals == ["done"]
    assert names[-1] == "done"  # stream ends right after the terminal


def test_streaming_a_finished_job_replays_terminal_immediately(
    server, client
):
    job = client.submit("sweep", SWEEP_PARAMS)
    client.wait(job["id"], timeout=60)
    events = list(client.stream_events(job["id"], timeout=10))
    names = [e["event"] for e in events]
    assert names == ["accepted", "done"]
    assert events[0]["data"]["state"] == "DONE"


def test_stream_of_unknown_job_is_404(server, client):
    with pytest.raises(ServeError) as excinfo:
        next(client.stream_events("no-such-job"))
    assert excinfo.value.status == 404


def test_failed_job_streams_failed_terminal(server, client):
    job = client.submit("sweep", {"n_values": [4], "reps": 1, "max_steps": 1})
    events = list(client.stream_events(job["id"], timeout=60))
    names = [e["event"] for e in events]
    assert names[-1] == "failed"
    assert names.count("failed") == 1


def test_heartbeats_flow_while_a_job_waits_in_the_queue(tmp_path):
    # Dispatcher deliberately not started: the job stays QUEUED, so the
    # only traffic on the stream is the keep-alive heartbeat.
    srv = build_server(
        port=0, state_dir=str(tmp_path / "state"), heartbeat=0.05
    )
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    try:
        client = ServeClient(srv.url)
        job = client.submit("sweep", SWEEP_PARAMS)
        stream = client.stream_events(job["id"], timeout=10)
        frames = []
        for frame in stream:
            frames.append(frame)
            if sum(1 for f in frames if f["event"] == "heartbeat") >= 2:
                break
        stream.close()
        assert frames[0]["event"] == "accepted"
        assert frames[0]["data"]["state"] == "QUEUED"
        beats = [f for f in frames if f["event"] == "heartbeat"]
        assert len(beats) >= 2
        assert all("at" in b["data"] for b in beats)
    finally:
        srv.stop()
        thread.join(timeout=5)


def test_mid_stream_disconnect_does_not_wedge_the_dispatcher(server, client):
    first = client.submit("sweep", SWEEP_PARAMS)
    # Open the stream raw, read only the first frame, then drop the TCP
    # connection without closing the stream politely.
    conn = http.client.HTTPConnection(
        server.config.host, server.port, timeout=10
    )
    conn.request(
        "GET",
        f"/jobs/{first['id']}/events",
        headers={"Accept": "text/event-stream"},
    )
    response = conn.getresponse()
    assert response.status == 200
    assert response.headers["Content-Type"] == "text/event-stream"
    first_line = response.fp.readline().decode("utf-8")
    assert first_line.startswith("event: accepted")
    response.close()  # vanish mid-stream (drops the TCP connection)
    conn.close()

    # The dispatcher must shrug: this job and a subsequent one complete.
    assert client.wait(first["id"], timeout=60)["state"] == "DONE"
    second = client.submit("sweep", {**SWEEP_PARAMS, "reps": 2})
    assert client.wait(second["id"], timeout=60)["state"] == "DONE"

    # And the dead client's subscription is reaped once the handler
    # thread hits the broken pipe (a heartbeat at the latest).
    deadline = time.monotonic() + 10
    while time.monotonic() < deadline:
        if server.telemetry.broker.subscriber_count(first["id"]) == 0:
            break
        time.sleep(0.05)
    assert server.telemetry.broker.subscriber_count(first["id"]) == 0


def test_job_trace_records_the_full_span_chain(server, client):
    job = client.submit("sweep", SWEEP_PARAMS)
    assert client.wait(job["id"], timeout=60)["state"] == "DONE"
    records = load_job_trace(server.config.resolved_trace())
    mine = [r for r in records if r["job"] == job["id"]]
    names = {r["name"] for r in mine}
    assert {"accepted", "queue-wait", "task", "checkpoint", "dispatch",
            "terminal"} <= names
    spans = {r["name"]: r for r in mine if r["type"] == "span"}
    # The span chain is causally ordered on the wall clock.
    assert spans["queue-wait"]["end"] <= spans["dispatch"]["end"]
    assert spans["dispatch"]["args"]["state"] == "DONE"
    checkpoint = spans["checkpoint"]
    assert checkpoint["args"]["records"] > 0
    assert checkpoint["args"]["recomputed"] == 6
    tasks = [r for r in mine if r["type"] == "span" and r["name"] == "task"]
    assert tasks and tasks[-1]["args"]["total"] == 6

    # The proof: the records rebuild into a renderable Chrome trace.
    chrome = trace_to_chrome(job_trace_to_trace(mine))
    slices = [e for e in chrome["traceEvents"] if e["ph"] == "X"]
    assert {s["cat"] for s in slices} >= {
        "queue-wait", "dispatch", "task", "checkpoint"
    }
    json.dumps(chrome)


def test_cache_hit_resubmission_traces_no_second_dispatch(server, client):
    job = client.submit("sweep", SWEEP_PARAMS)
    client.wait(job["id"], timeout=60)
    before = load_job_trace(server.config.resolved_trace())
    again = client.submit("sweep", SWEEP_PARAMS)
    assert again["cached"] is True
    after = load_job_trace(server.config.resolved_trace())
    assert len(after) == len(before)  # cached answers add no trace records
