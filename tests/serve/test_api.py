"""End-to-end API tests against an in-process server on an OS-picked port."""

import json
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.serve import ServeClient, ServeError, build_server

SRC = Path(__file__).resolve().parents[2] / "src"

SWEEP_PARAMS = {"n_values": [2, 3], "reps": 3, "max_steps": 100_000}


@pytest.fixture(autouse=True)
def _pinned_code_version(monkeypatch):
    """Job ids and ledger fingerprints stable across checkouts."""
    monkeypatch.setenv("REPRO_CODE_VERSION", "test-serve-v1")


@pytest.fixture
def server(tmp_path):
    srv = build_server(port=0, state_dir=str(tmp_path / "state"), workers=1)
    srv.start()
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.stop()
    thread.join(timeout=5)


@pytest.fixture
def client(server):
    return ServeClient(server.url)


def test_submit_wait_result_roundtrip(server, client):
    job = client.submit("sweep", SWEEP_PARAMS)
    assert job["state"] == "QUEUED"
    final = client.wait(job["id"], timeout=60)
    assert final["state"] == "DONE"
    assert final["progress"] == {"done": 6, "total": 6}
    result = client.result(job["id"])
    assert result["kind"] == "sweep"
    assert result["cells"] == 6
    assert result["steps_total"] > 0
    assert [row["n"] for row in result["table"]] == [2, 3]
    assert result["recomputed"] == 6 and result["cache_hits"] == 0


def test_resubmission_is_a_cache_hit(server, client):
    job = client.submit("sweep", SWEEP_PARAMS)
    client.wait(job["id"], timeout=60)
    again = client.submit("sweep", SWEEP_PARAMS)
    assert again["id"] == job["id"]
    assert again["state"] == "DONE"
    assert again["cached"] is True


def test_equivalent_specs_share_one_job_id(server, client):
    first = client.submit("sweep", SWEEP_PARAMS)
    # Same work, different key order and priority → same fingerprint.
    reordered = dict(reversed(list(SWEEP_PARAMS.items())))
    second = client.submit("sweep", reordered, priority="critical")
    assert second["id"] == first["id"]


def test_server_ledger_matches_cli_ledger_bytes(server, client, tmp_path):
    """The tentpole invariant: HTTP and CLI write identical ledger bytes."""
    job = client.submit("sweep", SWEEP_PARAMS)
    assert client.wait(job["id"], timeout=60)["state"] == "DONE"
    cli_ledger = tmp_path / "cli.jsonl"
    subprocess.run(
        [
            sys.executable,
            "-m",
            "repro",
            "sweep",
            "--n-values",
            "2,3",
            "--reps",
            "3",
            "--max-steps",
            "100000",
            "--ledger",
            str(cli_ledger),
        ],
        check=True,
        capture_output=True,
        env={
            "PATH": "/usr/bin:/bin",
            "PYTHONPATH": str(SRC),
            "REPRO_CODE_VERSION": "test-serve-v1",
        },
    )
    server_ledger = server.config.resolved_ledger()
    assert server_ledger.read_bytes() == cli_ledger.read_bytes()


def test_bad_specs_get_400_with_reason(client):
    with pytest.raises(ServeError) as excinfo:
        client.submit("sweep", {"reps": 0})
    assert excinfo.value.status == 400
    assert "reps" in excinfo.value.body["error"]
    with pytest.raises(ServeError) as excinfo:
        client.submit("teleport")
    assert excinfo.value.status == 400


def test_unknown_routes_get_404(server, client):
    with pytest.raises(ServeError) as excinfo:
        client.job("no-such-job")
    assert excinfo.value.status == 404
    with pytest.raises(ServeError) as excinfo:
        client._request("GET", "/nope")
    assert excinfo.value.status == 404


def test_result_of_unfinished_job_is_409(server):
    # No dispatcher thread: build a server but never start() it, so the
    # job stays QUEUED and /result must refuse with the state.
    client = ServeClient(server.url)
    server.dispatcher.stop()  # freeze the queue (fixture started it)
    server.dispatcher.join(timeout=5)
    job = client.submit("sweep", {**SWEEP_PARAMS, "reps": 1})
    with pytest.raises(ServeError) as excinfo:
        client.result(job["id"])
    assert excinfo.value.status == 409
    assert "QUEUED" in excinfo.value.body["error"]


def test_health_and_metrics_shapes(server, client):
    health = client.health()
    assert health["status"] == "ok"
    assert set(health["jobs"]) == {"QUEUED", "RUNNING", "DONE", "FAILED", "SHED"}
    job = client.submit("sweep", SWEEP_PARAMS)
    client.wait(job["id"], timeout=60)
    metrics = client.metrics()
    assert metrics["queue"]["by_state"]["DONE"] == 1
    assert metrics["admission"]["admitted"] == 1
    assert metrics["engine"]["counters"]["serve.jobs{state=done}"] == 1


def test_queue_full_answers_429(tmp_path):
    srv = build_server(
        port=0, state_dir=str(tmp_path / "state"), max_queued=0
    )
    # Dispatcher deliberately not started: the queue can only fill.
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    try:
        client = ServeClient(srv.url)
        with pytest.raises(ServeError) as excinfo:
            client.submit("sweep", SWEEP_PARAMS)
        assert excinfo.value.status == 429
        assert "queue full" in excinfo.value.body["error"]
    finally:
        srv.stop()
        thread.join(timeout=5)


def test_exhausted_budget_sheds_with_503_and_records_the_job(tmp_path):
    srv = build_server(
        port=0, state_dir=str(tmp_path / "state"), budget_tasks=1
    )
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    try:
        client = ServeClient(srv.url)
        first = client.submit("sweep", SWEEP_PARAMS)  # fills the budget
        with pytest.raises(ServeError) as excinfo:
            client.submit("sweep", {**SWEEP_PARAMS, "reps": 4})
        assert excinfo.value.status == 503
        assert excinfo.value.body["state"] == "SHED"
        shed_id = excinfo.value.body["id"]
        assert shed_id != first["id"]
        # The refusal is recorded: the job exists, terminal, with reason.
        shed = client.job(shed_id)
        assert shed["state"] == "SHED"
        assert "budget exhausted" in shed["reason"]
        assert client.metrics()["queue"]["shed_rate"] == 1.0
    finally:
        srv.stop()
        thread.join(timeout=5)


def test_critical_jobs_still_admitted_under_exhausted_budget(tmp_path):
    srv = build_server(
        port=0, state_dir=str(tmp_path / "state"), budget_tasks=1
    )
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    try:
        client = ServeClient(srv.url)
        client.submit("sweep", SWEEP_PARAMS)
        job = client.submit(
            "sweep", {**SWEEP_PARAMS, "reps": 5}, priority="critical"
        )
        assert job["state"] == "QUEUED"
    finally:
        srv.stop()
        thread.join(timeout=5)


def test_failed_job_reports_its_error_and_requeues_on_resubmit(server, client):
    # seed_base chosen freely; an unknown-protocol failure is impossible
    # (schema-validated), so force failure via an unsatisfiable step cap:
    # every cell blows max_steps and raises, the job must FAIL with detail.
    params = {"n_values": [4], "reps": 1, "max_steps": 1}
    job = client.submit("sweep", params)
    final = client.wait(job["id"], timeout=60)
    assert final["state"] == "FAILED"
    assert final["error"]
    again = client.submit("sweep", params)
    assert again["id"] == job["id"]
    assert again["state"] == "QUEUED"  # resubmission requeues FAILED work
    assert client.wait(job["id"], timeout=60)["state"] == "FAILED"


def test_jobs_listing_shows_submission_order(server, client):
    a = client.submit("sweep", SWEEP_PARAMS)
    b = client.submit("sweep", {**SWEEP_PARAMS, "reps": 2})
    listed = client.jobs()
    assert [job["id"] for job in listed] == [a["id"], b["id"]]
    client.wait(a["id"], timeout=60)
    client.wait(b["id"], timeout=60)


def test_fuzz_and_campaign_and_chaos_kinds_run_to_done(server, client):
    fuzz = client.submit(
        "fuzz", {"n_values": [2], "runs_per_cell": 2}
    )
    campaign = client.submit("campaign")
    chaos = client.submit("chaos", {"runs_per_cell": 2})
    for job, kind in ((fuzz, "fuzz"), (campaign, "campaign"), (chaos, "chaos")):
        final = client.wait(job["id"], timeout=120)
        assert final["state"] == "DONE", (kind, final)
        result = client.result(job["id"])
        assert result["kind"] == kind
        assert result["ok"] is True


def test_http_body_is_json_all_the_way_down(server):
    # Raw socket-level check once, without the client conveniences.
    import urllib.request

    with urllib.request.urlopen(server.url + "/health", timeout=10) as resp:
        assert resp.headers["Content-Type"] == "application/json"
        json.loads(resp.read().decode("utf-8"))
