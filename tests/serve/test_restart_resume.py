"""SIGTERM mid-job + restart: resume from the checkpointed ledger prefix.

The acceptance scenario of the service layer, exercised against *real*
server processes: a sweep job is killed partway through, the ledger is
left holding a valid submission-order prefix, and the restarted server
requeues the job and recomputes only the missing fingerprints — ending
with ledger bytes identical to an undisturbed CLI run.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.serve import ServeClient

SRC = Path(__file__).resolve().parents[2] / "src"

#: ~24 cells at 40–90 ms each: slow enough that SIGTERM lands mid-job,
#: fast enough to keep the test under a few seconds per phase.
PARAMS = {"n_values": [5, 6], "reps": 12, "max_steps": 50_000_000}
TOTAL_CELLS = len(PARAMS["n_values"]) * PARAMS["reps"]


def _env():
    return {
        "PATH": "/usr/bin:/bin",
        "PYTHONPATH": str(SRC),
        "PYTHONUNBUFFERED": "1",
        "REPRO_CODE_VERSION": "test-resume-v1",
    }


def _boot_server(state_dir: Path) -> tuple[subprocess.Popen, str]:
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--state-dir",
            str(state_dir),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=_env(),
    )
    deadline = time.monotonic() + 30
    url = ""
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line and proc.poll() is not None:
            raise AssertionError(f"server died at boot (rc={proc.returncode})")
        if "listening on" in line:
            url = line.rsplit(" ", 1)[-1].strip()
            break
    assert url.startswith("http://"), f"no listen line within 30s: {url!r}"
    return proc, url


def _wait_for_ledger_lines(path: Path, minimum: int, timeout: float) -> int:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if path.exists():
            lines = len(path.read_bytes().splitlines())
            if lines >= minimum:
                return lines
        time.sleep(0.01)
    raise AssertionError(f"ledger never reached {minimum} lines: {path}")


@pytest.mark.slow
def test_sigterm_midjob_then_restart_resumes_from_prefix(tmp_path):
    state_dir = tmp_path / "state"
    ledger = state_dir / "ledger.jsonl"

    # Reference: the identical sweep through the CLI, undisturbed.
    reference = tmp_path / "reference.jsonl"
    subprocess.run(
        [
            sys.executable,
            "-m",
            "repro",
            "sweep",
            "--n-values",
            "5,6",
            "--reps",
            str(PARAMS["reps"]),
            "--ledger",
            str(reference),
        ],
        check=True,
        capture_output=True,
        env=_env(),
    )
    assert len(reference.read_bytes().splitlines()) == TOTAL_CELLS

    # Phase 1: submit, let a few cells checkpoint, SIGTERM mid-job.
    proc, url = _boot_server(state_dir)
    try:
        client = ServeClient(url)
        job = client.submit("sweep", PARAMS)
        job_id = job["id"]
        _wait_for_ledger_lines(ledger, minimum=2, timeout=30)
        os.kill(proc.pid, signal.SIGTERM)
        proc.wait(timeout=10)
    finally:
        if proc.poll() is None:
            proc.kill()
    prefix = len(ledger.read_bytes().splitlines())
    assert 0 < prefix < TOTAL_CELLS, (
        f"SIGTERM was meant to land mid-job, ledger has {prefix} lines"
    )
    # The interrupted ledger is a byte-prefix of the undisturbed run
    # (modulo a torn trailing line, which the next boot heals).
    reference_lines = reference.read_bytes().splitlines(keepends=True)
    healed = b"".join(reference_lines[:prefix])
    torn_tolerant = ledger.read_bytes()
    assert healed.startswith(
        torn_tolerant[: torn_tolerant.rfind(b"\n") + 1]
    )

    # Phase 2: restart on the same state dir; the job requeues itself.
    proc, url = _boot_server(state_dir)
    try:
        client = ServeClient(url)
        final = client.wait(job_id, timeout=120, poll=0.2)
        assert final["state"] == "DONE"
        result = client.result(job_id)
        # Only the missing fingerprints were recomputed.
        assert result["cache_hits"] >= prefix - 1  # -1: possible torn tail
        assert result["cache_hits"] + result["recomputed"] == TOTAL_CELLS
    finally:
        os.kill(proc.pid, signal.SIGTERM)
        try:
            proc.wait(timeout=10)
        except subprocess.TimeoutExpired:
            proc.kill()

    # The resumed ledger is byte-identical to the undisturbed CLI run.
    assert ledger.read_bytes() == reference.read_bytes()
