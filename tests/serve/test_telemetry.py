"""Unit tests for the telemetry layer: tracer, broker, stats, exposition.

Everything here runs without an HTTP server — the broker streams are
consumed as plain generators and the Prometheus exposition is rendered
against an unstarted :class:`ReproServer`.  The HTTP integration
(real sockets, real SSE) lives in ``test_events.py`` and
``test_history_http.py``.
"""

import json
import threading

import pytest

from repro.obs.export import trace_to_chrome
from repro.serve import build_server
from repro.serve.queue import JobQueue
from repro.serve.telemetry import (
    EventBroker,
    HttpStats,
    JobTracer,
    job_trace_to_trace,
    load_job_trace,
    normalize_route,
    render_prometheus,
    sse_format,
    timeline_rows,
)


@pytest.fixture(autouse=True)
def _pinned_code_version(monkeypatch):
    monkeypatch.setenv("REPRO_CODE_VERSION", "test-telemetry-v1")


# -- route normalization + SSE wire format -----------------------------------


def test_normalize_route_collapses_job_ids():
    assert normalize_route("/jobs/abc123def456") == "/jobs/{id}"
    assert normalize_route("/jobs/abc123/events") == "/jobs/{id}/events"
    assert normalize_route("/jobs/abc123/result") == "/jobs/{id}/result"
    assert normalize_route("/jobs") == "/jobs"
    assert normalize_route("/metrics?format=prom") == "/metrics"
    assert normalize_route("/history/trends") == "/history/trends"
    assert normalize_route("/") == "/"
    assert normalize_route("") == "/"


def test_sse_format_is_one_event_one_data_line():
    frame = sse_format("progress", {"done": 2, "total": 6})
    assert frame == 'event: progress\ndata: {"done": 2, "total": 6}\n\n'
    # data stays single-line however nested the payload.
    assert "\n" not in frame.split("data: ", 1)[1].rstrip("\n")


# -- the event broker ---------------------------------------------------------


def _collect(stream):
    """Drain a broker stream into (event, payload) tuples."""
    frames = []
    for frame in stream:
        head, _, data = frame.partition("\ndata: ")
        frames.append(
            (head[len("event: ") :], json.loads(data.rstrip("\n")))
        )
    return frames


def test_stream_ends_after_exactly_one_terminal_event():
    broker = EventBroker(clock=lambda: 42.0)
    snapshot = {"id": "j1", "state": "RUNNING", "progress": {}}
    stream = broker.stream("j1", snapshot=lambda: snapshot, heartbeat=30.0)
    # Consume the first frame so the subscription exists, then publish.
    first = next(stream)
    assert first.startswith("event: accepted\n")
    broker.publish("j1", "progress", {"done": 1, "total": 2})
    broker.publish("j1", "done", {"id": "j1", "state": "DONE"})
    broker.publish("j1", "done", {"id": "j1", "state": "DONE"})  # late dup
    events = [e for e, _ in _collect(stream)]
    assert events == ["progress", "done"]
    assert broker.subscriber_count("j1") == 0  # finally unsubscribed


def test_stream_synthesizes_terminal_from_an_already_terminal_snapshot():
    broker = EventBroker()
    snapshot = {"id": "j2", "state": "FAILED", "error": "boom"}
    events = _collect(
        broker.stream("j2", snapshot=lambda: snapshot, heartbeat=30.0)
    )
    assert [e for e, _ in events] == ["accepted", "failed"]
    assert events[-1][1]["error"] == "boom"
    assert broker.subscriber_count("j2") == 0


def test_terminal_published_between_subscribe_and_snapshot_is_not_doubled():
    # The race the subscribe-first design closes: the job finishes right
    # as the stream starts.  The snapshot already says DONE, so the
    # queued "done" publish must never be drained — one terminal frame.
    broker = EventBroker()
    state = {"id": "j3", "state": "RUNNING"}
    stream = broker.stream("j3", snapshot=lambda: dict(state), heartbeat=30.0)
    frames = []
    frames.append(next(stream))  # accepted (RUNNING)
    state["state"] = "DONE"
    broker.publish("j3", "done", dict(state))
    broker.publish("j3", "progress", {"done": 6, "total": 6})
    terminal = [f for f in _collect(stream) if f[0] == "done"]
    assert len(terminal) == 1


def test_heartbeats_flow_under_a_frozen_clock():
    # The cadence is driven by the queue timeout, not clock deltas — a
    # frozen clock only affects the stamp inside the frame.
    broker = EventBroker(clock=lambda: 1234.5)
    snapshot = {"id": "j4", "state": "RUNNING"}
    stream = broker.stream("j4", snapshot=lambda: snapshot, heartbeat=0.01)
    assert next(stream).startswith("event: accepted\n")
    beats = [next(stream), next(stream)]
    for beat in beats:
        event, payload = _collect([beat])[0]
        assert event == "heartbeat"
        assert payload == {"at": 1234.5}
    stream.close()
    assert broker.subscriber_count("j4") == 0


def test_publish_never_blocks_on_a_stalled_subscriber():
    broker = EventBroker()
    broker.subscribe("j5")  # never drained
    done = threading.Event()

    def publisher():
        for i in range(1000):
            broker.publish("j5", "progress", {"done": i})
        done.set()

    thread = threading.Thread(target=publisher, daemon=True)
    thread.start()
    thread.join(timeout=5)
    assert done.is_set(), "publish blocked on an undrained subscription"


# -- the job tracer + reconstruction -----------------------------------------


def test_tracer_records_schema_and_load_tolerates_torn_tail(tmp_path):
    path = tmp_path / "trace.jsonl"
    tracer = JobTracer(path, clock=lambda: 7.0)
    tracer.span("jobA", "queue-wait", 1.0, 2.5, depth=3)
    tracer.instant("jobA", "terminal", state="DONE")
    with path.open("a") as fh:
        fh.write('{"type": "span", "job": "jobB", "na')  # torn mid-append
    records = load_job_trace(path)
    assert [r["name"] for r in records] == ["queue-wait", "terminal"]
    assert all(r["schema"] == 1 for r in records)
    assert records[0]["args"] == {"depth": 3}
    assert records[1]["at"] == 7.0


def test_load_job_trace_raises_on_mid_file_corruption(tmp_path):
    path = tmp_path / "trace.jsonl"
    path.write_text('not json\n{"type": "instant", "job": "x"}\n')
    with pytest.raises(ValueError, match="unparsable job-trace line"):
        load_job_trace(path)
    assert load_job_trace(tmp_path / "absent.jsonl") == []


def test_job_trace_reconstructs_into_a_valid_chrome_trace():
    records = [
        {"type": "span", "job": "aaaa" * 16, "name": "queue-wait",
         "start": 100.0, "end": 100.2, "args": {}},
        {"type": "span", "job": "aaaa" * 16, "name": "dispatch",
         "start": 100.2, "end": 101.0, "args": {"state": "DONE"}},
        {"type": "span", "job": "bbbb" * 16, "name": "queue-wait",
         "start": 100.5, "end": 100.9, "args": {}},
        {"type": "instant", "job": "aaaa" * 16, "name": "terminal",
         "at": 101.0, "args": {"state": "DONE"}},
    ]
    trace = job_trace_to_trace(records)
    # One lane per job, microseconds relative to the earliest stamp.
    assert {s.pid for s in trace.spans} == {0, 1}
    chrome = trace_to_chrome(trace)
    slices = [e for e in chrome["traceEvents"] if e["ph"] == "X"]
    assert len(slices) == 3
    by_name = {s["name"]: s for s in slices}
    queue_wait = by_name["queue-wait " + "aaaa" * 3]
    assert queue_wait["ts"] == 0
    assert queue_wait["dur"] == pytest.approx(200_000, abs=2)
    dispatch = by_name["dispatch " + "aaaa" * 3]
    assert dispatch["ts"] == pytest.approx(200_000, abs=2)
    instants = [e for e in chrome["traceEvents"] if e["ph"] == "i"]
    assert len(instants) == 1
    json.dumps(chrome)  # the whole document must be JSON-serializable


def test_timeline_rows_sorts_and_offsets_spans():
    records = [
        {"type": "span", "job": "b" * 64, "name": "dispatch",
         "start": 11.0, "end": 13.5, "args": {"state": "DONE"}},
        {"type": "span", "job": "a" * 64, "name": "queue-wait",
         "start": 10.0, "end": 10.25, "args": {}},
        {"type": "instant", "job": "a" * 64, "name": "terminal",
         "at": 13.5, "args": {}},
    ]
    rows = timeline_rows(records)
    assert [r["phase"] for r in rows] == ["queue-wait", "dispatch"]
    assert rows[0]["start_s"] == 0.0 and rows[0]["duration_s"] == 0.25
    assert rows[1]["start_s"] == 1.0 and rows[1]["duration_s"] == 2.5
    assert rows[1]["job"] == "b" * 12
    assert rows[1]["detail"] == "state=DONE"
    assert timeline_rows([]) == []


# -- the queue listener seam --------------------------------------------------


def test_queue_listener_sees_the_lifecycle_in_order(tmp_path):
    queue = JobQueue(tmp_path / "jobs.jsonl")
    seen = []
    queue.listener = lambda event, job: seen.append((event, job.state))
    queue.submit("job-1", {"kind": "sweep", "priority": "normal"})
    claimed = queue.claim()
    assert claimed is not None and claimed.id == "job-1"
    queue.update_progress("job-1", done=1, total=2)
    queue.finish("job-1", {"ok": True})
    assert seen == [
        ("submit", "QUEUED"),
        ("claim", "RUNNING"),
        ("progress", "RUNNING"),
        ("finish", "DONE"),
    ]


def test_boot_replay_is_silent_but_live_transitions_are_not(tmp_path):
    path = tmp_path / "jobs.jsonl"
    first = JobQueue(path)
    first.submit("job-1", {"kind": "sweep", "priority": "normal"})
    seen = []
    reloaded = JobQueue(path)  # replays the submit from disk...
    reloaded.listener = lambda event, job: seen.append(event)
    assert reloaded.depth() == 1
    assert seen == []  # ...without notifying the listener
    reloaded.claim()
    assert seen == ["claim"]


# -- HTTP stats + Prometheus exposition ---------------------------------------


def test_http_stats_records_counters_histograms_and_access_log(tmp_path):
    from repro.obs.metrics import MetricsRegistry

    log = tmp_path / "access.jsonl"
    metrics = MetricsRegistry(enabled=True)
    stats = HttpStats(metrics, access_log=log, clock=lambda: 99.0)
    stats.observe("GET", "/jobs/deadbeef/events", 200, 0.125)
    stats.observe("GET", "/jobs/cafebabe/events", 200, 0.25)
    snapshot = metrics.snapshot()
    key = "serve.http.requests{method=GET,route=/jobs/{id}/events,status=200}"
    assert snapshot.counters[key] == 2
    hist_key = "serve.http.request_seconds{method=GET,route=/jobs/{id}/events}"
    assert snapshot.histograms[hist_key]["count"] == 2
    lines = [json.loads(l) for l in log.read_text().splitlines()]
    assert [l["path"] for l in lines] == [
        "/jobs/deadbeef/events", "/jobs/cafebabe/events",
    ]
    assert lines[0] == {
        "at": 99.0, "method": "GET", "path": "/jobs/deadbeef/events",
        "status": 200, "seconds": 0.125,
    }


def _prom_families(text):
    return {
        line.split()[2]
        for line in text.splitlines()
        if line.startswith("# TYPE")
    }


def test_render_prometheus_exposes_all_families(tmp_path):
    server = build_server(port=0, state_dir=str(tmp_path / "state"))
    try:
        # Give the HTTP families something to report without a socket.
        server.telemetry.http.observe("GET", "/health", 200, 0.002)
        server.telemetry.http.observe("POST", "/jobs", 202, 0.05)
        text = render_prometheus(server)
        families = _prom_families(text)
        assert {
            "repro_uptime_seconds",
            "repro_jobs",
            "repro_queue_depth",
            "repro_shed_rate",
            "repro_admission_pressure",
            "repro_admission_decisions_total",
            "repro_resilience_total",
            "repro_job_resilience_total",
            "repro_http_requests_total",
            "repro_http_request_duration_seconds",
            "repro_engine_total",
        } <= families
        lines = text.splitlines()
        # Every TYPE is one of the three Prometheus kinds.
        kinds = {
            line.split()[3] for line in lines if line.startswith("# TYPE")
        }
        assert kinds <= {"counter", "gauge", "histogram"}
        # Histogram series are complete: buckets end at +Inf, sum+count.
        assert any('le="+Inf"' in line for line in lines)
        assert any(
            line.startswith("repro_http_request_duration_seconds_sum")
            for line in lines
        )
        assert any(
            line.startswith("repro_http_request_duration_seconds_count")
            for line in lines
        )
        # Sample lines parse as "name{labels} value" with numeric values.
        for line in lines:
            if line.startswith("#") or not line:
                continue
            name_part, _, value = line.rpartition(" ")
            assert name_part and float(value) is not None
    finally:
        server.httpd.server_close()


def test_prometheus_bucket_counts_are_cumulative(tmp_path):
    server = build_server(port=0, state_dir=str(tmp_path / "state"))
    try:
        for seconds in (0.002, 0.002, 0.3):
            server.telemetry.http.observe("GET", "/health", 200, seconds)
        text = render_prometheus(server)
        buckets = {}
        for line in text.splitlines():
            if line.startswith(
                "repro_http_request_duration_seconds_bucket"
            ) and 'route="/health"' in line:
                le = line.split('le="')[1].split('"')[0]
                buckets[le] = int(line.rsplit(" ", 1)[1])
        assert buckets["0.001"] == 0
        assert buckets["0.005"] == 2
        assert buckets["0.5"] == 3
        assert buckets["+Inf"] == 3
        counts = list(buckets.values())
        assert counts == sorted(counts)  # cumulative, monotonic
    finally:
        server.httpd.server_close()


# -- the CLI reconstruction path ---------------------------------------------


def test_cli_trace_from_job_trace_exports_chrome(tmp_path, capsys):
    from repro.cli import main

    trace_log = tmp_path / "trace.jsonl"
    tracer = JobTracer(trace_log, clock=lambda: 2.0)
    tracer.span("c" * 64, "queue-wait", 0.0, 0.5)
    tracer.span("c" * 64, "dispatch", 0.5, 2.0, state="DONE")
    tracer.instant("c" * 64, "terminal", state="DONE")
    out_path = tmp_path / "service.json"
    code = main(
        ["trace", "--from-job-trace", str(trace_log),
         "--export", str(out_path)]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "reconstructed 3 job-trace records" in out
    assert "1 job(s)" in out
    chrome = json.loads(out_path.read_text())
    slices = [e for e in chrome["traceEvents"] if e["ph"] == "X"]
    assert {s["cat"] for s in slices} == {"queue-wait", "dispatch"}


def test_cli_trace_from_empty_job_trace_fails_clearly(tmp_path, capsys):
    from repro.cli import main

    empty = tmp_path / "trace.jsonl"
    empty.touch()
    code = main(
        ["trace", "--from-job-trace", str(empty),
         "--export", str(tmp_path / "out.json")]
    )
    assert code == 1
    assert "no job-trace records" in capsys.readouterr().out
