"""HTTP history projections, the Prometheus scrape and the access log.

``GET /history*`` serves the same :mod:`repro.obs.projections` views
the ``repro history`` CLI renders, over a *fresh* ledger read per
request — so rows appear as jobs complete, without a server restart.
"""

import json
import threading
import time
import urllib.request

import pytest

from repro.cli import _jsonl_path_arg, build_parser
from repro.serve import ServeClient, ServeError, build_server

SWEEP_PARAMS = {"n_values": [2, 3], "reps": 3, "max_steps": 100_000}


@pytest.fixture(autouse=True)
def _pinned_code_version(monkeypatch):
    monkeypatch.setenv("REPRO_CODE_VERSION", "test-history-v1")


@pytest.fixture
def server(tmp_path):
    srv = build_server(
        port=0,
        state_dir=str(tmp_path / "state"),
        workers=1,
        access_log=str(tmp_path / "state" / "access.jsonl"),
    )
    srv.start()
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.stop()
    thread.join(timeout=5)


@pytest.fixture
def client(server):
    return ServeClient(server.url)


def _finish_one_sweep(client):
    job = client.submit("sweep", SWEEP_PARAMS)
    assert client.wait(job["id"], timeout=60)["state"] == "DONE"
    return job


# -- /history ----------------------------------------------------------------


def test_history_is_empty_before_any_job_and_fills_after(server, client):
    empty = client.history()
    assert empty["records"] == 0 and empty["rows"] == []
    _finish_one_sweep(client)
    filled = client.history()
    assert filled["records"] > 0
    assert filled["ledger"] == str(server.config.resolved_ledger())
    assert {row["experiment"] for row in filled["rows"]}
    # Filters pass through to the projection.
    assert client.history(experiment="no-such-exp")["records"] == 0


def test_history_trends_rows_and_metric_series(server, client):
    _finish_one_sweep(client)
    trends = client.history_trends()
    assert trends["records"] > 0
    assert isinstance(trends["trends"], list) and trends["trends"]
    series = client.history_trends(metric="expected_steps")
    assert series["metric"] == "expected_steps"
    assert series["points"], "sweep records carry expected_steps"
    assert all(len(point) == 2 for point in series["points"])


def test_history_trends_unknown_metric_is_400_with_choices(server, client):
    _finish_one_sweep(client)
    with pytest.raises(ServeError) as excinfo:
        client.history_trends(metric="flux_capacitance")
    assert excinfo.value.status == 400
    assert "flux_capacitance" in excinfo.value.body["error"]
    assert "expected_steps" in excinfo.value.body["error"]


def test_history_check_runs_the_gate_over_http(server, client):
    _finish_one_sweep(client)
    check = client.history_check(window=5, tolerance=0.5)
    assert set(check) >= {
        "ok", "records", "summary", "regressions", "violations"
    }
    assert check["records"] > 0
    assert isinstance(check["ok"], bool)
    assert check["violations"] == []  # one server, no identity conflicts


def test_history_check_bad_window_is_400(server, client):
    with pytest.raises(ServeError) as excinfo:
        client._request("GET", "/history/check?window=soon")
    assert excinfo.value.status == 400
    assert "window" in excinfo.value.body["error"]


def test_history_sees_ledger_appends_without_restart(server, client):
    # A fresh read per request: append via a *second* job and the row
    # count grows on the very next GET.
    _finish_one_sweep(client)
    before = client.history()["records"]
    # reps=2 would be a pure cache hit (a subset of reps=3); a new n
    # value forces real computation and thus new ledger records.
    job = client.submit("sweep", {**SWEEP_PARAMS, "n_values": [4], "reps": 1})
    client.wait(job["id"], timeout=60)
    assert client.history()["records"] > before


# -- /metrics?format=prom over a real socket ----------------------------------


def test_prometheus_scrape_over_http(server, client):
    _finish_one_sweep(client)
    request = urllib.request.Request(server.url + "/metrics?format=prom")
    with urllib.request.urlopen(request, timeout=10) as resp:
        assert resp.headers["Content-Type"].startswith("text/plain")
        assert "version=0.0.4" in resp.headers["Content-Type"]
        text = resp.read().decode("utf-8")
    assert 'repro_jobs{state="DONE"} 1' in text
    assert "repro_queue_depth 0" in text
    assert 'repro_admission_decisions_total{outcome="admitted"} 1' in text
    # The waiting/polling traffic from this very test is in the counter.
    assert 'route="/jobs/{id}"' in text
    assert "repro_http_request_duration_seconds_bucket" in text
    # A later scrape sees the first one counted under /metrics.  The
    # middleware observes after the response body is flushed, so give
    # the handler thread a beat to reach its finally block.
    wanted = 'repro_http_requests_total{method="GET",route="/metrics"'
    deadline = time.monotonic() + 5
    while wanted not in client.metrics_prometheus():
        assert time.monotonic() < deadline, "scrape never counted /metrics"
        time.sleep(0.05)


def test_json_metrics_view_reports_http_and_per_job_resilience(
    server, client
):
    job = _finish_one_sweep(client)
    metrics = client.metrics()
    requests = {
        key: value
        for key, value in metrics["engine"]["counters"].items()
        if key.startswith("serve.http.requests")
    }
    assert requests, "access middleware populates the JSON view too"
    assert isinstance(metrics["resilience_by_job"], dict)
    # A clean run has no resilience events, so the job is not listed.
    assert job["id"] not in metrics["resilience_by_job"]


# -- the access log ----------------------------------------------------------


def test_access_log_records_each_request_as_jsonl(server, client):
    client.health()
    _finish_one_sweep(client)
    import pathlib

    log = pathlib.Path(server.config.state_dir) / "access.jsonl"
    lines = [json.loads(line) for line in log.read_text().splitlines()]
    assert lines, "access log is written when --access-log is set"
    assert {"at", "method", "path", "status", "seconds"} <= set(lines[0])
    paths = [line["path"] for line in lines]
    assert "/health" in paths
    assert any(path == "/jobs" for path in paths)  # the POST
    post = next(line for line in lines if line["method"] == "POST")
    assert post["status"] == 202


# -- CLI flag validation (argparse type, --workers style) ---------------------


def test_jsonl_path_arg_accepts_a_plain_path(tmp_path):
    target = tmp_path / "logs" / "access.jsonl"
    assert _jsonl_path_arg(str(target)) == str(target)


@pytest.mark.parametrize(
    "bad, fragment",
    [
        ("", "needs a file path"),
        ("   ", "needs a file path"),
    ],
)
def test_jsonl_path_arg_rejects_empty(bad, fragment):
    import argparse

    with pytest.raises(argparse.ArgumentTypeError, match=fragment):
        _jsonl_path_arg(bad)


def test_jsonl_path_arg_rejects_directories_and_bad_parents(tmp_path):
    import argparse

    with pytest.raises(argparse.ArgumentTypeError, match="is a directory"):
        _jsonl_path_arg(str(tmp_path))
    occupied = tmp_path / "file.txt"
    occupied.write_text("x")
    with pytest.raises(
        argparse.ArgumentTypeError, match="is not a directory"
    ):
        _jsonl_path_arg(str(occupied / "nested.jsonl"))


def test_serve_parser_rejects_bad_access_log(tmp_path, capsys):
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["serve", "--access-log", str(tmp_path)])
    err = capsys.readouterr().err
    assert "is a directory" in err
    with pytest.raises(SystemExit):
        parser.parse_args(["serve", "--trace-log", ""])
    assert "needs a file path" in capsys.readouterr().err


def test_serve_parser_accepts_telemetry_flags(tmp_path):
    parser = build_parser()
    args = parser.parse_args(
        [
            "serve",
            "--trace-log", str(tmp_path / "trace.jsonl"),
            "--access-log", str(tmp_path / "access.jsonl"),
        ]
    )
    assert args.trace_log == str(tmp_path / "trace.jsonl")
    assert args.access_log == str(tmp_path / "access.jsonl")
