"""Property-based validation of the §2 construction.

Hypothesis drives randomized workloads (how many writes each process does,
interleaved with scans, under seeded random schedules) and asserts P1–P3
hold on both implementations — the empirical counterpart of the paper's
Lemmas 2.1–2.4.
"""

from hypothesis import given, settings, strategies as st

from repro.runtime import RandomScheduler, Simulation
from repro.snapshot import (
    ArrowScannableMemory,
    SequencedScannableMemory,
    check_all_properties,
)
from repro.snapshot.properties import assert_no_violations

workload = st.tuples(
    st.integers(min_value=2, max_value=4),  # processes
    st.lists(st.integers(min_value=0, max_value=3), min_size=2, max_size=4),
    st.integers(min_value=0, max_value=10_000),  # schedule seed
)


def _run_workload(memory_cls, n, per_pid_writes, seed):
    sim = Simulation(n, RandomScheduler(seed=seed), seed=seed)
    mem = memory_cls(sim, "M", n)

    def factory(pid):
        writes = per_pid_writes[pid % len(per_pid_writes)]

        def body(ctx):
            for k in range(writes):
                yield from mem.write(ctx, (pid, k))
                yield from mem.scan(ctx)
            yield from mem.scan(ctx)

        return body

    sim.spawn_all(factory)
    sim.run(500_000)
    return sim


@settings(max_examples=40, deadline=None)
@given(workload)
def test_arrow_memory_satisfies_p1_p2_p3(params):
    n, per_pid_writes, seed = params
    sim = _run_workload(ArrowScannableMemory, n, per_pid_writes, seed)
    assert_no_violations(check_all_properties(sim.trace, "M", n))


@settings(max_examples=25, deadline=None)
@given(workload)
def test_sequenced_memory_satisfies_p1_p2_p3(params):
    n, per_pid_writes, seed = params
    sim = _run_workload(SequencedScannableMemory, n, per_pid_writes, seed)
    assert_no_violations(check_all_properties(sim.trace, "M", n))


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_views_agree_between_implementations_when_sequential(seed):
    """Identical sequential workloads produce identical final views."""
    views = []
    for cls in (ArrowScannableMemory, SequencedScannableMemory):
        sim = Simulation(1, seed=seed)
        mem = cls(sim, "M", 1)

        def program(ctx):
            for k in range(3):
                yield from mem.write(ctx, k)
            return tuple((yield from mem.scan(ctx)))

        sim.spawn(0, program)
        views.append(sim.run().decisions[0])
    assert views[0] == views[1]


@settings(max_examples=25, deadline=None)
@given(workload)
def test_embedded_memory_satisfies_p1_p2_p3(params):
    from repro.snapshot import EmbeddedScanSnapshot

    n, per_pid_writes, seed = params
    sim = _run_workload(EmbeddedScanSnapshot, n, per_pid_writes, seed)
    assert_no_violations(check_all_properties(sim.trace, "M", n))
