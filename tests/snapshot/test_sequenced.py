"""Tests for the unbounded sequence-number snapshot comparator."""

import pytest

from repro.registers import MemoryAudit
from repro.runtime import (
    RandomScheduler,
    RoundRobinScheduler,
    ScriptedScheduler,
    Simulation,
)
from repro.snapshot import SequencedScannableMemory, check_all_properties


def test_basic_write_then_scan():
    sim = Simulation(2, RoundRobinScheduler(), seed=0)
    mem = SequencedScannableMemory(sim, "M", 2, initial="e")

    def factory(pid):
        def body(ctx):
            yield from mem.write(ctx, pid)
            return tuple((yield from mem.scan(ctx)))

        return body

    sim.spawn_all(factory)
    outcome = sim.run()
    for pid, view in outcome.decisions.items():
        assert view[pid] == pid


def test_scan_retries_until_two_identical_collects():
    sim = Simulation(2, seed=0)
    mem = SequencedScannableMemory(sim, "M", 2)

    def scanner(ctx):
        return tuple((yield from mem.scan(ctx)))

    def writer(ctx):
        yield from mem.write(ctx, "w1")
        yield from mem.write(ctx, "w2")

    sim.spawn(0, scanner)
    sim.spawn(1, writer)
    # scanner collect1 (2 reads), writer writes, scanner collect2 differs,
    # collect3+4 identical.
    sim.scheduler = ScriptedScheduler([0, 0, 1, 1, 0, 0, 0, 0])
    outcome = sim.run()
    scans = [s for s in sim.trace.spans if s.kind == "scan"]
    assert scans[0].meta["rounds"] >= 2
    assert outcome.decisions[0][1] == "w2"


def test_max_rounds_guard():
    sim = Simulation(2, seed=0)
    mem = SequencedScannableMemory(sim, "M", 2, max_rounds=2)

    def factory(pid):
        def body(ctx):
            if pid == 0:
                return (yield from mem.scan(ctx))
            while True:
                yield from mem.write(ctx, "spam")

        return body

    sim.spawn_all(factory)
    sim.scheduler = ScriptedScheduler([0, 0, 1, 0, 0, 1] * 10)
    with pytest.raises(RuntimeError, match="exceeded"):
        sim.run(10_000)


def test_sequence_numbers_unbounded():
    audit = MemoryAudit()
    sim = Simulation(2, RoundRobinScheduler(), seed=0)
    mem = SequencedScannableMemory(sim, "M", 2, audit=audit)

    def factory(pid):
        def body(ctx):
            for k in range(40):
                yield from mem.write(ctx, 0)

        return body

    sim.spawn_all(factory)
    sim.run()
    assert audit.max_magnitude >= 40  # seq grows with the write count


@pytest.mark.parametrize("seed", range(15))
def test_properties_hold_on_random_schedules(seed):
    sim = Simulation(3, RandomScheduler(seed=seed), seed=seed)
    mem = SequencedScannableMemory(sim, "M", 3)

    def factory(pid):
        def body(ctx):
            for k in range(3):
                yield from mem.write(ctx, (pid, k))
                yield from mem.scan(ctx)

        return body

    sim.spawn_all(factory)
    sim.run(500_000)
    assert check_all_properties(sim.trace, "M", 3) == []
