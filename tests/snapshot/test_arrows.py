"""Tests for the paper's arrow-based scannable memory (§2.2)."""

import pytest

from repro.registers import MemoryAudit
from repro.runtime import RandomScheduler, RoundRobinScheduler, Simulation
from repro.snapshot import ArrowScannableMemory
from repro.snapshot.arrows import ScanRetriesExceeded


def _scan_write_factory(mem, writes=3):
    def factory(pid):
        def body(ctx):
            views = []
            for k in range(writes):
                yield from mem.write(ctx, (pid, k))
                views.append(tuple((yield from mem.scan(ctx))))
            return views

        return body

    return factory


def test_scan_sees_own_write_immediately():
    sim = Simulation(2, RoundRobinScheduler(), seed=0)
    mem = ArrowScannableMemory(sim, "M", 2, initial="empty")

    def factory(pid):
        def body(ctx):
            yield from mem.write(ctx, f"v{pid}")
            return (yield from mem.scan(ctx))

        return body

    sim.spawn_all(factory)
    outcome = sim.run()
    for pid, view in outcome.decisions.items():
        assert view[pid] == f"v{pid}"


def test_solo_scan_returns_initial_values():
    sim = Simulation(3, seed=0)
    mem = ArrowScannableMemory(sim, "M", 3, initial=0)

    def factory(pid):
        def body(ctx):
            if pid == 0:
                return tuple((yield from mem.scan(ctx)))
            return None
            yield  # pragma: no cover

        return body

    sim.spawn_all(factory)
    assert sim.run().decisions[0] == (0, 0, 0)


def test_quiescent_scan_needs_exactly_one_round():
    sim = Simulation(2, RoundRobinScheduler(), seed=0)
    mem = ArrowScannableMemory(sim, "M", 2)

    def factory(pid):
        def body(ctx):
            if pid == 0:
                yield from mem.write(ctx, "x")
            else:
                # run after 0 by scheduling; quiescent at scan time
                for _ in range(3):
                    yield from mem.write(ctx, "y")
                view = yield from mem.scan(ctx)
                return view

        return body

    sim.spawn_all(factory)
    sim.run()
    scans = [s for s in sim.trace.spans if s.kind == "scan"]
    assert scans[-1].meta["rounds"] == 1


def test_writer_turns_arrows_before_publishing():
    sim = Simulation(2, RoundRobinScheduler(), seed=0)
    mem = ArrowScannableMemory(sim, "M", 2)

    def factory(pid):
        def body(ctx):
            if pid == 1:
                yield from mem.write(ctx, "v")

        return body

    sim.spawn(1, factory(1))
    # First step: the arrow A[0][1] flips to 1; V not yet written.
    sim.step()
    assert mem.A[0][1].peek() == 1
    assert mem.V[1].peek()[0] is None
    sim.step()
    assert mem.V[1].peek()[0] == "v"


def test_concurrent_write_forces_scan_retry():
    # Scripted: scanner clears arrows + collects; a writer completes a full
    # write in between; the scan must go back to L.
    sim = Simulation(2, seed=0)
    mem = ArrowScannableMemory(sim, "M", 2)

    def writer(ctx):
        yield from mem.write(ctx, "w")

    def scanner(ctx):
        view = yield from mem.scan(ctx)
        return tuple(view)

    sim.spawn(0, scanner)
    sim.spawn(1, writer)
    # Scanner: clear arrow (1 step), read V (1), ... interleave writer's
    # 2 steps right after the scanner's first collect read.
    from repro.runtime import ScriptedScheduler

    sim.scheduler = ScriptedScheduler([0, 0, 1, 1, 0, 0, 0])
    sim.run()
    scans = [s for s in sim.trace.spans if s.kind == "scan"]
    assert scans[0].meta["rounds"] >= 2
    assert sim.outcome().decisions[0][1] == "w"


def test_max_rounds_guard():
    sim = Simulation(2, seed=0)
    mem = ArrowScannableMemory(sim, "M", 2, max_rounds=1)

    def factory(pid):
        def body(ctx):
            if pid == 0:
                view = yield from mem.scan(ctx)
                return tuple(view)
            while True:
                yield from mem.write(ctx, "spam")

        return body

    sim.spawn_all(factory)
    from repro.runtime import ScriptedScheduler

    sim.scheduler = ScriptedScheduler([0, 0, 1, 1, 0, 0, 0])
    with pytest.raises(ScanRetriesExceeded):
        sim.run(10_000)


def test_unknown_arrow_kind_rejected():
    sim = Simulation(2, seed=0)
    with pytest.raises(ValueError):
        ArrowScannableMemory(sim, "M", 2, arrow_kind="quantum")


def test_bloom_arrow_variant_works_end_to_end():
    sim = Simulation(3, RandomScheduler(seed=5), seed=5)
    mem = ArrowScannableMemory(sim, "M", 3, arrow_kind="bloom")
    sim.spawn_all(_scan_write_factory(mem, writes=2))
    outcome = sim.run(500_000)
    assert outcome.finished
    from repro.snapshot import check_all_properties

    assert check_all_properties(sim.trace, "M", 3) == []


def test_audit_excludes_ghost_sequence_numbers():
    audit = MemoryAudit()
    sim = Simulation(2, RandomScheduler(seed=1), seed=1)
    mem = ArrowScannableMemory(sim, "M", 2, audit=audit)
    sim.spawn_all(_scan_write_factory(mem, writes=30))
    sim.run(500_000)
    # 60 writes happened; ghost wseqs reach 30 but the audit must only see
    # the algorithmic fields (values (pid, k<=29) plus toggle bits).
    assert audit.max_magnitude <= 29


def test_scan_attempts_counter_accumulates():
    sim = Simulation(3, RandomScheduler(seed=2), seed=2)
    mem = ArrowScannableMemory(sim, "M", 3)
    sim.spawn_all(_scan_write_factory(mem, writes=3))
    sim.run(500_000)
    scans = [s for s in sim.trace.spans if s.kind == "scan"]
    assert mem.scan_attempts() == sum(s.meta["rounds"] for s in scans)
