"""Tests for the P1–P3 property checkers themselves.

The checkers guard the §2 construction, so they must reject known-bad
histories: each test fabricates a synthetic trace exhibiting one specific
violation and asserts the corresponding checker flags it.
"""

import pytest

from repro.runtime.trace import Trace
from repro.snapshot.properties import (
    assert_no_violations,
    check_all_properties,
    check_p1_regularity,
    check_p2_snapshot,
    check_p3_serializability,
    scan_round_counts,
    PropertyViolation,
)


def _write(trace, pid, wseq, invoke, response):
    span = trace.begin_span(pid, "write", "M", f"v{pid}.{wseq}", invoke)
    span.meta["wseq"] = wseq
    trace.end_span(span, response, None)
    return span


def _scan(trace, pid, wseqs, invoke, response):
    span = trace.begin_span(pid, "scan", "M", None, invoke)
    span.meta["wseqs"] = tuple(wseqs)
    trace.end_span(span, response, None)
    return span


def test_clean_history_passes():
    trace = Trace()
    _write(trace, 0, 1, 0, 1)
    _write(trace, 1, 1, 2, 3)
    _scan(trace, 0, (1, 1), 4, 5)
    assert check_all_properties(trace, "M", 2) == []


def test_p1_flags_value_from_the_future():
    trace = Trace()
    _scan(trace, 0, (1, 0), 0, 1)  # returns p0's write #1...
    _write(trace, 0, 1, 5, 6)  # ...which only starts later
    violations = check_p1_regularity(trace, "M", 2)
    assert violations and violations[0].property_name == "P1"


def test_p1_flags_overwritten_value():
    trace = Trace()
    _write(trace, 0, 1, 0, 1)
    _write(trace, 0, 2, 2, 3)
    _scan(trace, 0, (1, 0), 6, 9)  # stale: write #2 fully preceded the scan
    violations = check_p1_regularity(trace, "M", 2)
    assert violations and "potentially" in violations[0].description


def test_p1_flags_unknown_wseq():
    trace = Trace()
    _scan(trace, 0, (7, 0), 0, 1)
    violations = check_p1_regularity(trace, "M", 2)
    assert violations and "unknown write" in violations[0].description


def test_p1_accepts_initial_value_when_no_write_finished():
    trace = Trace()
    _write(trace, 0, 1, 0, 10)  # still overlapping the scan
    _scan(trace, 1, (0, 0), 2, 4)  # returns initial for slot 0
    assert check_p1_regularity(trace, "M", 2) == []


def test_p2_flags_non_coexisting_writes():
    trace = Trace()
    # p0's write #1 is followed by #2, which completes before p1's write
    # even begins; a view containing {p0#1, p1#1} is not a snapshot.
    _write(trace, 0, 1, 0, 1)
    _write(trace, 0, 2, 2, 3)
    _write(trace, 1, 1, 10, 11)
    _scan(trace, 0, (1, 1), 10, 20)
    violations = check_p2_snapshot(trace, "M", 2)
    assert violations and violations[0].property_name == "P2"


def test_p2_accepts_overlapping_writes():
    trace = Trace()
    _write(trace, 0, 1, 0, 5)
    _write(trace, 1, 1, 3, 8)
    _scan(trace, 0, (1, 1), 9, 10)
    assert check_p2_snapshot(trace, "M", 2) == []


def test_p3_flags_incomparable_views():
    trace = Trace()
    for pid in (0, 1):
        _write(trace, pid, 1, 0, 1)
    _scan(trace, 0, (1, 0), 2, 3)
    _scan(trace, 1, (0, 1), 2, 3)
    violations = check_p3_serializability(trace, "M", 2)
    assert violations and violations[0].property_name == "P3"


def test_p3_accepts_comparable_views():
    trace = Trace()
    _write(trace, 0, 1, 0, 1)
    _scan(trace, 0, (1, 0), 2, 3)
    _scan(trace, 1, (1, 0), 4, 5)
    _write(trace, 1, 1, 6, 7)
    _scan(trace, 0, (1, 1), 8, 9)
    assert check_p3_serializability(trace, "M", 2) == []


def test_scan_round_counts_reads_meta():
    trace = Trace()
    span = _scan(trace, 0, (0, 0), 0, 1)
    span.meta["rounds"] = 4
    assert scan_round_counts(trace, "M") == [4]


def test_assert_no_violations_raises_with_report():
    with pytest.raises(AssertionError, match="boom"):
        assert_no_violations([PropertyViolation("P1", "boom")])
    assert_no_violations([])  # no-op
