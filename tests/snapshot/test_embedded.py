"""Tests for the wait-free embedded-scan snapshot."""

import pytest

from repro.runtime import RandomScheduler, ScanStarvingAdversary, Simulation
from repro.snapshot import EmbeddedScanSnapshot, check_all_properties
from repro.snapshot.properties import assert_no_violations
from repro.verify import explore_schedules


def test_basic_write_then_scan():
    sim = Simulation(2, seed=0)
    mem = EmbeddedScanSnapshot(sim, "M", 2, initial="e")

    def factory(pid):
        def body(ctx):
            yield from mem.write(ctx, pid)
            return tuple((yield from mem.scan(ctx)))

        return body

    sim.spawn_all(factory)
    outcome = sim.run(100_000)
    for pid, view in outcome.decisions.items():
        assert view[pid] == pid


@pytest.mark.parametrize("seed", range(15))
def test_properties_hold_on_random_schedules(seed):
    sim = Simulation(3, RandomScheduler(seed=seed), seed=seed)
    mem = EmbeddedScanSnapshot(sim, "M", 3)

    def factory(pid):
        def body(ctx):
            for k in range(3):
                yield from mem.write(ctx, (pid, k))
                yield from mem.scan(ctx)

        return body

    sim.spawn_all(factory)
    sim.run(500_000)
    assert_no_violations(check_all_properties(sim.trace, "M", 3))


def test_wait_free_under_the_scan_starving_adversary():
    """The scenario that starves the arrow scan forever: here the victim's
    scan borrows a mover's embedded view and completes."""
    n = 4
    sim = Simulation(n, ScanStarvingAdversary(victim=0, period=10, seed=1), seed=1)
    mem = EmbeddedScanSnapshot(sim, "M", n)

    def factory(pid):
        def body(ctx):
            if pid == 0:
                view = yield from mem.scan(ctx)
                return tuple(view)
            k = 0
            while True:
                yield from mem.write(ctx, (pid, k))
                k += 1

        return body

    sim.spawn_all(factory)
    outcome = sim.run(20_000, raise_on_budget=False)
    assert 0 in outcome.decisions  # the scan completed despite the churn
    scans = [s for s in sim.trace.spans if s.kind == "scan" and s.pid == 0]
    assert scans[0].meta["rounds"] <= mem.max_collects_bound()


def test_every_scan_bounded_by_n_plus_two_collects():
    for seed in range(10):
        n = 4
        sim = Simulation(n, RandomScheduler(seed=seed), seed=seed)
        mem = EmbeddedScanSnapshot(sim, "M", n)

        def factory(pid):
            def body(ctx):
                for k in range(4):
                    yield from mem.write(ctx, (pid, k))
                    yield from mem.scan(ctx)

            return body

        sim.spawn_all(factory)
        sim.run(1_000_000)
        for span in sim.trace.spans:
            if span.kind == "scan" and not span.is_open:
                assert span.meta["rounds"] <= mem.max_collects_bound()


def test_exhaustive_small_configuration():
    n = 2

    def setup(sim):
        mem = EmbeddedScanSnapshot(sim, "M", n)

        def factory(pid):
            def body(ctx):
                if pid == 0:
                    yield from mem.write(ctx, "a")
                else:
                    first = yield from mem.scan(ctx)
                    return tuple(first)

            return body

        return factory

    def check(sim, outcome):
        return [str(v) for v in check_all_properties(sim.trace, "M", n)]

    # write = 2 collects (4 reads) + 1 write; scan ≤ 4 collects (8 reads).
    result = explore_schedules(n, setup, check, max_steps=24)
    assert result.exhausted and result.truncated_runs == 0
    assert result.ok, result.violations[:1]


def test_borrowed_views_are_real_snapshots():
    """Force a borrow: the scanner observes the writer move twice and must
    return the writer's embedded view, which itself satisfies P2."""
    from repro.runtime import ScriptedScheduler

    n = 2
    # Writer's write = 2 collects (2 reads each) + 1 write = 5 steps.
    # Scanner: collect (2), then interleave two full writes, collect,
    # observe movement twice, borrow.
    script = [1, 1] + [0] * 5 + [1, 1] + [0] * 5 + [1, 1, 1, 1]
    sim = Simulation(n, ScriptedScheduler(script), seed=0)
    mem = EmbeddedScanSnapshot(sim, "M", n, initial="init")

    def factory(pid):
        def body(ctx):
            if pid == 0:
                yield from mem.write(ctx, "w1")
                yield from mem.write(ctx, "w2")
            else:
                return tuple((yield from mem.scan(ctx)))

        return body

    sim.spawn_all(factory)
    outcome = sim.run(10_000)
    assert outcome.finished
    assert check_all_properties(sim.trace, "M", n) == []
