"""Exhaustive verification of the two-writer register construction.

Every schedule of small write/read mixes is enumerated and the resulting
history checked for linearizability — this subsumes the classic
stalled-reader counterexample and every other bad pattern that fits in the
workload, which is the strongest evidence (short of a proof) that the
reconstruction in :mod:`repro.registers.bloom` is atomic.
"""

from repro.registers import (
    TwoWriterRegister,
    check_register_history,
    history_from_spans,
)
from repro.verify import explore_schedules


def _check_linearizable(sim, outcome):
    spans = [s for s in sim.trace.spans if s.target == "A"]
    history = history_from_spans(spans)
    if check_register_history(history, initial="init") is None:
        return [f"non-linearizable history: {[str(s) for s in spans]}"]
    return []


def _setup_with(writer0_ops, writer1_ops, reader_reads):
    """The reader performs one warm-up operation first, so the exploration
    includes schedules where its first read is invoked after writes have
    completed — the regime where stale returns become illegal."""

    def setup(sim):
        from repro.registers import AtomicRegister

        reg = TwoWriterRegister(sim, "A", 0, 1, initial="init")
        warmup = AtomicRegister(sim, "warmup", 0)

        def factory(pid):
            def body(ctx):
                if pid == 0:
                    for k in range(writer0_ops):
                        yield from reg.write(ctx, f"w0.{k}")
                elif pid == 1:
                    for k in range(writer1_ops):
                        yield from reg.write(ctx, f"w1.{k}")
                else:
                    yield from warmup.read(ctx)
                    out = []
                    for _ in range(reader_reads):
                        out.append((yield from reg.read(ctx)))
                    return out

            return body

        return factory

    return setup


def test_exhaustive_one_write_each_one_read():
    # Depth: 2 + 2 + 4 = 8 atomic steps -> 8!/(2!2!4!) = 420 schedules.
    result = explore_schedules(
        3, _setup_with(1, 1, 1), _check_linearizable, max_steps=10
    )
    assert result.exhausted and result.truncated_runs == 0
    assert result.complete_runs == 420
    assert result.ok, result.violations[:1]


def test_exhaustive_two_writes_by_inverter_one_read():
    # The stalled-reader family: writer 1 writes twice around writer 0's
    # write while one read is in flight.  2 + 4 + 4 = 10 steps -> 3150.
    result = explore_schedules(
        3, _setup_with(1, 2, 1), _check_linearizable, max_steps=12
    )
    assert result.exhausted and result.truncated_runs == 0
    assert result.complete_runs == 3150
    assert result.ok, result.violations[:1]


def test_exhaustive_two_reads():
    # New/old inversion across two sequential reads by the same reader.
    # 2 + 2 + 7 = 11 steps -> 11!/(2!2!7!) = 1980 schedules.
    result = explore_schedules(
        3, _setup_with(1, 1, 2), _check_linearizable, max_steps=12
    )
    assert result.exhausted and result.truncated_runs == 0
    assert result.complete_runs == 1980
    assert result.ok, result.violations[:1]


def test_exhaustive_naive_reader_is_refuted():
    """The explorer *finds* the stalled-reader bug in the naive reader —
    evidence the exhaustive check has teeth.

    The reader performs a warm-up operation first, so schedules exist in
    which its read is *invoked* strictly after writer 1's first write
    completes (a read that overlaps every write may legitimately return
    the initial value, which would mask the bug).
    """

    class NaiveTwoWriterRegister(TwoWriterRegister):
        def read(self, ctx):
            span = ctx.begin_span("read", self.name)
            first0 = yield from self.cell0.read(ctx)
            first1 = yield from self.cell1.read(ctx)
            value = first0[0] if first0[1] == first1[1] else first1[0]
            ctx.end_span(span, value)
            return value

    def setup(sim):
        from repro.registers import AtomicRegister

        reg = NaiveTwoWriterRegister(sim, "A", 0, 1, initial="init")
        warmup = AtomicRegister(sim, "warmup", 0)

        def factory(pid):
            def body(ctx):
                if pid == 0:
                    yield from reg.write(ctx, "c")
                elif pid == 1:
                    yield from reg.write(ctx, "d")
                    yield from reg.write(ctx, "e")
                else:
                    yield from warmup.read(ctx)
                    return (yield from reg.read(ctx))

            return body

        return factory

    result = explore_schedules(
        3, setup, _check_linearizable, max_steps=12, stop_on_first_violation=True
    )
    assert not result.ok
    assert result.witness_schedules  # a concrete refuting schedule
