"""Tests for the exhaustive schedule explorer itself."""

import math

from repro.registers import AtomicRegister
from repro.verify import explore_schedules


def _two_writers_setup(sim):
    reg = AtomicRegister(sim, "r", 0)

    def factory(pid):
        def body(ctx):
            yield from reg.write(ctx, pid + 1)
            return (yield from reg.read(ctx))

        return body

    return factory


def test_counts_all_interleavings():
    # Two processes, two steps each: C(4, 2) = 6 complete schedules.
    result = explore_schedules(2, _two_writers_setup, lambda sim, out: [])
    assert result.complete_runs == math.comb(4, 2)
    assert result.truncated_runs == 0
    assert result.exhausted and result.ok


def test_three_processes_interleavings():
    def setup(sim):
        reg = AtomicRegister(sim, "r", 0)

        def factory(pid):
            def body(ctx):
                yield from reg.write(ctx, pid)

            return body

        return factory

    # Three single-step processes: 3! = 6 schedules.
    result = explore_schedules(3, setup, lambda sim, out: [])
    assert result.complete_runs == 6


def test_check_sees_final_state_and_finds_planted_violation():
    # "Violation": process 0's read returned its own write (i.e. process 1
    # did not overwrite in between) — planted so some schedules trip it.
    def check(sim, outcome):
        if outcome.decisions[0] == 1:
            return ["p0 read its own write"]
        return []

    result = explore_schedules(
        2, _two_writers_setup, check, stop_on_first_violation=False
    )
    assert not result.ok
    assert 0 < len(result.violations) < result.complete_runs
    assert result.witness_schedules


def test_stop_on_first_violation_short_circuits():
    result = explore_schedules(
        2,
        _two_writers_setup,
        lambda sim, out: ["always"],
        stop_on_first_violation=True,
    )
    assert result.complete_runs == 1
    assert not result.exhausted
    assert len(result.witness_schedules) == 1


def test_truncation_counted():
    def setup(sim):
        reg = AtomicRegister(sim, "r", 0)

        def factory(pid):
            def body(ctx):
                while True:
                    yield from reg.write(ctx, pid)

            return body

        return factory

    result = explore_schedules(1, setup, lambda sim, out: [], max_steps=5)
    assert result.complete_runs == 0
    assert result.truncated_runs == 1  # single schedule, cut at depth 5
    assert "truncated" in result.summary()


def test_max_runs_budget():
    result = explore_schedules(
        2, _two_writers_setup, lambda sim, out: [], max_runs=3
    )
    assert result.complete_runs == 3
    assert not result.exhausted


def test_replays_are_deterministic():
    seen = set()

    def check(sim, outcome):
        seen.add(tuple(sorted(outcome.decisions.items())))
        return []

    explore_schedules(2, _two_writers_setup, check)
    first = frozenset(seen)
    seen.clear()
    explore_schedules(2, _two_writers_setup, check)
    assert frozenset(seen) == first
