"""Tests for the fuzz harness (and a small real campaign)."""

from repro.consensus import AdsConsensus, BoundedLocalCoinConsensus
from repro.faults.plan import FaultPlan
from repro.verify.fuzz import FuzzFailure, fuzz_consensus


def test_small_campaign_on_the_paper_protocol_is_clean():
    report = fuzz_consensus(
        AdsConsensus, n_values=(2, 3), runs_per_cell=3, master_seed=7
    )
    assert report.ok, [str(f) for f in report.failures]
    assert report.runs == 2 * 4 * 3  # n values × schedulers × reps
    assert "CLEAN" in report.summary()
    assert report.steps_total > 0


def test_extra_check_is_applied():
    calls = {"count": 0}

    def memory_check(run):
        calls["count"] += 1
        if run.audit.max_magnitude > 10**9:
            return ["memory exploded"]
        return []

    from repro.runtime import RandomScheduler

    report = fuzz_consensus(
        AdsConsensus,
        n_values=(2,),
        runs_per_cell=2,
        schedulers={"random": lambda seed: RandomScheduler(seed=seed)},
        extra_check=memory_check,
        master_seed=1,
    )
    assert report.ok
    assert calls["count"] == report.runs


def test_failures_are_replayable_records():
    # Force failures with an extra check that always fires.
    report = fuzz_consensus(
        AdsConsensus,
        n_values=(2,),
        runs_per_cell=2,
        extra_check=lambda run: ["planted"],
        stop_on_first_failure=True,
        master_seed=3,
    )
    assert not report.ok
    assert len(report.failures) == 1
    failure = report.failures[0]
    assert isinstance(failure, FuzzFailure)
    assert "planted" in str(failure)
    assert failure.n == 2 and failure.inputs and failure.seed >= 0


def test_campaign_covers_bounded_local_coin_too():
    report = fuzz_consensus(
        BoundedLocalCoinConsensus,
        n_values=(3,),
        runs_per_cell=2,
        master_seed=11,
    )
    assert report.ok, [str(f) for f in report.failures]


def test_scheduler_counts_tracked():
    report = fuzz_consensus(AdsConsensus, n_values=(2,), runs_per_cell=2,
                            master_seed=5)
    assert set(report.by_scheduler) == {"random", "round-robin", "lockstep", "split"}
    assert all(v == 2 for v in report.by_scheduler.values())


def test_recovery_runs_are_exercised_and_clean():
    report = fuzz_consensus(
        AdsConsensus,
        n_values=(2, 3),
        runs_per_cell=3,
        crash_probability=1.0,
        recovery_probability=1.0,
        master_seed=17,
    )
    assert report.ok, [str(f) for f in report.failures]
    assert report.recovery_runs > 0
    assert "with recoveries" in report.summary()


def test_recovery_is_skipped_for_protocols_without_support():
    from repro.consensus import AspnesHerlihyConsensus
    from repro.runtime import RandomScheduler

    # Restarting its program would re-propose over live state, so the fuzz
    # grid must never attach a recovery plan to it.
    assert not AspnesHerlihyConsensus.supports_recovery
    # The strip-based protocols keep all state in the shared cell and
    # inherit the ADS recovery path, so they do support recovery.
    assert BoundedLocalCoinConsensus.supports_recovery
    report = fuzz_consensus(
        AspnesHerlihyConsensus,
        n_values=(2,),
        runs_per_cell=3,
        schedulers={"random": lambda seed: RandomScheduler(seed=seed)},
        crash_probability=1.0,
        recovery_probability=1.0,
        master_seed=2,
    )
    assert report.ok, [str(f) for f in report.failures]
    assert report.recovery_runs == 0


def test_fault_cell_counts_detections_not_failures():
    report = fuzz_consensus(
        AdsConsensus,
        n_values=(2,),
        runs_per_cell=3,
        crash_probability=0.0,
        fault_probability=1.0,
        master_seed=23,
    )
    # Injected faults may break validation, but faulty runs never land in
    # report.failures — they land in the detection counters.
    assert report.ok, [str(f) for f in report.failures]
    assert report.fault_runs == report.runs
    assert report.fault_injections > 0
    assert "with faults" in report.summary()


def test_degraded_fault_free_run_is_reported_as_failure():
    # A tiny budget forces a degraded outcome; without faults that is a
    # (liveness) failure, surfaced with the diagnosis instead of a raise.
    report = fuzz_consensus(
        AdsConsensus,
        n_values=(3,),
        runs_per_cell=1,
        crash_probability=0.0,
        max_steps=30,
        master_seed=1,
    )
    assert not report.ok
    assert report.degraded_runs == report.runs
    failure = report.failures[0]
    assert failure.degraded
    assert any("degraded" in p for p in failure.problems)


def test_expect_fault_detection_flags_a_detection_hole():
    # Rate-0 plans inject nothing, so no detections and no hole; a plan
    # that injects but is fully masked must surface as a campaign failure.
    report = fuzz_consensus(
        AdsConsensus,
        n_values=(2,),
        runs_per_cell=2,
        crash_probability=0.0,
        fault_probability=1.0,
        # Stale reads are masked by the handshake scan: detections stay 0.
        fault_plan_factory=lambda rng: FaultPlan.single(
            "stale_read", rate=0.01, targets=("mem.V",), seed=rng.randrange(2**31)
        ),
        expect_fault_detection=True,
        master_seed=29,
    )
    if report.fault_injections > 0 and report.fault_detections == 0:
        assert not report.ok
        assert "nothing was detected" in str(report.failures[-1])
