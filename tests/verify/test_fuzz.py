"""Tests for the fuzz harness (and a small real campaign)."""

from repro.consensus import AdsConsensus, BoundedLocalCoinConsensus
from repro.verify.fuzz import FuzzFailure, fuzz_consensus


def test_small_campaign_on_the_paper_protocol_is_clean():
    report = fuzz_consensus(
        AdsConsensus, n_values=(2, 3), runs_per_cell=3, master_seed=7
    )
    assert report.ok, [str(f) for f in report.failures]
    assert report.runs == 2 * 4 * 3  # n values × schedulers × reps
    assert "CLEAN" in report.summary()
    assert report.steps_total > 0


def test_extra_check_is_applied():
    calls = {"count": 0}

    def memory_check(run):
        calls["count"] += 1
        if run.audit.max_magnitude > 10**9:
            return ["memory exploded"]
        return []

    from repro.runtime import RandomScheduler

    report = fuzz_consensus(
        AdsConsensus,
        n_values=(2,),
        runs_per_cell=2,
        schedulers={"random": lambda seed: RandomScheduler(seed=seed)},
        extra_check=memory_check,
        master_seed=1,
    )
    assert report.ok
    assert calls["count"] == report.runs


def test_failures_are_replayable_records():
    # Force failures with an extra check that always fires.
    report = fuzz_consensus(
        AdsConsensus,
        n_values=(2,),
        runs_per_cell=2,
        extra_check=lambda run: ["planted"],
        stop_on_first_failure=True,
        master_seed=3,
    )
    assert not report.ok
    assert len(report.failures) == 1
    failure = report.failures[0]
    assert isinstance(failure, FuzzFailure)
    assert "planted" in str(failure)
    assert failure.n == 2 and failure.inputs and failure.seed >= 0


def test_campaign_covers_bounded_local_coin_too():
    report = fuzz_consensus(
        BoundedLocalCoinConsensus,
        n_values=(3,),
        runs_per_cell=2,
        master_seed=11,
    )
    assert report.ok, [str(f) for f in report.failures]


def test_scheduler_counts_tracked():
    report = fuzz_consensus(AdsConsensus, n_values=(2,), runs_per_cell=2,
                            master_seed=5)
    assert set(report.by_scheduler) == {"random", "round-robin", "lockstep", "split"}
    assert all(v == 2 for v in report.by_scheduler.values())
