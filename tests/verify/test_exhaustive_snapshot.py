"""Exhaustive verification of the scannable memory's P1–P3 (§2).

Small write/scan workloads are explored over *every* schedule; the trace
checkers validate regularity, snapshot and serializability on each complete
execution — the empirical closure of Lemmas 2.1–2.4 for these
configurations.
"""

from repro.snapshot import ArrowScannableMemory, check_all_properties
from repro.verify import explore_schedules

N = 2


def _check_properties(sim, outcome):
    return [str(v) for v in check_all_properties(sim.trace, "M", N)]


def _setup_writer_vs_scanner(writer_writes, scanner_scans):
    def setup(sim):
        mem = ArrowScannableMemory(sim, "M", N)

        def factory(pid):
            def body(ctx):
                if pid == 0:
                    for k in range(writer_writes):
                        yield from mem.write(ctx, k)
                else:
                    views = []
                    for _ in range(scanner_scans):
                        views.append((yield from mem.scan(ctx)))
                    return views

            return body

        return factory

    return setup


def test_exhaustive_one_write_one_scan():
    # Writer: 2 steps.  Scan: 4 steps per round, with retries whenever the
    # write interferes — depth bounded by 14 covers every interleaving.
    result = explore_schedules(
        N, _setup_writer_vs_scanner(1, 1), _check_properties, max_steps=14
    )
    assert result.exhausted and result.truncated_runs == 0
    assert result.complete_runs > 10
    assert result.ok, result.violations[:1]


def test_exhaustive_two_writes_one_scan():
    # Each write can invalidate two collect rounds (its arrow flip kills
    # one, its value publication the next), so two writes force up to five
    # rounds: 4 writer steps + 5×4 scan steps = 24.
    result = explore_schedules(
        N, _setup_writer_vs_scanner(2, 1), _check_properties, max_steps=26
    )
    assert result.exhausted and result.truncated_runs == 0
    assert result.ok, result.violations[:1]


def test_exhaustive_one_write_two_scans():
    # Serializability (P3) needs at least two scans to bite.
    result = explore_schedules(
        N, _setup_writer_vs_scanner(1, 2), _check_properties, max_steps=18
    )
    assert result.exhausted and result.truncated_runs == 0
    assert result.ok, result.violations[:1]


def test_exhaustive_both_write_and_scan():
    # Symmetric: each process writes once then scans once.
    def setup(sim):
        mem = ArrowScannableMemory(sim, "M", N)

        def factory(pid):
            def body(ctx):
                yield from mem.write(ctx, pid)
                return tuple((yield from mem.scan(ctx)))

            return body

        return factory

    result = explore_schedules(N, setup, _check_properties, max_steps=20)
    assert result.exhausted and result.truncated_runs == 0
    assert result.ok, result.violations[:1]
    # Scans must additionally observe both written values in the end state:
    # nobody writes after its scan, so the LAST scan to linearize sees both.


def test_checker_has_teeth_on_a_broken_memory():
    """Sanity: a deliberately broken scan (one collect, no arrows, no
    double-check) must be caught on some schedule.

    Three processes are needed: with one other slot a single atomic read
    *is* a legal snapshot; with two, the collect can pair a value
    overwritten long ago with a much later one — a P2 violation:
    p2 reads V0 = a; p0 completes write b; p1 completes write c; p2 reads
    V1 = c; the view (a, c) mixes non-coexisting writes.
    """
    n = 3

    class BrokenArrowMemory(ArrowScannableMemory):
        def scan(self, ctx):
            i = ctx.pid
            span = ctx.begin_span("scan", self.name)
            view: list = [None] * self.n
            wseqs: list = [0] * self.n
            for j in range(self.n):
                if j == i:
                    view[j] = self._last_written[i]
                    wseqs[j] = self._wseq[i]
                else:
                    cell = yield from self.V[j].read(ctx)
                    view[j] = cell[0]
                    wseqs[j] = cell[2]
            span.meta["wseqs"] = tuple(wseqs)
            span.meta["rounds"] = 1
            ctx.end_span(span, tuple(view))
            return view

    def check(sim, outcome):
        return [str(v) for v in check_all_properties(sim.trace, "M", n)]

    def setup(sim):
        mem = BrokenArrowMemory(sim, "M", n)

        def factory(pid):
            def body(ctx):
                if pid == 0:
                    yield from mem.write(ctx, "a")
                    yield from mem.write(ctx, "b")
                elif pid == 1:
                    yield from mem.write(ctx, "c")
                else:
                    return tuple((yield from mem.scan(ctx)))

            return body

        return factory

    result = explore_schedules(
        n, setup, check, max_steps=16, stop_on_first_violation=True
    )
    assert not result.ok  # P2 (non-coexisting pair) trips on some schedule
