"""Tests for the crash-recovery process model."""

import pytest

from repro.consensus.ads import AdsConsensus
from repro.consensus.validation import validate_run
from repro.registers import AtomicRegister
from repro.runtime import (
    CrashPlan,
    RecoveryPlan,
    RoundRobinScheduler,
    Simulation,
)
from repro.snapshot.properties import check_all_properties
from repro.verify.fuzz import fuzz_consensus


def test_restart_requires_a_crashed_process():
    sim = Simulation(1, seed=0)
    reg = AtomicRegister(sim, "r", 0)

    def program(ctx):
        yield from reg.write(ctx, 1)

    sim.spawn(0, program)
    with pytest.raises(RuntimeError, match="crashed"):
        sim.restart(0)


def test_restart_loses_local_state_but_keeps_shared_memory():
    sim = Simulation(1, seed=0)
    reg = AtomicRegister(sim, "r", 0)
    incarnations = []

    def program(ctx):
        incarnations.append((ctx.incarnation, dict(ctx.local)))
        ctx.local["progress"] = "half-done"
        yield from reg.write(ctx, reg.peek() + 1)
        yield from reg.write(ctx, reg.peek() + 1)
        return reg.peek()

    sim.spawn(0, program)
    sim.step()  # first write lands
    sim.crash(0)
    sim.restart(0)
    outcome = sim.run()
    # The new incarnation started the program over with empty locals,
    # while the register kept the first incarnation's write.
    assert incarnations == [(0, {}), (1, {})]
    assert outcome.decisions == {0: 3}
    assert outcome.restarts == {0: 1}


def test_recovery_plan_entry_fires_once_and_crash_is_not_reapplied():
    sim = Simulation(
        2,
        RoundRobinScheduler(),
        seed=0,
        crash_plan=CrashPlan({1: 2}),
        recovery_plan=RecoveryPlan({1: 4}),
    )
    reg = AtomicRegister(sim, "r", 0)

    def factory(pid):
        def body(ctx):
            for _ in range(5):
                yield from reg.write(ctx, pid)
            return pid

        return body

    sim.spawn_all(factory)
    outcome = sim.run()
    # The crash entry fired before the restart; were it rescanned after the
    # restart, pid 1 would be killed again and never decide.
    assert outcome.decisions == {0: 0, 1: 1}
    assert outcome.crashed == set()
    assert outcome.restarts == {1: 1}


def test_restart_revives_a_fully_crashed_simulation():
    # Both processes crash before the restart step is reachable by global
    # time; the simulation must warp to the restart instead of deadlocking.
    sim = Simulation(
        2,
        RoundRobinScheduler(),
        seed=0,
        crash_plan=CrashPlan({0: 1, 1: 1}),
        recovery_plan=RecoveryPlan({0: 500}),
    )
    reg = AtomicRegister(sim, "r", 0)

    def factory(pid):
        def body(ctx):
            for _ in range(3):
                yield from reg.write(ctx, pid)
            return pid

        return body

    sim.spawn_all(factory)
    outcome = sim.run(max_steps=1_000)
    assert outcome.decisions == {0: 0}
    assert outcome.crashed == {1}
    assert outcome.restarts == {0: 1}


def test_restarted_incarnation_draws_a_fresh_rng_stream():
    draws = []
    sim = Simulation(
        1, seed=0, crash_plan=CrashPlan({0: 1}), recovery_plan=RecoveryPlan({0: 1})
    )
    reg = AtomicRegister(sim, "r", 0)

    def program(ctx):
        draws.append((ctx.incarnation, ctx.rng.random()))
        yield from reg.write(ctx, 1)
        yield from reg.write(ctx, 2)

    sim.spawn(0, program)
    sim.run()
    assert [inc for inc, _ in draws] == [0, 1]
    assert draws[0][1] != draws[1][1]


def test_ads_crash_recovery_preserves_safety_and_snapshot_properties():
    proto = AdsConsensus(ghost_wseqs=True)
    run = proto.run(
        [0, 1, 1],
        seed=7,
        crash_plan=CrashPlan({0: 40, 1: 90}),
        recovery_plan=RecoveryPlan({0: 200, 1: 350}),
        record_spans=True,
        keep_simulation=True,
    )
    assert run.outcome.restarts == {0: 1, 1: 1}
    report = validate_run(run)
    assert report.ok, report.problems
    assert check_all_properties(run.simulation.trace, "mem", run.n) == []


def test_ads_recovering_before_its_first_write_reuses_its_input():
    # pid 0 crashes at step 0 (it never wrote); on restart it must propose
    # its original input or validity could break on agreeing inputs.
    proto = AdsConsensus()
    run = proto.run(
        [1, 1],
        seed=3,
        crash_plan=CrashPlan({0: 0}),
        recovery_plan=RecoveryPlan({0: 50}),
    )
    assert validate_run(run).ok
    assert run.decisions[0] == 1


def test_recovery_fuzz_grid_is_clean():
    report = fuzz_consensus(
        AdsConsensus,
        n_values=(2, 3),
        runs_per_cell=3,
        crash_probability=1.0,
        recovery_probability=1.0,
        master_seed=13,
    )
    assert report.ok, [str(f) for f in report.failures]
    assert report.recovery_runs > 0
