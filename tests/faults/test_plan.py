"""Tests for fault plans and the value corruptor."""

import random
from dataclasses import dataclass

import pytest

from repro.faults.plan import FAULT_KINDS, FaultPlan, corrupt_value


def test_single_activates_exactly_one_kind():
    for kind in FAULT_KINDS:
        plan = FaultPlan.single(kind, rate=0.5)
        assert plan.active_kinds() == (kind,)
        assert plan.rate_of(kind) == 0.5
        assert plan.enabled()


def test_single_rejects_unknown_kind():
    with pytest.raises(ValueError, match="unknown fault kind"):
        FaultPlan.single("bit_flip")


def test_default_plan_is_inactive():
    plan = FaultPlan()
    assert not plan.enabled()
    assert plan.active_kinds() == ()


def test_targets_are_prefix_matched():
    plan = FaultPlan.single("lost_write", targets=("mem.V",))
    assert plan.targets_register("mem.V[0]")
    assert plan.targets_register("mem.V[3]")
    assert not plan.targets_register("mem.A[0,1]")
    assert not plan.targets_register("other")
    # Empty targets means every register.
    assert FaultPlan.single("lost_write").targets_register("anything")


def test_random_plan_is_single_kind_low_rate():
    rng = random.Random(3)
    plan = FaultPlan.random(rng, targets=("mem.",), max_rate=0.05)
    assert len(plan.active_kinds()) == 1
    assert 0 < plan.rate_of(plan.active_kinds()[0]) <= 0.05


def test_describe_mentions_active_kinds_and_targets():
    text = FaultPlan.single("stale_read", targets=("r",), max_injections=3).describe()
    assert "stale_read" in text and "targets=r" in text and "max=3" in text


@dataclass(frozen=True)
class _Cell:
    pref: int
    coins: tuple


def test_corrupt_value_always_differs():
    rng = random.Random(0)
    for value in (True, 0, 7, -3, 1.5, None, "x", (1, 2, 3), [4, 5], _Cell(1, (0, 0))):
        assert corrupt_value(value, rng) != value


def test_corrupt_value_mutates_one_dataclass_field():
    rng = random.Random(1)
    cell = _Cell(pref=1, coins=(0, 2))
    mutated = corrupt_value(cell, rng)
    assert isinstance(mutated, _Cell)
    changed = sum(
        getattr(mutated, name) != getattr(cell, name) for name in ("pref", "coins")
    )
    assert changed == 1


def test_corrupt_value_is_deterministic_per_rng_seed():
    results = [corrupt_value((1, 2, 3), random.Random(9)) for _ in range(2)]
    assert results[0] == results[1]
