"""Tests for the register-level fault injector."""

from repro.faults.plan import FaultPlan
from repro.registers import AtomicRegister
from repro.runtime import RoundRobinScheduler, Simulation


def _write_read_scenario(plan, seed=0):
    """pid 0 writes 1,2,3 to ``r``; pid 1 reads it three times."""
    sim = Simulation(
        2,
        scheduler=RoundRobinScheduler(),
        seed=seed,
        record_events=True,
        faults=plan,
    )
    reg = AtomicRegister(sim, "r", initial=0, writers=[0])
    seen = []

    def factory(pid):
        if pid == 0:
            def writer(ctx):
                for v in (1, 2, 3):
                    yield from reg.write(ctx, v)
            return writer

        def reader(ctx):
            for _ in range(3):
                seen.append((yield from reg.read(ctx)))
        return reader

    sim.spawn_all(factory)
    sim.run(100)
    return sim, reg, seen


def test_stale_read_returns_previous_value():
    sim, reg, seen = _write_read_scenario(
        FaultPlan.single("stale_read", targets=("r",))
    )
    # Reads strictly alternate with writes; each returns the value before
    # the latest write instead of the current one.
    assert seen == [0, 1, 2]
    assert reg.peek() == 3  # the register itself is untouched
    assert sim.faults.injected_by_kind()["stale_read"] == 3


def test_lost_write_never_lands():
    sim, reg, seen = _write_read_scenario(
        FaultPlan.single("lost_write", targets=("r",))
    )
    assert reg.peek() == 0
    assert seen == [0, 0, 0]
    assert sim.faults.injected_by_kind()["lost_write"] == 3


def test_corrupt_write_stores_a_different_value():
    sim, reg, seen = _write_read_scenario(
        FaultPlan.single("corrupt_write", targets=("r",))
    )
    assert reg.peek() != 3
    assert seen != [1, 2, 3]
    assert sim.faults.injected_by_kind()["corrupt_write"] == 3


def test_event_trace_records_what_the_process_saw():
    sim, _, seen = _write_read_scenario(
        FaultPlan.single("stale_read", targets=("r",))
    )
    read_events = [e for e in sim.trace.events if e.kind == "read"]
    assert [e.value for e in read_events] == seen


def test_untargeted_registers_are_untouched():
    sim, reg, seen = _write_read_scenario(
        FaultPlan.single("lost_write", targets=("other",))
    )
    assert reg.peek() == 3
    assert seen == [1, 2, 3]
    assert sim.faults.injected == 0


def test_max_injections_caps_the_budget():
    sim, reg, _ = _write_read_scenario(
        FaultPlan.single("lost_write", targets=("r",), max_injections=1)
    )
    assert sim.faults.injected == 1
    assert reg.peek() == 3  # later writes landed


def test_metrics_count_injections_per_kind():
    sim, _, _ = _write_read_scenario(
        FaultPlan.single("lost_write", targets=("r",))
    )
    snapshot = sim.metrics.snapshot()
    assert snapshot.counters["faults.injected{kind=lost_write}"] == 3
    assert snapshot.counter_total("faults.injected") == 3


def test_fault_plan_replay_is_deterministic():
    """Two identical runs inject byte-identical faults and leave identical
    traces — a failing fault campaign is always replayable."""
    plan = FaultPlan(
        seed=5, stale_read_rate=0.4, corrupt_write_rate=0.3, targets=("r",)
    )

    def execute():
        sim, reg, seen = _write_read_scenario(plan, seed=11)
        return (
            [
                (r.step, r.pid, r.register, r.kind, r.detail)
                for r in sim.faults.records
            ],
            [
                (e.step, e.pid, e.kind, e.target, repr(e.value))
                for e in sim.trace.events
            ],
            seen,
            reg.peek(),
        )

    assert execute() == execute()
