"""Tests for the checker mutation-testing campaign."""

from repro.faults.campaign import CampaignCell, run_mutation_campaign
from repro.faults.plan import FAULT_KINDS


def test_campaign_has_no_detection_holes():
    report = run_mutation_campaign(seed=0, consensus_max_steps=100_000)
    assert report.holes == [], report.to_json()
    assert report.ok, report.to_json()
    # Every fault class is caught by at least one checker layer.
    for kind, count in report.detections_by_kind().items():
        assert count >= 1, f"{kind} was never detected"


def test_register_layer_detects_every_fault_class():
    report = run_mutation_campaign(seed=0, consensus_max_steps=100_000)
    register_cells = {
        c.fault: c for c in report.cells if c.layer == "register" and c.fault != "none"
    }
    assert set(register_cells) == set(FAULT_KINDS)
    for cell in register_cells.values():
        assert cell.detected and cell.expected and cell.injections > 0


def test_control_cells_stay_clean():
    report = run_mutation_campaign(seed=0, consensus_max_steps=100_000)
    controls = [c for c in report.cells if c.fault == "none"]
    assert len(controls) == 2  # register + snapshot
    for cell in controls:
        assert not cell.detected and cell.injections == 0 and cell.ok


def test_campaign_is_deterministic_per_seed():
    first = run_mutation_campaign(seed=4, consensus_max_steps=50_000)
    second = run_mutation_campaign(seed=4, consensus_max_steps=50_000)
    assert first.to_json() == second.to_json()


def test_cell_ok_semantics():
    assert CampaignCell("none", "register", "lin", detected=False, expected=False).ok
    assert not CampaignCell("none", "register", "lin", detected=True, expected=False).ok
    assert CampaignCell(
        "lost_write", "register", "lin", detected=True, expected=True
    ).ok
    assert not CampaignCell(
        "lost_write", "register", "lin", detected=False, expected=True
    ).ok
    # Observational cells are ok either way.
    assert CampaignCell(
        "corrupt_write", "consensus", "v", detected=False, expected=False
    ).ok


def test_json_report_round_trips_the_essentials():
    import json

    report = run_mutation_campaign(seed=0, consensus_max_steps=50_000)
    payload = json.loads(report.to_json())
    assert payload["seed"] == 0
    assert payload["ok"] is True
    assert set(payload["detections_by_kind"]) == set(FAULT_KINDS)
    assert len(payload["cells"]) == len(report.cells)
