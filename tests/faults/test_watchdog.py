"""Tests for the online starvation/livelock watchdog."""

from repro.faults.watchdog import Watchdog
from repro.registers import AtomicRegister
from repro.runtime import RandomScheduler, RoundRobinScheduler, Simulation


def _looping_setup(sim, iterations):
    reg = AtomicRegister(sim, "r", 0)

    def factory(pid):
        def body(ctx):
            for _ in range(iterations):
                yield from reg.write(ctx, pid)
            return pid

        return body

    return factory


def test_starvation_alert_fires_for_an_unscheduled_process():
    # Weight 0 starves pid 1 while pid 0 loops.
    sim = Simulation(2, RandomScheduler(seed=0, weights={1: 0.0}), seed=0)
    sim.spawn_all(_looping_setup(sim, iterations=10_000))
    watchdog = Watchdog(starvation_window=200, progress_window=10**9,
                        check_every=10)
    outcome = sim.run(max_steps=1_000, raise_on_budget=False, watchdog=watchdog)
    kinds = [a.kind for a in outcome.alerts]
    assert kinds.count("starvation") == 1  # fires once per pid, not per check
    assert "process 1" in outcome.alerts[0].detail


def test_livelock_alert_fires_when_progress_counters_freeze():
    # Endless register writes move no consensus progress counter.
    sim = Simulation(2, RoundRobinScheduler(), seed=0)
    sim.spawn_all(_looping_setup(sim, iterations=10**9))
    watchdog = Watchdog(starvation_window=10**9, progress_window=300,
                        check_every=10)
    outcome = sim.run(max_steps=2_000, raise_on_budget=False, watchdog=watchdog)
    assert [a.kind for a in outcome.alerts] == ["livelock"]
    assert "no progress" in outcome.alerts[0].detail


def test_halt_on_stops_the_run_early_with_a_degraded_outcome():
    sim = Simulation(2, RoundRobinScheduler(), seed=0)
    sim.spawn_all(_looping_setup(sim, iterations=10**9))
    watchdog = Watchdog(
        starvation_window=10**9,
        progress_window=300,
        check_every=10,
        halt_on=("livelock",),
    )
    outcome = sim.run(max_steps=1_000_000, raise_on_budget=False, watchdog=watchdog)
    assert outcome.degraded
    assert outcome.total_steps < 1_000_000
    assert "watchdog halt" in outcome.failure_reason
    assert "livelock" in outcome.failure_reason


def test_healthy_run_raises_no_alerts():
    sim = Simulation(3, RoundRobinScheduler(), seed=0)
    sim.spawn_all(_looping_setup(sim, iterations=50))
    watchdog = Watchdog(starvation_window=60, progress_window=200, check_every=5)
    outcome = sim.run(watchdog=watchdog)
    assert outcome.finished
    assert not outcome.degraded
    assert outcome.alerts == []


def test_reset_clears_state_between_runs():
    watchdog = Watchdog(starvation_window=10**9, progress_window=300,
                        check_every=10)
    for _ in range(2):
        sim = Simulation(2, RoundRobinScheduler(), seed=0)
        sim.spawn_all(_looping_setup(sim, iterations=10**9))
        outcome = sim.run(max_steps=2_000, raise_on_budget=False, watchdog=watchdog)
        # Without the reset in run(), the second run would never re-fire.
        assert [a.kind for a in outcome.alerts] == ["livelock"]
