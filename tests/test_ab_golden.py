"""A/B equivalence golden tests (the hot-path overhaul's contract).

``tests/golden/ab_golden.json`` was recorded *before* the hot-path
overhaul.  Each test regenerates one section with the current code and
asserts every value — decisions, step counts, audit numbers, metrics /
causal-report / merged-snapshot digests — is bit-identical.  A failure
here means an optimisation changed observable behaviour: RNG draw order,
logical-clock ticks, serialization, or the schedule itself.

If a change *intentionally* alters semantics, regenerate with
``PYTHONPATH=src python tests/golden/generate_ab_golden.py`` and commit
the diff with the explanation.
"""

import json
import pathlib

from tests.golden import generate_ab_golden as gen

GOLDEN = json.loads(gen.GOLDEN_PATH.read_text())


def test_golden_file_is_normalised():
    # Regenerated files must diff clean: sorted keys, indent 2, newline.
    raw = gen.GOLDEN_PATH.read_text()
    assert raw == json.dumps(GOLDEN, indent=2, sort_keys=True) + "\n"
    assert gen.GOLDEN_PATH == pathlib.Path(gen.__file__).parent / "ab_golden.json"


def test_consensus_outcomes_metrics_and_audits_unchanged():
    assert gen.consensus_goldens() == GOLDEN["consensus"]


def test_disabled_instrumentation_matches_instrumented_runs():
    rows = gen.disabled_instrumentation_golden()
    assert rows == GOLDEN["disabled_instrumentation"]
    # The instrumentation-off runs must agree with the instrumented
    # goldens seed-by-seed: metrics can never steer the schedule.
    by_seed = {row["seed"]: row for row in GOLDEN["consensus"]}
    for row in rows:
        full = by_seed[row["seed"]]
        assert row["decisions"] == full["decisions"]
        assert row["total_steps"] == full["total_steps"]


def test_causal_report_digest_unchanged():
    assert gen.causal_golden() == GOLDEN["causal"]


def test_fuzz_grid_unchanged():
    assert gen.fuzz_golden() == GOLDEN["fuzz"]


def test_mutation_campaign_digest_unchanged():
    assert gen.campaign_golden() == GOLDEN["campaign"]


def test_serial_and_parallel_merges_unchanged():
    assert gen.parallel_merge_golden() == GOLDEN["parallel_merge"]
