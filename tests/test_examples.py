"""Smoke tests: every example script runs green end-to-end.

Examples are a deliverable; these tests keep them from rotting.  Each is
executed in a subprocess with small parameters where the script accepts
them.
"""

import pathlib
import subprocess
import sys

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def _run(script: str, *args: str, timeout: int = 240) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, f"{script} failed:\n{result.stderr[-2000:]}"
    return result.stdout


def test_examples_directory_contents():
    scripts = sorted(p.name for p in EXAMPLES.glob("*.py"))
    assert "quickstart.py" in scripts
    assert len(scripts) >= 3  # the deliverable minimum (we ship more)


def test_quickstart():
    out = _run("quickstart.py", "7")
    assert "decisions" in out
    assert "safe      : True" in out


def test_adversarial_showdown_small():
    out = _run("adversarial_showdown.py", "3", "2")
    assert "LOCKSTEP" in out
    assert "ads" in out and "local-coin" in out


def test_shared_coin_demo_small():
    out = _run("shared_coin_demo.py", "2", "6")
    assert "agreement rate" in out
    assert "WALK-BALANCING" in out


def test_snapshot_playground():
    out = _run("snapshot_playground.py")
    assert "ALL HOLD" in out
    assert "starves" in out


def test_rounds_strip_visualizer():
    out = _run("rounds_strip_visualizer.py", "10", "3")
    assert "Claim 4.1" in out or "game == graph == counters" in out


def test_crash_fault_tolerance():
    out = _run("crash_fault_tolerance.py")
    assert "all but one" in out
    assert "True" in out


def test_universal_objects():
    out = _run("universal_objects.py", "1")
    assert "sticky bit" in out
    assert "fetch&cons" in out


def test_virtual_rounds_demo():
    out = _run("virtual_rounds_demo.py", "3")
    assert "ALL HOLD" in out
    assert "virtual rounds" in out


def test_model_checking_tour():
    out = _run("model_checking_tour.py")
    assert "exhaustive" in out
    assert "witness schedule" in out
    assert "inversion schedule" in out
