"""Tests for the command-line interface."""

import pytest

from repro.cli import (
    _parse_crashes,
    _parse_inputs,
    _parse_restarts,
    build_parser,
    main,
)


def test_parse_inputs():
    assert _parse_inputs("0,1,1") == [0, 1, 1]
    assert _parse_inputs("1") == [1]
    assert _parse_inputs("0,1,") == [0, 1]


def test_parse_crashes():
    plan = _parse_crashes(["0:100", "2"])
    assert plan.crash_at == {0: 100, 2: 0}


def test_parse_restarts():
    plan = _parse_restarts(["0:300", "2"])
    assert plan.restart_at == {0: 300, 2: 0}
    assert _parse_restarts([]) is None


def test_run_command_safe_exit_zero(capsys):
    code = main(["run", "--inputs", "0,1", "--seed", "3"])
    out = capsys.readouterr().out
    assert code == 0
    assert "decisions" in out
    assert "safety    : OK" in out


def test_run_command_every_protocol(capsys):
    for protocol in ("ads", "aspnes-herlihy", "local-coin", "atomic-coin"):
        code = main(["run", "--protocol", protocol, "--inputs", "1,0", "--seed", "1"])
        assert code == 0


def test_run_command_with_crash_and_lockstep(capsys):
    code = main(
        [
            "run",
            "--inputs",
            "0,1,1",
            "--seed",
            "2",
            "--scheduler",
            "lockstep",
            "--crash",
            "1:50",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "crashed   : [1]" in out


def test_run_command_timeline(capsys):
    code = main(["run", "--inputs", "0,1", "--seed", "5", "--timeline"])
    out = capsys.readouterr().out
    assert code == 0
    assert "scan" in out and "|" in out


def test_run_command_with_restart(capsys):
    code = main(
        [
            "run",
            "--inputs",
            "0,1,1",
            "--seed",
            "7",
            "--crash",
            "0:40",
            "--restart",
            "0:300",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "restarts  : {0: 1}" in out
    assert "crashed   : -" in out


def test_chaos_command_writes_json_report(tmp_path, capsys):
    report = tmp_path / "chaos.json"
    code = main(["chaos", "--runs-per-cell", "2", "--json", str(report)])
    out = capsys.readouterr().out
    assert code == 0
    assert "checker mutation campaign" in out
    assert "chaos: OK" in out
    import json

    payload = json.loads(report.read_text())
    assert payload["ok"] is True
    assert payload["campaign"]["holes"] == []
    assert payload["recovery_fuzz"]["runs"] > 0


def test_coin_command(capsys):
    code = main(["coin", "--n", "3", "--reps", "5"])
    out = capsys.readouterr().out
    assert code == 0
    assert "disagree rate" in out


def test_coin_command_adversary(capsys):
    assert main(["coin", "--n", "2", "--reps", "3", "--adversary"]) == 0


def test_strip_command(capsys):
    code = main(["strip", "--moves", "8", "--seed", "1"])
    out = capsys.readouterr().out
    assert code == 0
    assert out.count("claim-4.1 ok") == 8
    assert "final graph" in out


def test_experiments_command(capsys):
    code = main(["experiments"])
    out = capsys.readouterr().out
    assert code == 0
    for experiment_id in ("E1", "E12"):
        assert experiment_id in out


def test_profile_command_prints_throughput_and_sections(capsys):
    code = main(["profile", "--runs", "1", "--repeats", "1"])
    out = capsys.readouterr().out
    assert code == 0
    for workload in ("consensus", "scan", "coin"):
        assert workload in out
    for mode in ("bare", "metrics", "trace"):
        assert mode in out
    assert "wall-clock per section" in out
    assert "bare consensus throughput:" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_parser_help_mentions_commands():
    parser = build_parser()
    help_text = parser.format_help()
    for command in ("run", "coin", "strip", "experiments"):
        assert command in help_text


def test_report_command_prints_recorded_tables(capsys, tmp_path):
    (tmp_path / "e1.txt").write_text("E1 table\nrow\n")
    code = main(["report", "--results-dir", str(tmp_path)])
    out = capsys.readouterr().out
    assert code == 0
    assert "E1 table" in out


def test_report_command_without_results(capsys, tmp_path):
    code = main(["report", "--results-dir", str(tmp_path / "nope")])
    assert code == 1
    assert "no recorded results" in capsys.readouterr().out


def test_metrics_command_prints_snapshot_table(capsys):
    code = main(["metrics", "--inputs", "0,1", "--seed", "0"])
    out = capsys.readouterr().out
    assert code == 0
    assert "metrics snapshot" in out
    assert "consensus.decisions" in out
    assert "runtime.steps{pid=0}" in out


def test_metrics_command_json_is_deterministic(capsys):
    assert main(["metrics", "--inputs", "0,1", "--seed", "4", "--json"]) == 0
    first = capsys.readouterr().out
    assert main(["metrics", "--inputs", "0,1", "--seed", "4", "--json"]) == 0
    second = capsys.readouterr().out
    assert first == second
    import json

    payload = json.loads(first)
    assert set(payload) == {"counters", "gauges", "histograms"}


def test_metrics_command_filter(capsys):
    code = main(
        ["metrics", "--inputs", "0,1", "--seed", "0", "--filter", "consensus."]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "consensus.coin_flips" in out
    assert "registers.reads" not in out


def test_metrics_command_series_every_records_series(capsys):
    code = main(
        ["metrics", "--inputs", "0,1", "--seed", "0", "--series-every", "8"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "series" in out
    assert "runtime.steps{pid=0}" in out


def test_metrics_command_series_json_round_trips(capsys):
    args = ["metrics", "--inputs", "0,1", "--seed", "4", "--series-every", "8"]
    assert main([*args, "--json"]) == 0
    first = capsys.readouterr().out
    assert main([*args, "--json"]) == 0
    assert first == capsys.readouterr().out
    import json

    payload = json.loads(first)
    assert set(payload) == {"counters", "gauges", "histograms", "series"}
    some_series = payload["series"]["runtime.steps{pid=0}"]
    assert some_series["every"] == 8
    assert some_series["points"]


def test_report_command_out_writes_selfcontained_html(capsys, tmp_path):
    target = tmp_path / "report.html"
    args = [
        "report",
        "--out",
        str(target),
        "--inputs",
        "0,1",
        "--seed",
        "3",
        "--series-every",
        "32",
    ]
    assert main(args) == 0
    out = capsys.readouterr().out
    assert str(target) in out
    html = target.read_text()
    assert html.startswith("<!DOCTYPE html>")
    assert "http://" not in html and "https://" not in html
    assert "<script" not in html
    assert "Causal critical path" in html
    # byte-stability: a second run over the same inputs is identical
    first = html
    assert main(args) == 0
    capsys.readouterr()
    assert target.read_text() == first


def test_trace_command_exports_chrome_file(capsys, tmp_path):
    target = tmp_path / "trace.json"
    code = main(["trace", "--inputs", "0,1", "--seed", "0", "--export", str(target)])
    out = capsys.readouterr().out
    assert code == 0
    assert str(target) in out
    import json

    payload = json.loads(target.read_text())
    assert payload["traceEvents"]


def test_trace_command_exports_jsonl(capsys, tmp_path):
    target = tmp_path / "trace.jsonl"
    code = main(["trace", "--inputs", "0,1", "--seed", "0", "--export", str(target)])
    assert code == 0
    import json

    first_line = target.read_text().splitlines()[0]
    assert json.loads(first_line)["type"] in ("event", "span")


def test_sweep_command_prints_table(capsys):
    code = main(
        ["sweep", "--n-values", "2,3", "--reps", "2", "--metric", "rounds"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "rounds vs n" in out
    assert "mean" in out


def test_sweep_command_identical_across_worker_counts(capsys):
    def table(workers):
        assert (
            main(["sweep", "--n-values", "2,3", "--reps", "2", "--workers", workers])
            == 0
        )
        return capsys.readouterr().out.replace(f"workers={workers}", "workers=*")

    assert table("1") == table("2")


def test_chaos_command_accepts_workers(tmp_path, capsys):
    report = tmp_path / "chaos.json"
    code = main(
        ["chaos", "--runs-per-cell", "2", "--workers", "2", "--json", str(report)]
    )
    assert code == 0
    assert report.exists()


def test_bench_command_lists_artifacts(tmp_path, capsys):
    results = tmp_path / "results"
    results.mkdir()
    (results / "BENCH_E0.json").write_text('{"experiment": "e0", "tables": []}')
    code = main(
        [
            "bench",
            "--results-dir",
            str(results),
            "--baselines-dir",
            str(tmp_path / "baselines"),
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "E0" in out
    assert "repro bench --check" in out


def test_bench_command_update_then_check(tmp_path, capsys):
    results = tmp_path / "results"
    results.mkdir()
    payload = '{"experiment": "e0", "tables": [{"title": "t", "rows": [{"v": 1}]}]}'
    (results / "BENCH_E0.json").write_text(payload)
    common = [
        "--results-dir",
        str(results),
        "--baselines-dir",
        str(tmp_path / "baselines"),
    ]
    assert main(["bench", "--update", *common]) == 0
    assert main(["bench", "--check", *common]) == 0
    out = capsys.readouterr().out
    assert "bench gate: OK" in out


def test_bench_command_check_flags_regression(tmp_path, capsys):
    results = tmp_path / "results"
    results.mkdir()
    baselines = tmp_path / "baselines"
    baselines.mkdir()
    base = '{"experiment": "e0", "tables": [{"title": "t", "rows": [{"v": 100}]}]}'
    drifted = '{"experiment": "e0", "tables": [{"title": "t", "rows": [{"v": 200}]}]}'
    (baselines / "BENCH_E0.json").write_text(base)
    (results / "BENCH_E0.json").write_text(drifted)
    code = main(
        [
            "bench",
            "--check",
            "--results-dir",
            str(results),
            "--baselines-dir",
            str(baselines),
        ]
    )
    out = capsys.readouterr().out
    assert code == 1
    assert "REGRESSION" in out


def test_bench_command_check_without_baseline_fails(tmp_path, capsys):
    results = tmp_path / "results"
    results.mkdir()
    (results / "BENCH_E0.json").write_text('{"experiment": "e0", "tables": []}')
    code = main(
        [
            "bench",
            "--check",
            "--results-dir",
            str(results),
            "--baselines-dir",
            str(tmp_path / "nope"),
        ]
    )
    assert code == 1
    assert "repro bench --update" in capsys.readouterr().out
