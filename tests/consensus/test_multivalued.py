"""Tests for multivalued consensus and the composable consensus object."""

import pytest

from repro.consensus.ads import AdsConsensusObject
from repro.consensus.multivalued import MultivaluedConsensusObject, bits_needed
from repro.runtime import RandomScheduler, Simulation


def test_bits_needed():
    assert bits_needed(1) == 1
    assert bits_needed(2) == 1
    assert bits_needed(3) == 2
    assert bits_needed(4) == 2
    assert bits_needed(5) == 3
    assert bits_needed(8) == 3


def _run_multivalued(n, proposals, seed):
    sim = Simulation(n, RandomScheduler(seed=seed), seed=seed)
    mc = MultivaluedConsensusObject(sim, "mc", n)

    def factory(pid):
        def body(ctx):
            return (yield from mc.propose(ctx, proposals[pid]))

        return body

    sim.spawn_all(factory)
    outcome = sim.run(20_000_000)
    return outcome.decisions


@pytest.mark.parametrize("seed", range(8))
def test_multivalued_agreement_and_validity(seed):
    proposals = [f"v{p}" for p in range(4)]
    decisions = _run_multivalued(4, proposals, seed)
    values = set(decisions.values())
    assert len(values) == 1
    assert values.pop() in set(proposals)


def test_multivalued_unanimous():
    decisions = _run_multivalued(3, ["same"] * 3, seed=0)
    assert set(decisions.values()) == {"same"}


def test_multivalued_arbitrary_python_values():
    proposals = [(1, 2), (1, 2), {"k": 3}]
    # dict is unhashable but never hashed — only compared/stored.
    decisions = _run_multivalued(3, proposals, seed=5)
    value = next(iter(decisions.values()))
    assert all(v == value for v in decisions.values())


def test_multivalued_single_process():
    decisions = _run_multivalued(1, ["solo"], seed=0)
    assert decisions == {0: "solo"}


def test_multivalued_partial_participation():
    # Only 2 of 4 processes propose; they must still agree on one of
    # their own values (absentees behave like crashed processes).
    sim = Simulation(4, RandomScheduler(seed=2), seed=2)
    mc = MultivaluedConsensusObject(sim, "mc", 4)

    def factory(pid):
        def body(ctx):
            if pid < 2:
                return (yield from mc.propose(ctx, f"v{pid}"))
            return None
            yield  # pragma: no cover

        return body

    sim.spawn_all(factory)
    decisions = sim.run(20_000_000).decisions
    assert decisions[0] == decisions[1]
    assert decisions[0] in ("v0", "v1")


def test_binary_object_rejects_nonbinary():
    sim = Simulation(2, seed=0)
    cons = AdsConsensusObject(sim, "c", 2)

    def program(ctx):
        yield from cons.propose(ctx, 7)

    with pytest.raises(ValueError, match="0 or 1"):
        sim.spawn(0, program)


def test_binary_object_repeated_propose_returns_cached_decision():
    sim = Simulation(2, RandomScheduler(seed=1), seed=1)
    cons = AdsConsensusObject(sim, "c", 2)

    def factory(pid):
        def body(ctx):
            first = yield from cons.propose(ctx, pid)
            second = yield from cons.propose(ctx, pid)
            return (first, second)

        return body

    sim.spawn_all(factory)
    decisions = sim.run(10_000_000).decisions
    for first, second in decisions.values():
        assert first == second
    assert len({pair[0] for pair in decisions.values()}) == 1


def test_two_independent_instances_can_differ():
    sim = Simulation(2, RandomScheduler(seed=3), seed=3)
    a = AdsConsensusObject(sim, "a", 2)
    b = AdsConsensusObject(sim, "b", 2)

    def factory(pid):
        def body(ctx):
            # Opposite proposals per instance: a gets pid, b gets 1-pid.
            da = yield from a.propose(ctx, pid)
            db = yield from b.propose(ctx, 1 - pid)
            return (da, db)

        return body

    sim.spawn_all(factory)
    decisions = sim.run(10_000_000).decisions
    assert decisions[0] == decisions[1]  # agreement within each instance


def test_binary_object_stats_exposed():
    sim = Simulation(2, RandomScheduler(seed=0), seed=0)
    cons = AdsConsensusObject(sim, "c", 2)

    def factory(pid):
        def body(ctx):
            return (yield from cons.propose(ctx, pid))

        return body

    sim.spawn_all(factory)
    sim.run(10_000_000)
    stats = cons.stats()
    assert stats["rounds_by_pid"][0] >= 1


def test_multivalued_protocol_class_runs_and_validates():
    from repro.consensus import MultivaluedAdsConsensus, validate_run

    proto = MultivaluedAdsConsensus()
    run = proto.run(["red", "green", "blue"], seed=3)
    report = validate_run(run)
    assert report.ok
    assert run.decided_values <= {"red", "green", "blue"}
    assert len(run.decided_values) == 1
    assert run.stats["bits"] == 2


def test_multivalued_protocol_class_with_crashes():
    from repro.consensus import MultivaluedAdsConsensus, validate_run
    from repro.runtime import CrashPlan

    proto = MultivaluedAdsConsensus()
    run = proto.run([10, 20, 30, 40], seed=5, crash_plan=CrashPlan({3: 0}))
    assert validate_run(run).ok
    assert run.decided_values <= {10, 20, 30, 40}


def test_multivalued_protocol_unanimous_validity():
    from repro.consensus import MultivaluedAdsConsensus

    run = MultivaluedAdsConsensus().run(["v", "v", "v"], seed=1)
    assert run.decided_values == {"v"}
