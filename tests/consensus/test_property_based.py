"""Property-based consensus testing with hypothesis.

Hypothesis drives the input vectors, seeds, scheduler choices and crash
patterns; consistency, validity, decision domain and completion must hold
on every generated execution (Lemmas 6.1–6.6 hold with probability 1, so
any counterexample hypothesis shrinks to is a real protocol bug).
"""

from hypothesis import given, settings, strategies as st

from repro.consensus import AdsConsensus, AspnesHerlihyConsensus
from repro.consensus.validation import assert_safe
from repro.runtime import CrashPlan, RandomScheduler, RoundRobinScheduler
from repro.runtime.adversary import LockstepAdversary

inputs_strategy = st.lists(
    st.integers(min_value=0, max_value=1), min_size=1, max_size=6
)
seed_strategy = st.integers(min_value=0, max_value=10_000)


def _scheduler(kind: str, seed: int):
    if kind == "rr":
        return RoundRobinScheduler()
    if kind == "lockstep":
        return LockstepAdversary("mem", seed=seed)
    return RandomScheduler(seed=seed)


@settings(max_examples=30, deadline=None)
@given(
    inputs_strategy,
    seed_strategy,
    st.sampled_from(["random", "rr", "lockstep"]),
)
def test_ads_safe_on_arbitrary_inputs_and_schedules(inputs, seed, scheduler_kind):
    run = AdsConsensus().run(
        inputs,
        scheduler=_scheduler(scheduler_kind, seed),
        seed=seed,
        max_steps=50_000_000,
    )
    assert_safe(run)


@settings(max_examples=20, deadline=None)
@given(
    inputs_strategy,
    seed_strategy,
    st.dictionaries(
        st.integers(min_value=0, max_value=5),
        st.integers(min_value=0, max_value=300),
        max_size=5,
    ),
)
def test_ads_safe_under_arbitrary_crash_plans(inputs, seed, raw_crashes):
    n = len(inputs)
    crashes = {pid: step for pid, step in raw_crashes.items() if pid < n}
    if len(crashes) >= n:  # keep at least one process alive
        crashes.pop(next(iter(crashes)))
    run = AdsConsensus().run(
        inputs,
        seed=seed,
        crash_plan=CrashPlan(crashes),
        max_steps=50_000_000,
    )
    assert_safe(run)


@settings(max_examples=15, deadline=None)
@given(inputs_strategy, seed_strategy)
def test_ads_and_ah_agree_on_safety_not_necessarily_value(inputs, seed):
    """Two different protocols on the same inputs: both safe; when inputs
    are unanimous they must decide the *same* value (validity pins it)."""
    ads = AdsConsensus().run(inputs, seed=seed, max_steps=50_000_000)
    ah = AspnesHerlihyConsensus().run(inputs, seed=seed, max_steps=50_000_000)
    assert_safe(ads)
    assert_safe(ah)
    if len(set(inputs)) == 1:
        assert ads.decided_values == ah.decided_values == set(inputs)


@settings(max_examples=20, deadline=None)
@given(inputs_strategy, seed_strategy)
def test_ads_memory_bound_holds_for_every_workload(inputs, seed):
    proto = AdsConsensus(m_bound=15)
    run = proto.run(inputs, seed=seed, max_steps=50_000_000)
    assert_safe(run)
    assert run.audit.max_magnitude <= max(15 + 1, 3 * proto.K - 1)
