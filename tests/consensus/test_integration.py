"""Integration: full consensus executions across schedulers, crash plans
and adversaries, with live invariant checking.

These are the paper's safety theorems (Lemmas 6.1–6.6) exercised
empirically: consistency and validity must hold on *every* run, under every
scheduler, with any minority... indeed any n-1 crashes.
"""

import pytest

from repro.consensus import (
    AdsConsensus,
    AspnesHerlihyConsensus,
    AtomicCoinConsensus,
    LocalCoinConsensus,
)
from repro.consensus.ads import pref_reader
from repro.consensus.validation import assert_safe
from repro.runtime import (
    CrashPlan,
    RandomScheduler,
    RoundRobinScheduler,
    SplitAdversary,
)
from repro.runtime.adversary import LockstepAdversary
from repro.runtime.rng import derive_rng
from repro.runtime.scheduler import Scheduler
from repro.strip import check_graph_invariants, decode_graph
from repro.strip.edge_counters import IllFormedCounters

PROTOCOLS = [
    AdsConsensus,
    AspnesHerlihyConsensus,
    LocalCoinConsensus,
    AtomicCoinConsensus,
]


@pytest.mark.parametrize("protocol_cls", PROTOCOLS)
@pytest.mark.parametrize("seed", range(8))
def test_random_schedules_all_protocols(protocol_cls, seed):
    inputs = [(seed >> p) & 1 for p in range(4)]
    run = protocol_cls().run(inputs, seed=seed, max_steps=30_000_000)
    assert_safe(run)


@pytest.mark.parametrize("seed", range(10))
def test_ads_with_random_crashes(seed):
    rng = derive_rng(seed, "integration-crash")
    plan = CrashPlan.random(5, rng, horizon=800)
    inputs = [rng.randint(0, 1) for _ in range(5)]
    run = AdsConsensus().run(
        inputs, seed=seed, crash_plan=plan, max_steps=30_000_000
    )
    assert_safe(run)


def test_ads_survives_all_but_one_crashing_immediately():
    plan = CrashPlan({1: 0, 2: 0, 3: 0})
    run = AdsConsensus().run([0, 1, 1, 0], seed=3, crash_plan=plan)
    assert_safe(run)
    assert run.decisions == {0: 0}  # the survivor decides its own input


def test_ads_survives_mid_flight_crashes():
    plan = CrashPlan({0: 50, 2: 120})
    run = AdsConsensus().run(
        [1, 0, 1, 0], seed=4, crash_plan=plan, max_steps=30_000_000
    )
    assert_safe(run)


@pytest.mark.parametrize("seed", range(6))
def test_ads_under_split_adversary(seed):
    run = AdsConsensus().run(
        [0, 1, 0, 1],
        scheduler=SplitAdversary(pref_reader, seed=seed),
        seed=seed,
        max_steps=30_000_000,
    )
    assert_safe(run)


@pytest.mark.parametrize("seed", range(4))
def test_ads_under_lockstep_adversary(seed):
    run = AdsConsensus().run(
        [0, 1, 0, 1, 0],
        scheduler=LockstepAdversary("mem", seed=seed),
        seed=seed,
        max_steps=30_000_000,
    )
    assert_safe(run)


class InvariantCheckingScheduler(Scheduler):
    """Wraps a scheduler; decodes the live edge-counter state every few
    steps and asserts the §4.2 invariants hold *throughout* the run —
    the concurrent counterpart of Claim 4.1."""

    def __init__(self, inner, K, every=7):
        self.inner = inner
        self.K = K
        self.every = every
        self._count = 0
        self.checks = 0

    def reset(self):
        self.inner.reset()

    def choose(self, sim, runnable):
        self._count += 1
        if self._count % self.every == 0:
            memory = sim.shared.get("mem")
            if memory is not None:
                rows = [cell.edges for cell in memory.peek_view()]
                try:
                    graph = decode_graph(rows, self.K)
                except IllFormedCounters as exc:
                    raise AssertionError(f"counters ill-formed mid-run: {exc}")
                violations = check_graph_invariants(graph)
                assert violations == [], f"mid-run violations: {violations}"
                self.checks += 1
        return self.inner.choose(sim, runnable)


@pytest.mark.parametrize("seed", range(5))
def test_strip_invariants_hold_throughout_live_runs(seed):
    proto = AdsConsensus()
    checker = InvariantCheckingScheduler(RandomScheduler(seed=seed), proto.K)
    run = proto.run([0, 1, 0, 1], scheduler=checker, seed=seed,
                    max_steps=30_000_000)
    assert_safe(run)
    assert checker.checks > 10  # the invariants were really exercised


def test_bounded_coin_counters_throughout_live_run():
    proto = AdsConsensus(m_bound=25)

    class CoinRangeChecker(Scheduler):
        def __init__(self, inner, m):
            self.inner, self.m = inner, m

        def reset(self):
            self.inner.reset()

        def choose(self, sim, runnable):
            memory = sim.shared.get("mem")
            if memory is not None:
                for cell in memory.peek_view():
                    assert all(abs(c) <= self.m + 1 for c in cell.coins)
            return self.inner.choose(sim, runnable)

    run = proto.run(
        [0, 1, 0],
        scheduler=CoinRangeChecker(RandomScheduler(seed=2), 25),
        seed=2,
        max_steps=30_000_000,
    )
    assert_safe(run)


def test_heterogeneous_speeds_safe():
    # One extremely slow process (weight 0.01) must not break anything.
    run = AdsConsensus().run(
        [1, 0, 1],
        scheduler=RandomScheduler(seed=5, weights={2: 0.01}),
        seed=5,
        max_steps=30_000_000,
    )
    assert_safe(run)


def test_round_robin_all_protocols():
    for protocol_cls in PROTOCOLS:
        run = protocol_cls().run(
            [0, 1, 1, 0], scheduler=RoundRobinScheduler(), seed=0,
            max_steps=30_000_000,
        )
        assert_safe(run)


def test_larger_population():
    run = AdsConsensus().run([p % 2 for p in range(8)], seed=1, max_steps=50_000_000)
    assert_safe(run)
