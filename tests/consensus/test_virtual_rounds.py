"""Tests for the §6.1 virtual-global-round machinery."""

import pytest

from repro.consensus import AdsConsensus
from repro.consensus.validation import assert_safe
from repro.consensus.virtual_rounds import (
    VirtualRoundTrace,
    analyze_run,
    check_decision_window,
    check_monotonicity,
    compute_virtual_rounds,
)
from repro.runtime import RandomScheduler
from repro.runtime.adversary import LockstepAdversary


def _recorded_run(inputs, seed, scheduler=None):
    proto = AdsConsensus(ghost_wseqs=True)
    run = proto.run(
        inputs,
        scheduler=scheduler or RandomScheduler(seed=seed),
        seed=seed,
        record_spans=True,
        keep_simulation=True,
        max_steps=50_000_000,
    )
    assert_safe(run)
    return proto, run


@pytest.mark.parametrize("seed", range(8))
def test_monotonicity_and_window_on_random_runs(seed):
    proto, run = _recorded_run([0, 1, 0, 1], seed)
    trace, problems = analyze_run(run, K=proto.K)
    assert problems == []


@pytest.mark.parametrize("seed", range(4))
def test_monotonicity_under_lockstep_adversary(seed):
    proto, run = _recorded_run(
        [0, 1, 0], seed, scheduler=LockstepAdversary("mem", seed=seed)
    )
    trace, problems = analyze_run(run, K=proto.K)
    assert problems == []


def test_final_virtual_rounds_match_local_inc_counts():
    proto, run = _recorded_run([0, 1, 0], seed=1)
    trace = compute_virtual_rounds(run, K=proto.K)
    local = run.stats["rounds_by_pid"]
    for pid in range(run.n):
        assert trace.final_rounds[pid] == local[pid]


def test_unanimous_run_decides_within_two_virtual_rounds():
    proto, run = _recorded_run([1, 1, 1], seed=0)
    trace = compute_virtual_rounds(run, K=proto.K)
    assert max(trace.final_rounds) <= 2  # Lemma 6.4: halt by round 2


def test_rounds_start_at_one_after_initial_writes():
    proto, run = _recorded_run([0, 1], seed=2)
    trace = compute_virtual_rounds(run, K=proto.K)
    assert all(r >= 0 for r in trace.rounds[0])
    assert max(trace.rounds[0]) <= 1


def test_requires_ghost_wseqs():
    proto = AdsConsensus()  # ghost off
    run = proto.run([0, 1], seed=0, record_spans=True, keep_simulation=True)
    with pytest.raises(ValueError, match="ghost"):
        compute_virtual_rounds(run, K=proto.K)


def test_requires_kept_simulation():
    run = AdsConsensus(ghost_wseqs=True).run([0, 1], seed=0)
    with pytest.raises(ValueError, match="keep_simulation"):
        compute_virtual_rounds(run, K=2)


def test_checkers_flag_fabricated_violations():
    trace = VirtualRoundTrace(n=2, K=2, scan_pids=[0, 1])
    trace.rounds = [[1.0, 1.0], [0.0, 2.0]]  # pid 0 regressed
    problems = check_monotonicity(trace)
    assert problems and "dropped" in problems[0]

    class FakeRun:
        decisions = {1: 1}
        n = 2

    trace2 = VirtualRoundTrace(n=2, K=2, scan_pids=[0])
    trace2.rounds = [[9.0, 1.0]]  # pid 0 ran 8 rounds past the decider
    problems = check_decision_window(trace2, FakeRun())
    assert problems and "past a decider" in problems[0]
