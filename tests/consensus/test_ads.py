"""Tests for the paper's protocol (§5)."""

import pytest

from repro.consensus import AdsConsensus, validate_run
from repro.consensus.ads import AdsCell
from repro.consensus.interface import BOTTOM
from repro.runtime import RoundRobinScheduler
from repro.strip import decode_graph


def test_unanimous_inputs_decide_that_value_fast():
    proto = AdsConsensus()
    for value in (0, 1):
        run = proto.run([value] * 4, seed=value)
        assert validate_run(run).ok
        assert run.decided_values == {value}
        assert run.max_rounds() <= 2  # Lemma 6.4: by round r+1


def test_mixed_inputs_agree_on_some_input():
    proto = AdsConsensus()
    run = proto.run([0, 1, 0, 1], seed=3)
    assert validate_run(run).ok
    assert len(run.decided_values) == 1
    assert run.decided_values <= {0, 1}


def test_single_process_decides_own_input():
    run = AdsConsensus().run([1], seed=0)
    assert run.decisions == {0: 1}


def test_two_processes_opposite_inputs():
    for seed in range(10):
        run = AdsConsensus().run([0, 1], seed=seed)
        assert validate_run(run).ok


def test_rejects_k_below_two():
    with pytest.raises(ValueError):
        AdsConsensus(K=1)


def test_unknown_snapshot_kind_rejected():
    proto = AdsConsensus(snapshot_kind="telepathy")
    with pytest.raises(ValueError):
        proto.run([0, 1], seed=0)


@pytest.mark.parametrize("snapshot_kind", ["arrows", "sequenced", "embedded"])
def test_snapshot_ablation_both_work(snapshot_kind):
    proto = AdsConsensus(snapshot_kind=snapshot_kind)
    for seed in range(4):
        run = proto.run([0, 1, 1], seed=seed)
        assert validate_run(run).ok


def test_bloom_arrow_substrate_end_to_end():
    # Full protocol over arrows built from the two-writer construction,
    # which itself sits on SWMR cells: boundedness all the way down.
    proto = AdsConsensus(snapshot_kind="arrows-bloom")
    run = proto.run([1, 0], seed=2, max_steps=10_000_000)
    assert validate_run(run).ok


@pytest.mark.parametrize("K", [2, 3, 4])
def test_k_parameter_sweep(K):
    proto = AdsConsensus(K=K)
    run = proto.run([0, 1, 0], seed=K)
    assert validate_run(run).ok


def test_memory_is_bounded_by_protocol_parameters():
    K, m = 2, 9
    proto = AdsConsensus(K=K, m_bound=m)
    run = proto.run([0, 1, 0, 1], seed=5)
    assert validate_run(run).ok
    # Every integer in every register is bounded by max(m+1, 3K-1, K, n).
    assert run.audit.max_magnitude <= max(m + 1, 3 * K - 1)


def test_default_m_used_when_not_given():
    proto = AdsConsensus(b_barrier=2, f_factor=4)
    run = proto.run([0, 1, 1], seed=1)
    assert validate_run(run).ok
    # default m for n=3: (4·2·3)² = 576; counters must stay within 577.
    assert run.audit.max_magnitude <= 577


def test_stats_are_collected():
    run = AdsConsensus().run([0, 1, 0], seed=7)
    assert set(run.stats) == {
        "rounds_by_pid",
        "flips_by_pid",
        "scans_by_pid",
        "scan_attempts",
    }
    assert all(r >= 1 for r in run.stats["rounds_by_pid"].values())
    assert run.stats["scan_attempts"] >= sum(run.stats["scans_by_pid"].values())


def test_round_robin_schedule_also_safe():
    run = AdsConsensus().run([1, 0, 1, 0], scheduler=RoundRobinScheduler(), seed=0)
    assert validate_run(run).ok


def test_ads_cell_next_slot_wraps():
    cell = AdsCell(pref=BOTTOM, coins=(0, 0, 0), current_coin=2, edges=(0, 0))
    assert cell.next_slot() == 0
    cell = AdsCell(pref=BOTTOM, coins=(0, 0, 0), current_coin=0, edges=(0, 0))
    assert cell.next_slot() == 1


def test_final_cells_decode_to_legal_graph():
    proto = AdsConsensus()
    run = proto.run([0, 1, 0, 1], seed=11, keep_simulation=True)
    memory = run.simulation.shared["mem"]
    rows = [cell.edges for cell in memory.peek_view()]
    graph = decode_graph(rows, proto.K)
    from repro.strip import check_graph_invariants

    assert check_graph_invariants(graph) == []


def test_decided_processes_stop_taking_steps():
    run = AdsConsensus().run([0, 0, 0], seed=0, keep_simulation=True)
    outcome = run.simulation.run(0, raise_on_budget=False)
    # No runnable processes remain after all decided.
    assert run.simulation.runnable_pids() == []


def test_deterministic_replay():
    a = AdsConsensus().run([0, 1, 1, 0], seed=99)
    b = AdsConsensus().run([0, 1, 1, 0], seed=99)
    assert a.decisions == b.decisions
    assert a.total_steps == b.total_steps
