"""Edge cases across the consensus stack."""

import pytest

from repro.consensus import (
    AdsConsensus,
    AspnesHerlihyConsensus,
    AtomicCoinConsensus,
    BoundedLocalCoinConsensus,
    LocalCoinConsensus,
    validate_run,
)
from repro.runtime import CrashPlan, RandomScheduler, Simulation
from repro.snapshot import ArrowScannableMemory, check_all_properties

ALL_PROTOCOLS = [
    AdsConsensus,
    AspnesHerlihyConsensus,
    LocalCoinConsensus,
    AtomicCoinConsensus,
    BoundedLocalCoinConsensus,
]


@pytest.mark.parametrize("protocol_cls", ALL_PROTOCOLS)
def test_single_process_decides_its_input(protocol_cls):
    for value in (0, 1):
        run = protocol_cls().run([value], seed=value)
        assert run.decisions == {0: value}
        assert validate_run(run).ok


@pytest.mark.parametrize("protocol_cls", ALL_PROTOCOLS)
def test_non_binary_inputs_rejected(protocol_cls):
    with pytest.raises(ValueError, match="0 or 1"):
        protocol_cls().run([0, 2], seed=0)


@pytest.mark.parametrize("protocol_cls", ALL_PROTOCOLS)
def test_empty_inputs_rejected(protocol_cls):
    with pytest.raises(ValueError):
        protocol_cls().run([], seed=0)


def test_everyone_crashes_at_start_is_a_vacuous_run():
    plan = CrashPlan({0: 0, 1: 0})
    run = AdsConsensus().run([0, 1], seed=0, crash_plan=plan)
    assert run.decisions == {}
    assert validate_run(run).ok  # nothing decided, nothing violated
    assert run.outcome.crashed == {0, 1}


def test_crash_mid_write_leaves_snapshot_consistent():
    """A writer crashed between its arrow flips and its value publication
    must not corrupt later scans (P1-P3 still hold for completed ops)."""
    sim = Simulation(3, seed=0)
    mem = ArrowScannableMemory(sim, "M", 3)

    def factory(pid):
        def body(ctx):
            if pid == 0:
                yield from mem.write(ctx, "will-crash")
                yield from mem.write(ctx, "never-lands")
            else:
                yield from mem.write(ctx, f"ok{pid}")
                return tuple((yield from mem.scan(ctx)))

        return body

    sim.spawn_all(factory)
    # Let pid 0 start its second write (arrow flips) then crash it.
    from repro.runtime import ScriptedScheduler

    sim.scheduler = ScriptedScheduler([0, 0, 0, 0])  # write 1 + 1 arrow of write 2
    for _ in range(4):
        sim.step()
    sim.crash(0)
    outcome = sim.run(100_000)
    assert outcome.finished
    for pid in (1, 2):
        assert outcome.decisions[pid][0] == "will-crash"  # the landed write
    assert check_all_properties(sim.trace, "M", 3) == []


def test_ads_two_processes_minimum_k():
    # K = 2 with n = 2: the smallest nontrivial configuration.
    for seed in range(10):
        run = AdsConsensus(K=2).run([0, 1], seed=seed, max_steps=50_000_000)
        assert validate_run(run).ok


def test_ads_extreme_m_one():
    # m = 1: counters overflow almost immediately; overflow => heads keeps
    # the protocol safe (agreement may simply take more rounds).
    for seed in range(6):
        run = AdsConsensus(m_bound=1).run([0, 1, 0], seed=seed, max_steps=50_000_000)
        assert validate_run(run).ok


def test_ads_large_barrier_still_terminates():
    run = AdsConsensus(b_barrier=6).run([0, 1], seed=2, max_steps=100_000_000)
    assert validate_run(run).ok


def test_weighted_scheduler_starving_almost_everyone():
    # One process gets virtually all the steps: it must decide alone-ish
    # while the others trickle along within budget.
    weights = {0: 1000.0, 1: 1.0, 2: 1.0}
    run = AdsConsensus().run(
        [1, 0, 0],
        scheduler=RandomScheduler(seed=3, weights=weights),
        seed=3,
        max_steps=100_000_000,
    )
    assert validate_run(run).ok


def test_run_is_pure_wrt_protocol_instance_reuse():
    # Reusing one protocol object for several runs must not leak state.
    proto = AdsConsensus()
    first = proto.run([0, 1], seed=1)
    second = proto.run([0, 1], seed=1)
    assert first.decisions == second.decisions
    assert first.total_steps == second.total_steps
    assert first.stats == second.stats
