"""Tests for the three baseline regimes (AH88, A88, CIL87)."""

import statistics

import pytest

from repro.consensus import (
    AspnesHerlihyConsensus,
    AtomicCoinConsensus,
    LocalCoinConsensus,
    validate_run,
)
from repro.consensus.aspnes_herlihy import RoundCell
from repro.runtime.adversary import LockstepAdversary

ALL_BASELINES = [AspnesHerlihyConsensus, LocalCoinConsensus, AtomicCoinConsensus]


@pytest.mark.parametrize("protocol_cls", ALL_BASELINES)
def test_unanimous_inputs(protocol_cls):
    run = protocol_cls().run([1, 1, 1], seed=0)
    assert validate_run(run).ok
    assert run.decided_values == {1}


@pytest.mark.parametrize("protocol_cls", ALL_BASELINES)
@pytest.mark.parametrize("seed", range(6))
def test_mixed_inputs_safe(protocol_cls, seed):
    run = protocol_cls().run([0, 1, 0, 1], seed=seed, max_steps=20_000_000)
    assert validate_run(run).ok


def test_round_cell_coin_accessors():
    cell = RoundCell(pref=1, round=3, coins=((2, 5), (3, -1)))
    assert cell.coin_of(2) == 5
    assert cell.coin_of(3) == -1
    assert cell.coin_of(7) == 0
    updated = cell.with_coin(3, -2)
    assert updated.coin_of(3) == -2
    assert updated.coin_of(2) == 5
    assert cell.coin_of(3) == -1  # immutable


def test_ah_round_numbers_grow_with_conflict():
    run = AspnesHerlihyConsensus().run([0, 1, 0, 1], seed=2)
    assert run.max_rounds() >= 2
    # Round numbers are stored raw: the audit sees them.
    assert run.audit.max_magnitude >= run.max_rounds()


def test_ah_rejects_k_below_two():
    with pytest.raises(ValueError):
        AspnesHerlihyConsensus(K=1)


def test_atomic_coin_constant_rounds():
    rounds = []
    for seed in range(10):
        run = AtomicCoinConsensus().run([0, 1, 0, 1], seed=seed)
        assert validate_run(run).ok
        rounds.append(run.max_rounds())
    assert statistics.mean(rounds) <= 6


def test_atomic_coin_creates_oracles_lazily():
    proto = AtomicCoinConsensus()
    proto.run([0, 1], seed=1)
    assert len(proto._oracles) >= 0  # only rounds that conflicted


def test_local_coin_needs_exponentially_many_rounds_under_lockstep():
    small, large = [], []
    for seed in range(6):
        run3 = LocalCoinConsensus().run(
            [0, 1, 0], scheduler=LockstepAdversary("mem", seed=seed), seed=seed,
            max_steps=50_000_000,
        )
        run6 = LocalCoinConsensus().run(
            [0, 1] * 3, scheduler=LockstepAdversary("mem", seed=seed), seed=seed,
            max_steps=50_000_000,
        )
        assert validate_run(run3).ok and validate_run(run6).ok
        small.append(run3.max_rounds())
        large.append(run6.max_rounds())
    # Doubling n should blow the round count up by far more than 2x.
    assert statistics.mean(large) > 2.5 * statistics.mean(small)


def test_ah_polynomial_under_lockstep():
    rounds = []
    for seed in range(5):
        run = AspnesHerlihyConsensus().run(
            [0, 1] * 3, scheduler=LockstepAdversary("mem", seed=seed), seed=seed,
            max_steps=50_000_000,
        )
        assert validate_run(run).ok
        rounds.append(run.max_rounds())
    assert statistics.mean(rounds) <= 8  # constant expected rounds


def test_bounded_local_coin_completes_the_matrix():
    """The 2x2 time/memory matrix's fourth cell: exponential rounds under
    lockstep, but bounded registers (the paper's strip with local coins)."""
    from repro.consensus import BoundedLocalCoinConsensus

    small_rounds, large_rounds, magnitudes = [], [], []
    for seed in range(5):
        small = BoundedLocalCoinConsensus().run(
            [0, 1, 0], scheduler=LockstepAdversary("mem", seed=seed), seed=seed,
            max_steps=100_000_000,
        )
        large = BoundedLocalCoinConsensus().run(
            [0, 1] * 3, scheduler=LockstepAdversary("mem", seed=seed), seed=seed,
            max_steps=100_000_000,
        )
        assert validate_run(small).ok and validate_run(large).ok
        small_rounds.append(small.max_rounds())
        large_rounds.append(large.max_rounds())
        magnitudes.append(large.audit.max_magnitude)
    # Exponential growth in rounds...
    assert statistics.mean(large_rounds) > 2.5 * statistics.mean(small_rounds)
    # ...with bounded memory (edge counters < 3K, tiny coins unused).
    assert max(magnitudes) <= 3 * 2 - 1


def test_bounded_local_coin_safe_on_random_schedules():
    from repro.consensus import BoundedLocalCoinConsensus

    for seed in range(6):
        run = BoundedLocalCoinConsensus().run(
            [0, 1, 0, 1], seed=seed, max_steps=100_000_000
        )
        assert validate_run(run).ok
