"""Tests for the safety validators (on fabricated runs)."""

from repro.consensus import validate_run
from repro.consensus.interface import ConsensusRun
from repro.consensus.validation import (
    assert_safe,
    check_completion,
    check_consistency,
    check_decision_domain,
    check_validity,
    summarize_memory,
)
from repro.registers import MemoryAudit
from repro.runtime.simulation import SimulationOutcome

import pytest


def _fake_run(inputs, decisions, crashed=frozenset()):
    outcome = SimulationOutcome(
        decisions=decisions,
        total_steps=100,
        steps_by_pid={pid: 10 for pid in range(len(inputs))},
        finished=True,
        crashed=set(crashed),
    )
    return ConsensusRun(
        protocol="fake",
        n=len(inputs),
        inputs=tuple(inputs),
        outcome=outcome,
        audit=MemoryAudit(),
        seed=0,
    )


def test_good_run_passes_everything():
    run = _fake_run([0, 1], {0: 1, 1: 1})
    report = validate_run(run)
    assert report.ok and report.problems == []


def test_inconsistency_detected():
    run = _fake_run([0, 1], {0: 0, 1: 1})
    report = validate_run(run)
    assert not report.consistent
    assert any("inconsistent" in p for p in report.problems)


def test_validity_violation_detected():
    run = _fake_run([1, 1], {0: 0, 1: 0})
    report = validate_run(run)
    assert not report.valid


def test_mixed_inputs_any_agreed_input_is_valid():
    assert check_validity(_fake_run([0, 1], {0: 0, 1: 0}))
    assert check_validity(_fake_run([0, 1], {0: 1, 1: 1}))


def test_domain_violation_detected():
    run = _fake_run([0, 0], {0: 7, 1: 7})
    assert not check_decision_domain(run)
    # Consistent and (vacuously for mixed) might pass others; report must fail.
    assert not validate_run(run).ok


def test_missing_decision_detected():
    run = _fake_run([0, 1, 1], {0: 1, 2: 1})
    assert not check_completion(run)
    report = validate_run(run)
    assert any("did not decide" in p for p in report.problems)


def test_crashed_processes_excused_from_completion():
    run = _fake_run([0, 1, 1], {0: 1, 2: 1}, crashed={1})
    assert check_completion(run)
    assert validate_run(run).ok


def test_consistency_vacuous_when_nobody_decides():
    run = _fake_run([0, 1], {}, crashed={0, 1})
    assert check_consistency(run)


def test_assert_safe_raises_readable_error():
    run = _fake_run([1, 1], {0: 0, 1: 1})
    with pytest.raises(AssertionError, match="unsafe run"):
        assert_safe(run)


def test_summarize_memory_shape():
    run = _fake_run([0], {0: 0})
    run.audit.observe("r", (5, -12))
    summary = summarize_memory(run)
    assert summary == {"max_magnitude": 12, "max_width": 2, "writes": 1}


def test_max_rounds_defaults_to_zero_without_stats():
    run = _fake_run([0], {0: 0})
    assert run.max_rounds() == 0
