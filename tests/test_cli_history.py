"""CLI tests for the run ledger: ``--ledger`` flags and ``repro history``."""

import json

import pytest

from repro.cli import main
from repro.obs.ledger import make_record, read_records


@pytest.fixture(autouse=True)
def _pinned_environment(monkeypatch):
    """Stable fingerprints and no ambient ledger during CLI tests."""
    monkeypatch.setenv("REPRO_CODE_VERSION", "test-code-v1")
    monkeypatch.delenv("REPRO_LEDGER", raising=False)


def test_run_records_then_serves_cache_hit(tmp_path, capsys):
    ledger = tmp_path / "runs.jsonl"
    args = ["run", "--inputs", "0,1", "--seed", "3", "--ledger", str(ledger)]
    assert main(args) == 0
    first = capsys.readouterr().out
    assert "cache hit" not in first
    assert len(read_records(ledger)) == 1

    assert main(args) == 0
    second = capsys.readouterr().out
    assert "ledger cache hit" in second
    assert len(read_records(ledger)) == 1  # still one record
    # The replay reports the same result as the live run.
    for line in first.splitlines():
        if line.startswith(("decisions", "steps", "memory", "safety")):
            assert line in second


def test_run_no_cache_recomputes(tmp_path, capsys):
    ledger = tmp_path / "runs.jsonl"
    args = ["run", "--inputs", "0,1", "--seed", "3", "--ledger", str(ledger)]
    assert main(args) == 0
    capsys.readouterr()
    assert main([*args, "--no-cache"]) == 0
    assert "cache hit" not in capsys.readouterr().out
    assert len(read_records(ledger)) == 1  # identical rerun deduplicated


def test_run_ledger_record_contents(tmp_path):
    ledger = tmp_path / "runs.jsonl"
    main(["run", "--inputs", "0,1", "--seed", "3", "--ledger", str(ledger)])
    (record,) = read_records(ledger)
    assert record.kind == "run"
    assert record.seed == 3
    assert record.config["protocol"] == "ads"
    assert record.outcome["safety_ok"] is True
    assert record.outcome["total_steps"] > 0
    assert record.metrics is not None  # snapshot rides along
    assert record.provenance["code_version"] == "test-code-v1"


def test_sweep_ledger_identical_across_worker_counts(tmp_path, capsys):
    ledgers = []
    for workers in ("1", "4"):
        path = tmp_path / f"sweep{workers}.jsonl"
        code = main(
            [
                "sweep",
                "--n-values",
                "2,3",
                "--reps",
                "2",
                "--workers",
                workers,
                "--ledger",
                str(path),
            ]
        )
        assert code == 0
        ledgers.append(path.read_bytes())
    capsys.readouterr()
    assert ledgers[0] == ledgers[1]
    assert len(ledgers[0]) > 0


def _seed_sweep_ledger(path, values):
    """A synthetic sweep history: one record per value, in order."""
    from repro.obs.ledger import RunLedger

    ledger = RunLedger(path)
    for seed, value in enumerate(values):
        ledger.append(
            make_record(
                kind="sweep",
                experiment="sweep:ads:steps",
                seed=seed,
                config={"experiment": "sweep:ads:steps", "n": 2},
                outcome={"value": float(value)},
            )
        )


def test_history_requires_a_ledger(capsys):
    assert main(["history", "list"]) == 2
    assert "REPRO_LEDGER" in capsys.readouterr().out


def test_history_list_and_trends(tmp_path, capsys):
    path = tmp_path / "runs.jsonl"
    _seed_sweep_ledger(path, [100.0, 101.0, 100.0])
    assert main(["history", "list", "--ledger", str(path)]) == 0
    out = capsys.readouterr().out
    assert "sweep:ads:steps" in out
    assert "3" in out

    assert main(["history", "trends", "--ledger", str(path)]) == 0
    out = capsys.readouterr().out
    assert "expected_steps" in out

    code = main(
        [
            "history",
            "trends",
            "--ledger",
            str(path),
            "--metric",
            "expected_steps",
        ]
    )
    assert code == 0
    points = capsys.readouterr().out.strip().splitlines()
    assert len(points) == 3


def test_history_check_detects_injected_regression(tmp_path, capsys):
    path = tmp_path / "runs.jsonl"
    _seed_sweep_ledger(path, [100.0] * 5 + [150.0])  # +50% on the last run
    assert main(["history", "check", "--ledger", str(path)]) == 1
    out = capsys.readouterr().out
    assert "REGRESSION" in out
    assert "history check: FAILED" in out
    # A wider tolerance lets the same history pass.
    code = main(
        ["history", "check", "--ledger", str(path), "--tolerance", "0.6"]
    )
    assert code == 0
    assert "history check: OK" in capsys.readouterr().out


def test_history_check_detects_injected_determinism_violation(tmp_path, capsys):
    path = tmp_path / "runs.jsonl"
    _seed_sweep_ledger(path, [100.0, 100.0])
    # Same fingerprint (seed 0, same config, same code), different outcome.
    from repro.obs.ledger import RunLedger

    RunLedger(path).append(
        make_record(
            kind="sweep",
            experiment="sweep:ads:steps",
            seed=0,
            config={"experiment": "sweep:ads:steps", "n": 2},
            outcome={"value": 999.0},
        )
    )
    assert main(["history", "check", "--ledger", str(path)]) == 1
    out = capsys.readouterr().out
    assert "VIOLATION" in out
    assert "determinism violation" in out


def test_history_show_by_fingerprint_prefix(tmp_path, capsys):
    path = tmp_path / "runs.jsonl"
    _seed_sweep_ledger(path, [100.0])
    fingerprint = read_records(path)[0].fingerprint
    code = main(
        [
            "history",
            "show",
            "--ledger",
            str(path),
            "--fingerprint",
            fingerprint[:12],
        ]
    )
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["fingerprint"] == fingerprint

    assert main(["history", "show", "--ledger", str(path)]) == 2  # no prefix
    capsys.readouterr()
    code = main(
        ["history", "show", "--ledger", str(path), "--fingerprint", "ffff"]
    )
    assert code == 1  # no match


def test_history_gc_compacts_duplicates(tmp_path, capsys):
    path = tmp_path / "runs.jsonl"
    _seed_sweep_ledger(path, [100.0])
    line = path.read_text()
    path.write_text(line + line)  # duplicate the only record
    assert main(["history", "gc", "--ledger", str(path)]) == 0
    assert "dropped 1" in capsys.readouterr().out
    assert len(read_records(path)) == 1


def test_history_reads_ledger_from_env(tmp_path, capsys, monkeypatch):
    path = tmp_path / "runs.jsonl"
    _seed_sweep_ledger(path, [100.0])
    monkeypatch.setenv("REPRO_LEDGER", str(path))
    assert main(["history", "list"]) == 0
    assert "sweep:ads:steps" in capsys.readouterr().out


def test_bench_check_diff_names_baseline_and_values(tmp_path, capsys):
    results = tmp_path / "results"
    baselines = tmp_path / "baselines"
    results.mkdir()
    baselines.mkdir()
    payload = {
        "experiment": "e0",
        "tables": [{"title": "T", "rows": [{"n": 3, "steps": 150}]}],
    }
    (results / "BENCH_E0.json").write_text(json.dumps(payload))
    payload["tables"][0]["rows"][0]["steps"] = 100
    (baselines / "BENCH_E0.json").write_text(json.dumps(payload))
    code = main(
        [
            "bench",
            "--check",
            "--results-dir",
            str(results),
            "--baselines-dir",
            str(baselines),
        ]
    )
    assert code == 1
    out = capsys.readouterr().out
    assert str(baselines / "BENCH_E0.json") in out  # names the offender
    assert "expected 100" in out and "actual 150" in out  # per-key diff
    assert "drift" in out


def test_bench_ledger_records_artifacts(tmp_path, capsys):
    results = tmp_path / "results"
    results.mkdir()
    payload = {
        "experiment": "e0",
        "tables": [{"title": "T", "rows": [{"n": 3, "steps": 100}]}],
        "timings": {"total": {"wall_seconds": 1.0}},
    }
    (results / "BENCH_E0.json").write_text(json.dumps(payload))
    ledger = tmp_path / "bench.jsonl"
    args = [
        "bench",
        "--results-dir",
        str(results),
        "--baselines-dir",
        str(tmp_path / "baselines"),
        "--ledger",
        str(ledger),
    ]
    main(args)
    records = read_records(ledger)
    assert len(records) == 1
    assert records[0].experiment == "bench:e0"
    assert records[0].timings["total"]["wall_seconds"] == 1.0
    assert "timings" not in records[0].outcome
    capsys.readouterr()
    main(args)  # rerun: identical artifact, no new record
    assert "appended 0" in capsys.readouterr().out
    assert len(read_records(ledger)) == 1


def test_report_dashboard_renders_trends_from_ledger(tmp_path, capsys):
    path = tmp_path / "runs.jsonl"
    _seed_sweep_ledger(path, [100.0, 110.0])
    out_file = tmp_path / "report.html"
    code = main(
        [
            "report",
            "--out",
            str(out_file),
            "--max-steps",
            "200000",
            "--results-dir",
            str(tmp_path / "none"),
            "--baselines-dir",
            str(tmp_path / "none"),
            "--ledger",
            str(path),
        ]
    )
    assert code == 0
    html = out_file.read_text()
    assert "Cross-run trends" in html
    assert "sweep:ads:steps" in html
    assert "expected_steps" in html


def test_experiments_lists_benchmarks_dynamically(capsys):
    assert main(["experiments"]) == 0
    out = capsys.readouterr().out
    for experiment_id in ("E1", "E12", "P1", "X1"):
        assert experiment_id in out
    assert "bench_p1_throughput.py" in out
