"""Serial-vs-parallel equivalence: same seeds, same outputs, any workers.

The determinism contract of :mod:`repro.parallel` — every consumer (sweep,
fuzz grid, mutation campaign) must produce bit-identical results at any
worker count, because each task derives all randomness from its own seed.
"""

import pytest

from repro.analysis.experiment import Sweep, repeat_runs, sweep_table
from repro.consensus import AdsConsensus, validate_run
from repro.faults.campaign import run_mutation_campaign
from repro.parallel.engine import _fork_available
from repro.runtime.rng import derive_rng
from repro.verify.fuzz import fuzz_consensus

needs_fork = pytest.mark.skipif(
    not _fork_available(), reason="fork start method unavailable"
)


def _metric(seed: int) -> float:
    """A cheap, seed-deterministic stand-in for one simulation run."""
    rng = derive_rng(seed, "equivalence")
    return sum(rng.random() for _ in range(50))


def _consensus_steps(n: int, seed: int) -> float:
    run = AdsConsensus().run(
        [(seed + i) % 2 for i in range(n)], seed=seed, max_steps=50_000_000
    )
    assert validate_run(run).ok
    return float(run.total_steps)


@needs_fork
def test_repeat_runs_equivalence():
    seeds = range(12)
    assert repeat_runs(_metric, seeds, workers=1) == repeat_runs(
        _metric, seeds, workers=4
    )


@needs_fork
def test_sweep_equivalence_real_consensus():
    def build():
        return Sweep("n", [2, 3], _consensus_steps, repetitions=3, seed_base=100)

    serial = build().execute(workers=1)
    parallel = build().execute(workers=4)
    assert [p.params for p in serial] == [p.params for p in parallel]
    assert [p.samples for p in serial] == [p.samples for p in parallel]
    assert sweep_table(serial) == sweep_table(parallel)


@needs_fork
def test_sweep_workers_field_is_default_for_execute():
    sweep = Sweep("n", [2], _consensus_steps, repetitions=2, workers=2)
    points = sweep.execute()  # picks up workers=2 from the dataclass field
    serial = Sweep("n", [2], _consensus_steps, repetitions=2).execute(workers=1)
    assert [p.samples for p in points] == [p.samples for p in serial]


def _fuzz(workers):
    return fuzz_consensus(
        lambda: AdsConsensus(),
        n_values=[2, 3],
        runs_per_cell=3,
        master_seed=7,
        workers=workers,
    )


@needs_fork
def test_fuzz_grid_equivalence():
    serial = _fuzz(1)
    parallel = _fuzz(4)
    assert serial.runs == parallel.runs
    assert serial.steps_total == parallel.steps_total
    assert serial.by_scheduler == parallel.by_scheduler
    assert serial.failures == parallel.failures
    assert serial.summary() == parallel.summary()


@needs_fork
def test_chaos_campaign_equivalence():
    serial = run_mutation_campaign(seed=3, consensus_max_steps=100_000, workers=1)
    parallel = run_mutation_campaign(seed=3, consensus_max_steps=100_000, workers=4)
    assert serial.to_json() == parallel.to_json()
    assert serial.ok == parallel.ok
