"""Tests for the process-pool execution engine (repro.parallel)."""

import os

import pytest

from repro.parallel import (
    ParallelExecutionError,
    available_workers,
    resolve_workers,
    run_tasks,
)
from repro.parallel.engine import WORKERS_ENV, _describe_task, _fork_available

needs_fork = pytest.mark.skipif(
    not _fork_available(), reason="fork start method unavailable"
)


def _square(task):
    return task * task


def _fail_on_three(task):
    if task == 3:
        raise ValueError(f"boom on {task}")
    return task * 10


def _exit_on_three(task):
    if task == 3:
        os._exit(17)
    return task


# -- worker-count resolution -------------------------------------------------


def test_resolve_workers_defaults_to_serial(monkeypatch):
    monkeypatch.delenv(WORKERS_ENV, raising=False)
    assert resolve_workers(None) == 1


def test_resolve_workers_reads_environment(monkeypatch):
    monkeypatch.setenv(WORKERS_ENV, "3")
    assert resolve_workers(None) == 3


def test_resolve_workers_zero_means_all_cpus(monkeypatch):
    monkeypatch.delenv(WORKERS_ENV, raising=False)
    assert resolve_workers(0) == available_workers()
    assert resolve_workers(0) >= 1


def test_resolve_workers_rejects_negative():
    with pytest.raises(ValueError):
        resolve_workers(-2)


def test_explicit_workers_beat_environment(monkeypatch):
    monkeypatch.setenv(WORKERS_ENV, "7")
    assert resolve_workers(2) == 2


# -- results and ordering ----------------------------------------------------


def test_serial_path_matches_list_comprehension():
    tasks = list(range(20))
    assert run_tasks(_square, tasks, workers=1) == [t * t for t in tasks]


@needs_fork
def test_parallel_results_in_submission_order():
    tasks = list(range(23))
    assert run_tasks(_square, tasks, workers=2) == [t * t for t in tasks]


@needs_fork
def test_parallel_matches_serial_for_any_chunksize():
    tasks = list(range(10))
    serial = run_tasks(_square, tasks, workers=1)
    for chunksize in (1, 3, 10, 100):
        assert run_tasks(_square, tasks, workers=2, chunksize=chunksize) == serial


@needs_fork
def test_closures_need_not_pickle():
    offset = 1000
    tasks = list(range(8))
    out = run_tasks(lambda t: t + offset, tasks, workers=2)
    assert out == [t + offset for t in tasks]


def test_single_task_short_circuits_to_serial():
    assert run_tasks(_square, [5], workers=4) == [25]


def test_empty_task_list():
    assert run_tasks(_square, [], workers=4) == []


# -- progress ----------------------------------------------------------------


def test_serial_progress_reports_every_task():
    calls = []
    run_tasks(
        _square,
        list(range(5)),
        workers=1,
        progress=lambda d, t: calls.append((d, t)),
    )
    assert calls == [(i, 5) for i in range(1, 6)]


@needs_fork
def test_parallel_progress_is_monotonic_and_complete():
    calls = []
    run_tasks(
        _square,
        list(range(12)),
        workers=2,
        chunksize=3,
        progress=lambda d, t: calls.append((d, t)),
    )
    dones = [d for d, _ in calls]
    assert dones == sorted(dones)
    assert calls[-1] == (12, 12)
    assert all(t == 12 for _, t in calls)


# -- structured failures -----------------------------------------------------


def test_serial_task_error_is_structured():
    with pytest.raises(ParallelExecutionError) as info:
        run_tasks(_fail_on_three, [1, 2, 3, 4], workers=1)
    errors = info.value.errors
    assert len(errors) == 1
    assert errors[0].index == 2
    assert errors[0].exc_type == "ValueError"
    assert "boom on 3" in errors[0].message
    assert errors[0].worker_pid == os.getpid()
    assert "ValueError" in errors[0].traceback


@needs_fork
def test_parallel_task_error_survivors_unaffected():
    with pytest.raises(ParallelExecutionError) as info:
        run_tasks(_fail_on_three, [1, 2, 3, 4, 5, 6], workers=2, chunksize=1)
    errors = info.value.errors
    assert [e.index for e in errors] == [2]
    assert errors[0].exc_type == "ValueError"
    assert errors[0].worker_pid > 0


def test_task_error_extracts_seed_from_tuple_tasks():
    with pytest.raises(ParallelExecutionError) as info:
        run_tasks(lambda t: 1 / 0, [("ads", 42)], workers=1)
    error = info.value.errors[0]
    assert error.seed == 42
    assert "ads" in error.params


def test_describe_task_truncates_huge_params():
    text, seed = _describe_task(("x" * 500, 7))
    assert len(text) <= 200
    assert seed == 7


@needs_fork
def test_worker_process_death_surfaces_and_does_not_hang():
    with pytest.raises(ParallelExecutionError) as info:
        run_tasks(_exit_on_three, [1, 2, 3, 4, 5, 6], workers=2, chunksize=1)
    errors = info.value.errors
    assert errors, "a dead worker must produce structured errors"
    # The chunk the dying worker held is attributed pid -1 (no report came
    # back); the message still names the failure class.
    assert any(e.worker_pid == -1 for e in errors)
    assert any(e.index == 2 for e in errors)


def test_error_message_lists_failures():
    with pytest.raises(ParallelExecutionError) as info:
        run_tasks(_fail_on_three, [3], workers=1)
    message = str(info.value)
    assert "task #0" in message
    assert "ValueError" in message


# -- engine self-metrics ------------------------------------------------------


def test_serial_run_records_dispatch_metrics():
    from repro import MetricsRegistry

    registry = MetricsRegistry()
    run_tasks(_square, [1, 2, 3], workers=1, metrics=registry)
    snapshot = registry.snapshot()
    assert snapshot.counters["parallel.tasks"] == 3
    assert snapshot.counters["parallel.chunks"] == 1
    assert snapshot.counters["parallel.task_failures"] == 0
    assert snapshot.gauges["parallel.workers"] == 1


@needs_fork
def test_parallel_run_records_chunks_and_workers():
    from repro import MetricsRegistry

    registry = MetricsRegistry()
    run_tasks(_square, list(range(8)), workers=2, chunksize=2, metrics=registry)
    snapshot = registry.snapshot()
    assert snapshot.counters["parallel.tasks"] == 8
    assert snapshot.counters["parallel.chunks"] == 4
    assert snapshot.gauges["parallel.workers"] == 2


def test_failures_counted_even_when_the_run_raises():
    from repro import MetricsRegistry

    registry = MetricsRegistry()
    with pytest.raises(ParallelExecutionError):
        run_tasks(_fail_on_three, [1, 3], workers=1, metrics=registry)
    assert registry.snapshot().counters["parallel.task_failures"] == 1


def test_disabled_registry_records_nothing():
    from repro import MetricsRegistry

    registry = MetricsRegistry(enabled=False)
    run_tasks(_square, [1], workers=1, metrics=registry)
    assert registry.snapshot().counters == {}
