"""Metrics across the process boundary: relabel, merge, absorb.

Workers return serialized :class:`MetricsSnapshot` payloads; the parent
relabels them with deterministic task ids and merges them into its own
registry.  The merged state must depend only on the snapshots and labels —
never on which OS process produced them or in what order they arrived.
"""

import json

from repro.obs import MetricsRegistry, MetricsSnapshot, merge_snapshots


def _worker_snapshot(task: int) -> MetricsSnapshot:
    registry = MetricsRegistry()
    registry.counter("sim.steps", protocol="ads").inc(10 * (task + 1))
    registry.gauge("memory.max_magnitude").set(float(task))
    hist = registry.histogram("coin.flips")
    for v in range(task + 2):
        hist.observe(float(v))
    return registry.snapshot()


def test_relabel_appends_labels_to_every_key():
    snap = _worker_snapshot(0)
    labelled = snap.relabel(task=3)
    assert "sim.steps{protocol=ads,task=3}" in labelled.counters
    assert all("task=" in key for key in labelled.counters)
    assert all("task=" in key for key in labelled.gauges)
    assert all("task=" in key for key in labelled.histograms)
    # Totals are unchanged by relabelling.
    assert labelled.counter_total("sim.steps") == snap.counter_total("sim.steps")


def test_snapshot_round_trips_through_json():
    snap = _worker_snapshot(2)
    clone = MetricsSnapshot.from_json(snap.to_json())
    assert clone == snap


def test_merge_snapshots_adds_counters_and_maxes_gauges():
    merged = merge_snapshots([_worker_snapshot(0), _worker_snapshot(1)])
    assert merged.counter_total("sim.steps") == 10 + 20
    assert merged.gauge_max("memory.max_magnitude") == 1.0
    summary = merged.histograms["coin.flips"]
    assert summary["count"] == 2 + 3  # count-weighted union
    assert summary["max"] == 2.0


def test_absorb_keeps_per_task_series_distinguishable():
    parent = MetricsRegistry()
    parent.absorb(_worker_snapshot(0), task=0)
    parent.absorb(_worker_snapshot(1), task=1)
    snap = parent.snapshot()
    assert snap.counters["sim.steps{protocol=ads,task=0}"] == 10
    assert snap.counters["sim.steps{protocol=ads,task=1}"] == 20
    assert snap.counter_total("sim.steps") == 30
    assert snap.gauge_max("memory.max_magnitude") == 1.0


def test_absorb_is_order_insensitive():
    a = MetricsRegistry()
    b = MetricsRegistry()
    snapshots = [(i, _worker_snapshot(i)) for i in range(4)]
    for i, snap in snapshots:
        a.absorb(snap, task=i)
    for i, snap in reversed(snapshots):
        b.absorb(snap, task=i)
    assert a.snapshot().to_json() == b.snapshot().to_json()


def test_absorb_merges_histogram_summaries():
    parent = MetricsRegistry()
    parent.absorb(_worker_snapshot(0))  # no labels: same-key merge
    parent.absorb(_worker_snapshot(0))
    summary = parent.snapshot().histograms["coin.flips"]
    assert summary["count"] == 4
    assert summary["sum"] == 2.0
    assert summary["min"] == 0.0
    assert summary["max"] == 1.0
    assert summary["mean"] == 0.5


def test_absorbed_state_survives_into_artifact_payload():
    parent = MetricsRegistry()
    parent.absorb(_worker_snapshot(1), task=0)
    payload = json.loads(parent.snapshot().to_json())
    assert any("task=" in key for key in payload["counters"])


def test_reset_clears_absorbed_histograms():
    parent = MetricsRegistry()
    parent.absorb(_worker_snapshot(1))
    parent.reset()
    assert parent.snapshot().histograms == {}
