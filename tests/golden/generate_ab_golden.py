"""Regenerate the A/B equivalence golden file (``ab_golden.json``).

The golden file pins the *observable* outputs of fixed-seed runs across
the consensus, fuzz and campaign entry points: decisions, step counts,
audit numbers, metrics-snapshot digests, causal-report digests, and the
serial-vs-parallel merge digest.  It was recorded before the hot-path
overhaul (ISSUE 5) and must never change as a side effect of performance
work — ``tests/test_ab_golden.py`` asserts every value on every run.

Regenerating is only legitimate when a change *intentionally* alters
simulation semantics (new RNG discipline, protocol change):

    PYTHONPATH=src python tests/golden/generate_ab_golden.py
"""

from __future__ import annotations

import hashlib
import json
import pathlib

from repro.analysis.experiment import repeat_runs
from repro.consensus.ads import AdsConsensus
from repro.faults.campaign import run_mutation_campaign
from repro.obs.causality import causal_report_for
from repro.obs.metrics import MetricsRegistry, merge_snapshots
from repro.verify.fuzz import fuzz_consensus

GOLDEN_PATH = pathlib.Path(__file__).parent / "ab_golden.json"

CONSENSUS_SEEDS = list(range(10))


def _sha(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def consensus_goldens() -> list[dict]:
    """Fixed-seed ADS runs: outcome, audit and metrics digests."""
    rows = []
    for seed in CONSENSUS_SEEDS:
        inputs = [(seed + i) % 2 for i in range(4)]
        run = AdsConsensus().run(inputs, seed=seed)
        assert run.metrics is not None
        rows.append(
            {
                "seed": seed,
                "inputs": inputs,
                "decisions": {str(k): v for k, v in sorted(run.decisions.items())},
                "total_steps": run.total_steps,
                "steps_by_pid": {
                    str(k): v for k, v in sorted(run.outcome.steps_by_pid.items())
                },
                "audit_max_magnitude": run.audit.max_magnitude,
                "audit_max_width": run.audit.max_width,
                "audit_writes": run.audit.writes,
                "metrics_sha256": _sha(run.metrics.to_json()),
            }
        )
    return rows


def causal_golden() -> dict:
    """A fully recorded run's causal-report JSON digest."""
    run = AdsConsensus().run(
        [0, 1, 1],
        seed=0,
        record_events=True,
        record_spans=True,
        keep_simulation=True,
    )
    report = causal_report_for(run.simulation, run.outcome)
    return {
        "critical_length": report.critical_length,
        "report_sha256": _sha(report.to_json()),
    }


def fuzz_golden() -> dict:
    """A small fuzz grid (crashes + recoveries) over fixed seeds."""
    report = fuzz_consensus(
        lambda: AdsConsensus(),
        n_values=(2, 3),
        runs_per_cell=3,
        master_seed=0,
    )
    return {
        "runs": report.runs,
        "steps_total": report.steps_total,
        "recovery_runs": report.recovery_runs,
        "failures": [str(f) for f in report.failures],
        "by_scheduler": dict(sorted(report.by_scheduler.items())),
    }


def campaign_golden() -> dict:
    """The checker mutation campaign's full JSON digest."""
    report = run_mutation_campaign(seed=0, consensus_max_steps=50_000)
    return {
        "ok": report.ok,
        "holes": sorted(report.holes),
        "report_sha256": _sha(report.to_json()),
    }


def parallel_merge_golden() -> dict:
    """Serial vs 2-worker replication must merge byte-identically."""

    def run_once(seed: int):
        run = AdsConsensus().run([seed % 2, 1, 0], seed=seed)
        assert run.metrics is not None
        return run.metrics

    serial = [s.relabel(task=i) for i, s in enumerate(repeat_runs(run_once, range(6)))]
    parallel = [
        s.relabel(task=i)
        for i, s in enumerate(repeat_runs(run_once, range(6), workers=2))
    ]
    merged_serial = merge_snapshots(serial).to_json()
    merged_parallel = merge_snapshots(parallel).to_json()
    assert merged_serial == merged_parallel
    return {"merged_sha256": _sha(merged_serial)}


def disabled_instrumentation_golden() -> list[dict]:
    """Metrics-off / trace-off runs: decisions and steps only."""
    rows = []
    for seed in CONSENSUS_SEEDS:
        inputs = [(seed + i) % 2 for i in range(4)]
        run = AdsConsensus().run(
            inputs, seed=seed, metrics=MetricsRegistry(enabled=False)
        )
        rows.append(
            {
                "seed": seed,
                "decisions": {str(k): v for k, v in sorted(run.decisions.items())},
                "total_steps": run.total_steps,
            }
        )
    return rows


def main() -> None:
    payload = {
        "consensus": consensus_goldens(),
        "disabled_instrumentation": disabled_instrumentation_golden(),
        "causal": causal_golden(),
        "fuzz": fuzz_golden(),
        "campaign": campaign_golden(),
        "parallel_merge": parallel_merge_golden(),
    }
    GOLDEN_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":
    main()
