"""Failure policies, seeded backoff, and partial-result accounting."""

import pytest

from repro.resilience import FailurePolicy, PartialResult, RetryBackoff
from repro.parallel import TaskError


# -- policy construction and mode semantics ----------------------------------


def test_unknown_mode_is_rejected():
    with pytest.raises(ValueError, match="unknown failure-policy mode"):
        FailurePolicy(mode="best_effort")


def test_max_attempts_must_be_positive():
    with pytest.raises(ValueError, match="max_attempts"):
        FailurePolicy(mode="retry", max_attempts=0)


def test_fail_fast_never_retries():
    policy = FailurePolicy.fail_fast()
    assert not policy.retries_enabled
    assert not policy.should_retry(1, timed_out=False)


def test_retry_allows_attempts_up_to_budget():
    policy = FailurePolicy.retry(max_attempts=3)
    assert policy.retries_enabled
    assert policy.should_retry(1, timed_out=False)
    assert policy.should_retry(2, timed_out=False)
    assert not policy.should_retry(3, timed_out=False)


def test_retry_timeouts_opt_out():
    policy = FailurePolicy.retry(max_attempts=3, retry_timeouts=False)
    assert policy.should_retry(1, timed_out=False)
    assert not policy.should_retry(1, timed_out=True)


def test_continue_mode_without_retries_collects_only():
    policy = FailurePolicy.continue_and_report()
    assert policy.mode == "continue"
    assert not policy.retries_enabled  # max_attempts defaults to 1


# -- seeded backoff -----------------------------------------------------------


def test_backoff_is_deterministic_per_seed():
    a = RetryBackoff(seed=7)
    b = RetryBackoff(seed=7)
    c = RetryBackoff(seed=8)
    schedule_a = [a.delay(i, attempt) for i in range(4) for attempt in (1, 2)]
    schedule_b = [b.delay(i, attempt) for i in range(4) for attempt in (1, 2)]
    schedule_c = [c.delay(i, attempt) for i in range(4) for attempt in (1, 2)]
    assert schedule_a == schedule_b
    assert schedule_a != schedule_c


def test_backoff_grows_and_is_capped():
    backoff = RetryBackoff(base=0.1, factor=2.0, max_delay=0.3, jitter=0.0)
    assert backoff.delay(0, 1) == pytest.approx(0.1)
    assert backoff.delay(0, 2) == pytest.approx(0.2)
    assert backoff.delay(0, 5) == pytest.approx(0.3)  # capped


def test_backoff_base_zero_disables_sleeping():
    backoff = RetryBackoff(base=0.0)
    assert backoff.delay(0, 1) == 0.0
    assert backoff.delay(9, 4) == 0.0


def test_backoff_jitter_stays_within_band():
    backoff = RetryBackoff(base=1.0, factor=1.0, jitter=0.5, seed=3)
    for index in range(20):
        delay = backoff.delay(index, 1)
        assert 0.5 <= delay <= 1.0


# -- partial results ----------------------------------------------------------


def _error(index):
    return TaskError(
        index=index,
        params=f"task-{index}",
        seed=index,
        worker_pid=-1,
        exc_type="ValueError",
        message="boom",
    )


def test_partial_result_accounting():
    partial = PartialResult(
        results=[1.0, None, 3.0],
        errors=[_error(1)],
        retries=2,
        timeouts=1,
    )
    assert not partial.ok
    assert partial.completed == 2
    assert partial.failed_indices == [1]
    assert partial.accounting() == {
        "tasks": 3,
        "completed": 2,
        "failed": 1,
        "retries": 2,
        "timeouts": 1,
        "shed": 0,
    }
    assert "1 FAILED" in partial.summary()
    assert "2 retried" in partial.summary()


def test_partial_result_ok_summary():
    partial = PartialResult(results=[1, 2, 3])
    assert partial.ok
    assert partial.summary() == "3/3 tasks completed: OK"


def test_partial_result_shed_only_is_partial_not_failed():
    partial = PartialResult(
        results=[1, None], shed=1, shed_indices=[1]
    )
    assert not partial.ok
    assert not partial.errors
    assert partial.summary().endswith("PARTIAL")
