"""The resilient execution paths of the parallel engine.

Every scenario asserts the determinism contract from the engine's
docstring: retried tasks re-run from their original seed, so a campaign
that completes merges bit-identically to an undisturbed run.
"""

import time

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.parallel import (
    ParallelExecutionError,
    run_tasks,
    run_tasks_partial,
)
from repro.parallel.engine import _fork_available
from repro.resilience import (
    AdmissionController,
    CampaignBudget,
    CrashOnce,
    FailurePolicy,
    RetryBackoff,
)

needs_fork = pytest.mark.skipif(
    not _fork_available(), reason="fork start method unavailable"
)

#: Retry policy with sleeping disabled — the test configuration.
FAST_RETRY = FailurePolicy.retry(max_attempts=3, backoff=RetryBackoff(base=0))


def _square(task):
    return task * task


def _fail_on_three(task):
    if task == 3:
        raise ValueError(f"boom on {task}")
    return task * 10


def _sleep_forever(task):
    time.sleep(3600)
    return task


# -- continue mode: holes instead of exceptions -------------------------------


@pytest.mark.parametrize("workers", [1, pytest.param(3, marks=needs_fork)])
def test_continue_mode_leaves_holes(workers):
    partial = run_tasks_partial(
        _fail_on_three,
        [1, 2, 3, 4, 5],
        workers=workers,
        policy=FailurePolicy.continue_and_report(),
    )
    assert partial.results == [10, 20, None, 40, 50]
    assert partial.failed_indices == [2]
    assert partial.errors[0].exc_type == "ValueError"
    assert not partial.ok
    assert partial.completed == 4


def test_run_tasks_rejects_continue_mode():
    with pytest.raises(ValueError, match="run_tasks_partial"):
        run_tasks(
            _square, [1, 2], policy=FailurePolicy.continue_and_report()
        )


# -- retries ------------------------------------------------------------------


def test_serial_retry_recovers_transient_failure():
    failures = {"left": 2}

    def flaky(task):
        if task == 2 and failures["left"] > 0:
            failures["left"] -= 1
            raise RuntimeError("transient")
        return task * task

    partial = run_tasks_partial(
        flaky, [1, 2, 3], workers=1, policy=FAST_RETRY
    )
    assert partial.ok
    assert partial.results == [1, 4, 9]
    assert partial.retries == 2


def test_serial_retry_exhaustion_reports_the_error():
    partial = run_tasks_partial(
        _fail_on_three, [1, 2, 3], workers=1, policy=FAST_RETRY
    )
    assert partial.failed_indices == [2]
    assert partial.retries == 2  # two re-dispatches before giving up


@needs_fork
def test_retry_recovers_sigkilled_worker_bit_identical(tmp_path):
    crashing = CrashOnce(_square, tmp_path / "crashed")
    tasks = list(range(8))
    partial = run_tasks_partial(
        crashing, tasks, workers=2, policy=FAST_RETRY
    )
    assert (tmp_path / "crashed").exists()  # the crash actually fired
    assert partial.retries >= 1
    assert partial.ok
    assert partial.results == [_square(t) for t in tasks]  # bit-identical


@needs_fork
def test_worker_death_without_retries_is_a_structured_error(tmp_path):
    crashing = CrashOnce(_square, tmp_path / "crashed")
    with pytest.raises(ParallelExecutionError) as excinfo:
        run_tasks(
            crashing,
            list(range(8)),
            workers=2,
            policy=FailurePolicy(
                mode="retry", max_attempts=1, backoff=RetryBackoff(base=0)
            ),
        )
    assert any(e.exc_type == "WorkerDied" for e in excinfo.value.errors)


# -- timeouts -----------------------------------------------------------------


@needs_fork
def test_timeout_kills_the_hung_worker():
    partial = run_tasks_partial(
        _sleep_forever,
        [1, 2],
        workers=2,
        policy=FailurePolicy.continue_and_report(),
        task_timeout=0.2,
    )
    assert partial.timeouts == 2
    assert partial.results == [None, None]
    assert {e.exc_type for e in partial.errors} == {"TaskTimeout"}


@needs_fork
def test_timeout_spares_fast_tasks():
    def mixed(task):
        if task == "slow":
            time.sleep(3600)
        return task

    partial = run_tasks_partial(
        mixed,
        ["a", "slow", "b"],
        workers=3,
        policy=FailurePolicy.continue_and_report(),
        task_timeout=0.5,
    )
    assert partial.results == ["a", None, "b"]
    assert partial.timeouts == 1


@needs_fork
def test_retry_timeouts_false_fails_immediately():
    partial = run_tasks_partial(
        _sleep_forever,
        [1, 2],
        workers=2,
        policy=FailurePolicy.retry(
            max_attempts=3, backoff=RetryBackoff(base=0), retry_timeouts=False
        ),
        task_timeout=0.2,
    )
    assert partial.retries == 0
    assert partial.timeouts == 2


# -- admission control through the engine -------------------------------------


@pytest.mark.parametrize("workers", [1, pytest.param(3, marks=needs_fork)])
def test_admission_sheds_tail_tasks(workers):
    controller = AdmissionController(
        CampaignBudget(max_tasks=3, soft_fraction=1.0)
    )
    partial = run_tasks_partial(
        _square,
        [1, 2, 3, 4, 5],
        workers=workers,
        policy=FailurePolicy.continue_and_report(),
        admission=controller,
    )
    assert partial.results == [1, 4, 9, None, None]
    assert partial.shed == 2
    assert partial.shed_indices == [3, 4]
    assert not partial.errors  # shed is not failure


# -- metrics and on_result hooks ----------------------------------------------


def test_resilience_counters_flow_into_metrics():
    metrics = MetricsRegistry(enabled=True)
    run_tasks_partial(
        _fail_on_three,
        [1, 2, 3],
        workers=1,
        policy=FailurePolicy.continue_and_report(max_attempts=2),
        metrics=metrics,
    )
    snapshot = metrics.snapshot()
    assert snapshot.counter_total("resilience.retries") == 1
    # Nothing timed out or was shed: those counters stay unrecorded so
    # undisturbed runs keep byte-identical snapshots.
    assert snapshot.counter_total("resilience.timeouts") == 0
    assert snapshot.counter_total("resilience.shed") == 0


@pytest.mark.parametrize("workers", [1, pytest.param(3, marks=needs_fork)])
def test_on_result_sees_every_success_exactly_once(workers):
    seen = {}

    def record(index, value):
        assert index not in seen
        seen[index] = value

    run_tasks_partial(
        _square, [1, 2, 3, 4], workers=workers, on_result=record
    )
    assert seen == {0: 1, 1: 4, 2: 9, 3: 16}
