"""Budget-based admission control with priority classes."""

import pytest

from repro.resilience import AdmissionController, CampaignBudget, Priority


class FrozenClock:
    """An injectable monotonic clock the tests advance by hand."""

    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


def test_soft_fraction_is_validated():
    with pytest.raises(ValueError, match="soft_fraction"):
        CampaignBudget(max_tasks=10, soft_fraction=0.0)
    with pytest.raises(ValueError, match="soft_fraction"):
        CampaignBudget(max_tasks=10, soft_fraction=1.5)


def test_unlimited_budget_admits_everything():
    controller = AdmissionController(CampaignBudget())
    assert controller.budget.unlimited
    for task in range(50):
        assert controller.admit(task).admitted
    assert controller.shed == 0


def test_task_budget_sheds_non_critical_at_exhaustion():
    budget = CampaignBudget(max_tasks=2, soft_fraction=1.0)
    controller = AdmissionController(budget)
    assert controller.admit("a").admitted
    assert controller.admit("b").admitted
    verdict = controller.admit("c")  # pressure hits 1.0
    assert not verdict.admitted
    assert "budget exhausted" in verdict.reason
    assert controller.accounting()["shed"] == 1


def test_critical_work_is_admitted_past_exhaustion():
    budget = CampaignBudget(max_tasks=1, soft_fraction=1.0)
    controller = AdmissionController(
        budget, priority_of=lambda task: Priority.CRITICAL
    )
    assert controller.admit("a").admitted
    assert controller.admit("b").admitted  # CRITICAL rides through
    assert controller.shed == 0


def test_best_effort_sheds_first_under_soft_pressure():
    budget = CampaignBudget(max_tasks=10, soft_fraction=0.5)
    priorities = {"be": Priority.BEST_EFFORT, "n": Priority.NORMAL}
    controller = AdmissionController(
        budget, priority_of=lambda task: priorities[task[0]]
    )
    for i in range(5):  # drive pressure to the soft threshold
        assert controller.admit(("n", i)).admitted
    shed = controller.admit(("be", 0))
    assert not shed.admitted
    assert "BEST_EFFORT shed first" in shed.reason
    assert controller.admit(("n", 5)).admitted  # NORMAL still rides


def test_tasks_may_carry_their_own_priority():
    class Task:
        priority = Priority.BEST_EFFORT

    budget = CampaignBudget(max_tasks=2, soft_fraction=0.5)
    controller = AdmissionController(budget)
    assert controller.admit(object()).admitted  # NORMAL default
    assert not controller.admit(Task()).admitted  # soft pressure, BEST_EFFORT


def test_step_budget_is_charged_from_results():
    budget = CampaignBudget(max_steps=100, soft_fraction=1.0)
    controller = AdmissionController(budget)
    assert controller.admit("a").admitted
    controller.charge({"total_steps": 60})
    assert controller.pressure() == pytest.approx(0.6)
    controller.charge({"total_steps": 40})
    assert not controller.admit("b").admitted  # steps exhausted


def test_steps_extraction_covers_attr_key_and_custom():
    controller = AdmissionController(CampaignBudget(max_steps=10))

    class Run:
        steps_total = 3

    controller.charge(Run())
    controller.charge({"steps_total": 4})
    controller.charge("opaque")  # no cost information: charges 0
    assert controller.spent_steps == 7

    custom = AdmissionController(
        CampaignBudget(max_steps=10), steps_of=lambda r: r[1]
    )
    custom.charge(("ignored", 9))
    assert custom.spent_steps == 9


def test_wall_clock_budget_uses_injected_clock():
    clock = FrozenClock()
    budget = CampaignBudget(max_wall_seconds=10.0, soft_fraction=1.0)
    controller = AdmissionController(budget, clock=clock)
    assert controller.admit("a").admitted  # starts the clock
    clock.now += 5.0
    assert controller.pressure() == pytest.approx(0.5)
    assert controller.admit("b").admitted
    clock.now += 5.0
    assert not controller.admit("c").admitted  # wall budget exhausted


def test_decisions_are_recorded_in_order():
    budget = CampaignBudget(max_tasks=1, soft_fraction=1.0)
    controller = AdmissionController(budget)
    controller.admit("a")
    controller.admit("b")
    assert [d.admitted for d in controller.decisions] == [True, False]
