"""Crash-mid-campaign recovery and checkpoint/resume, end to end.

The PR's acceptance scenarios, proven on the real entry points:

- a campaign whose worker is SIGKILLed mid-run completes via the retry
  path with merged output (and ledger bytes) identical to an undisturbed
  run;
- an interrupted ledger-recorded campaign leaves a valid submission-order
  prefix behind, and the resumed run recomputes *only* the missing
  fingerprints (cache-hit accounting asserted), converging on a ledger
  byte-identical to the uninterrupted one.
"""

import json

import pytest

from repro.consensus import AdsConsensus
from repro.faults.campaign import run_mutation_campaign
from repro.obs.ledger import RunLedger
from repro.parallel.engine import _fork_available
from repro.resilience import CrashOnce, FailurePolicy, RetryBackoff
from repro.verify.fuzz import fuzz_consensus

needs_fork = pytest.mark.skipif(
    not _fork_available(), reason="fork start method unavailable"
)

FAST_RETRY = FailurePolicy.retry(max_attempts=3, backoff=RetryBackoff(base=0))


@pytest.fixture(autouse=True)
def _pinned_code_version(monkeypatch):
    monkeypatch.setenv("REPRO_CODE_VERSION", "test-code-v1")


def _fuzz(ledger=None, workers=1, policy=None, task_wrapper=None):
    return fuzz_consensus(
        lambda: AdsConsensus(),
        n_values=(2, 3),
        runs_per_cell=2,
        crash_probability=1.0,
        recovery_probability=1.0,
        master_seed=0,
        workers=workers,
        ledger=ledger,
        experiment="fuzz:resilience",
        policy=policy,
        task_wrapper=task_wrapper,
    )


# -- SIGKILL mid-campaign, retry to bit-identical completion ------------------


@needs_fork
def test_sigkilled_fuzz_worker_retries_to_identical_report_and_ledger(
    tmp_path,
):
    baseline_path = tmp_path / "baseline.jsonl"
    crashed_path = tmp_path / "crashed.jsonl"
    baseline = _fuzz(ledger=RunLedger(baseline_path), workers=2)

    marker = tmp_path / "crash-marker"
    disturbed = _fuzz(
        ledger=RunLedger(crashed_path),
        workers=2,
        policy=FAST_RETRY,
        task_wrapper=lambda fn: CrashOnce(fn, marker),
    )
    assert marker.exists()  # exactly one worker was actually SIGKILLed
    assert disturbed.runs == baseline.runs > 0
    assert disturbed.steps_total == baseline.steps_total
    assert [str(f) for f in disturbed.failures] == [
        str(f) for f in baseline.failures
    ]
    assert crashed_path.read_bytes() == baseline_path.read_bytes()


@needs_fork
def test_sigkilled_campaign_worker_retries_to_identical_json(tmp_path):
    baseline = run_mutation_campaign(consensus_max_steps=50_000, workers=2)
    marker = tmp_path / "crash-marker"
    disturbed = run_mutation_campaign(
        consensus_max_steps=50_000,
        workers=2,
        policy=FAST_RETRY,
        task_wrapper=lambda fn: CrashOnce(fn, marker),
    )
    assert marker.exists()
    assert disturbed.to_json() == baseline.to_json()


# -- interrupt / resume -------------------------------------------------------


def _truncate_to_prefix(path, keep):
    """Simulate an interrupt: keep the first ``keep`` checkpointed records."""
    lines = path.read_text().splitlines(keepends=True)
    assert len(lines) > keep, "fixture needs more records than the prefix"
    path.write_text("".join(lines[:keep]))
    return len(lines)


def test_resumed_fuzz_recomputes_only_missing_fingerprints(tmp_path):
    full_path = tmp_path / "full.jsonl"
    _fuzz(ledger=RunLedger(full_path))
    total = len(full_path.read_text().splitlines())

    # Interrupted copy: only the first two cells were checkpointed.
    resumed_path = tmp_path / "resumed.jsonl"
    resumed_path.write_bytes(full_path.read_bytes())
    _truncate_to_prefix(resumed_path, keep=2)

    resumed = _fuzz(ledger=RunLedger(resumed_path))
    assert resumed.cache_hits == 2  # exactly the checkpointed prefix
    assert resumed_path.read_bytes() == full_path.read_bytes()
    assert len(resumed_path.read_text().splitlines()) == total


def test_resumed_campaign_reports_cache_hits_out_of_band(tmp_path):
    path = tmp_path / "campaign.jsonl"
    first = run_mutation_campaign(
        consensus_max_steps=50_000, ledger=RunLedger(path)
    )
    assert first.cache_hits == 0
    _truncate_to_prefix(path, keep=3)
    full_bytes_expected = run_mutation_campaign(
        consensus_max_steps=50_000, ledger=RunLedger(path)
    )
    assert full_bytes_expected.cache_hits == 3
    # The resumed report is byte-identical to the undisturbed one:
    # cache_hits is runtime accounting and deliberately kept out of the
    # serialised payload.
    assert full_bytes_expected.to_json() == first.to_json()
    assert "cache_hits" not in json.loads(full_bytes_expected.to_json())


def test_ledger_counts_hits_and_misses(tmp_path):
    path = tmp_path / "fuzz.jsonl"
    first = RunLedger(path)
    _fuzz(ledger=first)
    assert first.hits == 0
    assert first.misses > 0

    second = RunLedger(path)
    _fuzz(ledger=second)
    assert second.hits == first.misses  # everything served from the ledger
    assert second.misses == 0


def test_no_cache_ledger_counts_every_lookup_as_miss(tmp_path):
    path = tmp_path / "fuzz.jsonl"
    _fuzz(ledger=RunLedger(path))
    uncached = RunLedger(path, use_cache=False)
    _fuzz(ledger=uncached)
    assert uncached.hits == 0
    assert uncached.misses > 0
