"""Tests for the provenance helper (``repro.version``)."""

import re

from repro.version import (
    CODE_VERSION_ENV,
    LEDGER_SCHEMA,
    code_version,
    git_sha,
    package_version,
    provenance,
)


def test_package_version_is_nonempty():
    assert package_version()


def test_git_sha_is_hex_or_empty():
    sha = git_sha()
    assert sha == "" or re.fullmatch(r"[0-9a-f]{40}", sha)


def test_code_version_embeds_package_and_schema():
    version = code_version()
    assert package_version() in version
    assert f"schema{LEDGER_SCHEMA}" in version


def test_code_version_env_override(monkeypatch):
    monkeypatch.setenv(CODE_VERSION_ENV, "pinned-for-tests")
    assert code_version() == "pinned-for-tests"


def test_provenance_payload_shape():
    payload = provenance()
    assert set(payload) == {"package", "git_sha", "ledger_schema", "code_version"}
    assert payload["ledger_schema"] == LEDGER_SCHEMA
    assert payload["code_version"] == code_version()
