"""Tests for the benchmark regression gate (repro.analysis.benchgate)."""

import json

from repro.analysis.benchgate import (
    check_experiment,
    check_experiments,
    compare_payloads,
    is_timing_key,
    update_baselines,
)


def _payload(value, title="T"):
    return {
        "experiment": "e0",
        "tables": [{"title": title, "rows": [{"n": 3, "steps": value}]}],
    }


def test_identical_payloads_pass():
    result = compare_payloads("e0", _payload(100), _payload(100))
    assert result.ok
    assert result.compared >= 2  # n and steps


def test_drift_within_tolerance_passes():
    result = compare_payloads("e0", _payload(100), _payload(105), tolerance=0.10)
    assert result.ok


def test_regression_beyond_tolerance_fails():
    result = compare_payloads("e0", _payload(100), _payload(150), tolerance=0.10)
    assert not result.ok
    assert "steps" in result.problems[0]
    assert "deviates" in result.problems[0]


def test_timing_keys_are_never_compared():
    for key in ("wall_seconds", "speedup", "workers", "cpus_available", "elapsed"):
        assert is_timing_key(key)
    assert not is_timing_key("steps")
    baseline = _payload(100)
    measured = _payload(100)
    baseline["tables"][0]["rows"][0]["wall_seconds"] = 1.0
    measured["tables"][0]["rows"][0]["wall_seconds"] = 99.0
    assert compare_payloads("e0", baseline, measured).ok


def test_timings_section_is_skipped_entirely():
    baseline = _payload(100)
    measured = _payload(100)
    measured["timings"] = {"total": {"wall_seconds": 5.0, "workers": 4}}
    assert compare_payloads("e0", baseline, measured).ok


def test_bools_compare_exactly_not_numerically():
    # False/True differ by 1.0 relative drift, but more importantly they
    # must never be softened by the numeric tolerance band.
    result = compare_payloads(
        "e0", _payload(True), _payload(False), tolerance=10.0
    )
    assert not result.ok


def test_missing_and_extra_tables_reported_once_each():
    baseline = _payload(1, title="old")
    measured = _payload(1, title="new")
    result = compare_payloads("e0", baseline, measured)
    assert len(result.problems) == 2
    assert any("missing from artifact" in p for p in result.problems)
    assert any("not in baseline" in p for p in result.problems)


def test_row_count_change_is_one_problem():
    baseline = _payload(1)
    measured = _payload(1)
    measured["tables"][0]["rows"].append({"n": 4, "steps": 2})
    result = compare_payloads("e0", baseline, measured)
    assert len(result.problems) == 1
    assert "entries" in result.problems[0]


def test_metrics_extras_are_gated_too():
    baseline = _payload(1)
    measured = _payload(1)
    baseline["metrics"] = {"m": {"counters": {"sim.steps": 100}}}
    measured["metrics"] = {"m": {"counters": {"sim.steps": 500}}}
    assert not compare_payloads("e0", baseline, measured).ok


def test_check_experiment_missing_baseline_hints_update(tmp_path):
    results = tmp_path / "results"
    results.mkdir()
    (results / "BENCH_E0.json").write_text(json.dumps(_payload(1)))
    result = check_experiment("e0", results, tmp_path / "baselines")
    assert not result.ok
    assert "repro bench --update" in result.problems[0]


def test_check_experiment_missing_artifact_hints_run(tmp_path):
    baselines = tmp_path / "baselines"
    baselines.mkdir()
    (baselines / "BENCH_E0.json").write_text(json.dumps(_payload(1)))
    result = check_experiment("e0", tmp_path / "results", baselines)
    assert not result.ok
    assert "run the benchmark" in result.problems[0]


def test_update_then_check_round_trip(tmp_path):
    results = tmp_path / "results"
    results.mkdir()
    (results / "BENCH_E0.json").write_text(json.dumps(_payload(42)))
    copied = update_baselines(["e0"], results, tmp_path / "baselines")
    assert copied == ["e0"]
    gates = check_experiments(["e0"], results, tmp_path / "baselines")
    assert all(g.ok for g in gates)


def test_within_tolerance_is_public():
    from repro.analysis.benchgate import within_tolerance

    assert within_tolerance(100.0, 105.0, 0.10)
    assert not within_tolerance(100.0, 150.0, 0.10)
    assert within_tolerance(0.0, 0.0, 0.0)


def test_strip_timing_values_removes_host_measurements():
    from repro.analysis.benchgate import strip_timing_values

    payload = {
        "tables": [{"rows": [{"n": 3, "steps_per_sec": 5000, "steps": 10}]}],
        "timings": {"total": {"wall_seconds": 1.0}},
        "metrics": {"ads": {"counters": {"runtime.steps": 10}}},
    }
    stripped = strip_timing_values(payload)
    assert "timings" not in stripped
    assert stripped["tables"][0]["rows"][0] == {"n": 3, "steps": 10}
    assert stripped["metrics"] == payload["metrics"]
    payload["tables"][0]["rows"][0]["mutated"] = True  # deep copy, not a view
    assert "mutated" not in stripped["tables"][0]["rows"][0]


def test_deviations_carry_expected_vs_actual():
    result = compare_payloads("e0", _payload(100), _payload(150))
    assert not result.ok
    assert len(result.deviations) == 1
    deviation = result.deviations[0]
    assert deviation["expected"] == 100
    assert deviation["actual"] == 150
    assert deviation["drift"] > 0.3
    assert "steps" in deviation["location"]


def test_failed_summary_names_the_baseline_file(tmp_path):
    results = tmp_path / "results"
    baselines = tmp_path / "baselines"
    results.mkdir()
    baselines.mkdir()
    (results / "BENCH_E0.json").write_text(json.dumps(_payload(150)))
    (baselines / "BENCH_E0.json").write_text(json.dumps(_payload(100)))
    result = check_experiment("e0", results, baselines)
    assert not result.ok
    assert str(baselines / "BENCH_E0.json") in result.summary()
    assert result.artifact_file == str(results / "BENCH_E0.json")
    assert result.deviations  # the structured diff survives the disk path
