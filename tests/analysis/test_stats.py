"""Tests for the statistics helpers."""

import pytest

from repro.analysis.stats import (
    doubling_ratio,
    growth_exponent,
    mean_and_ci,
    summarize,
    wilson_interval,
)


def test_mean_and_ci_basic():
    mean, low, high = mean_and_ci([1.0, 2.0, 3.0])
    assert mean == pytest.approx(2.0)
    assert low < 2.0 < high


def test_mean_and_ci_single_sample_degenerates():
    assert mean_and_ci([5.0]) == (5.0, 5.0, 5.0)


def test_mean_and_ci_rejects_empty():
    with pytest.raises(ValueError):
        mean_and_ci([])


def test_summarize_fields():
    s = summarize([1.0, 2.0, 3.0, 4.0])
    assert s.count == 4
    assert s.minimum == 1.0 and s.maximum == 4.0
    assert s.ci_low <= s.mean <= s.ci_high
    assert "mean=2.5" in str(s)


def test_wilson_interval_contains_rate():
    rate, low, high = wilson_interval(3, 10)
    assert low <= rate <= high
    assert rate == pytest.approx(0.3)


def test_wilson_interval_zero_successes_positive_upper():
    rate, low, high = wilson_interval(0, 100)
    assert rate == 0.0
    assert low == 0.0
    assert 0 < high < 0.1


def test_wilson_interval_rejects_no_trials():
    with pytest.raises(ValueError):
        wilson_interval(0, 0)


def test_growth_exponent_recovers_power_laws():
    xs = [2, 4, 8, 16]
    quadratic = [x**2 for x in xs]
    cubic = [2.5 * x**3 for x in xs]
    assert growth_exponent(xs, quadratic) == pytest.approx(2.0)
    assert growth_exponent(xs, cubic) == pytest.approx(3.0)


def test_growth_exponent_with_multiplicative_noise():
    xs = [2, 4, 8, 16, 32]
    noise = [1.1, 0.9, 1.05, 0.95, 1.0]
    noisy = [f * x**2 for f, x in zip(noise, xs)]
    assert abs(growth_exponent(xs, noisy) - 2.0) < 0.1


def test_growth_exponent_needs_two_points():
    with pytest.raises(ValueError):
        growth_exponent([1], [1])


def test_doubling_ratio_exponential():
    ys = [4, 8, 16, 32]
    assert doubling_ratio(ys) == pytest.approx(2.0)
    assert doubling_ratio([10, 10, 10]) == pytest.approx(1.0)
    with pytest.raises(ValueError):
        doubling_ratio([1])
