"""Tests for the table renderer."""

from repro.analysis.reporting import format_table, render_rows


def test_format_table_alignment_and_headers():
    rows = [
        {"n": 2, "mean": 10.5, "note": "ok"},
        {"n": 16, "mean": 3.14159, "note": "x"},
    ]
    text = format_table(rows, title="demo")
    lines = text.splitlines()
    assert lines[0] == "demo"
    assert "n" in lines[1] and "mean" in lines[1] and "note" in lines[1]
    assert "10.5" in text and "3.142" in text


def test_format_table_union_of_keys():
    rows = [{"a": 1}, {"b": 2}]
    text = format_table(rows)
    assert "a" in text and "b" in text


def test_format_table_empty():
    assert "(no rows)" in format_table([], title="t")


def test_float_formatting_rules():
    text = format_table([{"x": 0.0001234, "y": 123456.0, "z": 0.5, "w": 0}])
    assert "0.000123" in text
    assert "1.23e+05" in text
    assert "0.5" in text


def test_render_rows_prints_and_returns(capsys):
    rows = [{"k": 1}]
    text = render_rows(rows, "title-here")
    captured = capsys.readouterr()
    assert "title-here" in captured.out
    assert text in captured.out
