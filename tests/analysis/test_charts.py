"""Tests for the ASCII chart helpers."""

import pytest

from repro.analysis.charts import bar_chart, log_series_chart


def test_bar_chart_scales_to_max():
    text = bar_chart(["a", "bb"], [10, 5], width=20, title="t")
    lines = text.splitlines()
    assert lines[0] == "t"
    assert lines[1].count("#") == 20
    assert lines[2].count("#") == 10
    assert "10" in lines[1] and "5" in lines[2]


def test_bar_chart_zero_and_empty():
    text = bar_chart(["x"], [0.0])
    assert "x |  0" in text
    assert "(no data)" in bar_chart([], [], title="empty")


def test_bar_chart_alignment_mismatch():
    with pytest.raises(ValueError):
        bar_chart(["a"], [1, 2])


def test_log_series_chart_exponential_marches_evenly():
    xs = [1, 2, 3, 4]
    text = log_series_chart(
        xs,
        {"expo": [2, 4, 8, 16], "poly": [1, 4, 9, 16]},
        width=40,
        title="growth",
    )
    lines = text.splitlines()
    assert lines[0] == "growth"
    assert "e=expo" in lines[1] and "p=poly" in lines[1]
    # exponential marker columns are evenly spaced on the log scale
    columns = [line.index("e") for line in lines[2:] if "e" in line]
    diffs = [b - a for a, b in zip(columns, columns[1:])]
    assert max(diffs) - min(diffs) <= 1


def test_log_series_chart_collision_marker():
    text = log_series_chart([1], {"aa": [5], "bb": [5]}, width=30)
    assert "*" in text  # both series at the same column


def test_log_series_chart_empty():
    assert "(no data)" in log_series_chart([], {}, title="x")
