"""Tests for the throughput/profiling subsystem (``repro.analysis.perfbench``)."""

import pytest

from repro.analysis.perfbench import (
    MODES,
    ThroughputSample,
    WORKLOADS,
    measure_throughput,
    overhead_rows,
    profile_breakdown,
    run_workload,
    throughput_table,
)

FAST_SEEDS = (100, 101)


def test_step_counts_deterministic_and_mode_independent():
    for workload in WORKLOADS:
        counts = {mode: run_workload(workload, mode, FAST_SEEDS) for mode in MODES}
        assert len(set(counts.values())) == 1, (workload, counts)
        assert counts["bare"] > 0
        # And stable across repeat invocations of the same cell.
        assert run_workload(workload, "bare", FAST_SEEDS) == counts["bare"]


def test_measure_throughput_returns_positive_sample():
    sample = measure_throughput("coin", "bare", seeds=FAST_SEEDS, repeats=1)
    assert sample.workload == "coin"
    assert sample.mode == "bare"
    assert sample.steps > 0
    assert sample.wall_seconds > 0
    assert sample.steps_per_sec == pytest.approx(sample.steps / sample.wall_seconds)


def test_steps_per_sec_zero_guard():
    assert ThroughputSample("w", "bare", 10, 0.0).steps_per_sec == 0.0


def test_throughput_table_passes_on_agreeing_modes():
    samples = throughput_table(
        workloads=("coin",), modes=("bare", "metrics"), seeds=FAST_SEEDS, repeats=1
    )
    assert len(samples) == 2
    assert samples[0].steps == samples[1].steps


def test_throughput_table_rejects_schedule_divergence(monkeypatch):
    import repro.analysis.perfbench as perfbench

    def divergent(workload, mode, seeds):
        # Simulate an instrumentation bug: trace mode takes an extra step.
        return 100 + (1 if mode == "trace" else 0)

    monkeypatch.setattr(perfbench, "run_workload", divergent)
    with pytest.raises(AssertionError, match="changed the schedule"):
        perfbench.throughput_table(
            workloads=("coin",), seeds=FAST_SEEDS, repeats=1
        )


def test_overhead_rows_ratios_relative_to_bare():
    samples = [
        ThroughputSample("consensus", "bare", 1000, 0.5),
        ThroughputSample("consensus", "metrics", 1000, 0.6),
        ThroughputSample("consensus", "trace", 1000, 1.0),
    ]
    rows = overhead_rows(samples)
    by_mode = {row["mode"]: row for row in rows}
    assert by_mode["bare"]["overhead_vs_bare"] == 1.0
    assert by_mode["metrics"]["overhead_vs_bare"] == 1.2
    assert by_mode["trace"]["overhead_vs_bare"] == 2.0
    assert by_mode["bare"]["steps_per_sec"] == 2000


def test_overhead_rows_skips_workloads_without_bare():
    assert overhead_rows([ThroughputSample("scan", "metrics", 10, 0.1)]) == []


def test_profile_breakdown_sections_cover_every_cell():
    rows, profiler = profile_breakdown(seeds=FAST_SEEDS, repeats=1)
    assert {(r["workload"], r["mode"]) for r in rows} == {
        (w, m) for w in WORKLOADS for m in MODES
    }
    sections = profiler.sections()
    assert set(sections) == {f"{w}.{m}" for w in WORKLOADS for m in MODES}
    assert all(summary["count"] == 1 for summary in sections.values())
