"""Tests for the paper-predicted curves."""

from repro.analysis import theory


def test_e1_bound_decreases_in_b():
    assert theory.e1_disagreement_bound(2) > theory.e1_disagreement_bound(8)


def test_e2_quadratic_in_n_and_b():
    assert theory.e2_expected_flips(2, 4) == 144
    assert theory.e2_expected_flips(2, 8) == 4 * theory.e2_expected_flips(2, 4)


def test_e3_bound_decreases_in_m():
    assert theory.e3_overflow_bound(2, 4, 100) > theory.e3_overflow_bound(2, 4, 10_000)


def test_e4_constant_in_n():
    assert theory.e4_expected_rounds(2) == theory.e4_expected_rounds(64)


def test_e5_shapes():
    assert theory.e5_growth_exponent_ads() < 4
    assert theory.e5_doubling_ratio_local_coin() == 2.0


def test_e6_bounded_magnitude_dominated_by_m():
    assert theory.e6_bounded_magnitude(2, 2, 4, 1024) == 1025
    assert theory.e6_bounded_magnitude(4, 2, 4, 3) == 11  # 3K-1 dominates


def test_e9_zero_violations():
    assert theory.e9_equivalence() == 0.0
