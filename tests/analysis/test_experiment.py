"""Tests for the sweep/repetition plumbing."""

from repro.analysis import Sweep, repeat_runs, sweep_table


def test_repeat_runs_passes_seeds():
    seen = []

    def once(seed):
        seen.append(seed)
        return float(seed * 2)

    values = repeat_runs(once, range(3))
    assert values == [0.0, 2.0, 4.0]
    assert seen == [0, 1, 2]


def test_sweep_executes_every_point_with_fresh_seeds():
    calls = []

    def run_once(value, seed):
        calls.append((value, seed))
        return float(value + seed)

    sweep = Sweep("b", [2, 4], run_once, repetitions=3, seed_base=100)
    points = sweep.execute()
    assert [p.params for p in points] == [{"b": 2}, {"b": 4}]
    assert calls == [(2, 100), (2, 101), (2, 102), (4, 100), (4, 101), (4, 102)]
    assert points[0].summary.count == 3


def test_sweep_table_rows_include_predictions():
    def run_once(value, seed):
        return float(value * 10)

    points = Sweep("n", [1, 2], run_once, repetitions=2).execute()
    rows = sweep_table(points, predicted=lambda n: n * 10.0)
    assert rows[0]["n"] == 1
    assert rows[0]["mean"] == 10.0
    assert rows[0]["predicted"] == 10.0
    assert rows[1]["predicted"] == 20.0
    assert {"ci_low", "ci_high", "reps"} <= set(rows[0])


def test_sweep_table_without_predictions():
    points = Sweep("x", [5], lambda v, s: 1.0, repetitions=2).execute()
    rows = sweep_table(points)
    assert "predicted" not in rows[0]
