"""Tests for the simulation driver."""

import pytest

from repro.registers import AtomicRegister
from repro.runtime import (
    RandomScheduler,
    RoundRobinScheduler,
    Simulation,
    StepBudgetExceeded,
)

from tests.helpers import counter_program, run_with_setup


def test_single_process_runs_to_completion():
    sim = Simulation(1, seed=1)

    def program(ctx):
        total = 0
        for k in range(5):
            yield from AtomicRegister(ctx.simulation, f"r{k}", 0).write(ctx, k)
            total += k
        return total

    sim.spawn(0, program)
    outcome = sim.run()
    assert outcome.decisions == {0: 10}
    assert outcome.finished
    assert outcome.total_steps == 5


def test_process_with_no_yields_finishes_at_spawn():
    sim = Simulation(1, seed=0)

    def program(ctx):
        return "done"
        yield  # pragma: no cover

    sim.spawn(0, program)
    assert sim.run().decisions == {0: "done"}
    assert sim.step_count == 0


def test_spawn_rejects_duplicate_and_out_of_range_pids():
    sim = Simulation(2, seed=0)

    def program(ctx):
        return None
        yield  # pragma: no cover

    sim.spawn(0, program)
    with pytest.raises(ValueError):
        sim.spawn(0, program)
    with pytest.raises(ValueError):
        sim.spawn(5, program)


def test_step_budget_raises_on_nonterminating_program():
    def setup(sim):
        reg = AtomicRegister(sim, "r", 0)

        def factory(pid):
            def body(ctx):
                while True:
                    yield from reg.write(ctx, pid)

            return body

        return factory

    with pytest.raises(StepBudgetExceeded):
        run_with_setup(2, setup, max_steps=100)


def test_step_budget_message_carries_a_diagnosis():
    def setup(sim):
        reg = AtomicRegister(sim, "r", 0)

        def factory(pid):
            def body(ctx):
                while True:
                    yield from reg.write(ctx, pid)

            return body

        return factory

    with pytest.raises(StepBudgetExceeded) as excinfo:
        run_with_setup(2, setup, max_steps=100)
    message = str(excinfo.value)
    assert "100 steps taken" in message
    assert "steps_by_pid=[p0=" in message
    assert "scan_retries=" in message and "round_advances=" in message


def test_step_budget_can_return_instead_of_raise():
    sim = Simulation(1, seed=0, record_events=True)
    reg = AtomicRegister(sim, "r", 0)

    def program(ctx):
        while True:
            yield from reg.write(ctx, 1)

    sim.spawn(0, program)
    outcome = sim.run(max_steps=50, raise_on_budget=False)
    assert not outcome.finished
    assert outcome.total_steps == 50
    assert outcome.degraded
    assert "step budget exhausted" in outcome.failure_reason
    assert outcome.trace_excerpt  # evidence tail comes with the diagnosis


def test_normal_completion_is_not_degraded():
    sim = Simulation(1, seed=0)
    reg = AtomicRegister(sim, "r", 0)

    def program(ctx):
        yield from reg.write(ctx, 1)
        return 1

    sim.spawn(0, program)
    outcome = sim.run()
    assert outcome.finished and not outcome.degraded
    assert outcome.failure_reason is None
    assert outcome.trace_excerpt == []


def test_crash_stops_a_process_permanently():
    sim = Simulation(2, RoundRobinScheduler(), seed=0)
    reg = AtomicRegister(sim, "r", 0)
    sim.spawn_all(counter_program(reg))
    sim.crash(1)
    outcome = sim.run()
    assert 1 in outcome.crashed
    assert 1 not in outcome.decisions
    assert outcome.decisions[0] == 0
    assert outcome.finished  # crashed processes count as accounted for


def test_program_exception_propagates():
    sim = Simulation(1, seed=0)
    reg = AtomicRegister(sim, "r", 0)

    def program(ctx):
        yield from reg.read(ctx)
        raise RuntimeError("protocol bug")

    sim.spawn(0, program)
    with pytest.raises(RuntimeError, match="protocol bug"):
        sim.run()


def test_same_seed_reproduces_identical_runs():
    def execute(seed):
        def setup(sim):
            reg = AtomicRegister(sim, "r", 0)

            def factory(pid):
                def body(ctx):
                    for _ in range(4):
                        value = yield from reg.read(ctx)
                        yield from reg.write(ctx, value + ctx.rng.randint(1, 9))
                    return (yield from reg.read(ctx))

                return body

            return factory

        _, outcome = run_with_setup(3, setup, seed=seed)
        return outcome.decisions

    assert execute(42) == execute(42)
    assert execute(42) != execute(43)


def test_steps_by_pid_accounts_every_step():
    def setup(sim):
        reg = AtomicRegister(sim, "r", 0)
        return counter_program(reg)

    _, outcome = run_with_setup(3, setup, seed=5)
    assert sum(outcome.steps_by_pid.values()) == outcome.total_steps


def test_register_shared_objects_visible_to_adversaries():
    sim = Simulation(1, seed=0)
    reg = AtomicRegister(sim, "named", 7)
    assert sim.shared["named"] is reg
    assert sim.shared["named"].peek() == 7


def test_random_scheduler_respects_weights():
    # pid 1 has weight 0: it should never be scheduled while pid 0 runs.
    sim = Simulation(2, RandomScheduler(seed=3, weights={1: 0.0}), seed=3)
    reg = AtomicRegister(sim, "r", 0)

    def factory(pid):
        def body(ctx):
            for _ in range(10):
                yield from reg.write(ctx, pid)
            return pid

        return body

    sim.spawn_all(factory)
    for _ in range(10):
        sim.step()
    assert sim.processes[0].steps_taken == 10
    assert sim.processes[1].steps_taken == 0
