"""Hot-path fast paths: null spans, recording gates, inlined RNG draws.

The optimisation contract is behavioural equivalence: every fast path
must produce bit-identical observable output to the code it replaced.
These tests pin the equivalences directly (the A/B golden tests pin them
end-to-end).
"""

import random

from repro.consensus.ads import AdsConsensus
from repro.obs.metrics import MetricsRegistry
from repro.runtime.rng import derive_rng
from repro.runtime.scheduler import RandomScheduler
from repro.runtime.simulation import Simulation
from repro.runtime.trace import NULL_SPAN, NullSpan


def _outcome_fields(run):
    return (
        dict(run.decisions),
        run.total_steps,
        dict(run.outcome.steps_by_pid),
        run.audit.max_magnitude,
        run.audit.max_width,
        run.audit.writes,
    )


def test_all_instrumentation_modes_agree_across_ten_seeds():
    """bare / metrics-on / trace-on runs are indistinguishable per seed."""
    for seed in range(10):
        inputs = [(seed + i) % 2 for i in range(4)]
        bare = AdsConsensus().run(
            inputs, seed=seed, metrics=MetricsRegistry(enabled=False)
        )
        metrics = AdsConsensus().run(inputs, seed=seed)
        trace = AdsConsensus().run(
            inputs, seed=seed, record_events=True, record_spans=True
        )
        assert _outcome_fields(bare) == _outcome_fields(metrics)
        assert _outcome_fields(metrics) == _outcome_fields(trace)


def test_null_span_only_when_nothing_records():
    def noop(ctx):
        return None
        yield  # pragma: no cover

    grid = {
        (False, False): True,
        (True, False): False,
        (False, True): False,
        (True, True): False,
    }
    for (events, spans), expect_null in grid.items():
        sim = Simulation(
            1,
            RandomScheduler(seed=0),
            seed=0,
            record_events=events,
            record_spans=spans,
        )
        sim.spawn(0, noop)
        ctx = sim.processes[0].ctx
        assert ctx.recording == (events or spans)
        span = ctx.begin_span("scan", "M")
        assert (span is NULL_SPAN) == expect_null


def test_null_span_discards_writes_and_end_is_noop():
    span = NULL_SPAN
    span.meta["wseq"] = (1, 2, 3)
    span.meta.update(rounds=7)
    assert span.meta.setdefault("k", "fallback") == "fallback"
    assert dict(span.meta) == {}
    assert isinstance(span, NullSpan)
    assert span.is_open
    assert not span.precedes(span)
    assert not span.overlaps(span)


def test_end_span_ignores_null_span_without_clock_traffic():
    def noop(ctx):
        return None
        yield  # pragma: no cover

    sim = Simulation(
        1,
        RandomScheduler(seed=0),
        seed=0,
        record_events=False,
        record_spans=False,
    )
    sim.spawn(0, noop)
    ctx = sim.processes[0].ctx
    before = sim._clock
    span = ctx.begin_span("scan", "M")
    ctx.end_span(span, result=(1, 2))
    assert sim._clock == before  # no ticks consumed on the disabled path


def test_span_steps_identical_with_and_without_event_recording():
    """Span-only recording keeps the tick discipline of full recording."""

    def spans_of(record_events):
        run = AdsConsensus().run(
            [0, 1, 1, 0],
            seed=3,
            record_events=record_events,
            record_spans=True,
            keep_simulation=True,
        )
        return [
            (s.pid, s.kind, s.target, s.invoke_step, s.response_step)
            for s in run.simulation.trace.spans
        ]

    assert spans_of(record_events=True) == spans_of(record_events=False)


def test_event_steps_identical_with_and_without_span_recording():
    def events_of(record_spans):
        run = AdsConsensus().run(
            [0, 1, 1, 0],
            seed=3,
            record_events=True,
            record_spans=record_spans,
            keep_simulation=True,
        )
        return run.simulation.trace.events

    assert events_of(record_spans=True) == events_of(record_spans=False)


def test_inlined_scheduler_draw_matches_random_choice_stream():
    """The unweighted draw consumes the exact bits ``Random.choice`` would.

    Replays a mixed sequence of runnable-set sizes (including the n=1
    fast-looking case, which still burns one getrandbits draw) on a
    scheduler and on a reference ``Random.choice``, then checks the two
    underlying generators are left in the same state.
    """
    scheduler = RandomScheduler(seed=42)
    reference = derive_rng(42, "random-scheduler")
    mixer = random.Random(7)
    for _ in range(500):
        size = mixer.randint(1, 9)
        runnable = list(range(size))
        assert scheduler.choose(None, runnable) == reference.choice(runnable)
    # Identical draw order implies identical generator state afterwards.
    assert scheduler._rng.getstate() == reference.getstate()


def test_scheduler_reset_replays_identical_schedule():
    scheduler = RandomScheduler(seed=11)
    first = [scheduler.choose(None, [0, 1, 2, 3]) for _ in range(64)]
    scheduler.reset()
    second = [scheduler.choose(None, [0, 1, 2, 3]) for _ in range(64)]
    assert first == second
