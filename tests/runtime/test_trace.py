"""Tests for traces, events and spans."""

from repro.registers import AtomicRegister
from repro.runtime import Simulation
from repro.runtime.events import OpSpan
from repro.runtime.trace import Trace


def test_events_recorded_in_global_order():
    sim = Simulation(2, seed=0, record_events=True)
    reg = AtomicRegister(sim, "r", 0)

    def factory(pid):
        def body(ctx):
            yield from reg.write(ctx, pid)
            yield from reg.read(ctx)

        return body

    sim.spawn_all(factory)
    sim.run()
    steps = [e.step for e in sim.trace.events]
    assert steps == sorted(steps)
    assert len(sim.trace.events) == 4
    kinds = {e.kind for e in sim.trace.events}
    assert kinds == {"read", "write"}


def test_events_not_recorded_when_disabled():
    sim = Simulation(1, seed=0, record_events=False)
    reg = AtomicRegister(sim, "r", 0)

    def program(ctx):
        yield from reg.write(ctx, 1)

    sim.spawn(0, program)
    sim.run()
    assert len(sim.trace.events) == 0


def test_span_precedence_and_overlap():
    a = OpSpan(0, 0, "scan", "m", invoke_step=0, response_step=5)
    b = OpSpan(1, 1, "scan", "m", invoke_step=6, response_step=9)
    c = OpSpan(2, 2, "scan", "m", invoke_step=4, response_step=7)
    assert a.precedes(b)
    assert not b.precedes(a)
    assert a.overlaps(c)
    assert c.overlaps(b)
    assert not a.overlaps(b)


def test_open_span_never_precedes():
    open_span = OpSpan(0, 0, "scan", "m", invoke_step=0)
    later = OpSpan(1, 1, "scan", "m", invoke_step=10, response_step=11)
    assert not open_span.precedes(later)
    assert open_span.is_open


def test_spans_of_kind_filters_open_spans_and_targets():
    trace = Trace()
    s1 = trace.begin_span(0, "scan", "m", None, 0)
    trace.end_span(s1, 3, (1, 2))
    trace.begin_span(1, "scan", "m", None, 4)  # left open
    s3 = trace.begin_span(0, "write", "m", 9, 5)
    trace.end_span(s3, 6, None)
    assert len(trace.spans_of_kind("scan", "m")) == 1
    assert len(trace.spans_of_kind("write", "m")) == 1
    assert trace.spans_of_kind("scan", "other") == []


def test_trace_render_is_readable():
    trace = Trace()
    sim = Simulation(1, seed=0, record_events=True)
    reg = AtomicRegister(sim, "r", 0)

    def program(ctx):
        yield from reg.write(ctx, 123)

    sim.spawn(0, program)
    sim.run()
    text = sim.trace.render()
    assert "p0 write r = 123" in text
    assert trace.render() == ""


def test_render_with_recording_off_explains_itself():
    sim = Simulation(1, seed=0)
    message = sim.trace.render()
    assert "event recording is off" in message
    assert "record_events=True" in message
