"""Tests for the process wrapper and context."""

import pytest

from repro.registers import AtomicRegister
from repro.runtime import Simulation
from repro.runtime.process import ProcessState


def test_pending_intent_visible_before_step():
    sim = Simulation(1, seed=0)
    reg = AtomicRegister(sim, "r", 0)

    def program(ctx):
        yield from reg.write(ctx, 41)
        yield from reg.read(ctx)

    sim.spawn(0, program)
    process = sim.processes[0]
    assert process.pending is not None
    assert process.pending.kind == "write"
    assert process.pending.target == "r"
    assert process.pending.payload == 41
    sim.step()
    assert process.pending.kind == "read"


def test_write_takes_effect_only_when_scheduled():
    sim = Simulation(1, seed=0)
    reg = AtomicRegister(sim, "r", 0)

    def program(ctx):
        yield from reg.write(ctx, 1)

    sim.spawn(0, program)
    assert reg.peek() == 0  # pending, not yet applied
    sim.step()
    assert reg.peek() == 1


def test_crash_closes_generator():
    cleanup = {"ran": False}
    sim = Simulation(1, seed=0)
    reg = AtomicRegister(sim, "r", 0)

    def program(ctx):
        try:
            while True:
                yield from reg.write(ctx, 1)
        finally:
            cleanup["ran"] = True

    sim.spawn(0, program)
    sim.crash(0)
    assert cleanup["ran"]
    assert sim.processes[0].state is ProcessState.CRASHED


def test_cannot_step_finished_process():
    sim = Simulation(1, seed=0)

    def program(ctx):
        return 1
        yield  # pragma: no cover

    sim.spawn(0, program)
    with pytest.raises(RuntimeError):
        sim.processes[0].advance()


def test_context_rngs_differ_across_pids_and_seeds():
    sim_a = Simulation(2, seed=1)
    sim_b = Simulation(2, seed=2)
    draws_a0 = sim_a.context(0).rng.random()
    draws_a1 = sim_a.context(1).rng.random()
    draws_b0 = sim_b.context(0).rng.random()
    assert draws_a0 != draws_a1
    assert draws_a0 != draws_b0
    # Same seed+pid reproduces.
    fresh = Simulation(2, seed=1)
    assert sim_a.context(0).rng.random() == fresh.context(0).rng.random()


def test_failure_during_priming_raises_at_spawn():
    sim = Simulation(1, seed=0)

    def program(ctx):
        raise ValueError("bad init")
        yield  # pragma: no cover

    with pytest.raises(ValueError, match="bad init"):
        sim.spawn(0, program)
