"""Tests for the ASCII timeline renderer."""

from repro.runtime import RandomScheduler, Simulation
from repro.runtime.timeline import render_timeline
from repro.snapshot import ArrowScannableMemory


def _traced_run(seed=3, n=3):
    sim = Simulation(n, RandomScheduler(seed=seed), seed=seed)
    mem = ArrowScannableMemory(sim, "M", n)

    def factory(pid):
        def body(ctx):
            yield from mem.write(ctx, pid)
            return tuple((yield from mem.scan(ctx)))

        return body

    sim.spawn_all(factory)
    sim.run(100_000)
    return sim


def test_renders_one_row_per_completed_span():
    sim = _traced_run()
    text = render_timeline(sim.trace)
    completed = [s for s in sim.trace.spans if not s.is_open]
    assert len(text.splitlines()) == len(completed) + 1  # + header


def test_rows_sorted_by_invocation():
    sim = _traced_run()
    text = render_timeline(sim.trace)
    indents = [len(line) - len(line.lstrip()) for line in text.splitlines()[1:]]
    first_bar_columns = [
        line.index("[") if "[" in line else line.index("#")
        for line in text.splitlines()[1:]
    ]
    assert first_bar_columns == sorted(first_bar_columns) or indents  # monotone


def test_filters_by_kind_and_target():
    sim = _traced_run()
    scans_only = render_timeline(sim.trace, kinds={"scan"})
    assert "write" not in scans_only
    assert "scan" in scans_only
    nothing = render_timeline(sim.trace, targets={"other"})
    assert nothing == "(no completed spans)"


def test_max_rows_caps_output():
    sim = _traced_run()
    text = render_timeline(sim.trace, max_rows=2)
    assert len(text.splitlines()) == 3


def test_width_respected():
    sim = _traced_run()
    for width in (40, 120):
        text = render_timeline(sim.trace, width=width)
        # bars fit in width plus the pid gutter and trailing labels
        gutter = max(len(line.split("|")[0]) for line in text.splitlines()) + 2
        for line in text.splitlines()[1:]:
            bar_part = line[gutter:]
            if "]" in bar_part:
                assert bar_part.rindex("]") <= width + 40  # label slack


def test_empty_trace():
    sim = Simulation(1, seed=0)
    assert render_timeline(sim.trace) == "(no completed spans)"


def test_recording_off_renders_explanation_instead_of_silence():
    # The footgun: a Simulation without record_spans renders an empty
    # timeline with no hint why.  It must say how to turn recording on.
    sim = Simulation(1, seed=0, record_spans=False)
    message = render_timeline(sim.trace)
    assert "span recording is off" in message
    assert "record_spans=True" in message
