"""Tests for schedulers and crash plans."""

import random

import pytest

from repro.registers import AtomicRegister
from repro.runtime import (
    CrashPlan,
    RandomScheduler,
    RecoveryPlan,
    RoundRobinScheduler,
    ScriptedScheduler,
    Simulation,
    TracingScheduler,
)


def _looping_factory(sim, iterations=50):
    reg = AtomicRegister(sim, "r", 0)

    def factory(pid):
        def body(ctx):
            for _ in range(iterations):
                yield from reg.write(ctx, pid)
            return pid

        return body

    return factory


def test_round_robin_cycles_fairly():
    sim = Simulation(3, RoundRobinScheduler(), seed=0)
    sim.spawn_all(_looping_factory(sim, iterations=4))
    order = [sim.step() for _ in range(9)]
    assert order == [0, 1, 2, 0, 1, 2, 0, 1, 2]


def test_round_robin_skips_finished_processes():
    sim = Simulation(3, RoundRobinScheduler(), seed=0)
    sim.spawn_all(_looping_factory(sim, iterations=1))
    # Each process needs exactly 1 step; afterwards only unfinished remain.
    order = [sim.step() for _ in range(3)]
    assert order == [0, 1, 2]
    assert sim.step() is None


def test_random_scheduler_is_deterministic_per_seed():
    def schedule(seed):
        sim = Simulation(4, RandomScheduler(seed=seed), seed=0)
        sim.spawn_all(_looping_factory(sim, iterations=20))
        return [sim.step() for _ in range(30)]

    assert schedule(9) == schedule(9)
    assert schedule(9) != schedule(10)


def test_random_scheduler_reset_restarts_stream():
    sched = RandomScheduler(seed=4)
    sim = Simulation(4, sched, seed=0)
    sim.spawn_all(_looping_factory(sim, iterations=50))
    first = [sim.step() for _ in range(20)]
    sched.reset()
    sim2 = Simulation(4, sched, seed=0)
    sim2.spawn_all(_looping_factory(sim2, iterations=50))
    second = [sim2.step() for _ in range(20)]
    assert first == second


def test_scripted_scheduler_replays_script_then_falls_back():
    sim = Simulation(2, ScriptedScheduler([1, 1, 0, 1]), seed=0)
    sim.spawn_all(_looping_factory(sim, iterations=10))
    order = [sim.step() for _ in range(6)]
    assert order[:4] == [1, 1, 0, 1]
    # Fallback is round-robin over runnable pids.
    assert set(order[4:]) <= {0, 1}


def test_scripted_scheduler_skips_non_runnable_entries():
    sim = Simulation(2, ScriptedScheduler([1, 1, 1, 1, 1, 0]), seed=0)
    sim.spawn_all(_looping_factory(sim, iterations=2))
    # pid 1 finishes after 2 steps; remaining 1-entries are skipped.
    order = [sim.step() for _ in range(4)]
    assert order == [1, 1, 0, 0]


def test_scripted_scheduler_skips_crashed_pids_mid_script():
    sim = Simulation(3, ScriptedScheduler([0, 1, 1, 1, 2]), seed=0)
    sim.spawn_all(_looping_factory(sim, iterations=10))
    assert sim.step() == 0
    sim.crash(1)
    # The remaining 1-entries name a crashed pid: they are skipped, not
    # replayed onto whatever happens to be runnable.
    assert sim.step() == 2
    assert sim.step() in (0, 2)


def test_random_scheduler_all_zero_weights_falls_back_to_uniform():
    sim = Simulation(2, RandomScheduler(seed=1, weights={0: 0.0, 1: 0.0}), seed=0)
    sim.spawn_all(_looping_factory(sim, iterations=5))
    scheduled = {sim.step() for _ in range(10)}
    assert scheduled == {0, 1}


def test_crash_plan_due():
    plan = CrashPlan({0: 10, 2: 5})
    assert plan.due(4) == []
    assert sorted(plan.due(10)) == [0, 2]


def test_crash_plan_applied_by_simulation():
    sim = Simulation(2, RoundRobinScheduler(), seed=0, crash_plan=CrashPlan({1: 0}))
    sim.spawn_all(_looping_factory(sim, iterations=3))
    outcome = sim.run()
    assert outcome.crashed == {1}
    assert outcome.decisions == {0: 0}


def test_crash_plan_random_never_crashes_everyone():
    for seed in range(50):
        rng = random.Random(seed)
        plan = CrashPlan.random(4, rng)
        assert len(plan.crash_at) <= 3


def test_recovery_plan_random_restarts_a_subset_of_crash_victims():
    crash = CrashPlan({0: 10, 1: 20, 2: 30})
    rng = random.Random(8)
    plan = RecoveryPlan.random(crash, rng, probability=1.0, max_delay=100)
    assert set(plan.restart_at) == {0, 1, 2}
    for pid, at in plan.restart_at.items():
        assert crash.crash_at[pid] < at <= crash.crash_at[pid] + 100
    assert RecoveryPlan.random(crash, rng, probability=0.0).restart_at == {}


def test_plans_schedule_in_step_then_pid_order():
    assert CrashPlan({2: 5, 0: 5, 1: 3}).schedule() == [(1, 3), (0, 5), (2, 5)]
    assert RecoveryPlan({1: 9, 0: 2}).schedule() == [(0, 2), (1, 9)]


def test_scheduler_choosing_nonrunnable_pid_is_an_error():
    class BadScheduler(RoundRobinScheduler):
        def choose(self, sim, runnable):
            return 99

    sim = Simulation(1, BadScheduler(), seed=0)
    sim.spawn_all(_looping_factory(sim, iterations=1))
    with pytest.raises(RuntimeError, match="non-runnable"):
        sim.step()


def test_tracing_scheduler_replays_identically_to_its_inner():
    def decisions(scheduler):
        sim = Simulation(3, scheduler, seed=6)
        sim.spawn_all(_looping_factory(sim, iterations=10))
        return sim.run().decisions

    traced = TracingScheduler(RandomScheduler(seed=6))
    assert decisions(traced) == decisions(RandomScheduler(seed=6))


def test_tracing_scheduler_counts_every_grant():
    traced = TracingScheduler(RandomScheduler(seed=2))
    sim = Simulation(3, traced, seed=2)
    sim.spawn_all(_looping_factory(sim, iterations=10))
    outcome = sim.run()
    assert sum(traced.grants.values()) == outcome.total_steps
    assert traced.grants == outcome.steps_by_pid
    rows = traced.to_rows()
    assert [r["pid"] for r in rows] == sorted(traced.grants)
    for row in rows:
        assert 1 <= row["max_streak"] <= row["granted"]


def test_tracing_scheduler_streaks_and_bounded_history():
    traced = TracingScheduler(ScriptedScheduler([0, 0, 0, 1, 0, 1]), history=4)
    sim = Simulation(2, traced, seed=0)
    for pid in (0, 0, 0, 1, 0, 1):
        assert traced.choose(sim, [0, 1]) == pid
    assert traced.grants == {0: 4, 1: 2}
    assert traced.max_streak == {0: 3, 1: 1}
    assert traced.recent == [0, 1, 0, 1]  # bounded tail keeps the newest


def test_tracing_scheduler_reset_and_validation():
    traced = TracingScheduler(RoundRobinScheduler())
    sim = Simulation(2, traced, seed=0)
    traced.choose(sim, [0, 1])
    traced.reset()
    assert traced.grants == {} and traced.recent == []
    with pytest.raises(ValueError):
        TracingScheduler(RoundRobinScheduler(), history=-1)
