"""Tests for the deterministic RNG discipline."""

from repro.runtime.rng import derive_rng, derive_seed


def test_derive_seed_is_stable():
    assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)


def test_derive_seed_varies_with_master_and_tags():
    base = derive_seed(1, "a")
    assert base != derive_seed(2, "a")
    assert base != derive_seed(1, "b")
    assert base != derive_seed(1, "a", 0)


def test_derive_rng_streams_are_independent():
    a = derive_rng(7, "x")
    b = derive_rng(7, "y")
    draws_a = [a.random() for _ in range(5)]
    draws_b = [b.random() for _ in range(5)]
    assert draws_a != draws_b
    # Replaying the same tag reproduces the stream.
    assert [derive_rng(7, "x").random() for _ in range(5)][0] == draws_a[0]


def test_derive_seed_fits_in_64_bits():
    for seed in range(20):
        assert 0 <= derive_seed(seed, "tag") < 2**64
