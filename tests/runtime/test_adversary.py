"""Tests for the adaptive adversaries."""

import statistics

from repro.coin import BoundedWalkSharedCoin, coin_flipper_program
from repro.consensus import AdsConsensus, LocalCoinConsensus, validate_run
from repro.consensus.ads import pref_reader
from repro.runtime import (
    RandomScheduler,
    ScanStarvingAdversary,
    Simulation,
    SplitAdversary,
    WalkBalancingAdversary,
)
from repro.runtime.adversary import LockstepAdversary
from repro.snapshot import ArrowScannableMemory


def _coin_flips(scheduler_factory, n=4, b=2, seeds=range(12)):
    totals = []
    for seed in seeds:
        sim = Simulation(n, scheduler_factory(seed), seed=seed)
        coin = BoundedWalkSharedCoin(sim, "coin", n, b_barrier=b)
        sim.spawn_all(coin_flipper_program(coin))
        sim.run(5_000_000)
        totals.append(coin.total_steps)
    return statistics.mean(totals)


def test_walk_balancing_adversary_slows_the_coin():
    random_mean = _coin_flips(lambda s: RandomScheduler(seed=s))
    adversarial_mean = _coin_flips(lambda s: WalkBalancingAdversary("coin", seed=s))
    assert adversarial_mean > random_mean


def test_walk_balancing_adversary_without_coin_degrades_gracefully():
    # Pointing the adversary at a missing object must not crash runs.
    from repro.registers import AtomicRegister

    sim = Simulation(2, WalkBalancingAdversary("nope", seed=0), seed=0)
    reg = AtomicRegister(sim, "r", 0)

    def factory(pid):
        def body(ctx):
            yield from reg.write(ctx, pid)

        return body

    sim.spawn_all(factory)
    assert sim.run().finished


def test_split_adversary_runs_remain_safe():
    proto = AdsConsensus()
    for seed in range(5):
        run = proto.run(
            [0, 1, 0, 1],
            scheduler=SplitAdversary(pref_reader, seed=seed),
            seed=seed,
            max_steps=10_000_000,
        )
        assert validate_run(run).ok


def test_lockstep_adversary_forces_exponential_local_coin_rounds():
    # Under lockstep, local-coin consensus needs ~2^(n-1) rounds; with n=6
    # that is ~32, far above the 2 rounds ADS needs on the same schedule.
    ads_rounds = []
    local_rounds = []
    for seed in range(5):
        ads = AdsConsensus().run(
            [0, 1] * 3, scheduler=LockstepAdversary("mem", seed=seed), seed=seed,
            max_steps=50_000_000,
        )
        local = LocalCoinConsensus().run(
            [0, 1] * 3, scheduler=LockstepAdversary("mem", seed=seed), seed=seed,
            max_steps=50_000_000,
        )
        assert validate_run(ads).ok and validate_run(local).ok
        ads_rounds.append(ads.max_rounds())
        local_rounds.append(local.max_rounds())
    assert statistics.mean(local_rounds) > 3 * statistics.mean(ads_rounds)


def test_scan_starving_adversary_demonstrates_scans_are_not_wait_free():
    # With endlessly active writers, a starved scanner never completes its
    # scan (§2.2: the scan is not wait-free) — yet the system as a whole
    # makes progress (new writes keep completing, the paper's liveness
    # notion).
    n = 4
    sim = Simulation(n, ScanStarvingAdversary(victim=0, period=10, seed=1), seed=1)
    mem = ArrowScannableMemory(sim, "m", n)
    writes_done = {"count": 0}

    def factory(pid):
        def body(ctx):
            if pid == 0:
                view = yield from mem.scan(ctx)
                return tuple(view)
            k = 0
            while True:
                yield from mem.write(ctx, (pid, k))
                writes_done["count"] += 1
                k += 1

        return body

    sim.spawn_all(factory)
    outcome = sim.run(20_000, raise_on_budget=False)
    assert 0 not in outcome.decisions  # the scan never completed
    assert writes_done["count"] > 100  # but writers kept making progress
    assert mem.scan_attempts() > 5  # the scan retried over and over


def test_scan_completes_under_fair_scheduling_with_finite_writers():
    n = 4
    sim = Simulation(n, RandomScheduler(seed=1), seed=1)
    mem = ArrowScannableMemory(sim, "m", n)

    def factory(pid):
        def body(ctx):
            if pid == 0:
                view = yield from mem.scan(ctx)
                return tuple(view)
            for k in range(30):
                yield from mem.write(ctx, (pid, k))
            return None

        return body

    sim.spawn_all(factory)
    outcome = sim.run(1_000_000)
    assert 0 in outcome.decisions
    assert len(outcome.decisions[0]) == n
