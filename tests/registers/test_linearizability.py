"""Tests for the Wing–Gong register linearizability checker itself.

The checker validates the register constructions, so it must be trusted:
these tests feed it handcrafted histories with known verdicts.
"""

from repro.registers.linearizability import HistoryOp, check_register_history


def _op(op_id, pid, kind, value, invoke, response):
    return HistoryOp(op_id, pid, kind, value, invoke, response)


def test_empty_history_is_linearizable():
    assert check_register_history([]) == []


def test_sequential_history_good():
    ops = [
        _op(0, 0, "write", 1, 0, 1),
        _op(1, 1, "read", 1, 2, 3),
        _op(2, 0, "write", 2, 4, 5),
        _op(3, 1, "read", 2, 6, 7),
    ]
    assert check_register_history(ops, initial=0) == [0, 1, 2, 3]


def test_sequential_stale_read_rejected():
    ops = [
        _op(0, 0, "write", 1, 0, 1),
        _op(1, 1, "read", 0, 2, 3),  # returns initial after write completed
    ]
    assert check_register_history(ops, initial=0) is None


def test_concurrent_read_may_return_either_value():
    write = _op(0, 0, "write", 1, 0, 10)
    old_read = _op(1, 1, "read", 0, 2, 3)
    new_read = _op(2, 2, "read", 1, 4, 5)
    assert check_register_history([write, old_read], initial=0) is not None
    assert check_register_history([write, new_read], initial=0) is not None


def test_new_old_inversion_rejected():
    # read A (returns new) completes before read B (returns old) begins.
    write = _op(0, 0, "write", 1, 0, 100)
    read_new = _op(1, 1, "read", 1, 2, 3)
    read_old = _op(2, 2, "read", 0, 5, 6)
    assert check_register_history([write, read_new, read_old], initial=0) is None
    # The other order is fine.
    read_old_first = _op(3, 2, "read", 0, 2, 3)
    read_new_second = _op(4, 1, "read", 1, 5, 6)
    assert (
        check_register_history([write, read_old_first, read_new_second], initial=0)
        is not None
    )


def test_read_of_never_written_value_rejected():
    ops = [
        _op(0, 0, "write", 1, 0, 1),
        _op(1, 1, "read", 99, 2, 3),
    ]
    assert check_register_history(ops, initial=0) is None


def test_concurrent_writes_any_order():
    # Both writes span [0, 10]; the reads fall inside that window, so the
    # checker is free to order the writes around them: w1 < r1 < w2 < r2.
    w1 = _op(0, 0, "write", "a", 0, 10)
    w2 = _op(1, 1, "write", "b", 0, 10)
    r1 = _op(2, 2, "read", "a", 2, 3)
    r2 = _op(3, 2, "read", "b", 5, 6)
    assert check_register_history([w1, w2, r1, r2], initial=None) is not None
    # But reading a, b, a again is impossible with one write of each value.
    r3 = _op(4, 2, "read", "a", 8, 9)
    assert check_register_history([w1, w2, r1, r2, r3], initial=None) is None


def test_reads_after_both_writes_complete_must_return_last_value():
    w1 = _op(0, 0, "write", "a", 0, 10)
    w2 = _op(1, 1, "write", "b", 0, 10)
    r1 = _op(2, 2, "read", "a", 11, 12)
    r2 = _op(3, 2, "read", "b", 13, 14)
    # Sequential reads a-then-b after both writes completed would require
    # the register to change without an intervening write.
    assert check_register_history([w1, w2, r1, r2], initial=None) is None
    # b-then-b is consistent (w1 < w2 < r).
    r_b1 = _op(4, 2, "read", "b", 11, 12)
    r_b2 = _op(5, 2, "read", "b", 13, 14)
    assert check_register_history([w1, w2, r_b1, r_b2], initial=None) is not None


def test_witness_respects_real_time_order():
    ops = [
        _op(0, 0, "write", 1, 0, 1),
        _op(1, 0, "write", 2, 2, 3),
        _op(2, 1, "read", 2, 4, 5),
    ]
    witness = check_register_history(ops, initial=0)
    assert witness is not None
    assert witness.index(0) < witness.index(1) < witness.index(2)


def test_unhashable_values_supported():
    ops = [
        _op(0, 0, "write", [1, 2], 0, 1),
        _op(1, 1, "read", [1, 2], 2, 3),
    ]
    assert check_register_history(ops, initial=None) is not None
