"""Tests for the bounded two-writer register construction.

The construction is validated two ways: handcrafted adversarial schedules
(including the classic stalled-reader interleaving that defeats a naive
two-read protocol) and randomized schedules, all checked with the
linearizability checker.
"""

import pytest

from repro.registers import (
    AtomicRegister,
    TwoWriterRegister,
    check_register_history,
    history_from_spans,
)
from repro.runtime import RandomScheduler, ScriptedScheduler, Simulation


def _register_history(sim, name="A"):
    spans = [s for s in sim.trace.spans if s.target == name]
    return history_from_spans(spans)


def test_rejects_identical_writers():
    sim = Simulation(2, seed=0)
    with pytest.raises(ValueError):
        TwoWriterRegister(sim, "A", 1, 1)


def test_rejects_third_writer():
    sim = Simulation(3, seed=0)
    reg = TwoWriterRegister(sim, "A", 0, 1)

    def factory(pid):
        def body(ctx):
            if pid == 2:
                yield from reg.write(ctx, "x")
            else:
                yield from reg.read(ctx)

        return body

    with pytest.raises(PermissionError):
        sim.spawn_all(factory)


def test_sequential_semantics():
    sim = Simulation(3, ScriptedScheduler([0] * 2 + [1] * 2 + [2] * 3), seed=0)
    reg = TwoWriterRegister(sim, "A", 0, 1, initial="init")

    def factory(pid):
        def body(ctx):
            if pid == 0:
                yield from reg.write(ctx, "from0")
            elif pid == 1:
                yield from reg.write(ctx, "from1")
            else:
                return (yield from reg.read(ctx))

        return body

    sim.spawn_all(factory)
    outcome = sim.run()
    # Writes were sequential: 0's then 1's; the read must see 1's value.
    assert outcome.decisions[2] == "from1"
    assert reg.peek() == "from1"


def test_initial_value_readable():
    sim = Simulation(3, seed=0)
    reg = TwoWriterRegister(sim, "A", 0, 1, initial="init")

    def factory(pid):
        def body(ctx):
            if pid == 2:
                return (yield from reg.read(ctx))
            return None
            yield  # pragma: no cover

        return body

    sim.spawn_all(factory)
    assert sim.run().decisions[2] == "init"


def test_stalled_reader_interleaving_is_linearizable():
    """The classic schedule that defeats a naive two-read reader.

    P1 writes d; the reader then collects cell0 (stale tag) and stalls;
    P0 writes c, P1 writes e; the reader resumes, sees a misleading tag
    parity, and a naive reader would return the long-overwritten initial
    value.  The re-reading reader must return c or e instead.
    """
    # P1's write d: 2 steps.  P2: warm-up op (so its read is invoked
    # after d completes), then cell0, [stall], cell1, re-read.
    # P0's write c: 2 steps.  P1's write e: 2 steps.
    script = [1, 1, 2, 2, 0, 0, 1, 1, 2, 2]
    sim = Simulation(3, ScriptedScheduler(script), seed=0)
    reg = TwoWriterRegister(sim, "A", 0, 1, initial="init")
    warmup = AtomicRegister(sim, "warmup", 0)

    def factory(pid):
        def body(ctx):
            if pid == 0:
                yield from reg.write(ctx, "c")
            elif pid == 1:
                yield from reg.write(ctx, "d")
                yield from reg.write(ctx, "e")
            else:
                yield from warmup.read(ctx)
                return (yield from reg.read(ctx))

        return body

    sim.spawn_all(factory)
    outcome = sim.run()
    assert outcome.decisions[2] in ("c", "e")  # anything else is stale
    witness = check_register_history(_register_history(sim), initial="init")
    assert witness is not None


def test_naive_reader_fails_the_same_interleaving():
    """Demonstrates why the re-read is necessary (and that the checker
    catches the violation a naive reader produces)."""

    class NaiveTwoWriterRegister(TwoWriterRegister):
        def read(self, ctx):
            span = ctx.begin_span("read", self.name)
            first0 = yield from self.cell0.read(ctx)
            first1 = yield from self.cell1.read(ctx)
            value = first0[0] if first0[1] == first1[1] else first1[0]
            ctx.end_span(span, value)
            return value

    script = [1, 1, 2, 2, 0, 0, 1, 1, 2]
    sim = Simulation(3, ScriptedScheduler(script), seed=0)
    reg = NaiveTwoWriterRegister(sim, "A", 0, 1, initial="init")
    warmup = AtomicRegister(sim, "warmup", 0)

    def factory(pid):
        def body(ctx):
            if pid == 0:
                yield from reg.write(ctx, "c")
            elif pid == 1:
                yield from reg.write(ctx, "d")
                yield from reg.write(ctx, "e")
            else:
                yield from warmup.read(ctx)
                return (yield from reg.read(ctx))

        return body

    sim.spawn_all(factory)
    outcome = sim.run()
    assert outcome.decisions[2] == "init"  # the stale read the paper warns of
    witness = check_register_history(_register_history(sim), initial="init")
    assert witness is None  # and the checker rejects the history


@pytest.mark.parametrize("seed", range(40))
def test_randomized_schedules_are_linearizable(seed):
    sim = Simulation(4, RandomScheduler(seed=seed), seed=seed)
    reg = TwoWriterRegister(sim, "A", 0, 1, initial="init")

    def factory(pid):
        def body(ctx):
            if pid in (0, 1):
                for k in range(3):
                    yield from reg.write(ctx, f"w{pid}.{k}")
            else:
                values = []
                for _ in range(3):
                    values.append((yield from reg.read(ctx)))
                return values

        return body

    sim.spawn_all(factory)
    sim.run()
    assert check_register_history(_register_history(sim), initial="init") is not None


def test_heavy_contention_randomized(seed=1234):
    # Longer single run with both writers and both readers interleaving.
    sim = Simulation(4, RandomScheduler(seed=seed), seed=seed)
    reg = TwoWriterRegister(sim, "A", 0, 1, initial=0)

    def factory(pid):
        def body(ctx):
            if pid in (0, 1):
                for k in range(6):
                    yield from reg.write(ctx, (pid, k))
            else:
                out = []
                for _ in range(6):
                    out.append((yield from reg.read(ctx)))
                return out

        return body

    sim.spawn_all(factory)
    sim.run()
    assert check_register_history(_register_history(sim), initial=0) is not None
