"""Tests for the unbounded multi-writer register comparator."""

import pytest

from repro.registers import (
    MemoryAudit,
    UnboundedMultiWriterRegister,
    check_register_history,
    history_from_spans,
)
from repro.runtime import RandomScheduler, RoundRobinScheduler, Simulation


def _history(sim, name="R"):
    return history_from_spans([s for s in sim.trace.spans if s.target == name])


def test_sequential_read_write():
    sim = Simulation(2, RoundRobinScheduler(), seed=0)
    reg = UnboundedMultiWriterRegister(sim, "R", 2, initial="i")

    def factory(pid):
        def body(ctx):
            if pid == 0:
                yield from reg.write(ctx, "x")
            else:
                first = yield from reg.read(ctx)
                return first

        return body

    sim.spawn_all(factory)
    sim.run()
    assert reg.peek() == "x"


def test_every_process_can_write():
    sim = Simulation(3, RoundRobinScheduler(), seed=0)
    reg = UnboundedMultiWriterRegister(sim, "R", 3, initial=None)

    def factory(pid):
        def body(ctx):
            yield from reg.write(ctx, pid)
            return (yield from reg.read(ctx))

        return body

    sim.spawn_all(factory)
    outcome = sim.run()
    assert reg.peek() in (0, 1, 2)
    assert all(v in (0, 1, 2) for v in outcome.decisions.values())


@pytest.mark.parametrize("seed", range(30))
def test_randomized_histories_linearizable(seed):
    sim = Simulation(3, RandomScheduler(seed=seed), seed=seed)
    reg = UnboundedMultiWriterRegister(sim, "R", 3, initial=0)

    def factory(pid):
        def body(ctx):
            reads = []
            for k in range(3):
                yield from reg.write(ctx, (pid, k))
                reads.append((yield from reg.read(ctx)))
            return reads

        return body

    sim.spawn_all(factory)
    sim.run()
    assert check_register_history(_history(sim), initial=0) is not None


def test_sequence_numbers_grow_without_bound():
    """The defining flaw: the audit magnitude grows with the write count."""
    audit = MemoryAudit()
    sim = Simulation(2, RoundRobinScheduler(), seed=0)
    reg = UnboundedMultiWriterRegister(sim, "R", 2, initial=0, audit=audit)

    def factory(pid):
        def body(ctx):
            for _ in range(25):
                yield from reg.write(ctx, 1)

        return body

    sim.spawn_all(factory)
    sim.run()
    # Concurrent writes may share a sequence number (pid breaks the tie),
    # so 25 round-robin waves of 2 writes yield max seq >= 25 — the point
    # is that it grows with the number of writes, without bound.
    assert audit.max_magnitude >= 25

    short_audit = MemoryAudit()
    sim2 = Simulation(2, RoundRobinScheduler(), seed=0)
    reg2 = UnboundedMultiWriterRegister(sim2, "R", 2, initial=0, audit=short_audit)

    def short_factory(pid):
        def body(ctx):
            for _ in range(5):
                yield from reg2.write(ctx, 1)

        return body

    sim2.spawn_all(short_factory)
    sim2.run()
    assert short_audit.max_magnitude < audit.max_magnitude
