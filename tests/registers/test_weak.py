"""Tests for safe/regular registers and the strengthening constructions.

The hierarchy is validated in both directions: each class *satisfies* its
own guarantee, and each strictly-weaker class *violates* the next one on
some schedule (found by the exhaustive explorer), so the constructions are
demonstrably doing real work.
"""

import pytest

from repro.registers import check_register_history, history_from_spans
from repro.registers.weak import (
    AtomicFromRegular,
    RegularBitFromSafe,
    RegularRegister,
    SafeRegister,
)
from repro.runtime import ScriptedScheduler, Simulation
from repro.verify import explore_schedules


def _history(sim, name):
    return history_from_spans([s for s in sim.trace.spans if s.target == name])


def _is_regular(sim, name, writer_values, initial):
    """Check regularity: every read returns the latest non-overlapping
    write's value or an overlapping write's value."""
    spans = [s for s in sim.trace.spans if s.target == name and not s.is_open]
    writes = sorted(
        (s for s in spans if s.kind == "write"), key=lambda s: s.invoke_step
    )
    problems = []
    for read in (s for s in spans if s.kind == "read"):
        candidates = set()
        preceding = [w for w in writes if w.precedes(read)]
        candidates.add(preceding[-1].argument if preceding else initial)
        candidates.update(w.argument for w in writes if w.overlaps(read))
        if read.result not in candidates:
            problems.append(f"read {read} outside candidates {candidates}")
    return problems


# -- safe registers -----------------------------------------------------------


def test_safe_register_quiescent_reads_latest_value():
    sim = Simulation(2, ScriptedScheduler([0, 0, 1]), seed=0)
    reg = SafeRegister(sim, "s", domain=["a", "b", "c"], initial="a", writer=0)

    def factory(pid):
        def body(ctx):
            if pid == 0:
                yield from reg.write(ctx, "b")
            else:
                return (yield from reg.read(ctx))

        return body

    sim.spawn_all(factory)
    assert sim.run().decisions[1] == "b"


def test_safe_register_overlapping_read_may_return_garbage():
    # Three reads scheduled inside the write-start..write-commit window at
    # different global steps: the schedule-controlled flicker gives them
    # distinct domain values, including values that are neither the old
    # nor the new one — allowed by safe, forbidden by regular and atomic.
    sim = Simulation(2, ScriptedScheduler([0, 1, 1, 1, 0]), seed=0)
    reg = SafeRegister(sim, "s", domain=list(range(10)), initial=0, writer=0)

    def factory(pid):
        def body(ctx):
            if pid == 0:
                yield from reg.write(ctx, 1)
            else:
                reads = []
                for _ in range(3):
                    reads.append((yield from reg.read(ctx)))
                return reads

        return body

    sim.spawn_all(factory)
    results = set(sim.run().decisions[1])
    assert not results <= {0, 1}  # garbage seen: safe, but not regular


def test_safe_register_rejects_foreign_writer_and_bad_value():
    sim = Simulation(2, seed=0)
    reg = SafeRegister(sim, "s", domain=[0, 1], initial=0, writer=0)

    def bad_writer(ctx):
        yield from reg.write(ctx, 1)

    with pytest.raises(PermissionError):
        sim.spawn(1, bad_writer)

    sim2 = Simulation(1, seed=0)
    reg2 = SafeRegister(sim2, "s", domain=[0, 1], initial=0, writer=0)

    def bad_value(ctx):
        yield from reg2.write(ctx, 7)

    with pytest.raises(ValueError):
        sim2.spawn(0, bad_value)


# -- regular registers -----------------------------------------------------------


def test_regular_register_overlapping_read_is_old_or_new():
    for seed in range(30):
        sim = Simulation(2, ScriptedScheduler([0, 1, 0]), seed=seed)
        reg = RegularRegister(sim, "r", domain=list(range(10)), initial=0, writer=0)

        def factory(pid):
            def body(ctx):
                if pid == 0:
                    yield from reg.write(ctx, 1)
                else:
                    return (yield from reg.read(ctx))

            return body

        sim.spawn_all(factory)
        assert sim.run().decisions[1] in (0, 1)


def test_regular_register_satisfies_regularity_exhaustively():
    def setup(sim):
        reg = RegularRegister(sim, "r", domain=[0, 1, 2], initial=0, writer=0)

        def factory(pid):
            def body(ctx):
                if pid == 0:
                    yield from reg.write(ctx, 1)
                    yield from reg.write(ctx, 2)
                else:
                    a = yield from reg.read(ctx)
                    b = yield from reg.read(ctx)
                    return (a, b)

            return body

        return factory

    def check(sim, outcome):
        return _is_regular(sim, "r", [1, 2], 0)

    result = explore_schedules(2, setup, check, max_steps=10)
    assert result.exhausted and result.ok, result.violations[:1]


def test_regular_register_is_not_atomic():
    """New/old inversion: exhaustive search finds a schedule where two
    sequential reads return new-then-old — regular allows it, atomic
    does not."""

    def setup(sim):
        reg = RegularRegister(sim, "r", domain=[0, 1], initial=0, writer=0)

        def factory(pid):
            def body(ctx):
                if pid == 0:
                    yield from reg.write(ctx, 1)
                else:
                    a = yield from reg.read(ctx)
                    b = yield from reg.read(ctx)
                    return (a, b)

            return body

        return factory

    def check(sim, outcome):
        if outcome.decisions[1] == (1, 0):
            return ["new/old inversion"]
        return []

    result = explore_schedules(
        2, setup, check, max_steps=10, stop_on_first_violation=True
    )
    assert not result.ok  # the inversion schedule exists


# -- regular bit from safe bit -----------------------------------------------------


def test_regular_bit_from_safe_exhaustive_regularity():
    def setup(sim):
        bit = RegularBitFromSafe(sim, "bit", initial=0, writer=0)

        def factory(pid):
            def body(ctx):
                if pid == 0:
                    yield from bit.write(ctx, 1)
                    yield from bit.write(ctx, 1)  # skipped physical write
                    yield from bit.write(ctx, 0)
                else:
                    reads = []
                    for _ in range(2):
                        reads.append((yield from bit.read(ctx)))
                    return reads

            return body

        return factory

    def check(sim, outcome):
        return _is_regular(sim, "bit", [1, 1, 0], 0)

    result = explore_schedules(2, setup, check, max_steps=14)
    assert result.exhausted and result.ok, result.violations[:1]


def test_skipped_write_never_touches_physical_bit():
    sim = Simulation(1, seed=0)
    bit = RegularBitFromSafe(sim, "bit", initial=0, writer=0)

    def program(ctx):
        yield from bit.write(ctx, 0)  # same value: must skip
        yield from bit.write(ctx, 1)

    sim.spawn(0, program)
    sim.run()
    events = [e for e in sim.trace.events]
    # (events recording is off by default; use span count instead)
    spans = [s for s in sim.trace.spans if s.target == "bit.safe"]
    assert len(spans) == 1  # only the changing write reached the safe bit


# -- atomic from regular -------------------------------------------------------------


def test_atomic_from_regular_swsr_exhaustively_linearizable():
    def setup(sim):
        reg = AtomicFromRegular(sim, "a", initial="x", writer=0)

        def factory(pid):
            def body(ctx):
                if pid == 0:
                    yield from reg.write(ctx, "y")
                    yield from reg.write(ctx, "z")
                else:
                    reads = []
                    for _ in range(2):
                        reads.append((yield from reg.read(ctx)))
                    return reads

            return body

        return factory

    def check(sim, outcome):
        history = _history(sim, "a")
        if check_register_history(history, initial="x") is None:
            return ["non-linearizable"]
        return []

    result = explore_schedules(2, setup, check, max_steps=12)
    assert result.exhausted and result.ok, result.violations[:1]


def test_atomic_from_regular_two_readers_can_invert():
    """Documented limitation: the construction is SWSR — with two readers
    the explorer finds a cross-reader new/old inversion."""

    def setup(sim):
        reg = AtomicFromRegular(sim, "a", initial=0, writer=0)
        warmup_done = {}

        def factory(pid):
            def body(ctx):
                if pid == 0:
                    yield from reg.write(ctx, 1)
                else:
                    return (yield from reg.read(ctx))

            return body

        return factory

    def check(sim, outcome):
        history = _history(sim, "a")
        if check_register_history(history, initial=0) is None:
            return ["cross-reader inversion"]
        return []

    result = explore_schedules(
        3, setup, check, max_steps=10, stop_on_first_violation=True
    )
    assert not result.ok
