"""Tests for simulated atomic registers and the memory audit."""

import pytest

from repro.registers import (
    AtomicRegister,
    MemoryAudit,
    RegisterArray,
    measure_magnitude,
)
from repro.registers.base import measure_width, slot_items
from repro.runtime import RoundRobinScheduler, Simulation


def test_read_returns_last_written_value():
    sim = Simulation(1, seed=0)
    reg = AtomicRegister(sim, "r", initial="init")

    def program(ctx):
        first = yield from reg.read(ctx)
        yield from reg.write(ctx, "x")
        second = yield from reg.read(ctx)
        return (first, second)

    sim.spawn(0, program)
    assert sim.run().decisions[0] == ("init", "x")


def test_single_writer_restriction_enforced():
    sim = Simulation(2, RoundRobinScheduler(), seed=0)
    reg = AtomicRegister(sim, "r", writers=[0])

    def factory(pid):
        def body(ctx):
            yield from reg.write(ctx, pid)

        return body

    # The offending write is pid 1's first operation, so the permission
    # check fires while its program is primed at spawn time.
    with pytest.raises(PermissionError):
        sim.spawn_all(factory)


def test_single_writer_violation_mid_run_raises():
    sim = Simulation(2, RoundRobinScheduler(), seed=0)
    guarded = AtomicRegister(sim, "g", writers=[0])
    free = AtomicRegister(sim, "f")

    def factory(pid):
        def body(ctx):
            yield from free.write(ctx, pid)  # legal first op for both
            yield from guarded.write(ctx, pid)

        return body

    sim.spawn_all(factory)
    with pytest.raises(PermissionError):
        sim.run()


def test_register_array_naming_and_ownership():
    sim = Simulation(3, seed=0)
    array = RegisterArray(sim, "V", 3, initial=0)
    assert len(array) == 3
    assert array[1].name == "V[1]"
    assert array[1].writers == frozenset([1])
    assert sim.shared["V[2]"] is array[2]
    assert array.peek_all() == [0, 0, 0]


def test_register_array_multi_writer_mode():
    sim = Simulation(2, seed=0)
    array = RegisterArray(sim, "M", 2, single_writer=False)
    assert array[0].writers is None


def test_measure_magnitude_recurses_structures():
    assert measure_magnitude(None) == 0
    assert measure_magnitude(-17) == 17
    assert measure_magnitude("label") == 0
    assert measure_magnitude((1, (2, -30), [4])) == 30
    assert measure_magnitude({"a": 5, 9: [7]}) == 9
    assert measure_magnitude(True) == 0


def test_measure_width_counts_leaves():
    assert measure_width(5) == 1
    assert measure_width((1, 2, 3)) == 3
    assert measure_width({"a": (1, 2), "b": 3}) == 3


class _DictPoint:
    def __init__(self, x, y, tag=None):
        self.x = x
        self.y = y
        self.tag = tag


class _SlottedPoint:
    __slots__ = ("x", "y", "tag")

    def __init__(self, x, y, tag=None):
        self.x = x
        self.y = y
        self.tag = tag


class _SlottedChild(_SlottedPoint):
    __slots__ = ("z",)

    def __init__(self, x, y, z):
        super().__init__(x, y)
        self.z = z


def test_slot_items_walks_mro_and_skips_unset_slots():
    assert slot_items(_DictPoint(1, 2)) is None  # has __dict__, not slotted
    assert dict(slot_items(_SlottedPoint(1, -2))) == {"x": 1, "y": -2, "tag": None}
    assert dict(slot_items(_SlottedChild(1, 2, 3))) == {
        "x": 1,
        "y": 2,
        "tag": None,
        "z": 3,
    }
    partial = _SlottedPoint.__new__(_SlottedPoint)
    partial.x = 9  # y and tag left unset: must be skipped, not raise
    assert dict(slot_items(partial)) == {"x": 9}


def test_measurers_agree_on_slotted_and_dict_objects():
    """Slotting a value type must not change audit numbers."""
    for args in [(-7, 3, "t"), (0, 100, None)]:
        assert measure_magnitude(_SlottedPoint(*args)) == measure_magnitude(
            _DictPoint(*args)
        )
        assert measure_width(_SlottedPoint(*args)) == measure_width(
            _DictPoint(*args)
        )
    nested = [(_SlottedChild(1, -42, 5), {"k": _SlottedPoint(2, 3)})]
    assert measure_magnitude(nested) == 42
    # Inherited slots count too: x, y, tag=None, z=(3, 4) is 5 leaves.
    assert measure_width(_SlottedChild(1, 2, (3, 4))) == 5



def test_audit_tracks_maxima_across_writes():
    audit = MemoryAudit()
    sim = Simulation(1, seed=0)
    reg = AtomicRegister(sim, "r", initial=0, audit=audit)

    def program(ctx):
        yield from reg.write(ctx, 100)
        yield from reg.write(ctx, (3, -2))

    sim.spawn(0, program)
    sim.run()
    assert audit.max_magnitude == 100
    assert audit.max_width == 2
    assert audit.writes == 3  # initial + two writes
    assert audit.per_target["r"] == 100


def test_audit_merge():
    a, b = MemoryAudit(), MemoryAudit()
    a.observe("x", 10)
    b.observe("x", 3)
    b.observe("y", (1, 2, 3, 4))
    merged = a.merge(b)
    assert merged.max_magnitude == 10
    assert merged.max_width == 4
    assert merged.writes == 3
    assert merged.per_target == {"x": 10, "y": 4}


def test_poke_and_peek_do_not_consume_steps():
    sim = Simulation(1, seed=0)
    reg = AtomicRegister(sim, "r", initial=1)
    reg.poke(9)
    assert reg.peek() == 9
    assert sim.step_count == 0
