"""Tests for wall-clock profiling sections and the instrumentation
overhead guard."""

import time

from repro import AdsConsensus, MetricsRegistry, Profiler
from repro.obs.profiling import measure_off_path_overhead, measure_overhead


def test_section_records_into_profile_histogram():
    profiler = Profiler()
    with profiler.section("work"):
        time.sleep(0.002)
    with profiler.section("work"):
        pass
    summary = profiler.registry.snapshot().histograms["profile.work"]
    assert summary["count"] == 2
    assert summary["max"] >= 0.002
    assert profiler.seconds("work") >= 0.002


def test_section_records_even_when_body_raises():
    profiler = Profiler()
    try:
        with profiler.section("boom"):
            raise RuntimeError("x")
    except RuntimeError:
        pass
    assert profiler.registry.snapshot().histograms["profile.boom"]["count"] == 1


def test_profiler_shares_external_registry():
    registry = MetricsRegistry()
    profiler = Profiler(registry)
    with profiler.section("s"):
        pass
    assert "profile.s" in registry.snapshot().histograms


def test_measure_overhead_is_small():
    overhead = measure_overhead(repeats=2000)
    # An empty section is bookkeeping only; even on a loaded CI box a
    # single context-manager round trip stays far under a millisecond.
    assert 0 < overhead < 1e-3


def test_profiler_sections_summarises_by_stripped_name():
    profiler = Profiler()
    with profiler.section("consensus.bare"):
        pass
    with profiler.section("consensus.bare"):
        pass
    with profiler.section("scan.trace"):
        pass
    sections = profiler.sections()
    assert list(sections) == ["consensus.bare", "scan.trace"]
    assert sections["consensus.bare"]["count"] == 2
    assert sections["scan.trace"]["count"] == 1


def test_off_path_overhead_under_five_percent():
    """The zero-cost-when-off claim: driving disabled instruments adds
    less than 5% to a fixed arithmetic workload.

    Timing noise is one-sided (a loaded host only ever inflates a
    measurement), so the guard takes the best of three independent
    measurements — a real regression shifts *every* measurement up.
    """
    ratio = min(measure_off_path_overhead() for _ in range(3))
    assert ratio < 1.05


def test_metrics_overhead_guard():
    """Instrumented runs must stay within a generous factor of
    metrics-off runs — the registry is hot-path code."""

    def timed(enabled):
        registry = MetricsRegistry(enabled=enabled)
        start = time.perf_counter()
        for seed in range(3):
            AdsConsensus().run([0, 1, 1], seed=seed, metrics=registry)
        return time.perf_counter() - start

    timed(True)  # warm caches before measuring
    off = timed(False)
    on = timed(True)
    assert on < off * 10
