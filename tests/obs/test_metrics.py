"""Tests for the metrics registry: instrument semantics, label isolation,
snapshot determinism and serialization."""

import json

from repro import AdsConsensus, MetricsRegistry, MetricsSnapshot, Simulation
from repro.obs.metrics import (
    ZERO_SUMMARY,
    Histogram,
    merge_snapshots,
    parse_key,
)
from repro.registers.atomic import AtomicRegister


# -- instrument semantics ----------------------------------------------------


def test_counter_increments_and_identity():
    registry = MetricsRegistry()
    counter = registry.counter("c")
    counter.inc()
    counter.inc(4)
    assert registry.counter("c") is counter
    assert registry.snapshot().counters["c"] == 5


def test_gauge_set_and_set_max():
    registry = MetricsRegistry()
    gauge = registry.gauge("g")
    gauge.set(7)
    gauge.set_max(3)  # lower: ignored
    assert registry.snapshot().gauges["g"] == 7
    gauge.set_max(11)
    assert registry.snapshot().gauges["g"] == 11
    gauge.set(2)  # plain set always wins
    assert registry.snapshot().gauges["g"] == 2


def test_histogram_summary_and_percentiles():
    registry = MetricsRegistry()
    histogram = registry.histogram("h")
    for v in [1, 2, 3, 4, 5, 6, 7, 8, 9, 10]:
        histogram.observe(v)
    summary = registry.snapshot().histograms["h"]
    assert summary["count"] == 10
    assert summary["sum"] == 55
    assert summary["min"] == 1 and summary["max"] == 10
    assert summary["mean"] == 5.5
    assert summary["p50"] in (5, 6)
    assert summary["p90"] in (9, 10)


def test_histogram_percentile_cache_invalidated_by_observe():
    registry = MetricsRegistry()
    histogram = registry.histogram("h")
    for v in [5, 1, 3]:
        histogram.observe(v)
    assert histogram.percentile(100) == 5
    assert histogram.percentile(0) == 1  # served from the cached sort
    histogram.observe(0)  # must invalidate the cached ordering
    assert histogram.percentile(0) == 0
    assert histogram.percentile(100) == 5
    # The raw observation list stays in arrival order regardless.
    assert histogram.observations == [5, 1, 3, 0]


def test_empty_histogram_summary_is_zeroed():
    registry = MetricsRegistry()
    registry.histogram("h")
    summary = registry.snapshot().histograms["h"]
    assert summary["count"] == 0 and summary["mean"] == 0.0


def test_label_isolation():
    registry = MetricsRegistry()
    registry.counter("ops", pid=0).inc()
    registry.counter("ops", pid=1).inc(2)
    registry.counter("ops").inc(10)
    snapshot = registry.snapshot()
    assert snapshot.counters["ops{pid=0}"] == 1
    assert snapshot.counters["ops{pid=1}"] == 2
    assert snapshot.counters["ops"] == 10
    assert snapshot.counter_total("ops") == 13


def test_label_order_does_not_matter():
    registry = MetricsRegistry()
    registry.counter("x", a=1, b=2).inc()
    assert registry.counter("x", b=2, a=1).value == 1


def test_parse_key_round_trip():
    assert parse_key("plain") == ("plain", {})
    assert parse_key("ops{pid=3,reg=mem.V[0]}") == (
        "ops",
        {"pid": "3", "reg": "mem.V[0]"},
    )


def test_disabled_registry_is_noop():
    registry = MetricsRegistry(enabled=False)
    registry.counter("c").inc()
    registry.gauge("g").set_max(5)
    registry.histogram("h").observe(1)
    snapshot = registry.snapshot()
    assert snapshot.counters == {} and snapshot.gauges == {}


def test_reset_clears_instruments():
    registry = MetricsRegistry()
    registry.counter("c").inc()
    registry.reset()
    assert registry.snapshot().counters == {}


# -- snapshot serialization --------------------------------------------------


def test_snapshot_json_round_trip():
    registry = MetricsRegistry()
    registry.counter("steps", pid=0).inc(9)
    registry.gauge("gap").set_max(3)
    registry.histogram("rounds").observe(2)
    snapshot = registry.snapshot()
    restored = MetricsSnapshot.from_json(snapshot.to_json())
    assert restored.counters == snapshot.counters
    assert restored.gauges == snapshot.gauges
    assert restored.histograms == snapshot.histograms


def test_snapshot_to_rows_is_sorted_and_typed():
    registry = MetricsRegistry()
    registry.counter("b").inc()
    registry.counter("a").inc()
    registry.gauge("g").set(1)
    registry.histogram("h").observe(2)
    rows = registry.snapshot().to_rows()
    metrics = [r["metric"] for r in rows]
    assert metrics == ["a", "b", "g", "h"]
    assert [r["type"] for r in rows] == ["counter", "counter", "gauge", "histogram"]


# -- simulation integration --------------------------------------------------


def test_simulation_counts_steps_per_pid():
    sim = Simulation(2, seed=0)
    reg = AtomicRegister(sim, "r", 0)

    def factory(pid):
        def body(ctx):
            yield from reg.write(ctx, pid)
            yield from reg.read(ctx)

        return body

    sim.spawn_all(factory)
    outcome = sim.run()
    snapshot = outcome.metrics
    assert snapshot.counter_total("runtime.steps") == outcome.total_steps
    assert snapshot.counters["runtime.steps{pid=0}"] == 2
    assert snapshot.counters["registers.reads{register=r}"] == 2
    assert snapshot.counters["registers.writes{register=r}"] == 2


def test_disabled_metrics_leave_outcome_snapshot_none():
    sim = Simulation(1, seed=0, metrics=MetricsRegistry(enabled=False))

    def program(ctx):
        return 0
        yield  # pragma: no cover

    sim.spawn(0, program)
    outcome = sim.run()
    assert outcome.metrics is None


def test_consensus_run_snapshot_deterministic_across_identical_seeds():
    first = AdsConsensus().run([0, 1, 1], seed=5)
    second = AdsConsensus().run([0, 1, 1], seed=5)
    assert first.metrics is not None
    assert first.metrics.to_json() == second.metrics.to_json()
    # and the instrumented seams all reported something
    assert first.metrics.counter_total("consensus.scans") > 0
    assert first.metrics.counter_total("snapshot.scans") > 0
    assert first.metrics.counter_total("runtime.steps") == first.total_steps
    assert first.metrics.counter_total("consensus.decisions") == 3


def test_consensus_metrics_agree_with_protocol_stats():
    protocol = AdsConsensus()
    run = protocol.run([0, 1, 0, 1], seed=2)
    snapshot = run.metrics
    stats = run.stats
    assert snapshot.counter_total("consensus.scans") == sum(
        stats["scans_by_pid"].values()
    )
    assert snapshot.counter_total("consensus.coin_flips") == sum(
        stats["flips_by_pid"].values()
    )
    assert snapshot.counter_total("consensus.round_advances") == sum(
        stats["rounds_by_pid"].values()
    )


def test_memory_gauge_matches_audit():
    run = AdsConsensus().run([0, 1, 1], seed=1)
    assert run.metrics.gauge_max("memory.max_magnitude") == run.audit.max_magnitude


def test_snapshot_scan_rounds_histogram_recorded():
    run = AdsConsensus().run([0, 1], seed=3)
    histograms = {
        parse_key(k)[0] for k in run.metrics.histograms
    }
    assert "snapshot.scan_rounds" in histograms
    summary = run.metrics.histograms["snapshot.scan_rounds{object=mem}"]
    assert summary["count"] == run.metrics.counter_total("snapshot.scans")
    assert summary["min"] >= 1


def test_metrics_snapshot_json_is_valid_json():
    run = AdsConsensus().run([0, 1], seed=0)
    payload = json.loads(run.metrics.to_json())
    assert set(payload) == {"counters", "gauges", "histograms"}


# -- snapshot merging regressions --------------------------------------------


def test_merge_snapshots_of_nothing_is_a_wellformed_empty_snapshot():
    merged = merge_snapshots([])
    assert merged.counters == {}
    assert merged.gauges == {}
    assert merged.histograms == {}
    assert merged.series == {}
    assert json.loads(merged.to_json()) == {
        "counters": {},
        "gauges": {},
        "histograms": {},
    }


def test_merging_two_empty_histogram_summaries_stays_zeroed():
    # Regression: the count-weighted mean used to divide by a zero total.
    a = MetricsSnapshot(histograms={"h": dict(ZERO_SUMMARY)})
    b = MetricsSnapshot(histograms={"h": dict(ZERO_SUMMARY)})
    merged = merge_snapshots([a, b])
    assert merged.histograms["h"] == ZERO_SUMMARY


def test_merging_empty_into_populated_histogram_keeps_the_data():
    registry = MetricsRegistry()
    for v in (2, 4, 6):
        registry.histogram("h").observe(v)
    populated = registry.snapshot()
    empty = MetricsSnapshot(histograms={"h": dict(ZERO_SUMMARY)})
    for order in ([populated, empty], [empty, populated]):
        merged = merge_snapshots(order)
        assert merged.histograms["h"]["count"] == 3
        assert merged.histograms["h"]["mean"] == 4.0


def test_merge_snapshots_same_key_collisions_combine():
    def snap():
        registry = MetricsRegistry()
        registry.counter("ops").inc(3)
        registry.gauge("peak").set_max(5)
        registry.histogram("lat").observe(2)
        return registry.snapshot()

    a, b = snap(), snap()
    b.gauges["peak"] = 9
    merged = merge_snapshots([a, b])
    assert merged.counters["ops"] == 6  # counters add
    assert merged.gauges["peak"] == 9  # gauges take the max
    assert merged.histograms["lat"]["count"] == 2  # histograms pool counts
    assert merged.histograms["lat"]["sum"] == 4


def test_histogram_summary_agrees_with_percentile_and_is_stable():
    histogram = Histogram()
    for v in (9, 1, 5, 3, 7, 5, 2):
        histogram.observe(v)
    first, second = histogram.summary(), histogram.summary()
    assert first == second  # summary() must not disturb the observations
    for q, key in ((50, "p50"), (90, "p90"), (99, "p99")):
        assert first[key] == histogram.percentile(q)
    assert histogram.observations == [9, 1, 5, 3, 7, 5, 2]  # insertion order
