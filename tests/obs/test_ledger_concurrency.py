"""Concurrent ledger appends and file/line corruption diagnostics.

The serve dispatcher and a CLI run may append to one ledger file at
the same time — the invariant the service relies on is that
:func:`repro.obs.ledger.locked_append` interleaves *whole lines*:
any number of writers, zero torn records, `repro history check` clean.
"""

import json
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.cli import main
from repro.obs.ledger import (
    LedgerCorruption,
    RunLedger,
    locked_append,
    make_record,
    read_records,
    truncate_torn_tail,
)

SRC = Path(__file__).resolve().parents[2] / "src"


@pytest.fixture(autouse=True)
def _pinned_code_version(monkeypatch):
    monkeypatch.setenv("REPRO_CODE_VERSION", "test-concurrency-v1")


def _record(seed: int, writer: str):
    return make_record(
        kind="sweep",
        experiment=f"sweep:{writer}",
        seed=seed,
        config={"experiment": f"sweep:{writer}", "n": 2},
        # Constant value: concurrency tests must not trip the trend gate.
        outcome={"value": 100.0},
    )


def test_two_threads_interleave_whole_lines(tmp_path):
    path = tmp_path / "ledger.jsonl"
    per_thread = 100
    barrier = threading.Barrier(2)

    def writer(name: str) -> None:
        barrier.wait()
        for seed in range(per_thread):
            locked_append(path, _record(seed, name).to_line() + "\n")

    threads = [
        threading.Thread(target=writer, args=(name,)) for name in ("a", "b")
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    records = read_records(path)  # raises LedgerCorruption on a torn record
    assert len(records) == 2 * per_thread
    by_writer = {"sweep:a": 0, "sweep:b": 0}
    for record in records:
        by_writer[record.experiment] += 1
    assert by_writer == {"sweep:a": per_thread, "sweep:b": per_thread}


def test_two_processes_interleave_whole_lines(tmp_path):
    """Cross-process appends through RunLedger (flock, not threading)."""
    path = tmp_path / "ledger.jsonl"
    per_process = 40
    script = (
        "import sys\n"
        "from repro.obs.ledger import RunLedger, make_record\n"
        "writer, path = sys.argv[1], sys.argv[2]\n"
        "ledger = RunLedger(path)\n"
        f"for seed in range({per_process}):\n"
        "    ledger.append(make_record(kind='sweep',"
        " experiment='sweep:' + writer, seed=seed,"
        " config={'experiment': 'sweep:' + writer, 'n': 2},"
        " outcome={'value': 100.0}))\n"
    )
    env = {
        "PATH": "/usr/bin:/bin",
        "PYTHONPATH": str(SRC),
        "REPRO_CODE_VERSION": "test-concurrency-v1",
    }
    procs = [
        subprocess.Popen(
            [sys.executable, "-c", script, writer, str(path)], env=env
        )
        for writer in ("p1", "p2")
    ]
    for proc in procs:
        assert proc.wait(timeout=60) == 0

    records = read_records(path)
    assert len(records) == 2 * per_process
    # And the CLI gate agrees the store is healthy.
    assert main(["history", "check", "--ledger", str(path)]) == 0


def test_history_check_clean_after_threaded_appends(tmp_path, capsys):
    path = tmp_path / "ledger.jsonl"

    def writer(name: str) -> None:
        for seed in range(25):
            locked_append(path, _record(seed, name).to_line() + "\n")

    threads = [
        threading.Thread(target=writer, args=(name,)) for name in ("x", "y")
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert main(["history", "check", "--ledger", str(path)]) == 0
    assert "OK" in capsys.readouterr().out


def test_locked_append_creates_parent_directories(tmp_path):
    path = tmp_path / "deep" / "nested" / "ledger.jsonl"
    locked_append(path, "x\n")
    assert path.read_text() == "x\n"


# -- corruption diagnostics: file and line, not just a fingerprint ----------


def test_midfile_garbage_reports_file_and_line(tmp_path):
    path = tmp_path / "ledger.jsonl"
    ledger = RunLedger(path)
    ledger.append(_record(0, "w"))
    ledger.append(_record(1, "w"))
    lines = path.read_text().splitlines()
    lines[0] = lines[0][: len(lines[0]) // 2]  # damage line 1 mid-file
    path.write_text("\n".join(lines) + "\n")
    with pytest.raises(LedgerCorruption) as excinfo:
        read_records(path)
    assert str(excinfo.value).startswith(f"{path}:1:")


def test_valid_json_invalid_record_reports_file_and_line(tmp_path):
    path = tmp_path / "ledger.jsonl"
    RunLedger(path).append(_record(0, "w"))
    # Parsable JSON, but not a ledger record: missing every required key.
    locked_append(path, json.dumps({"surprise": True}) + "\n")
    with pytest.raises(LedgerCorruption) as excinfo:
        read_records(path)
    assert str(excinfo.value).startswith(f"{path}:2:")
    assert "not a valid record" in str(excinfo.value)


def test_history_check_prints_location_instead_of_traceback(tmp_path, capsys):
    path = tmp_path / "ledger.jsonl"
    ledger = RunLedger(path)
    ledger.append(_record(0, "w"))
    ledger.append(_record(1, "w"))
    lines = path.read_text().splitlines()
    lines[1] = '{"not": "a record"}'
    path.write_text("\n".join(lines) + "\n")
    assert main(["history", "check", "--ledger", str(path)]) == 3
    out = capsys.readouterr().out
    assert "LEDGER CORRUPT" in out
    assert f"{path}:2:" in out


def test_truncate_torn_tail_heals_a_crashed_append(tmp_path):
    path = tmp_path / "ledger.jsonl"
    ledger = RunLedger(path)
    ledger.append(_record(0, "w"))
    intact = path.read_bytes()
    with open(path, "ab") as handle:
        handle.write(b'{"kind": "sweep", "half a rec')  # crash mid-append
    assert truncate_torn_tail(path) is True
    assert path.read_bytes() == intact
    # Idempotent and quiet on a healthy file.
    assert truncate_torn_tail(path) is False
    assert path.read_bytes() == intact


def test_truncate_torn_tail_completes_a_missing_newline(tmp_path):
    path = tmp_path / "ledger.jsonl"
    ledger = RunLedger(path)
    ledger.append(_record(0, "w"))
    intact = path.read_bytes()
    path.write_bytes(intact[:-1])  # the newline itself was lost
    assert truncate_torn_tail(path) is False
    assert path.read_bytes() == intact
    assert len(read_records(path)) == 1
