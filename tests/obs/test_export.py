"""Tests for the structured trace exporters (JSONL, Chrome trace_event)."""

import json

from repro import AdsConsensus, Simulation
from repro.obs.export import (
    export_chrome,
    export_jsonl,
    export_trace,
    jsonable,
    load_jsonl,
    trace_to_chrome,
    trace_to_jsonl,
)
from repro.snapshot import ArrowScannableMemory


def _recorded_run(seed=3, n=3):
    sim = Simulation(n, seed=seed, record_events=True, record_spans=True)
    mem = ArrowScannableMemory(sim, "M", n)

    def factory(pid):
        def body(ctx):
            yield from mem.write(ctx, pid)
            return tuple((yield from mem.scan(ctx)))

        return body

    sim.spawn_all(factory)
    sim.run(100_000)
    return sim


# -- JSONL -------------------------------------------------------------------


def test_jsonl_round_trip(tmp_path):
    sim = _recorded_run()
    path = export_jsonl(sim.trace, tmp_path / "trace.jsonl")
    loaded = load_jsonl(path)
    assert len(loaded["events"]) == len(sim.trace.events)
    assert len(loaded["spans"]) == len(sim.trace.spans)
    first = loaded["events"][0]
    assert first["step"] == sim.trace.events[0].step
    assert first["pid"] == sim.trace.events[0].pid
    assert first["kind"] == sim.trace.events[0].kind
    span_ids = {s["span_id"] for s in loaded["spans"]}
    assert span_ids == {s.span_id for s in sim.trace.spans}


def test_jsonl_every_line_is_json():
    sim = _recorded_run()
    for line in trace_to_jsonl(sim.trace).splitlines():
        record = json.loads(line)
        assert record["type"] in ("event", "span")


def test_jsonl_empty_trace(tmp_path):
    sim = Simulation(1, seed=0, record_events=True)

    def program(ctx):
        return 0
        yield  # pragma: no cover

    sim.spawn(0, program)
    sim.run()
    path = export_jsonl(sim.trace, tmp_path / "empty.jsonl")
    assert load_jsonl(path) == {"events": [], "spans": []}


# -- Chrome trace_event ------------------------------------------------------


def test_chrome_trace_structure():
    sim = _recorded_run()
    chrome = trace_to_chrome(sim.trace)
    events = chrome["traceEvents"]
    assert isinstance(events, list) and events
    phases = {e["ph"] for e in events}
    assert phases == {"M", "X", "i"}
    for entry in events:
        assert "name" in entry and "pid" in entry and "tid" in entry
        if entry["ph"] == "X":
            assert entry["dur"] >= 1
            assert entry["ts"] >= 0
        if entry["ph"] == "i":
            assert "ts" in entry


def test_chrome_trace_has_named_thread_per_process():
    sim = _recorded_run(n=3)
    chrome = trace_to_chrome(sim.trace)
    names = {
        e["args"]["name"]
        for e in chrome["traceEvents"]
        if e["ph"] == "M" and e["name"] == "thread_name"
    }
    assert names == {"p0", "p1", "p2"}


def test_chrome_export_is_loadable_json(tmp_path):
    sim = _recorded_run()
    path = export_chrome(sim.trace, tmp_path / "trace.json")
    loaded = json.loads(path.read_text())
    assert "traceEvents" in loaded


def test_chrome_span_count_matches_completed_spans():
    sim = _recorded_run()
    chrome = trace_to_chrome(sim.trace)
    slices = [e for e in chrome["traceEvents"] if e["ph"] == "X"]
    completed = [
        s
        for s in sim.trace.spans
        if s.invoke_step is not None and s.response_step is not None
    ]
    assert len(slices) == len(completed)


# -- dispatch and values -----------------------------------------------------


def test_export_trace_dispatches_on_extension(tmp_path):
    sim = _recorded_run()
    jsonl = export_trace(sim.trace, tmp_path / "t.jsonl")
    chrome = export_trace(sim.trace, tmp_path / "t.json")
    assert "traceEvents" not in jsonl.read_text().splitlines()[0]
    assert "traceEvents" in chrome.read_text()


def test_jsonable_handles_protocol_cells(tmp_path):
    # A full consensus run writes AdsCell dataclasses into registers; the
    # export must serialize them without raising.
    run = AdsConsensus().run(
        [0, 1], seed=0, record_events=True, record_spans=True, keep_simulation=True
    )
    path = export_jsonl(run.simulation.trace, tmp_path / "ads.jsonl")
    loaded = load_jsonl(path)
    assert loaded["events"]


def test_jsonable_fallback_to_repr():
    assert jsonable({1, 2}) == "{1, 2}"  # sets have no JSON analogue: repr
    value = jsonable(object())
    assert isinstance(value, str) and "object" in value
    assert jsonable((1, "a", None)) == [1, "a", None]
    assert jsonable({"k": (1, 2)}) == {"k": [1, 2]}
