"""Tests for the HTML dashboard: self-containment, byte-stability and
coverage of every gated benchmark (satellite S6)."""

import pathlib
import re

from repro import AdsConsensus
from repro.obs import (
    SeriesSpec,
    causal_report_for,
    render_report,
    write_report,
)
from repro.obs.report import gate_all_benchmarks, sparkline

REPO = pathlib.Path(__file__).resolve().parents[2]
RESULTS = REPO / "benchmarks" / "results"
BASELINES = REPO / "benchmarks" / "baselines"


def _full_inputs():
    run = AdsConsensus().run(
        [0, 1, 1],
        seed=7,
        record_events=True,
        record_spans=True,
        keep_simulation=True,
        series=SeriesSpec(every=64),
    )
    causal = causal_report_for(run.simulation, run.outcome)
    gates = gate_all_benchmarks(RESULTS, BASELINES)
    meta = {"protocol": "ads", "n": 3, "seed": 7}
    return run.metrics, causal, gates, meta


def test_report_is_self_contained():
    html = render_report(*_full_inputs())
    assert "http://" not in html
    assert "https://" not in html
    assert "<script" not in html
    assert 'src="' not in html  # no external images/frames
    assert "@import" not in html and "url(" not in html


def test_report_is_byte_stable():
    first = render_report(*_full_inputs())
    second = render_report(*_full_inputs())
    assert first == second


def test_report_covers_all_gated_benchmarks():
    snapshot, causal, gates, meta = _full_inputs()
    baselines = sorted(BASELINES.glob("BENCH_*.json"))
    assert len(baselines) == 15  # E1-E12, X1, X2, P1
    assert len(gates) == len(baselines)
    html = render_report(snapshot, causal, gates, meta)
    for path in baselines:
        assert path.stem.replace("BENCH_", "") in html
    assert f"/{len(baselines)} benchmarks within tolerance" in html


def test_report_renders_series_and_causal_sections():
    html = render_report(*_full_inputs())
    assert '<svg class="spark"' in html
    assert "Causal critical path" in html
    assert "Adversary attribution" in html
    assert "runtime.steps" in html


def test_report_degrades_without_snapshot_or_causal():
    html = render_report(None, None, [], {"note": "empty"})
    assert "metrics disabled" in html
    assert "causal analysis skipped" in html
    assert "no BENCH_*.json artifacts found" in html
    assert "no resilience events" in html


def test_report_renders_resilience_counters():
    from repro.obs.metrics import MetricsRegistry

    metrics = MetricsRegistry(enabled=True)
    metrics.counter("resilience.retries").inc(3)
    metrics.counter("resilience.timeouts").inc(1)
    html = render_report(metrics.snapshot(), None, [], {})
    assert "<h2>Resilience</h2>" in html
    assert "resilience.retries" in html
    assert "resilience.timeouts" in html
    assert "<b>4</b> task dispatches deviated" in html


def test_undisturbed_snapshot_keeps_resilience_placeholder():
    snapshot, *_ = _full_inputs()
    html = render_report(snapshot, None, [], {})
    assert "no resilience events" in html


def test_write_report_round_trips(tmp_path):
    out = write_report(tmp_path / "r.html", None, None, [], {})
    assert out.read_text() == render_report(None, None, [], {})


def test_sparkline_is_deterministic_and_escaped():
    points = [[0, 0], [64, 3], [128, 3], [192, 9]]
    first, second = sparkline(points), sparkline(points)
    assert first == second
    assert first.startswith('<svg class="spark"')
    # every coordinate uses the fixed 2-decimal format
    for coord in re.findall(r"[\d.]+,[\d.]+", first):
        x, y = coord.split(",")
        assert "." in x and "." in y
    assert sparkline([]) == '<svg class="spark" width="220" height="36"></svg>'


def test_sparkline_handles_flat_series():
    flat = sparkline([[1, 5], [2, 5], [3, 5]])
    assert "NaN" not in flat and "inf" not in flat


def test_report_renders_service_section_from_a_job_log(tmp_path):
    from repro.obs.report import service_summary
    from repro.serve.queue import JobQueue

    log = tmp_path / "jobs.jsonl"
    queue = JobQueue(log)
    queue.submit("a" * 64, {"kind": "sweep", "priority": "normal", "params": {}})
    queue.claim()
    queue.finish("a" * 64, {"ok": True})
    queue.submit("b" * 64, {"kind": "chaos", "priority": "critical", "params": {}})
    queue.shed("b" * 64, "budget exhausted")
    before = log.read_bytes()

    summary = service_summary(log)
    assert log.read_bytes() == before  # reporting never mutates the log
    assert summary["by_state"]["DONE"] == 1
    assert summary["by_state"]["SHED"] == 1
    assert summary["shed_rate"] == 0.5

    html = render_report(None, None, [], {}, service=summary)
    assert "<h2>Service</h2>" in html
    assert "aaaaaaaaaaaa" in html and "bbbbbbbbbbbb" in html  # 12-char ids
    assert "chaos" in html and "critical" in html


def test_report_keeps_service_placeholder_without_a_job_log():
    html = render_report(None, None, [], {})
    assert "<h2>Service</h2>" in html
    assert "no job log" in html


def test_report_renders_explicit_panel_for_an_empty_job_log(tmp_path):
    # An existing-but-empty log is not "no log": the dashboard must say
    # the service ran with zero submissions, not hide the section.
    from repro.obs.report import service_summary

    log = tmp_path / "jobs.jsonl"
    log.touch()
    summary = service_summary(log)
    assert summary["jobs"] == []
    html = render_report(None, None, [], {}, service=summary)
    assert "no jobs recorded" in html
    assert "POST /jobs" in html
    assert "no job log" not in html  # the absent-log wording stays distinct


def test_report_renders_service_timeline_from_a_job_trace(tmp_path):
    from repro.obs.report import service_summary
    from repro.serve.queue import JobQueue
    from repro.serve.telemetry import JobTracer

    log = tmp_path / "jobs.jsonl"
    queue = JobQueue(log)
    queue.submit("a" * 64, {"kind": "sweep", "priority": "normal", "params": {}})
    queue.claim()
    queue.finish("a" * 64, {"ok": True})
    trace = tmp_path / "trace.jsonl"
    tracer = JobTracer(trace, clock=lambda: 3.0)
    tracer.span("a" * 64, "queue-wait", 1.0, 1.5)
    tracer.span("a" * 64, "dispatch", 1.5, 3.0, state="DONE")

    summary = service_summary(log, trace_log=trace)
    assert [row["phase"] for row in summary["timeline"]] == [
        "queue-wait", "dispatch",
    ]
    html = render_report(None, None, [], {}, service=summary)
    assert "<h2>Service timeline</h2>" in html
    assert "queue-wait" in html and "state=DONE" in html
    assert "no job trace" not in html


def test_report_timeline_placeholder_without_a_trace(tmp_path):
    from repro.obs.report import service_summary
    from repro.serve.queue import JobQueue

    log = tmp_path / "jobs.jsonl"
    queue = JobQueue(log)
    queue.submit("a" * 64, {"kind": "sweep", "priority": "normal", "params": {}})
    summary = service_summary(log)
    html = render_report(None, None, [], {}, service=summary)
    assert "<h2>Service timeline</h2>" in html
    assert "no job trace" in html
