"""Tests for the time-series layer: sampling determinism, bounded rings,
merge algebra, and survival across the process boundary."""

import json

import pytest

from repro import AdsConsensus, MetricsRegistry, Simulation
from repro.obs import SeriesRecorder, SeriesSpec, merge_series_payloads
from repro.obs.metrics import MetricsSnapshot, merge_snapshots
from repro.registers.atomic import AtomicRegister

# -- spec validation ---------------------------------------------------------


def test_spec_rejects_bad_parameters():
    with pytest.raises(ValueError):
        SeriesSpec(every=0)
    with pytest.raises(ValueError):
        SeriesSpec(max_points=0)


def test_spec_tracks_by_name_prefix():
    spec = SeriesSpec(track=("runtime.steps", "coin."))
    assert spec.tracks("runtime.steps")
    assert spec.tracks("coin.flips")
    assert not spec.tracks("snapshot.scans")


# -- recorder sampling -------------------------------------------------------


def test_recorder_samples_on_period_and_is_idempotent():
    registry = MetricsRegistry()
    steps = registry.counter("runtime.steps", pid=0)
    recorder = SeriesRecorder(registry, SeriesSpec(every=4))
    for step in range(1, 13):
        steps.inc()
        recorder.maybe_sample(step)
        recorder.maybe_sample(step)  # re-entrant: same step never doubles
    series = recorder.export()["runtime.steps{pid=0}"]
    assert series["points"] == [[4, 4], [8, 8], [12, 12]]
    assert series["kind"] == "counter"
    assert series["every"] == 4
    assert series["dropped"] == 0


def test_recorder_tracks_gauges_with_kind():
    registry = MetricsRegistry()
    gauge = registry.gauge("coin.max_excursion", coin="c")
    recorder = SeriesRecorder(
        registry, SeriesSpec(every=1, track=("coin.max_excursion",))
    )
    gauge.set_max(3)
    recorder.sample(1)
    gauge.set_max(7)
    recorder.sample(2)
    series = recorder.export()["coin.max_excursion{coin=c}"]
    assert series["kind"] == "gauge"
    assert series["points"] == [[1, 3], [2, 7]]


def test_bounded_ring_drops_oldest_and_counts():
    registry = MetricsRegistry()
    steps = registry.counter("runtime.steps")
    recorder = SeriesRecorder(
        registry, SeriesSpec(every=1, max_points=3, track=("runtime.steps",))
    )
    for step in range(1, 6):
        steps.inc()
        recorder.sample(step)
    series = recorder.export()["runtime.steps"]
    assert series["points"] == [[3, 3], [4, 4], [5, 5]]
    assert series["dropped"] == 2


def test_recorder_reset_clears_everything():
    registry = MetricsRegistry()
    registry.counter("runtime.steps").inc()
    recorder = SeriesRecorder(registry, SeriesSpec(every=1))
    recorder.sample(1)
    recorder.reset()
    assert recorder.export() == {}
    recorder.sample(1)  # step 1 samples again after reset
    assert recorder.export()["runtime.steps"]["points"] == [[1, 1]]


# -- merge algebra -----------------------------------------------------------


def _payload(kind, points, every=1, dropped=0):
    return {"kind": kind, "every": every, "points": points, "dropped": dropped}


def test_merge_handles_empty_sides():
    p = _payload("counter", [[1, 2]])
    assert merge_series_payloads(None, p) == p
    assert merge_series_payloads(p, None) == p
    assert merge_series_payloads(None, None) == {"points": []}
    # merged payloads are copies: mutating the result leaves inputs alone
    merged = merge_series_payloads(None, p)
    merged["points"].append([9, 9])
    assert p["points"] == [[1, 2]]


def test_merge_counters_sum_at_equal_steps():
    a = _payload("counter", [[1, 2], [2, 5]])
    b = _payload("counter", [[2, 3], [3, 4]])
    merged = merge_series_payloads(a, b)
    assert merged["points"] == [[1, 2], [2, 8], [3, 4]]


def test_merge_gauges_take_max_at_equal_steps():
    a = _payload("gauge", [[1, 9]])
    b = _payload("gauge", [[1, 4], [2, 2]])
    merged = merge_series_payloads(a, b)
    assert merged["points"] == [[1, 9], [2, 2]]


def test_merge_is_commutative_and_accumulates_dropped():
    a = _payload("counter", [[1, 1], [4, 4]], every=4, dropped=2)
    b = _payload("counter", [[2, 2]], every=2, dropped=1)
    ab, ba = merge_series_payloads(a, b), merge_series_payloads(b, a)
    assert ab == ba
    assert ab["dropped"] == 3
    assert ab["every"] == 2


# -- snapshot round trips ----------------------------------------------------


def test_snapshot_serializes_series_and_round_trips():
    registry = MetricsRegistry()
    registry.counter("runtime.steps").inc(8)
    recorder = SeriesRecorder(registry, SeriesSpec(every=2))
    registry.bind_series(recorder)
    recorder.sample(2)
    snapshot = registry.snapshot()
    restored = MetricsSnapshot.from_json(snapshot.to_json())
    assert restored.series == snapshot.series
    assert snapshot.series["runtime.steps"]["points"] == [[2, 8]]


def test_snapshot_without_series_keeps_historical_json_shape():
    registry = MetricsRegistry()
    registry.counter("c").inc()
    payload = json.loads(registry.snapshot().to_json())
    assert set(payload) == {"counters", "gauges", "histograms"}


def test_relabel_rekeys_series():
    snap = MetricsSnapshot(
        series={"runtime.steps{pid=0}": _payload("counter", [[1, 1]])}
    )
    relabeled = snap.relabel(task=3)
    assert list(relabeled.series) == ["runtime.steps{pid=0,task=3}"]


def test_merge_snapshots_unions_series():
    a = MetricsSnapshot(series={"s{task=0}": _payload("counter", [[1, 1]])})
    b = MetricsSnapshot(series={"s{task=1}": _payload("counter", [[1, 5]])})
    merged = merge_snapshots([a, b])
    assert sorted(merged.series) == ["s{task=0}", "s{task=1}"]


def test_absorb_carries_series_across_the_boundary():
    worker = MetricsRegistry()
    worker.counter("runtime.steps").inc(4)
    recorder = SeriesRecorder(worker, SeriesSpec(every=2))
    worker.bind_series(recorder)
    recorder.sample(2)
    parent = MetricsRegistry()
    parent.absorb(worker.snapshot(), task=7)
    series = parent.snapshot().series
    assert series["runtime.steps{task=7}"]["points"] == [[2, 4]]
    parent.reset()
    assert parent.snapshot().series == {}


# -- simulation + protocol integration ---------------------------------------


def test_simulation_series_sample_on_logical_clock():
    sim = Simulation(2, seed=0, series=SeriesSpec(every=2))
    reg = AtomicRegister(sim, "r", 0)

    def factory(pid):
        def body(ctx):
            for _ in range(3):
                yield from reg.write(ctx, pid)

        return body

    sim.spawn_all(factory)
    outcome = sim.run()
    series = outcome.metrics.series
    steps = [k for k in series if k.startswith("runtime.steps")]
    assert steps, series.keys()
    # the final sample reflects the finished run
    total = sum(series[k]["points"][-1][1] for k in steps)
    assert total == outcome.total_steps


def test_consensus_series_deterministic_per_seed():
    spec = SeriesSpec(every=64)
    first = AdsConsensus().run([0, 1, 1], seed=5, series=spec)
    second = AdsConsensus().run([0, 1, 1], seed=5, series=spec)
    assert first.metrics.series
    assert first.metrics.to_json() == second.metrics.to_json()


def test_series_survive_parallel_merge_identically():
    from repro.parallel import run_tasks

    def one(task):
        n, seed = task
        run = AdsConsensus().run(
            [(seed + i) % 2 for i in range(n)],
            seed=seed,
            series=SeriesSpec(every=64),
        )
        return run.metrics

    tasks = [(3, s) for s in range(4)]

    def merged(workers):
        snaps = run_tasks(one, tasks, workers=workers)
        return merge_snapshots(
            [s.relabel(task=i) for i, s in enumerate(snaps)]
        )

    assert merged(1).to_json() == merged(4).to_json()
