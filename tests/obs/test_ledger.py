"""Tests for the run ledger: fingerprints, round-trips, cache semantics."""

import json

import pytest

from repro.obs.ledger import (
    LedgerCorruption,
    LedgerRecord,
    RunLedger,
    canonical_json,
    compute_fingerprint,
    jsonable,
    ledger_from_env,
    make_record,
    read_records,
)
from repro.version import LEDGER_SCHEMA


@pytest.fixture(autouse=True)
def _pinned_code_version(monkeypatch):
    """Pin the code version so fingerprints are stable across checkouts."""
    monkeypatch.setenv("REPRO_CODE_VERSION", "test-code-v1")


def test_canonical_json_is_order_insensitive():
    assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})
    assert canonical_json({"a": 2, "b": 1}) == '{"a":2,"b":1}'


def test_jsonable_coerces_tuples_sets_and_keys():
    out = jsonable({"t": (1, 2), "s": {3, 1}, 4: "x"})
    assert out == {"t": [1, 2], "s": [1, 3], "4": "x"}


def test_fingerprint_depends_on_all_three_components():
    base = compute_fingerprint(0, {"n": 2}, code="c1")
    assert compute_fingerprint(1, {"n": 2}, code="c1") != base
    assert compute_fingerprint(0, {"n": 3}, code="c1") != base
    assert compute_fingerprint(0, {"n": 2}, code="c2") != base
    assert compute_fingerprint(0, {"n": 2}, code="c1") == base


def test_fingerprint_ignores_config_key_order():
    assert compute_fingerprint(0, {"a": 1, "b": 2}) == compute_fingerprint(
        0, {"b": 2, "a": 1}
    )


def test_record_round_trips_through_its_line():
    record = make_record(
        kind="run",
        experiment="run",
        seed=7,
        config={"n": 2, "inputs": (0, 1)},
        outcome={"total_steps": 130, "safety_ok": True},
        metrics={"counters": {"runtime.steps": 130}},
        timings={"wall_seconds": 0.5},
    )
    parsed = LedgerRecord.from_payload(json.loads(record.to_line()))
    assert parsed == record
    assert parsed.identity() == record.identity()


def test_identity_excludes_timings():
    kwargs = dict(
        kind="bench",
        experiment="bench:p1",
        seed=0,
        config={"experiment": "p1"},
        outcome={"tables": []},
    )
    fast = make_record(timings={"wall_seconds": 0.1}, **kwargs)
    slow = make_record(timings={"wall_seconds": 9.9}, **kwargs)
    assert fast.fingerprint == slow.fingerprint
    assert fast.identity() == slow.identity()
    assert fast.to_line() != slow.to_line()


def test_newer_schema_is_rejected():
    record = make_record(
        kind="run", experiment="e", seed=0, config={}, outcome={}
    )
    payload = json.loads(record.to_line())
    payload["schema"] = LEDGER_SCHEMA + 1
    with pytest.raises(ValueError, match="newer"):
        LedgerRecord.from_payload(payload)


def _record(seed=0, value=1.0, config=None, code="test-code-v1"):
    return make_record(
        kind="sweep",
        experiment="sweep:test",
        seed=seed,
        config=config or {"n": 2},
        outcome={"value": value},
        code=code,
    )


def test_append_dedupes_identical_identities(tmp_path):
    ledger = RunLedger(tmp_path / "runs.jsonl")
    assert ledger.append(_record()) is True
    assert ledger.append(_record()) is False  # cache hit, not re-appended
    assert len(ledger) == 1
    assert len(read_records(ledger.path)) == 1


def test_append_keeps_conflicting_outcomes_as_evidence(tmp_path):
    ledger = RunLedger(tmp_path / "runs.jsonl")
    assert ledger.append(_record(value=1.0)) is True
    assert ledger.append(_record(value=2.0)) is True  # determinism violation
    assert len(ledger) == 2
    fingerprint = _record().fingerprint
    assert len(ledger.lookup(fingerprint)) == 2
    # A contested fingerprint must never be served from cache.
    assert ledger.cached(fingerprint) is None


def test_cached_round_trip(tmp_path):
    path = tmp_path / "runs.jsonl"
    RunLedger(path).append(_record(value=3.5))
    reopened = RunLedger(path)
    hit = reopened.cached(_record().fingerprint)
    assert hit is not None and hit.outcome["value"] == 3.5


def test_no_cache_records_but_never_serves(tmp_path):
    path = tmp_path / "runs.jsonl"
    ledger = RunLedger(path, use_cache=False)
    ledger.append(_record())
    assert ledger.cached(_record().fingerprint) is None
    # Recording still deduped: identical identity is not appended twice.
    assert ledger.append(_record()) is False


def test_torn_trailing_line_is_tolerated(tmp_path):
    path = tmp_path / "runs.jsonl"
    ledger = RunLedger(path)
    ledger.append(_record(seed=0))
    ledger.append(_record(seed=1))
    with open(path, "a") as handle:
        handle.write('{"fingerprint": "torn-mid-wri')  # crash mid-append
    records = read_records(path)
    assert len(records) == 2
    # Appending over a torn tail keeps working (the reader dropped it).
    reopened = RunLedger(path)
    assert len(reopened) == 2


def test_mid_file_corruption_raises(tmp_path):
    path = tmp_path / "runs.jsonl"
    good = _record().to_line()
    path.write_text("not json at all\n" + good + "\n")
    with pytest.raises(LedgerCorruption, match="corruption"):
        read_records(path)


def test_missing_file_is_an_empty_ledger(tmp_path):
    assert read_records(tmp_path / "absent.jsonl") == []
    assert len(RunLedger(tmp_path / "absent.jsonl")) == 0


def test_gc_drops_duplicates_keeps_conflicts(tmp_path):
    path = tmp_path / "runs.jsonl"
    dup = _record(value=1.0)
    conflict = _record(value=2.0)
    with open(path, "w") as handle:
        handle.write(dup.to_line() + "\n")
        handle.write(dup.to_line() + "\n")  # exact duplicate line
        handle.write(conflict.to_line() + "\n")  # evidence — must survive
    kept, dropped = RunLedger(path).gc()
    assert (kept, dropped) == (2, 1)
    records = read_records(path)
    assert len(records) == 2
    assert {r.outcome["value"] for r in records} == {1.0, 2.0}


def test_ledger_from_env(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_LEDGER", raising=False)
    assert ledger_from_env() is None
    monkeypatch.setenv("REPRO_LEDGER", str(tmp_path / "env.jsonl"))
    ledger = ledger_from_env()
    assert ledger is not None and ledger.path == tmp_path / "env.jsonl"
    # An explicit path wins over the environment.
    explicit = ledger_from_env(tmp_path / "cli.jsonl")
    assert explicit is not None and explicit.path == tmp_path / "cli.jsonl"


def test_make_record_accepts_metrics_snapshot():
    from repro.obs.metrics import MetricsRegistry

    registry = MetricsRegistry()
    registry.counter("runtime.steps").inc(42)
    record = make_record(
        kind="run",
        experiment="run",
        seed=0,
        config={},
        outcome={},
        metrics=registry.snapshot(),
    )
    assert record.metrics is not None
    assert record.metrics["counters"]["runtime.steps"] == 42
