"""Tests for the ledger projections: history, trends, gates, flakiness."""

import pytest

from repro.obs.ledger import make_record
from repro.obs.projections import (
    TREND_METRICS,
    detect_regressions,
    detect_violations,
    filter_records,
    history_check,
    history_rows,
    trend_rows,
    trend_series,
)


@pytest.fixture(autouse=True)
def _pinned_code_version(monkeypatch):
    monkeypatch.setenv("REPRO_CODE_VERSION", "test-code-v1")


def _sweep(seed, value, experiment="sweep:ads:steps", code="test-code-v1"):
    return make_record(
        kind="sweep",
        experiment=experiment,
        seed=seed,
        config={"experiment": experiment, "n": 2},
        outcome={"value": float(value)},
        code=code,
    )


def _run(seed, steps, retries=3, magnitude=5):
    return make_record(
        kind="run",
        experiment="run",
        seed=seed,
        config={"experiment": "run"},
        outcome={
            "total_steps": steps,
            "audit": {"max_magnitude": magnitude, "max_width": 8},
            "disagreement": False,
        },
        metrics={
            "counters": {"snapshot.scan_retries{target=mem}": retries},
            "gauges": {"memory.max_magnitude": magnitude},
        },
    )


def _bench(value, code):
    return make_record(
        kind="bench",
        experiment="bench:p1",
        seed=0,
        config={"experiment": "p1", "kind": "bench"},
        outcome={"tables": [{"title": "t", "rows": [{"v": value}]}]},
        timings={"total": {"steps_per_sec": value}},
        code=code,
    )


# -- history -----------------------------------------------------------------


def test_history_rows_inventory():
    records = [_sweep(s, 100 + s) for s in range(3)] + [_run(0, 130)]
    rows = history_rows(records)
    assert len(rows) == 2
    sweep_row = next(r for r in rows if r["kind"] == "sweep")
    assert sweep_row["records"] == 3
    assert sweep_row["fingerprints"] == 3
    assert sweep_row["contested"] == 0
    assert sweep_row["code_versions"] == 1


def test_history_rows_counts_contested_fingerprints():
    rows = history_rows([_sweep(0, 1.0), _sweep(0, 2.0)])
    assert rows[0]["records"] == 2
    assert rows[0]["fingerprints"] == 1
    assert rows[0]["contested"] == 1


def test_filter_records():
    records = [_sweep(0, 1.0), _run(0, 130)]
    assert len(filter_records(records, experiment="sweep")) == 1
    assert len(filter_records(records, kind="run")) == 1
    assert len(filter_records(records, experiment="nope")) == 0


# -- trend extraction --------------------------------------------------------


def test_trend_series_per_metric():
    records = [_sweep(s, 100.0 + s) for s in range(4)]
    points = trend_series(records, "expected_steps")
    assert [p[1] for p in points] == [100.0, 101.0, 102.0, 103.0]
    with pytest.raises(KeyError, match="unknown trend metric"):
        trend_series(records, "not_a_metric")


def test_run_record_trend_extractors():
    record = _run(0, steps=130, retries=7, magnitude=5)
    assert TREND_METRICS["steps"](record) == 130.0
    assert TREND_METRICS["scan_retries"](record) == 7.0
    assert TREND_METRICS["memory_high_water"](record) == 5.0
    assert TREND_METRICS["disagreement_rate"](record) == 0.0
    assert TREND_METRICS["expected_steps"](record) is None  # not a sweep


def test_bench_record_steps_per_sec_comes_from_timings():
    record = _bench(5000.0, code="c1")
    assert TREND_METRICS["steps_per_sec"](record) == 5000.0


def test_trend_rows_groups_by_experiment_and_metric():
    records = [_sweep(s, 100.0) for s in range(3)] + [_run(0, 130)]
    rows = trend_rows(records)
    keys = {(r["experiment"], r["metric"]) for r in rows}
    assert ("sweep:ads:steps", "expected_steps") in keys
    assert ("run", "steps") in keys
    sweep_row = next(r for r in rows if r["metric"] == "expected_steps")
    assert sweep_row["n"] == 3
    assert sweep_row["first"] == sweep_row["last"] == sweep_row["mean"] == 100.0


# -- regression gate ---------------------------------------------------------


def test_detect_regressions_flags_injected_regression():
    # Five stable points, then the injected regression: +50% steps.
    records = [_sweep(s, 100.0) for s in range(5)] + [_sweep(5, 150.0)]
    alerts = detect_regressions(records, window=5, tolerance=0.10)
    assert len(alerts) == 1
    alert = alerts[0]
    assert alert.experiment == "sweep:ads:steps"
    assert alert.metric == "expected_steps"
    assert alert.baseline == 100.0
    assert alert.latest == 150.0
    assert alert.drift == pytest.approx(50.0 / 150.0)
    assert "deviates" in str(alert)


def test_detect_regressions_quiet_on_stable_history():
    records = [_sweep(s, 100.0 + (s % 2)) for s in range(6)]  # ±1% wobble
    assert detect_regressions(records, window=5, tolerance=0.10) == []


def test_detect_regressions_gates_only_the_latest_value():
    # An excursion that recovered is history, not a standing alarm.
    values = [100.0, 100.0, 180.0, 100.0, 100.0, 100.0, 100.0]
    records = [_sweep(s, v) for s, v in enumerate(values)]
    assert detect_regressions(records, window=3, tolerance=0.10) == []


# -- determinism violations --------------------------------------------------


def test_detect_violations_flags_injected_flake():
    # Same (seed, config, code) fingerprint, two different outcomes.
    records = [_sweep(0, 100.0), _sweep(1, 100.0), _sweep(0, 250.0)]
    violations = detect_violations(records)
    assert len(violations) == 1
    violation = violations[0]
    assert violation.identities == 2
    assert violation.records == 2
    assert violation.fingerprint == _sweep(0, 0).fingerprint
    assert "determinism" in str(violation) or "reproduce" in str(violation)


def test_detect_violations_quiet_on_identical_reruns():
    assert detect_violations([_sweep(0, 1.0), _sweep(0, 1.0)]) == []


def test_different_code_versions_are_not_violations():
    # A changed code version is a *new* fingerprint, not a flake.
    assert detect_violations([_bench(100.0, "c1"), _bench(300.0, "c2")]) == []


# -- the combined check ------------------------------------------------------


def test_history_check_combines_both_detectors():
    records = (
        [_sweep(s, 100.0) for s in range(5)]
        + [_sweep(5, 150.0)]  # injected regression
        + [_sweep(2, 400.0)]  # injected determinism violation (seed 2 again)
    )
    check = history_check(records, window=5, tolerance=0.10)
    assert not check.ok
    assert len(check.regressions) >= 1
    assert len(check.violations) == 1
    assert "FAILED" in check.summary()

    clean = history_check([_sweep(s, 100.0) for s in range(6)])
    assert clean.ok
    assert "OK" in clean.summary()


def test_history_check_experiment_filter():
    records = [_sweep(s, 100.0, experiment="sweep:a") for s in range(5)] + [
        _sweep(5, 150.0, experiment="sweep:a")
    ]
    assert not history_check(records, experiment="sweep:a").ok
    assert history_check(records, experiment="sweep:other").ok
