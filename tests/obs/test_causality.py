"""Tests for the happens-before DAG, critical-path attribution and the
adversary table (satellite S4)."""

import json

import pytest

from repro import AdsConsensus, Simulation
from repro.obs import build_causal_report, causal_report_for
from repro.obs.causality import LAYERS, classify_event
from repro.runtime.events import OpEvent, OpSpan

# -- hand-built interleaving -------------------------------------------------
#
# Two processes ping-pong through two registers:
#
#   step 1  p0 write r        (decide chain root)
#   step 2  p1 read  r        <- sees p0's write
#   step 3  p1 write s
#   step 4  p0 read  s        <- sees p1's write
#
# The only maximal chain is 1 -> 2 -> 3 -> 4, so p0's critical path has
# length 4 and p1's (ending at its last event, step 3) has length 3.

PING_PONG = [
    OpEvent(step=1, pid=0, kind="write", target="r", value=5),
    OpEvent(step=2, pid=1, kind="read", target="r", value=5),
    OpEvent(step=3, pid=1, kind="write", target="s", value=6),
    OpEvent(step=4, pid=0, kind="read", target="s", value=6),
]


def test_hand_built_critical_path_is_the_full_chain():
    report = build_causal_report(PING_PONG)
    assert report.total_events == 4
    assert report.decided == [0, 1]
    assert report.critical_pid == 0
    assert report.critical_length == 4
    assert report.paths[1].length == 3
    p0 = report.paths[0]
    assert p0.per_pid == {0: 2, 1: 2}
    assert p0.first_step == 1 and p0.last_step == 4
    # no spans recorded: everything is a bare register op
    assert p0.per_layer["register.op"] == 4


def test_hand_built_adversary_table_counts_every_step():
    report = build_causal_report(PING_PONG)
    assert report.adversary == [
        {"pid": 0, "granted": 2, "on_critical_path": 2, "share": 1.0},
        {"pid": 1, "granted": 2, "on_critical_path": 2, "share": 1.0},
    ]


def test_independent_processes_have_independent_paths():
    # p1 reads a register nobody wrote: no cross edge, so each path is
    # just that process's program order.
    events = [
        OpEvent(step=1, pid=0, kind="write", target="r", value=1),
        OpEvent(step=2, pid=1, kind="read", target="other", value=None),
        OpEvent(step=3, pid=0, kind="write", target="r", value=2),
    ]
    report = build_causal_report(events)
    assert report.paths[0].length == 2
    assert report.paths[1].length == 1
    assert report.critical_pid == 0


def test_decisions_restrict_the_decide_nodes():
    report = build_causal_report(PING_PONG, decisions={1: "v"})
    assert report.decided == [1]
    assert report.critical_pid == 1
    assert report.critical_length == 3


def test_steps_by_pid_overrides_the_granted_column():
    report = build_causal_report(PING_PONG, steps_by_pid={0: 10, 1: 2})
    rows = {row["pid"]: row for row in report.adversary}
    assert rows[0]["granted"] == 10
    assert rows[0]["share"] == pytest.approx(0.2)


# -- layer classification ----------------------------------------------------


def test_classify_event_layers():
    flip = OpEvent(step=1, pid=0, kind="atomic_flip", target="coin.c[0]")
    assert classify_event(flip, None) == "coin.walk"
    coin_read = OpEvent(step=2, pid=0, kind="read", target="coin.c[1]")
    assert classify_event(coin_read, None) == "coin.walk"
    read = OpEvent(step=3, pid=0, kind="read", target="r")
    assert classify_event(read, None) == "register.op"
    scan = OpSpan(1, 0, "scan", "M", invoke_step=3, response_step=9)
    assert classify_event(read, scan) == "scan.collect"
    write_span = OpSpan(2, 0, "write", "M", invoke_step=3, response_step=9)
    assert classify_event(read, write_span) == "round.update"


def test_third_read_of_a_cell_inside_one_scan_is_a_retry():
    span = OpSpan(7, 0, "scan", "M", invoke_step=1, response_step=4)
    events = [
        OpEvent(step=1, pid=0, kind="read", target="M[0]"),
        OpEvent(step=2, pid=0, kind="read", target="M[0]"),
        OpEvent(step=3, pid=0, kind="read", target="M[0]"),
        OpEvent(step=4, pid=0, kind="read", target="M[0]"),
    ]
    report = build_causal_report(events, [span])
    layers = report.paths[0].per_layer
    assert layers["scan.collect"] == 2  # the clean double collect
    assert layers["scan.retry"] == 2  # third and fourth reads
    assert report.per_layer()["scan.retry"] == 2


def test_empty_timeline_raises():
    sim = Simulation(2, seed=0)
    with pytest.raises(ValueError, match="record_events=True"):
        causal_report_for(sim)


# -- real runs ----------------------------------------------------------------


def _report_for_seed(seed, n=3):
    run = AdsConsensus().run(
        [i % 2 for i in range(n)],
        seed=seed,
        record_events=True,
        record_spans=True,
        keep_simulation=True,
    )
    return causal_report_for(run.simulation, run.outcome)


def test_critical_path_bounds_hold_across_seeds():
    # Property from the issue: the critical path can never exceed the
    # total number of recorded steps, and (since program order alone is a
    # chain) can never undercut the busiest decided process.
    for seed in range(6):
        report = _report_for_seed(seed)
        assert report.critical_length <= report.total_events
        decided = set(report.decided)
        busiest = max(
            row["granted"]
            for row in report.adversary
            if row["pid"] in decided
        )
        assert report.critical_length >= busiest
        for row in report.adversary:
            assert 0.0 <= row["share"] <= 1.0


def test_report_layers_cover_consensus_and_coin_work():
    per_layer = _report_for_seed(1).per_layer()
    assert set(per_layer) == set(LAYERS)
    assert per_layer["round.update"] > 0
    assert per_layer["scan.collect"] > 0


def test_report_json_is_deterministic_per_seed():
    assert _report_for_seed(3).to_json() == _report_for_seed(3).to_json()
    payload = json.loads(_report_for_seed(3).to_json())
    assert payload["critical_length"] == payload["per_layer"]["round.update"] + sum(
        v for k, v in payload["per_layer"].items() if k != "round.update"
    )


def test_serial_and_parallel_workers_agree_on_causal_json():
    from repro.parallel import run_tasks

    def analyze(seed):
        return _report_for_seed(seed).to_json()

    seeds = list(range(4))
    serial = run_tasks(analyze, seeds, workers=1)
    parallel = run_tasks(analyze, seeds, workers=4)
    assert serial == parallel
