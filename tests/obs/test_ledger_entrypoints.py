"""Ledger wiring of the deterministic entry points.

The acceptance properties of the run ledger, proven on the real entry
points rather than synthetic records:

- recording the same (seed, config, code-version) triple twice yields one
  record and a cache hit (no recomputation) on the second pass;
- a serial run and a ``workers=4`` run of the same workload produce
  **byte-identical** ledger files (sweeps, fuzz grids, campaigns);
- ``--no-cache`` (``use_cache=False``) forces recomputation while still
  deduplicating identical records.
"""

import pytest

from repro.analysis.experiment import Sweep, repeat_runs
from repro.consensus import AdsConsensus
from repro.faults.campaign import run_mutation_campaign
from repro.obs.ledger import RunLedger
from repro.verify.fuzz import fuzz_consensus


@pytest.fixture(autouse=True)
def _pinned_code_version(monkeypatch):
    monkeypatch.setenv("REPRO_CODE_VERSION", "test-code-v1")


def _square(seed: int) -> float:
    return float(seed * seed)


def test_repeat_runs_records_then_serves_from_cache(tmp_path):
    path = tmp_path / "runs.jsonl"
    ledger = RunLedger(path)
    first = repeat_runs(
        _square, range(4), ledger=ledger, experiment="exp", config={"n": 2}
    )
    assert first == [0.0, 1.0, 4.0, 9.0]
    assert len(ledger) == 4

    calls = []

    def counting(seed: int) -> float:
        calls.append(seed)
        return _square(seed)

    again = repeat_runs(
        counting,
        range(4),
        ledger=RunLedger(path),
        experiment="exp",
        config={"n": 2},
    )
    assert again == first
    assert calls == []  # every seed was a cache hit

    # A new seed is the only fresh work; the known ones stay cached.
    extended = repeat_runs(
        counting,
        range(5),
        ledger=RunLedger(path),
        experiment="exp",
        config={"n": 2},
    )
    assert extended == [0.0, 1.0, 4.0, 9.0, 16.0]
    assert calls == [4]


def test_repeat_runs_no_cache_recomputes_without_duplicating(tmp_path):
    path = tmp_path / "runs.jsonl"
    repeat_runs(_square, range(3), ledger=RunLedger(path), experiment="exp")

    calls = []

    def counting(seed: int) -> float:
        calls.append(seed)
        return _square(seed)

    repeat_runs(
        counting,
        range(3),
        ledger=RunLedger(path, use_cache=False),
        experiment="exp",
    )
    assert calls == [0, 1, 2]  # recomputed
    assert len(RunLedger(path)) == 3  # identical results deduplicated


def test_repeat_runs_distinct_configs_do_not_collide(tmp_path):
    path = tmp_path / "runs.jsonl"
    repeat_runs(_square, [1], ledger=RunLedger(path), experiment="a")
    served = repeat_runs(
        lambda seed: -1.0, [1], ledger=RunLedger(path), experiment="b"
    )
    assert served == [-1.0]  # experiment "a"'s record was not served
    assert len(RunLedger(path)) == 2


def _consensus_metric(n: int, seed: int) -> float:
    inputs = [(seed + i) % 2 for i in range(n)]
    run = AdsConsensus().run(inputs, seed=seed, max_steps=1_000_000)
    return float(run.total_steps)


def _sweep(ledger):
    return Sweep(
        "n",
        [2, 3],
        _consensus_metric,
        repetitions=2,
        ledger=ledger,
        experiment="sweep:ads:steps",
        config={"protocol": "ads", "metric": "steps"},
    )


def test_sweep_ledger_byte_identical_serial_vs_workers(tmp_path):
    serial_path = tmp_path / "serial.jsonl"
    parallel_path = tmp_path / "parallel.jsonl"
    serial = _sweep(RunLedger(serial_path)).execute(workers=1)
    parallel = _sweep(RunLedger(parallel_path)).execute(workers=4)
    assert [p.samples for p in serial] == [p.samples for p in parallel]
    assert serial_path.read_bytes() == parallel_path.read_bytes()
    assert len(serial_path.read_bytes()) > 0


def test_sweep_second_pass_is_all_cache_hits(tmp_path):
    path = tmp_path / "sweep.jsonl"
    first = _sweep(RunLedger(path)).execute(workers=1)
    size = path.stat().st_size

    def exploding(n: int, seed: int) -> float:
        raise AssertionError("cache miss — sweep cell was recomputed")

    sweep = Sweep(
        "n",
        [2, 3],
        exploding,
        repetitions=2,
        ledger=RunLedger(path),
        experiment="sweep:ads:steps",
        config={"protocol": "ads", "metric": "steps"},
    )
    again = sweep.execute(workers=1)
    assert [p.samples for p in again] == [p.samples for p in first]
    assert path.stat().st_size == size  # nothing new was appended


def _fuzz(ledger, workers):
    return fuzz_consensus(
        lambda: AdsConsensus(),
        n_values=(2,),
        runs_per_cell=2,
        crash_probability=1.0,
        recovery_probability=1.0,
        master_seed=0,
        workers=workers,
        ledger=ledger,
        experiment="fuzz:recovery",
    )


def test_fuzz_ledger_byte_identical_serial_vs_workers(tmp_path):
    serial_path = tmp_path / "serial.jsonl"
    parallel_path = tmp_path / "parallel.jsonl"
    serial = _fuzz(RunLedger(serial_path), workers=1)
    parallel = _fuzz(RunLedger(parallel_path), workers=4)
    assert serial.runs == parallel.runs > 0
    assert serial_path.read_bytes() == parallel_path.read_bytes()
    assert len(serial_path.read_bytes()) > 0


def test_fuzz_second_pass_served_from_cache(tmp_path):
    path = tmp_path / "fuzz.jsonl"
    first = _fuzz(RunLedger(path), workers=1)
    size = path.stat().st_size
    again = _fuzz(RunLedger(path), workers=1)
    assert again.runs == first.runs
    assert again.recovery_runs == first.recovery_runs
    assert [str(f) for f in again.failures] == [str(f) for f in first.failures]
    assert path.stat().st_size == size


def test_campaign_ledger_byte_identical_serial_vs_workers(tmp_path):
    serial_path = tmp_path / "serial.jsonl"
    parallel_path = tmp_path / "parallel.jsonl"
    serial = run_mutation_campaign(
        consensus_max_steps=50_000,
        workers=1,
        ledger=RunLedger(serial_path),
    )
    parallel = run_mutation_campaign(
        consensus_max_steps=50_000,
        workers=4,
        ledger=RunLedger(parallel_path),
    )
    assert serial.to_json() == parallel.to_json()
    assert serial_path.read_bytes() == parallel_path.read_bytes()

    # Second pass: everything cached, report identical, file untouched.
    size = serial_path.stat().st_size
    again = run_mutation_campaign(
        consensus_max_steps=50_000,
        workers=1,
        ledger=RunLedger(serial_path),
    )
    assert again.to_json() == serial.to_json()
    assert serial_path.stat().st_size == size
