"""The process-pool execution engine behind every ``--workers`` flag.

Every replicated workload in this repository — benchmark sweeps, the fuzz
grid, the mutation campaign — is an embarrassingly parallel loop over
independent *(params, seed)* simulation tasks: each task builds its own
:class:`~repro.runtime.simulation.Simulation` with its own derived rng
streams and never touches shared state.  :func:`run_tasks` fans such tasks
out across worker processes and reassembles the results **in submission
order**, so the merged output is bit-identical to the serial loop for any
worker count:

- per-task randomness is derived from the task itself (seed in, streams
  out), never from execution order or worker identity;
- results are keyed by task index during collection and reassembled into
  submission order before returning (order-insensitive merge);
- ``workers <= 1`` short-circuits to a plain in-process loop — the exact
  code path the serial callers always used.

Worker failures never hang the pool: an exception inside a task comes back
as a structured :class:`TaskError` (worker pid, task params, seed, full
traceback) and :func:`run_tasks` raises :class:`ParallelExecutionError`
carrying every failure, after all surviving tasks finished.  A worker
*process* dying outright (segfault, ``os._exit``) is surfaced the same way
via the executor's broken-pool detection.

The engine uses the ``fork`` start method so the task function — which may
be a closure or lambda (protocol factories, scheduler tables) — is
inherited by the workers instead of pickled.  Task inputs and results
still cross the process boundary and must be picklable.  On platforms
without ``fork`` the engine degrades to the serial path rather than
failing (documented in ``docs/performance.md``).
"""

from __future__ import annotations

import multiprocessing
import os
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

__all__ = [
    "ParallelExecutionError",
    "TaskError",
    "available_workers",
    "resolve_workers",
    "run_tasks",
]

#: Environment variable consulted when ``workers=None`` (the library default
#: everywhere) — lets a shell opt whole programs into parallelism without
#: threading a flag through every call-site.
WORKERS_ENV = "REPRO_WORKERS"


@dataclass(frozen=True)
class TaskError:
    """One failed task, with everything needed to diagnose and replay it."""

    index: int
    params: str
    seed: int | None
    worker_pid: int
    exc_type: str
    message: str
    traceback: str = ""

    def __str__(self) -> str:
        seed = f" seed={self.seed}" if self.seed is not None else ""
        return (
            f"task #{self.index} ({self.params}){seed} "
            f"[worker pid {self.worker_pid}]: {self.exc_type}: {self.message}"
        )


class ParallelExecutionError(RuntimeError):
    """Raised when one or more tasks failed; carries every :class:`TaskError`."""

    def __init__(self, errors: Sequence[TaskError]):
        self.errors = sorted(errors, key=lambda e: e.index)
        lines = [f"{len(self.errors)} of the submitted tasks failed:"]
        for error in self.errors[:10]:
            lines.append(f"  - {error}")
        if len(self.errors) > 10:
            lines.append(f"  ... and {len(self.errors) - 10} more")
        first = self.errors[0] if self.errors else None
        if first is not None and first.traceback:
            lines.append("first failure's worker traceback:")
            lines.append(first.traceback.rstrip())
        super().__init__("\n".join(lines))


def available_workers() -> int:
    """Number of CPUs this process may use (affinity-aware when possible)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def resolve_workers(workers: int | None) -> int:
    """Normalise a ``workers`` argument to a concrete positive count.

    ``None`` reads :data:`WORKERS_ENV` (defaulting to 1, the serial path);
    ``0`` means "all available CPUs"; any other value is used as given.
    """
    if workers is None:
        raw = os.environ.get(WORKERS_ENV, "").strip()
        workers = int(raw) if raw else 1
    if workers == 0:
        return available_workers()
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    return workers


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def _describe_task(task: Any) -> tuple[str, int | None]:
    """Best-effort (params, seed) extraction for error reports."""
    seed = getattr(task, "seed", None)
    if seed is None and isinstance(task, tuple):
        for item in reversed(task):
            if isinstance(item, int) and not isinstance(item, bool):
                seed = item
                break
    text = repr(task)
    if len(text) > 200:
        text = text[:197] + "..."
    return text, seed if isinstance(seed, int) else None


# The task function is installed into this module-level slot *before* the
# pool forks, so workers inherit it through the forked address space and it
# never needs to be picklable (closures and lambdas included).
_WORKER_FN: Callable[[Any], Any] | None = None


def _install_worker_fn(fn: Callable[[Any], Any]) -> None:
    global _WORKER_FN
    _WORKER_FN = fn


def _run_chunk(chunk: list[tuple[int, Any]]) -> list[tuple[str, int, Any]]:
    """Worker-side entry point: run a chunk, never raise.

    Returns ``("ok", index, result)`` or ``("err", index, payload)`` triples
    so one bad task cannot take down its chunk-mates or the pool.
    """
    out: list[tuple[str, int, Any]] = []
    for index, task in chunk:
        try:
            assert _WORKER_FN is not None, "worker forked before fn install"
            out.append(("ok", index, _WORKER_FN(task)))
        except BaseException as exc:  # noqa: BLE001 - converted to data
            params, seed = _describe_task(task)
            out.append(
                (
                    "err",
                    index,
                    TaskError(
                        index=index,
                        params=params,
                        seed=seed,
                        worker_pid=os.getpid(),
                        exc_type=type(exc).__name__,
                        message=str(exc),
                        traceback=traceback.format_exc(),
                    ),
                )
            )
    return out


def _run_serial(
    fn: Callable[[Any], Any],
    tasks: Sequence[Any],
    progress: Callable[[int, int], None] | None,
) -> list[Any]:
    results: list[Any] = []
    errors: list[TaskError] = []
    for index, task in enumerate(tasks):
        try:
            results.append(fn(task))
        except Exception as exc:
            params, seed = _describe_task(task)
            errors.append(
                TaskError(
                    index=index,
                    params=params,
                    seed=seed,
                    worker_pid=os.getpid(),
                    exc_type=type(exc).__name__,
                    message=str(exc),
                    traceback=traceback.format_exc(),
                )
            )
            results.append(None)
        if progress is not None:
            progress(index + 1, len(tasks))
    if errors:
        raise ParallelExecutionError(errors)
    return results


def _record_engine_metrics(
    metrics: Any, tasks: int, chunks: int, workers: int, failures: int
) -> None:
    """Record the engine's own dispatch shape into a metrics registry.

    Counts submissions, not wall-clock — they are deterministic for a
    fixed task list, so they are gate-safe (``workers`` lives in a gauge
    whose key the bench gate's timing filter already skips).
    """
    if metrics is None or not getattr(metrics, "enabled", False):
        return
    metrics.counter("parallel.tasks").inc(tasks)
    metrics.counter("parallel.chunks").inc(chunks)
    metrics.counter("parallel.task_failures").inc(failures)
    metrics.gauge("parallel.workers").set_max(workers)


def run_tasks(
    fn: Callable[[Any], Any],
    tasks: Iterable[Any],
    workers: int | None = None,
    chunksize: int | None = None,
    progress: Callable[[int, int], None] | None = None,
    metrics: Any = None,
) -> list[Any]:
    """Run ``fn`` over every task, possibly across processes; keep order.

    Args:
        fn: the task function.  May be any callable — closures included —
            because workers inherit it via ``fork`` rather than pickling.
        tasks: the task inputs.  Each must be picklable, as must ``fn``'s
            return values.
        workers: process count; see :func:`resolve_workers`.  ``<= 1`` (the
            default) runs the plain serial loop in this process.
        chunksize: tasks handed to a worker per dispatch; defaults to
            ``ceil(len(tasks) / (4 * workers))`` to amortise IPC while
            keeping the pool load-balanced.
        progress: ``progress(done, total)`` invoked in the *parent* as
            chunks complete (serially: after every task).
        metrics: optional :class:`~repro.obs.metrics.MetricsRegistry`; the
            engine records its dispatch shape into it (``parallel.tasks``,
            ``parallel.chunks``, ``parallel.task_failures`` counters and a
            ``parallel.workers`` gauge).

    Returns:
        ``[fn(t) for t in tasks]`` — same values, same order, regardless of
        worker count or completion order.

    Raises:
        ParallelExecutionError: if any task raised (or its worker died);
            carries one :class:`TaskError` per failure.
    """
    tasks = list(tasks)
    count = resolve_workers(workers)
    if count <= 1 or len(tasks) <= 1 or not _fork_available():
        try:
            results = _run_serial(fn, tasks, progress)
        except ParallelExecutionError as exc:
            _record_engine_metrics(metrics, len(tasks), 1, 1, len(exc.errors))
            raise
        _record_engine_metrics(metrics, len(tasks), 1, 1, 0)
        return results
    count = min(count, len(tasks))
    if chunksize is None:
        chunksize = max(1, -(-len(tasks) // (4 * count)))
    indexed = list(enumerate(tasks))
    chunks = [
        indexed[start : start + chunksize]
        for start in range(0, len(tasks), chunksize)
    ]
    results: dict[int, Any] = {}
    errors: list[TaskError] = []
    done = 0
    _install_worker_fn(fn)
    context = multiprocessing.get_context("fork")
    try:
        with ProcessPoolExecutor(max_workers=count, mp_context=context) as pool:
            pending = {pool.submit(_run_chunk, chunk): chunk for chunk in chunks}
            while pending:
                finished, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in finished:
                    chunk = pending.pop(future)
                    exc = future.exception()
                    if exc is not None:
                        # The worker process died without reporting (e.g.
                        # os._exit or a segfault): attribute the loss to
                        # every task of the chunk it was holding.
                        for index, task in chunk:
                            params, seed = _describe_task(task)
                            errors.append(
                                TaskError(
                                    index=index,
                                    params=params,
                                    seed=seed,
                                    worker_pid=-1,
                                    exc_type=type(exc).__name__,
                                    message=str(exc) or "worker process died",
                                )
                            )
                    else:
                        for status, index, payload in future.result():
                            if status == "ok":
                                results[index] = payload
                            else:
                                errors.append(payload)
                    done += len(chunk)
                    if progress is not None:
                        progress(done, len(tasks))
    finally:
        _install_worker_fn(None)  # type: ignore[arg-type]
    _record_engine_metrics(metrics, len(tasks), len(chunks), count, len(errors))
    if errors:
        raise ParallelExecutionError(errors)
    return [results[index] for index in range(len(tasks))]
