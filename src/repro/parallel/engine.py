"""The process-pool execution engine behind every ``--workers`` flag.

Every replicated workload in this repository — benchmark sweeps, the fuzz
grid, the mutation campaign — is an embarrassingly parallel loop over
independent *(params, seed)* simulation tasks: each task builds its own
:class:`~repro.runtime.simulation.Simulation` with its own derived rng
streams and never touches shared state.  :func:`run_tasks` fans such tasks
out across worker processes and reassembles the results **in submission
order**, so the merged output is bit-identical to the serial loop for any
worker count:

- per-task randomness is derived from the task itself (seed in, streams
  out), never from execution order or worker identity;
- results are keyed by task index during collection and reassembled into
  submission order before returning (order-insensitive merge);
- ``workers <= 1`` short-circuits to a plain in-process loop — the exact
  code path the serial callers always used.

Worker failures never hang the pool: an exception inside a task comes back
as a structured :class:`TaskError` (worker pid, task params, seed, full
traceback) and :func:`run_tasks` raises :class:`ParallelExecutionError`
carrying every failure, after all surviving tasks finished.  A worker
*process* dying outright (segfault, ``os._exit``) is surfaced the same way
via the executor's broken-pool detection.

On top of the plain path sits the resilient path
(:func:`run_tasks_partial`), driven by a
:class:`~repro.resilience.policy.FailurePolicy`: failed or killed tasks
can be retried with seeded exponential backoff, tasks can carry per-task
wall-clock deadlines (an overdue worker is killed, mirroring
``repro.faults.watchdog`` semantics at the pool level), an
:class:`~repro.resilience.budget.AdmissionController` can shed work under
budget pressure, and the caller receives a structured
:class:`~repro.resilience.policy.PartialResult` instead of an exception.
Because every task re-runs from its own seed, a retried campaign's merged
output stays bit-identical to an undisturbed run.  The resilient parallel
path supervises one forked process per task (no chunking) so a single
task can be killed or retried without collateral damage; the plain path
keeps the chunked pool for throughput.

The engine uses the ``fork`` start method so the task function — which may
be a closure or lambda (protocol factories, scheduler tables) — is
inherited by the workers instead of pickled.  Task inputs and results
still cross the process boundary and must be picklable.  On platforms
without ``fork`` the engine degrades to the serial path rather than
failing (documented in ``docs/performance.md``).
"""

from __future__ import annotations

import heapq
import multiprocessing
import os
import time
import traceback
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from multiprocessing import connection
from typing import TYPE_CHECKING, Any, Callable, Iterable, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from repro.resilience.budget import AdmissionController
    from repro.resilience.policy import FailurePolicy, PartialResult

__all__ = [
    "ParallelExecutionError",
    "TaskError",
    "available_workers",
    "resolve_workers",
    "run_tasks",
    "run_tasks_partial",
]

#: Environment variable consulted when ``workers=None`` (the library default
#: everywhere) — lets a shell opt whole programs into parallelism without
#: threading a flag through every call-site.
WORKERS_ENV = "REPRO_WORKERS"


@dataclass(frozen=True)
class TaskError:
    """One failed task, with everything needed to diagnose and replay it."""

    index: int
    params: str
    seed: int | None
    worker_pid: int
    exc_type: str
    message: str
    traceback: str = ""

    def __str__(self) -> str:
        seed = f" seed={self.seed}" if self.seed is not None else ""
        return (
            f"task #{self.index} ({self.params}){seed} "
            f"[worker pid {self.worker_pid}]: {self.exc_type}: {self.message}"
        )


class ParallelExecutionError(RuntimeError):
    """Raised when one or more tasks failed; carries every :class:`TaskError`."""

    def __init__(self, errors: Sequence[TaskError]):
        self.errors = sorted(errors, key=lambda e: e.index)
        lines = [f"{len(self.errors)} of the submitted tasks failed:"]
        for error in self.errors[:10]:
            lines.append(f"  - {error}")
        if len(self.errors) > 10:
            lines.append(f"  ... and {len(self.errors) - 10} more")
        first = self.errors[0] if self.errors else None
        if first is not None and first.traceback:
            lines.append("first failure's worker traceback:")
            lines.append(first.traceback.rstrip())
        super().__init__("\n".join(lines))


def available_workers() -> int:
    """Number of CPUs this process may use (affinity-aware when possible)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def resolve_workers(workers: int | None) -> int:
    """Normalise a ``workers`` argument to a concrete positive count.

    ``None`` reads :data:`WORKERS_ENV` (defaulting to 1, the serial path);
    ``0`` means "all available CPUs"; any other value is used as given.
    Rejects non-integer and negative inputs with an actionable message
    naming the source (argument vs environment variable).
    """
    if workers is None:
        raw = os.environ.get(WORKERS_ENV, "").strip()
        if not raw:
            workers = 1
        else:
            try:
                workers = int(raw)
            except ValueError:
                raise ValueError(
                    f"{WORKERS_ENV}={raw!r} is not an integer; set it to 0 "
                    "(use all CPUs) or a positive worker count"
                ) from None
            if workers < 0:
                raise ValueError(
                    f"{WORKERS_ENV}={raw!r} is negative; set it to 0 "
                    "(use all CPUs) or a positive worker count"
                )
    if isinstance(workers, bool) or not isinstance(workers, int):
        raise TypeError(
            f"workers must be an integer (0 = all CPUs), got {workers!r}"
        )
    if workers < 0:
        raise ValueError(f"workers must be >= 0 (0 = all CPUs), got {workers}")
    if workers == 0:
        return available_workers()
    return workers


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def _describe_task(task: Any) -> tuple[str, int | None]:
    """Best-effort (params, seed) extraction for error reports."""
    seed = getattr(task, "seed", None)
    if seed is None and isinstance(task, tuple):
        for item in reversed(task):
            if isinstance(item, int) and not isinstance(item, bool):
                seed = item
                break
    text = repr(task)
    if len(text) > 200:
        text = text[:197] + "..."
    return text, seed if isinstance(seed, int) else None


def _task_error(index: int, task: Any, exc: BaseException) -> TaskError:
    params, seed = _describe_task(task)
    return TaskError(
        index=index,
        params=params,
        seed=seed,
        worker_pid=os.getpid(),
        exc_type=type(exc).__name__,
        message=str(exc),
        traceback=traceback.format_exc(),
    )


# The task function is installed into this module-level slot *before* the
# pool forks, so workers inherit it through the forked address space and it
# never needs to be picklable (closures and lambdas included).
_WORKER_FN: Callable[[Any], Any] | None = None


def _install_worker_fn(fn: Callable[[Any], Any]) -> None:
    global _WORKER_FN
    _WORKER_FN = fn


def _run_chunk(chunk: list[tuple[int, Any]]) -> list[tuple[str, int, Any]]:
    """Worker-side entry point: run a chunk, never raise.

    Returns ``("ok", index, result)`` or ``("err", index, payload)`` triples
    so one bad task cannot take down its chunk-mates or the pool.
    """
    out: list[tuple[str, int, Any]] = []
    for index, task in chunk:
        try:
            assert _WORKER_FN is not None, "worker forked before fn install"
            out.append(("ok", index, _WORKER_FN(task)))
        except BaseException as exc:  # noqa: BLE001 - converted to data
            out.append(("err", index, _task_error(index, task, exc)))
    return out


def _record_engine_metrics(
    metrics: Any, tasks: int, chunks: int, workers: int, failures: int
) -> None:
    """Record the engine's own dispatch shape into a metrics registry.

    Counts submissions, not wall-clock — they are deterministic for a
    fixed task list, so they are gate-safe (``workers`` lives in a gauge
    whose key the bench gate's timing filter already skips).
    """
    if metrics is None or not getattr(metrics, "enabled", False):
        return
    metrics.counter("parallel.tasks").inc(tasks)
    metrics.counter("parallel.chunks").inc(chunks)
    metrics.counter("parallel.task_failures").inc(failures)
    metrics.gauge("parallel.workers").set_max(workers)


def _record_resilience_metrics(metrics: Any, partial: "PartialResult") -> None:
    """Record policy decisions as counters — only when something happened,
    so undisturbed runs keep byte-identical metric snapshots."""
    if metrics is None or not getattr(metrics, "enabled", False):
        return
    for key, value in (
        ("resilience.retries", partial.retries),
        ("resilience.timeouts", partial.timeouts),
        ("resilience.shed", partial.shed),
    ):
        if value:
            metrics.counter(key).inc(value)


def _run_serial_partial(
    fn: Callable[[Any], Any],
    tasks: Sequence[Any],
    policy: "FailurePolicy",
    progress: Callable[[int, int], None] | None,
    on_result: Callable[[int, Any], None] | None,
    admission: "AdmissionController | None",
) -> "PartialResult":
    """The in-process path: retries inline, deadlines not enforced.

    Wall-clock timeouts need a killable worker process, so ``task_timeout``
    is a no-op here (callers wanting enforcement use ``workers >= 2``).
    """
    from repro.resilience.policy import PartialResult

    partial = PartialResult(results=[None] * len(tasks))
    done = 0
    for index, task in enumerate(tasks):
        if admission is not None and not admission.admit(task).admitted:
            partial.shed += 1
            partial.shed_indices.append(index)
            done += 1
            if progress is not None:
                progress(done, len(tasks))
            continue
        attempt = 1
        while True:
            try:
                value = fn(task)
            except Exception as exc:
                error = _task_error(index, task, exc)
                if policy.should_retry(attempt, timed_out=False):
                    partial.retries += 1
                    delay = policy.backoff.delay(index, attempt)
                    if delay > 0:
                        time.sleep(delay)
                    attempt += 1
                    continue
                partial.errors.append(error)
                break
            partial.results[index] = value
            if on_result is not None:
                on_result(index, value)
            if admission is not None:
                admission.charge(value)
            break
        done += 1
        if progress is not None:
            progress(done, len(tasks))
    return partial


def _run_chunked(
    fn: Callable[[Any], Any],
    tasks: Sequence[Any],
    count: int,
    chunksize: int | None,
    progress: Callable[[int, int], None] | None,
    on_result: Callable[[int, Any], None] | None,
) -> tuple["PartialResult", int]:
    """The plain chunked pool: maximum throughput, all-or-nothing chunks."""
    from repro.resilience.policy import PartialResult

    if chunksize is None:
        chunksize = max(1, -(-len(tasks) // (4 * count)))
    indexed = list(enumerate(tasks))
    chunks = [
        indexed[start : start + chunksize]
        for start in range(0, len(tasks), chunksize)
    ]
    partial = PartialResult(results=[None] * len(tasks))
    done = 0
    _install_worker_fn(fn)
    context = multiprocessing.get_context("fork")
    try:
        with ProcessPoolExecutor(max_workers=count, mp_context=context) as pool:
            pending = {pool.submit(_run_chunk, chunk): chunk for chunk in chunks}
            while pending:
                finished, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in finished:
                    chunk = pending.pop(future)
                    exc = future.exception()
                    if exc is not None:
                        # The worker process died without reporting (e.g.
                        # os._exit or a segfault): attribute the loss to
                        # every task of the chunk it was holding.
                        for index, task in chunk:
                            params, seed = _describe_task(task)
                            partial.errors.append(
                                TaskError(
                                    index=index,
                                    params=params,
                                    seed=seed,
                                    worker_pid=-1,
                                    exc_type=type(exc).__name__,
                                    message=str(exc) or "worker process died",
                                )
                            )
                    else:
                        for status, index, payload in future.result():
                            if status == "ok":
                                partial.results[index] = payload
                                if on_result is not None:
                                    on_result(index, payload)
                            else:
                                partial.errors.append(payload)
                    done += len(chunk)
                    if progress is not None:
                        progress(done, len(tasks))
    finally:
        _install_worker_fn(None)  # type: ignore[arg-type]
    return partial, len(chunks)


def _supervised_entry(
    conn: connection.Connection, fn: Callable[[Any], Any], index: int, task: Any
) -> None:
    """Worker-side entry for the supervised pool: one task, one report.

    Sends ``("ok", result)`` or ``("err", TaskError)`` through the pipe;
    a worker that dies outright (SIGKILL, segfault) sends nothing and the
    parent reads EOF instead.
    """
    try:
        value = fn(task)
    except BaseException as exc:  # noqa: BLE001 - converted to data
        message: tuple[str, Any] = ("err", _task_error(index, task, exc))
    else:
        message = ("ok", value)
    try:
        conn.send(message)
    except BaseException as exc:  # noqa: BLE001 - e.g. unpicklable result
        try:
            conn.send(("err", _task_error(index, task, exc)))
        except BaseException:  # pragma: no cover - pipe gone
            pass
    finally:
        conn.close()


def _run_supervised(
    fn: Callable[[Any], Any],
    tasks: Sequence[Any],
    count: int,
    policy: "FailurePolicy",
    task_timeout: float | None,
    progress: Callable[[int, int], None] | None,
    on_result: Callable[[int, Any], None] | None,
    admission: "AdmissionController | None",
) -> tuple["PartialResult", int]:
    """The resilient pool: one forked process per task attempt.

    Per-attempt processes cost more than chunked dispatch but buy exact
    fault isolation — a killed, hung or crashed task loses only itself,
    and its retry re-runs from the original seed on a fresh process.
    Deadlines are enforced parent-side: an attempt still running past
    ``task_timeout`` seconds is SIGKILLed (the pool-level analogue of the
    simulation watchdog's livelock halt).
    """
    from repro.resilience.policy import PartialResult

    total = len(tasks)
    partial = PartialResult(results=[None] * total)
    ready: deque[tuple[int, int]] = deque()  # (index, attempt)
    delayed: list[tuple[float, int, int]] = []  # heap of (ready_at, ...)
    for index, task in enumerate(tasks):
        if admission is not None and not admission.admit(task).admitted:
            partial.shed += 1
            partial.shed_indices.append(index)
            continue
        ready.append((index, 1))
    done = partial.shed
    if progress is not None and done:
        progress(done, total)
    dispatches = 0
    # conn -> (process, index, attempt, deadline)
    running: dict[connection.Connection, tuple[Any, int, int, float | None]] = {}
    context = multiprocessing.get_context("fork")

    def settle_failure(
        index: int, attempt: int, error: TaskError, timed_out: bool
    ) -> None:
        nonlocal done
        if policy.should_retry(attempt, timed_out):
            partial.retries += 1
            ready_at = time.monotonic() + policy.backoff.delay(index, attempt)
            heapq.heappush(delayed, (ready_at, index, attempt + 1))
            return
        partial.errors.append(error)
        done += 1
        if progress is not None:
            progress(done, total)

    try:
        while ready or delayed or running:
            now = time.monotonic()
            while delayed and delayed[0][0] <= now:
                _, index, attempt = heapq.heappop(delayed)
                ready.append((index, attempt))
            while ready and len(running) < count:
                index, attempt = ready.popleft()
                parent_conn, child_conn = context.Pipe(duplex=False)
                proc = context.Process(
                    target=_supervised_entry,
                    args=(child_conn, fn, index, tasks[index]),
                    daemon=True,
                )
                proc.start()
                # Close the parent's copy of the write end immediately so a
                # dead worker yields EOF (and later forks don't inherit it).
                child_conn.close()
                deadline = (
                    time.monotonic() + task_timeout
                    if task_timeout is not None
                    else None
                )
                running[parent_conn] = (proc, index, attempt, deadline)
                dispatches += 1
            if not running:
                if delayed:
                    time.sleep(max(0.0, delayed[0][0] - time.monotonic()))
                continue
            wake_at: float | None = None
            for _, _, _, deadline in running.values():
                if deadline is not None:
                    wake_at = (
                        deadline if wake_at is None else min(wake_at, deadline)
                    )
            if delayed:
                next_ready = delayed[0][0]
                wake_at = (
                    next_ready if wake_at is None else min(wake_at, next_ready)
                )
            timeout = (
                None if wake_at is None else max(0.0, wake_at - time.monotonic())
            )
            for conn in connection.wait(list(running), timeout=timeout):
                proc, index, attempt, _deadline = running.pop(
                    conn  # type: ignore[arg-type]
                )
                try:
                    status, payload = conn.recv()
                except (EOFError, OSError):
                    status, payload = "died", None
                conn.close()
                proc.join()
                if status == "ok":
                    partial.results[index] = payload
                    if on_result is not None:
                        on_result(index, payload)
                    if admission is not None:
                        admission.charge(payload)
                    done += 1
                    if progress is not None:
                        progress(done, total)
                elif status == "err":
                    settle_failure(index, attempt, payload, timed_out=False)
                else:
                    params, seed = _describe_task(tasks[index])
                    error = TaskError(
                        index=index,
                        params=params,
                        seed=seed,
                        worker_pid=proc.pid or -1,
                        exc_type="WorkerDied",
                        message=(
                            "worker process exited without reporting "
                            f"(exitcode {proc.exitcode})"
                        ),
                    )
                    settle_failure(index, attempt, error, timed_out=False)
            # Deadlines are enforced after draining completions, so a task
            # that finished in time is never killed by a slow parent loop.
            now = time.monotonic()
            overdue = [
                conn
                for conn, (_, _, _, deadline) in running.items()
                if deadline is not None and deadline <= now
            ]
            for conn in overdue:
                proc, index, attempt, _deadline = running.pop(conn)
                proc.kill()
                proc.join()
                conn.close()
                partial.timeouts += 1
                params, seed = _describe_task(tasks[index])
                error = TaskError(
                    index=index,
                    params=params,
                    seed=seed,
                    worker_pid=proc.pid or -1,
                    exc_type="TaskTimeout",
                    message=(
                        f"task exceeded its {task_timeout:.3f}s deadline "
                        "and its worker was killed"
                    ),
                )
                settle_failure(index, attempt, error, timed_out=True)
    finally:
        for conn, (proc, _, _, _) in running.items():
            proc.kill()
            proc.join()
            conn.close()
    return partial, dispatches


def run_tasks_partial(
    fn: Callable[[Any], Any],
    tasks: Iterable[Any],
    workers: int | None = None,
    chunksize: int | None = None,
    progress: Callable[[int, int], None] | None = None,
    metrics: Any = None,
    policy: "FailurePolicy | None" = None,
    task_timeout: float | None = None,
    on_result: Callable[[int, Any], None] | None = None,
    admission: "AdmissionController | None" = None,
) -> "PartialResult":
    """Run ``fn`` over every task under a failure policy; never raise.

    The resilient counterpart of :func:`run_tasks`: instead of raising on
    the first-class failure modes (task exception, dead worker, blown
    deadline, shed budget) it returns a
    :class:`~repro.resilience.policy.PartialResult` whose ``results`` list
    is in submission order with ``None`` holes for terminal failures and
    shed tasks, plus the full error and retry/timeout/shed accounting.

    Additional knobs over :func:`run_tasks`:

    Args:
        policy: the :class:`~repro.resilience.policy.FailurePolicy`
            (default fail-fast semantics: no retries; errors are still
            *collected* here rather than raised).
        task_timeout: per-task wall-clock deadline in seconds.  Enforced
            only on the multi-process paths (a hung in-process task cannot
            be killed); the worker is SIGKILLed and the task counts as a
            timeout, retried when ``policy.retry_timeouts`` allows.
        on_result: ``on_result(index, result)`` invoked in the *parent*
            for every successful result as it arrives (any order) —
            the hook incremental checkpointing hangs from.
        admission: optional
            :class:`~repro.resilience.budget.AdmissionController`; tasks
            it refuses are shed (recorded, never run) and completed
            results are charged against its budget.

    Determinism: retried tasks re-run from their original seed, so a
    campaign that *completes* (no terminal errors, nothing shed) merges
    bit-identically to an undisturbed run at any worker count.
    """
    from repro.resilience.policy import FailurePolicy

    tasks = list(tasks)
    if policy is None:
        policy = FailurePolicy.fail_fast()
    count = resolve_workers(workers)
    needs_supervision = (
        policy.retries_enabled
        or task_timeout is not None
        or admission is not None
        or policy.mode != "fail_fast"
    )
    if count <= 1 or len(tasks) <= 1 or not _fork_available():
        partial = _run_serial_partial(
            fn, tasks, policy, progress, on_result, admission
        )
        chunks, count = 1, 1
    elif needs_supervision:
        partial, chunks = _run_supervised(
            fn,
            tasks,
            min(count, len(tasks)),
            policy,
            task_timeout,
            progress,
            on_result,
            admission,
        )
        count = min(count, len(tasks))
    else:
        count = min(count, len(tasks))
        partial, chunks = _run_chunked(
            fn, tasks, count, chunksize, progress, on_result
        )
    _record_engine_metrics(
        metrics, len(tasks), chunks, count, len(partial.errors)
    )
    _record_resilience_metrics(metrics, partial)
    return partial


def run_tasks(
    fn: Callable[[Any], Any],
    tasks: Iterable[Any],
    workers: int | None = None,
    chunksize: int | None = None,
    progress: Callable[[int, int], None] | None = None,
    metrics: Any = None,
    policy: "FailurePolicy | None" = None,
    task_timeout: float | None = None,
    on_result: Callable[[int, Any], None] | None = None,
) -> list[Any]:
    """Run ``fn`` over every task, possibly across processes; keep order.

    Args:
        fn: the task function.  May be any callable — closures included —
            because workers inherit it via ``fork`` rather than pickling.
        tasks: the task inputs.  Each must be picklable, as must ``fn``'s
            return values.
        workers: process count; see :func:`resolve_workers`.  ``<= 1`` (the
            default) runs the plain serial loop in this process.
        chunksize: tasks handed to a worker per dispatch; defaults to
            ``ceil(len(tasks) / (4 * workers))`` to amortise IPC while
            keeping the pool load-balanced.  Ignored on the resilient
            (per-task) path.
        progress: ``progress(done, total)`` invoked in the *parent* as
            chunks complete (serially: after every task).
        metrics: optional :class:`~repro.obs.metrics.MetricsRegistry`; the
            engine records its dispatch shape into it (``parallel.tasks``,
            ``parallel.chunks``, ``parallel.task_failures`` counters and a
            ``parallel.workers`` gauge), plus ``resilience.retries`` /
            ``resilience.timeouts`` counters when the policy fired.
        policy: optional :class:`~repro.resilience.policy.FailurePolicy`.
            ``fail_fast`` (default) and ``retry`` modes work here; a task
            that still fails after its retries raises as before.  The
            ``continue`` mode returns partial results and therefore only
            makes sense with :func:`run_tasks_partial` — passing it here
            is an error.
        task_timeout: per-task wall-clock deadline in seconds (multi-
            process paths only); see :func:`run_tasks_partial`.
        on_result: parent-side ``on_result(index, result)`` success hook;
            see :func:`run_tasks_partial`.

    Returns:
        ``[fn(t) for t in tasks]`` — same values, same order, regardless of
        worker count, completion order, or how many retries happened.

    Raises:
        ParallelExecutionError: if any task terminally failed (raised,
            worker died, or deadline blown — after any permitted retries);
            carries one :class:`TaskError` per failure.
    """
    if policy is not None and policy.mode == "continue":
        raise ValueError(
            "FailurePolicy mode 'continue' returns partial results; "
            "call run_tasks_partial() instead of run_tasks()"
        )
    partial = run_tasks_partial(
        fn,
        tasks,
        workers=workers,
        chunksize=chunksize,
        progress=progress,
        metrics=metrics,
        policy=policy,
        task_timeout=task_timeout,
        on_result=on_result,
    )
    if partial.errors:
        raise ParallelExecutionError(partial.errors)
    return list(partial.results)
