"""Parallel execution of independent seeded simulation tasks.

See :mod:`repro.parallel.engine` for the execution model and determinism
guarantees, and ``docs/performance.md`` for the user-facing tour (which
``--workers`` flags exist and what they promise).
"""

from repro.parallel.engine import (
    ParallelExecutionError,
    TaskError,
    available_workers,
    resolve_workers,
    run_tasks,
)

__all__ = [
    "ParallelExecutionError",
    "TaskError",
    "available_workers",
    "resolve_workers",
    "run_tasks",
]
