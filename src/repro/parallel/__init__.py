"""Parallel execution of independent seeded simulation tasks.

See :mod:`repro.parallel.engine` for the execution model and determinism
guarantees, :mod:`repro.resilience` for the failure policies / budgets
that :func:`run_tasks_partial` executes under, and ``docs/performance.md``
/ ``docs/robustness.md`` for the user-facing tours.
"""

from repro.parallel.engine import (
    ParallelExecutionError,
    TaskError,
    available_workers,
    resolve_workers,
    run_tasks,
    run_tasks_partial,
)

__all__ = [
    "ParallelExecutionError",
    "TaskError",
    "available_workers",
    "resolve_workers",
    "run_tasks",
    "run_tasks_partial",
]
