"""Linearizability checking for arbitrary sequential objects.

Generalizes the register checker of :mod:`repro.registers.linearizability`
to any :class:`~repro.universal.spec.SequentialSpec`: a history of
operation executions (invocation/response instants, operation, response)
is linearizable iff some total order extends the real-time precedence order
and replays through the spec producing exactly the recorded responses.

Used to validate the universal construction from the *outside*: the agreed
log is its internal witness, but this checker needs no access to it — only
the invocation/response spans any client could observe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from repro.runtime.events import OpSpan
from repro.universal.spec import Operation, SequentialSpec


@dataclass(frozen=True)
class ObjectOp:
    """One operation execution on a shared object."""

    op_id: int
    pid: int
    operation: Operation
    response: Any
    invoke: int
    respond: int

    def precedes(self, other: "ObjectOp") -> bool:
        return self.respond < other.invoke


def object_history_from_spans(spans: Iterable[OpSpan]) -> list[ObjectOp]:
    """Convert completed ``invoke`` spans into a checkable history."""
    history = []
    for span in spans:
        if span.is_open or span.invoke_step is None:
            continue
        history.append(
            ObjectOp(
                op_id=span.span_id,
                pid=span.pid,
                operation=tuple(span.argument),
                response=span.result,
                invoke=span.invoke_step,
                respond=span.response_step,  # type: ignore[arg-type]
            )
        )
    return history


def check_object_history(
    spec: SequentialSpec, ops: Sequence[ObjectOp]
) -> list[int] | None:
    """Return a witness linearization (op_ids in order), or ``None``.

    Wing–Gong backtracking with memoisation on (set of linearized ops,
    object state); spec states must be hashable values (the provided specs
    use tuples/ints), falling back to ``repr`` otherwise.
    """
    ops = list(ops)
    total = len(ops)
    if total == 0:
        return []
    must_precede = [0] * total
    for i, a in enumerate(ops):
        for j, b in enumerate(ops):
            if i != j and a.precedes(b):
                must_precede[j] |= 1 << i

    full_mask = (1 << total) - 1
    failed: set[tuple[int, Any]] = set()
    order: list[int] = []

    def state_key(state: Any):
        try:
            hash(state)
            return state
        except TypeError:
            return repr(state)

    def search(done_mask: int, state: Any) -> bool:
        if done_mask == full_mask:
            return True
        key = (done_mask, state_key(state))
        if key in failed:
            return False
        for i, op in enumerate(ops):
            bit = 1 << i
            if done_mask & bit or must_precede[i] & ~done_mask:
                continue
            new_state, response = spec.apply(state, op.operation)
            if response != op.response:
                continue
            order.append(op.op_id)
            if search(done_mask | bit, new_state):
                return True
            order.pop()
        failed.add(key)
        return False

    if search(0, spec.initial_state()):
        return list(order)
    return None
