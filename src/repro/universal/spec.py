"""Sequential object specifications for the universal construction.

A :class:`SequentialSpec` defines an object by its initial state and a pure
transition function ``apply(state, operation) -> (new_state, response)``;
operations are ``(name, args...)`` tuples.  The universal construction
replays the consensus-agreed operation log through ``apply``, so any spec
written here immediately becomes a wait-free linearizable shared object.

States must be treated as immutable values (``apply`` returns a fresh
state); all the provided specs use tuples.
"""

from __future__ import annotations

import abc
from typing import Any, Tuple

Operation = Tuple[Any, ...]


class SequentialSpec(abc.ABC):
    """A deterministic sequential object."""

    name: str = "object"

    @abc.abstractmethod
    def initial_state(self) -> Any:
        """The object's starting state (an immutable value)."""

    @abc.abstractmethod
    def apply(self, state: Any, operation: Operation) -> tuple[Any, Any]:
        """Apply one operation; return ``(new_state, response)``."""

    def replay(self, operations) -> tuple[Any, list]:
        """Apply a whole log; return the final state and all responses."""
        state = self.initial_state()
        responses = []
        for operation in operations:
            state, response = self.apply(state, operation)
            responses.append(response)
        return state, responses


class CounterSpec(SequentialSpec):
    """A fetch&add counter: ``("add", k)`` returns the pre-add value."""

    name = "counter"

    def initial_state(self) -> int:
        return 0

    def apply(self, state, operation):
        kind, *args = operation
        if kind == "add":
            return state + args[0], state
        if kind == "read":
            return state, state
        raise ValueError(f"counter: unknown operation {kind!r}")


class QueueSpec(SequentialSpec):
    """FIFO queue: ``("enq", v)`` and ``("deq",)`` (None when empty)."""

    name = "queue"

    def initial_state(self) -> tuple:
        return ()

    def apply(self, state, operation):
        kind, *args = operation
        if kind == "enq":
            return state + (args[0],), None
        if kind == "deq":
            if not state:
                return state, None
            return state[1:], state[0]
        raise ValueError(f"queue: unknown operation {kind!r}")


class StackSpec(SequentialSpec):
    """LIFO stack: ``("push", v)`` and ``("pop",)`` (None when empty)."""

    name = "stack"

    def initial_state(self) -> tuple:
        return ()

    def apply(self, state, operation):
        kind, *args = operation
        if kind == "push":
            return state + (args[0],), None
        if kind == "pop":
            if not state:
                return state, None
            return state[:-1], state[-1]
        raise ValueError(f"stack: unknown operation {kind!r}")


class CasRegisterSpec(SequentialSpec):
    """Register with ``("read",)``, ``("write", v)`` and
    ``("cas", expected, new)`` returning whether it succeeded."""

    name = "cas-register"

    def __init__(self, initial: Any = None):
        self._initial = initial

    def initial_state(self) -> Any:
        return self._initial

    def apply(self, state, operation):
        kind, *args = operation
        if kind == "read":
            return state, state
        if kind == "write":
            return args[0], None
        if kind == "cas":
            expected, new = args
            if state == expected:
                return new, True
            return state, False
        raise ValueError(f"cas-register: unknown operation {kind!r}")


class StickyBitSpec(SequentialSpec):
    """Plotkin's sticky bit [P89]: the first ``("set", v)`` wins forever.

    ``set`` returns the bit's (now permanent) value; ``("read",)`` returns
    the current value or None if unset.  A sticky bit is itself a
    consensus object — building it here from consensus demonstrates the
    equivalence the paper's introduction points at.
    """

    name = "sticky-bit"

    def initial_state(self):
        return None

    def apply(self, state, operation):
        kind, *args = operation
        if kind == "set":
            if state is None:
                return args[0], args[0]
            return state, state
        if kind == "read":
            return state, state
        raise ValueError(f"sticky-bit: unknown operation {kind!r}")


class FetchAndConsSpec(SequentialSpec):
    """Herlihy's fetch&cons [H88]: atomically prepend and return the old
    list.  ``("cons", v)`` returns the list's previous contents (a tuple,
    newest first)."""

    name = "fetch-and-cons"

    def initial_state(self) -> tuple:
        return ()

    def apply(self, state, operation):
        kind, *args = operation
        if kind == "cons":
            return (args[0],) + state, state
        if kind == "read":
            return state, state
        raise ValueError(f"fetch-and-cons: unknown operation {kind!r}")
