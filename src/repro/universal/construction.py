"""Herlihy's universal construction, driven by the paper's consensus.

The construction maintains a single logical *log* of operations.  Slot k of
the log is fixed by a one-shot multivalued consensus instance (built over
the ADS binary protocol); the object's state is the result of replaying the
agreed prefix through the sequential specification.

To invoke an operation, a process:

1. *announces* it in its single-writer announce register (tagged with a
   per-process sequence number, so every invocation is unique);
2. repeatedly competes for its next undecided slot — proposing, by the
   classic **helping** rule, the announced-but-not-yet-logged operation of
   process ``slot mod n`` if there is one, and its own otherwise — until
   its own operation appears in its view of the log;
3. returns the response obtained by replaying the log up to (and
   including) its operation.

Every process maintains a *private* mirror of the log (in its process
context), learning slot k's content only by proposing to instance k —
consensus hands latecomers the already-agreed value.  No information flows
outside the shared objects, so the construction is a faithful shared-memory
algorithm, not a simulation shortcut.

Duplicates (the same announced operation winning two slots, possible when
helpers race) are filtered during replay: only an operation's first
occurrence takes effect, so each invocation is applied exactly once.

Helping makes the construction wait-free *given* wait-free consensus: once
process i announces, every competitor proposes i's operation at slots
≡ i (mod n), so it is logged within at most n further slots of any
competitor's progress.  Since each instance is the paper's protocol, each
operation completes in polynomial expected steps, every consensus instance
uses bounded memory, and the log grows only with the object's history (as
any universal object's state must).
"""

from __future__ import annotations

from typing import Any

from repro.consensus.multivalued import MultivaluedConsensusObject
from repro.registers.atomic import RegisterArray
from repro.registers.base import MemoryAudit
from repro.runtime.process import ProcessContext
from repro.runtime.simulation import Simulation
from repro.universal.spec import Operation, SequentialSpec

LogEntry = tuple[int, int, Operation]  # (pid, seq, operation)


class _LocalView:
    """One process's private mirror of the agreed log."""

    def __init__(self) -> None:
        self.log: list[LogEntry] = []
        self.logged: set[tuple[int, int]] = set()

    def absorb(self, entry: LogEntry) -> None:
        self.log.append(entry)
        self.logged.add(entry[:2])


class UniversalObject:
    """A wait-free linearizable shared object for any sequential spec."""

    def __init__(
        self,
        sim: Simulation,
        name: str,
        n: int,
        spec: SequentialSpec,
        audit: MemoryAudit | None = None,
        **consensus_params: Any,
    ):
        self.sim = sim
        self.name = name
        self.n = n
        self.spec = spec
        self.audit = audit
        self.consensus_params = consensus_params
        # announce[i] = (seq, operation) or None.
        self.announce = RegisterArray(
            sim, f"{name}.announce", n, initial=None, audit=audit
        )
        self._slots: list[MultivaluedConsensusObject] = []
        self._seq = [0] * n
        sim.register_shared(name, self)

    # -- internals -------------------------------------------------------------

    def _slot(self, k: int) -> MultivaluedConsensusObject:
        while len(self._slots) <= k:
            self._slots.append(
                MultivaluedConsensusObject(
                    self.sim,
                    f"{self.name}.slot[{len(self._slots)}]",
                    self.n,
                    audit=self.audit,
                    **self.consensus_params,
                )
            )
        return self._slots[k]

    def _view(self, ctx: ProcessContext) -> _LocalView:
        key = f"universal:{self.name}"
        if key not in ctx.local:
            ctx.local[key] = _LocalView()
        return ctx.local[key]

    def _response_for(self, view: _LocalView, pid: int, seq: int) -> Any:
        """Replay the log (first occurrences only) up to (pid, seq)."""
        state = self.spec.initial_state()
        seen: set[tuple[int, int]] = set()
        for entry_pid, entry_seq, operation in view.log:
            key = (entry_pid, entry_seq)
            if key in seen:
                continue
            seen.add(key)
            state, response = self.spec.apply(state, operation)
            if key == (pid, seq):
                return response
        raise KeyError(f"operation ({pid}, {seq}) not in log")

    # -- the operation -----------------------------------------------------------

    def invoke(self, ctx: ProcessContext, operation: Operation):
        """Apply ``operation`` atomically; returns its response."""
        i = ctx.pid
        view = self._view(ctx)
        self._seq[i] += 1
        me: LogEntry = (i, self._seq[i], tuple(operation))
        span = ctx.begin_span("invoke", self.name, tuple(operation))
        yield from self.announce[i].write(ctx, me)

        while me[:2] not in view.logged:
            slot_index = len(view.log)
            helped = yield from self.announce[slot_index % self.n].read(ctx)
            if helped is not None and helped[:2] not in view.logged:
                proposal = helped
            else:
                proposal = me
            decided = yield from self._slot(slot_index).propose(ctx, proposal)
            view.absorb(decided)
        response = self._response_for(view, i, me[1])
        ctx.end_span(span, response)
        return response

    # -- inspection (test/debug access, not process steps) -----------------------

    def decided_log(self) -> list[LogEntry]:
        """Slot decisions agreed so far (duplicates included, as decided)."""
        log = []
        for slot in self._slots:
            if not slot.decisions:
                break
            log.append(next(iter(slot.decisions.values())))
        return log

    def effective_operations(self) -> list[Operation]:
        """The deduplicated operation sequence that defines the state."""
        seen: set[tuple[int, int]] = set()
        effective = []
        for pid, seq, operation in self.decided_log():
            if (pid, seq) in seen:
                continue
            seen.add((pid, seq))
            effective.append(operation)
        return effective

    def current_state(self) -> Any:
        state, _ = self.spec.replay(self.effective_operations())
        return state
