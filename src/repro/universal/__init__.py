"""Universal wait-free objects from consensus (the paper's motivation).

The introduction motivates randomized consensus as "a basis for
constructing novel universal synchronization primitives, such as the
fetch&cons of [H88], or the sticky bits of [P89]".  This package closes
that loop: Herlihy's universal construction, driven by the paper's
consensus protocol, turns *any* sequential object specification into a
wait-free linearizable shared object — something provably impossible with
read/write registers alone.

- :mod:`repro.universal.spec` — sequential object specifications (FIFO
  queue, stack, counter, CAS register, **sticky bit** [P89],
  **fetch&cons** [H88]);
- :mod:`repro.universal.construction` — the universal construction: a
  consensus-agreed log of operations with announce-based helping, each log
  slot decided by multivalued consensus over the ADS binary protocol.
"""

from repro.universal.construction import UniversalObject
from repro.universal.linearizability import (
    ObjectOp,
    check_object_history,
    object_history_from_spans,
)
from repro.universal.spec import (
    CasRegisterSpec,
    CounterSpec,
    FetchAndConsSpec,
    QueueSpec,
    SequentialSpec,
    StackSpec,
    StickyBitSpec,
)

__all__ = [
    "CasRegisterSpec",
    "CounterSpec",
    "FetchAndConsSpec",
    "ObjectOp",
    "QueueSpec",
    "SequentialSpec",
    "StackSpec",
    "StickyBitSpec",
    "UniversalObject",
    "check_object_history",
    "object_history_from_spans",
]
