"""repro — Bounded Polynomial Randomized Consensus (PODC 1989).

A complete, executable reproduction of Attiya, Dolev and Shavit's
*"Bounded Polynomial Randomized Consensus"*: the first randomized wait-free
consensus protocol for asynchronous read/write shared memory that is both
polynomial in expected running time and bounded in memory.

Layers (bottom-up):

- :mod:`repro.runtime` — deterministic interleaving simulator of
  asynchronous shared memory, with strong adaptive adversaries;
- :mod:`repro.registers` — atomic register substrate, including a bounded
  two-writer construction and a linearizability checker;
- :mod:`repro.snapshot` — §2's *scannable memory* (bounded snapshot scans
  via handshake arrows) and its properties P1–P3;
- :mod:`repro.coin` — §3's bounded weak shared coin (random walk with
  truncated counters) and comparators;
- :mod:`repro.strip` — §4's bounded rounds strip (token game → shrinking →
  distance graph → mod-3K edge counters);
- :mod:`repro.consensus` — §5's protocol plus the Aspnes–Herlihy,
  Abrahamson and Chor–Israeli–Li regime baselines;
- :mod:`repro.analysis` — experiment framework reproducing the paper's
  quantitative claims (experiments E1–E12, see EXPERIMENTS.md);
- :mod:`repro.obs` — runtime observability: the metrics registry every
  simulation owns, structured trace export (JSONL / Chrome ``trace_event``)
  and wall-clock profiling (see docs/observability.md).

Quickstart::

    from repro import AdsConsensus, validate_run

    protocol = AdsConsensus()                # K=2, b=2, bounded counters
    run = protocol.run([0, 1, 1, 0], seed=7) # four processes, mixed inputs
    assert validate_run(run).ok
    print(run.decisions)                     # e.g. {0: 1, 1: 1, 2: 1, 3: 1}
"""

from repro.consensus import (
    AdsConsensus,
    AdsConsensusObject,
    AspnesHerlihyConsensus,
    AtomicCoinConsensus,
    ConsensusRun,
    LocalCoinConsensus,
    MultivaluedConsensusObject,
    validate_run,
)
from repro.obs import MetricsRegistry, MetricsSnapshot, Profiler
from repro.universal import UniversalObject
from repro.runtime import (
    CrashPlan,
    RandomScheduler,
    RoundRobinScheduler,
    ScriptedScheduler,
    Simulation,
    SplitAdversary,
)
from repro.runtime.adversary import LockstepAdversary

__version__ = "1.0.0"

__all__ = [
    "AdsConsensus",
    "AdsConsensusObject",
    "AspnesHerlihyConsensus",
    "AtomicCoinConsensus",
    "ConsensusRun",
    "CrashPlan",
    "LocalCoinConsensus",
    "LockstepAdversary",
    "MetricsRegistry",
    "MetricsSnapshot",
    "MultivaluedConsensusObject",
    "Profiler",
    "RandomScheduler",
    "RoundRobinScheduler",
    "ScriptedScheduler",
    "Simulation",
    "SplitAdversary",
    "UniversalObject",
    "validate_run",
    "__version__",
]
