"""Bounded-memory *exponential* consensus: local coins on the §4 strip.

The paper's introduction notes that a bounded exponential-time algorithm
can be derived from Abrahamson's by replacing its unbounded time stamps
with bounded concurrent time-stamp machinery ([ADS89], via [DS89]).  This
protocol realizes the same cell of the design space using the paper's own
rounds strip instead: it is exactly :class:`~repro.consensus.ads.
AdsConsensus` — bounded edge counters, bounded cells, the same leader and
decision rules — with the weak shared coin replaced by an *independent
local coin* (re-draw the preference and advance a round).

The result completes the 2×2 time × memory matrix with read/write
registers only:

|                      | exponential time        | polynomial time       |
|----------------------|-------------------------|-----------------------|
| **unbounded memory** | local-coin ([A88])      | Aspnes–Herlihy [AH88] |
| **bounded memory**   | **this module**         | **ADS (the paper)**   |

Safety is inherited unchanged (the coin path never affected consistency or
validity); only the expected number of conflicted rounds changes — from
O(1) to 2^Θ(n) under the lockstep adversary — so comparing this protocol
with the paper's isolates precisely what the *shared* coin buys, with the
memory bound held fixed.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

from repro.coin.local import local_coin_flip
from repro.consensus.ads import AdsCell, AdsConsensus
from repro.runtime.process import ProcessContext
from repro.strip.distance_graph import DistanceGraph


class BoundedLocalCoinConsensus(AdsConsensus):
    """The paper's protocol with the shared coin swapped for local coins."""

    name = "bounded-local-coin"

    def _resolve_conflict(
        self,
        ctx: ProcessContext,
        cell: AdsCell,
        view: Sequence[AdsCell],
        graph: DistanceGraph,
        n: int,
        m: int,
    ) -> AdsCell:
        """Leaders disagree: re-draw privately and advance a round."""
        self._flips[ctx.pid] += 1
        cell = self._inc(ctx.pid, cell, view)
        return replace(cell, pref=local_coin_flip(ctx))
