"""Common protocol interface, run records, and shared view helpers."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Sequence

from repro.faults.plan import FaultPlan
from repro.faults.watchdog import Watchdog
from repro.obs.metrics import NULL_INSTRUMENT, MetricsRegistry, MetricsSnapshot
from repro.registers.base import MemoryAudit
from repro.runtime.scheduler import CrashPlan, RecoveryPlan, Scheduler
from repro.runtime.simulation import Simulation, SimulationOutcome

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.timeseries import SeriesSpec

#: The "undecided" preference the paper writes as ⊥.
BOTTOM = None


@dataclass
class ConsensusRun:
    """Everything recorded about one consensus execution."""

    protocol: str
    n: int
    inputs: tuple[int, ...]
    outcome: SimulationOutcome
    audit: MemoryAudit
    seed: int
    stats: dict[str, Any] = field(default_factory=dict)
    simulation: Simulation | None = None

    @property
    def decisions(self) -> dict[int, int]:
        return self.outcome.decisions

    @property
    def decided_values(self) -> set:
        return set(self.outcome.decisions.values())

    @property
    def total_steps(self) -> int:
        return self.outcome.total_steps

    @property
    def metrics(self) -> MetricsSnapshot | None:
        """The run's metrics snapshot (``None`` if metrics were disabled)."""
        return self.outcome.metrics

    def max_rounds(self) -> int:
        """Largest number of (local) round increments any process executed."""
        rounds = self.stats.get("rounds_by_pid", {})
        return max(rounds.values(), default=0)


class ConsensusProtocol(abc.ABC):
    """A runnable consensus protocol configuration.

    Subclasses configure parameters in ``__init__`` and implement
    :meth:`_setup`, which creates the run's shared objects inside a fresh
    simulation and returns a per-pid program factory.  :meth:`run` drives a
    complete execution and packages a :class:`ConsensusRun`.
    """

    name: str = "consensus"

    # Whether this protocol's programs implement crash recovery (resume
    # from the shared cell when ``ctx.incarnation > 0``).  Protocols that
    # leave this False would restart from scratch — re-proposing their
    # input over live protocol state, which is *not* safe in general — so
    # the fuzz grid only attaches recovery plans when this is True.
    supports_recovery: bool = False

    # Metric handles default to the shared no-op so protocol internals can
    # always increment them; _bind_metrics swaps in live instruments when a
    # run (or a composable object wrapper) attaches a simulation.
    _m_rounds = NULL_INSTRUMENT
    _m_scans = NULL_INSTRUMENT
    _m_flips = NULL_INSTRUMENT
    _m_decisions = NULL_INSTRUMENT
    _m_leader_gap = NULL_INSTRUMENT
    _m_edge_incs = NULL_INSTRUMENT
    _m_coin_excursion = NULL_INSTRUMENT
    _metrics: MetricsRegistry | None = None

    def _bind_metrics(self, sim: Simulation) -> None:
        """Resolve this protocol's instrument handles against ``sim.metrics``."""
        registry = sim.metrics
        self._metrics = registry
        self._m_rounds = registry.counter(
            "consensus.round_advances", protocol=self.name
        )
        self._m_scans = registry.counter("consensus.scans", protocol=self.name)
        self._m_flips = registry.counter("consensus.coin_flips", protocol=self.name)
        self._m_decisions = registry.counter("consensus.decisions", protocol=self.name)
        self._m_leader_gap = registry.gauge("consensus.leader_gap", protocol=self.name)
        self._m_edge_incs = registry.counter(
            "strip.edge_increments", protocol=self.name
        )
        self._m_coin_excursion = registry.gauge(
            "consensus.coin_excursion", protocol=self.name
        )

    @abc.abstractmethod
    def _setup(self, sim: Simulation, inputs: Sequence[int], audit: MemoryAudit):
        """Create shared objects; return ``factory(pid) -> program``."""

    def _validate_inputs(self, inputs: Sequence[int]) -> None:
        """These protocols are binary; reject anything else loudly
        (arbitrary values go through ``MultivaluedAdsConsensus``)."""
        if not inputs:
            raise ValueError("need at least one process input")
        bad = [v for v in inputs if v not in (0, 1)]
        if bad:
            raise ValueError(
                f"binary consensus inputs must be 0 or 1, got {bad[:3]}; "
                "use MultivaluedAdsConsensus for arbitrary values"
            )

    def _collect_stats(self) -> dict[str, Any]:
        """Protocol-specific per-run statistics (overridden by subclasses)."""
        return {}

    def run(
        self,
        inputs: Sequence[int],
        scheduler: Scheduler | None = None,
        seed: int = 0,
        crash_plan: CrashPlan | None = None,
        recovery_plan: RecoveryPlan | None = None,
        max_steps: int = 2_000_000,
        record_events: bool = False,
        record_spans: bool = False,
        keep_simulation: bool = False,
        metrics: MetricsRegistry | None = None,
        fault_plan: FaultPlan | None = None,
        watchdog: Watchdog | None = None,
        raise_on_budget: bool = True,
        series: "SeriesSpec | None" = None,
    ) -> ConsensusRun:
        """Run one consensus instance with the given inputs.

        Spans/events are off by default (protocol runs are long; property
        checking tests switch them on explicitly).  Metrics are on by
        default; pass ``metrics=MetricsRegistry(enabled=False)`` to opt out.
        ``series`` attaches a :class:`~repro.obs.timeseries.SeriesRecorder`
        sampling the tracked counters every ``series.every`` steps; the
        series ride on the run's metrics snapshot.
        Resilience hooks: ``recovery_plan`` restarts crashed processes,
        ``fault_plan`` injects register faults, ``watchdog`` monitors the
        step loop, and ``raise_on_budget=False`` turns a budget blowup into
        a degraded outcome instead of :class:`StepBudgetExceeded`.
        """
        self._validate_inputs(inputs)
        n = len(inputs)
        audit = MemoryAudit()
        sim = Simulation(
            n,
            scheduler=scheduler,
            seed=seed,
            crash_plan=crash_plan,
            recovery_plan=recovery_plan,
            record_events=record_events,
            record_spans=record_spans,
            metrics=metrics,
            faults=fault_plan,
            series=series,
        )
        self._bind_metrics(sim)
        factory = self._setup(sim, inputs, audit)
        sim.spawn_all(factory)
        outcome = sim.run(
            max_steps, raise_on_budget=raise_on_budget, watchdog=watchdog
        )
        return ConsensusRun(
            protocol=self.name,
            n=n,
            inputs=tuple(inputs),
            outcome=outcome,
            audit=audit,
            seed=seed,
            stats=self._collect_stats(),
            simulation=sim if keep_simulation else None,
        )


def agreed_value(prefs: Sequence) -> Any:
    """The common non-⊥ value of ``prefs``, or ``None`` if none exists."""
    values = set(prefs)
    if len(values) == 1:
        value = values.pop()
        if value is not BOTTOM:
            return value
    return None
