"""The [A88] regime: local coins only ⇒ exponential expected time.

Abrahamson's protocol predates shared coins: a process blocked by
disagreement re-draws its preference from its own *private* coin.  For all
top-round processes to leave a conflict behind, they must independently
draw the same value — probability ``2^{-(g-1)}`` for g conflicting
processes — which is the source of the exponential expected running time
that [AH88] and the paper eliminate.

To isolate the coin as the only difference (the ablation benchmarks E5/E10
compare growth *shapes*), this baseline reuses the Aspnes–Herlihy round
skeleton verbatim and swaps the conflict-resolution step for a local flip.
Like the original, it uses unbounded round numbers.
"""

from __future__ import annotations

from repro.coin.local import local_coin_flip
from repro.consensus.aspnes_herlihy import AspnesHerlihyConsensus, RoundCell
from repro.runtime.process import ProcessContext


class LocalCoinConsensus(AspnesHerlihyConsensus):
    """Round skeleton + independent local coins (exponential regime)."""

    name = "local-coin"

    def _resolve_conflict(self, ctx: ProcessContext, cell: RoundCell, view):
        """Leaders disagree: re-draw my preference privately and advance."""
        self._flips[ctx.pid] += 1
        return self._advance(ctx.pid, cell, local_coin_flip(ctx)), True
