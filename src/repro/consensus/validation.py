"""Safety and resource validation of consensus runs.

Used by the integration tests and the safety benchmark (E11) on *every*
recorded run:

- **consistency**: no two processes decided different values;
- **validity**: if all inputs agree, every decision is that input;
- **decision domain**: every decision is some process's input (for binary
  inputs this follows from validity + consistency, but it is checked
  independently);
- **completion**: every non-crashed process decided (wait-freedom within
  the step budget — probabilistic, so budgets are generous);
- **memory audit**: the largest integer magnitude and widest structure any
  register ever held (the boundedness headline, E6).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.consensus.interface import ConsensusRun


@dataclass
class ValidationReport:
    consistent: bool
    valid: bool
    in_domain: bool
    complete: bool
    problems: list[str]

    @property
    def ok(self) -> bool:
        return self.consistent and self.valid and self.in_domain and self.complete


def check_consistency(run: ConsensusRun) -> bool:
    """No two processes decide on different values."""
    return len(run.decided_values) <= 1


def check_validity(run: ConsensusRun) -> bool:
    """If all inputs agree, the unique decision is that input."""
    inputs = set(run.inputs)
    if len(inputs) != 1:
        return True
    return run.decided_values <= inputs


def check_decision_domain(run: ConsensusRun) -> bool:
    """Every decision is some process's input value."""
    return run.decided_values <= set(run.inputs)


def check_completion(run: ConsensusRun) -> bool:
    """Every non-crashed process decided."""
    expected = set(range(run.n)) - run.outcome.crashed
    return expected <= set(run.decisions)


def validate_run(run: ConsensusRun) -> ValidationReport:
    problems = []
    consistent = check_consistency(run)
    if not consistent:
        problems.append(f"inconsistent decisions: {run.decisions}")
    valid = check_validity(run)
    if not valid:
        problems.append(
            f"validity violated: inputs {run.inputs}, decisions {run.decisions}"
        )
    in_domain = check_decision_domain(run)
    if not in_domain:
        problems.append(
            f"decision outside input domain: inputs {run.inputs}, "
            f"decisions {run.decisions}"
        )
    complete = check_completion(run)
    if not complete:
        missing = set(range(run.n)) - run.outcome.crashed - set(run.decisions)
        problems.append(f"processes did not decide: {sorted(missing)}")
    return ValidationReport(consistent, valid, in_domain, complete, problems)


def summarize_memory(run: ConsensusRun) -> dict[str, int]:
    """Boundedness summary of a run (E6 rows)."""
    return {
        "max_magnitude": run.audit.max_magnitude,
        "max_width": run.audit.max_width,
        "writes": run.audit.writes,
    }


def assert_safe(run: ConsensusRun) -> None:
    """Raise with a readable report if any safety property failed."""
    report = validate_run(run)
    if not report.ok:
        raise AssertionError(
            f"unsafe run of {run.protocol} (seed {run.seed}, inputs "
            f"{run.inputs}): " + "; ".join(report.problems)
        )
