"""Randomized wait-free consensus protocols (§5 + baselines).

- :class:`~repro.consensus.ads.AdsConsensus` — **the paper's protocol**:
  polynomial expected time *and* bounded memory.  Composes the scannable
  memory (§2), the bounded weak shared coin (§3) and the bounded rounds
  strip (§4).
- :class:`~repro.consensus.aspnes_herlihy.AspnesHerlihyConsensus` — the
  [AH88] regime: polynomial expected time, unbounded memory (integer rounds
  + an unbounded strip of walk coins).
- :class:`~repro.consensus.abrahamson.LocalCoinConsensus` — the [A88]
  regime: local coins only, hence exponential expected time (implemented on
  the same round skeleton so the coin is the only difference).
- :class:`~repro.consensus.cil.AtomicCoinConsensus` — the [CIL87] regime:
  assumes an *atomic shared coin-flip* primitive; constant expected rounds.

All protocols satisfy consistency and validity (checked by
:mod:`repro.consensus.validation` over every run in the suite) and decide in
a finite expected number of steps against the implemented adversaries.
"""

from repro.consensus.abrahamson import LocalCoinConsensus
from repro.consensus.ads import AdsConsensus, AdsConsensusObject
from repro.consensus.aspnes_herlihy import AspnesHerlihyConsensus
from repro.consensus.bounded_local import BoundedLocalCoinConsensus
from repro.consensus.cil import AtomicCoinConsensus
from repro.consensus.interface import BOTTOM, ConsensusProtocol, ConsensusRun
from repro.consensus.multivalued import (
    MultivaluedAdsConsensus,
    MultivaluedConsensusObject,
)
from repro.consensus.validation import (
    check_consistency,
    check_validity,
    summarize_memory,
    validate_run,
)

__all__ = [
    "AdsConsensus",
    "AdsConsensusObject",
    "AspnesHerlihyConsensus",
    "AtomicCoinConsensus",
    "BOTTOM",
    "BoundedLocalCoinConsensus",
    "ConsensusProtocol",
    "ConsensusRun",
    "LocalCoinConsensus",
    "MultivaluedAdsConsensus",
    "MultivaluedConsensusObject",
    "check_consistency",
    "check_validity",
    "summarize_memory",
    "validate_run",
]
