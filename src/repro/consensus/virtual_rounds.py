"""Virtual global rounds (§6.1), executable.

The correctness proof's central device: although the bounded protocol
stores no absolute round numbers, every scan operation execution can be
assigned a *virtual global round* per process, supporting "the illusion
that a process has an unbounded and monotonically non-decreasing round
number".  The inductive definition (over the P3-serialized scan order):

- base: ``round(i, S{0}) = 0`` for all i;
- step: let ``max`` be the largest round at ``S{a-1}``, ``old_leaders``
  the processes holding it, and ``new_leaders ⊆ old_leaders`` those whose
  edge-counter row changed between the two scans (they performed ``inc``).
  If some new leader ``j'`` exists, everyone is placed relative to it one
  round up: ``round(i, S{a}) = max + 1 - dist(j', i)`` (0 for the new
  leaders themselves); otherwise relative to an old leader:
  ``round(i, S{a}) = max - dist(j', i)``.

This module computes the assignment from a recorded run (the protocol must
be executed with ``ghost_wseqs=True`` so scans can be serialized exactly)
and checks the proof's claims:

- **monotonicity**: a process's virtual round never decreases — "though
  the virtual global round of a process might change even without its
  performing an inc, it can only increase";
- **decision window** (Lemma 6.5's shape): once some process decides, no
  process's virtual round ever exceeds the decider's round by more than
  K (the paper's r + 2 with K = 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.consensus.interface import ConsensusRun
from repro.strip.edge_counters import decode_graph

_NEG_INF = float("-inf")


@dataclass
class VirtualRoundTrace:
    """Per-scan virtual-round assignment for one recorded run."""

    n: int
    K: int
    scan_pids: list[int]  # which process performed scan S{a}
    rounds: list[list[float]] = field(default_factory=list)  # rounds[a][i]

    @property
    def final_rounds(self) -> list[float]:
        return self.rounds[-1] if self.rounds else [0.0] * self.n

    def rounds_of(self, pid: int) -> list[float]:
        return [assignment[pid] for assignment in self.rounds]


def _serialized_scans(run: ConsensusRun):
    """The run's scans in P3 serialization order.

    Views are slot-wise comparable (P3), so the sum of the ghost write
    sequence numbers is a linear extension of the serialization order.
    """
    if run.simulation is None:
        raise ValueError("run must be executed with keep_simulation=True")
    scans = run.simulation.trace.spans_of_kind("scan", "mem")
    if not scans:
        raise ValueError("no recorded scans (record_spans=True required)")
    if all(sum(s.meta["wseqs"]) == 0 for s in scans):
        raise ValueError(
            "ghost wseqs are all zero: run AdsConsensus(ghost_wseqs=True)"
        )
    return sorted(scans, key=lambda s: (sum(s.meta["wseqs"]), s.span_id))


def compute_virtual_rounds(run: ConsensusRun, K: int = 2) -> VirtualRoundTrace:
    """Assign virtual global rounds to every process at every scan."""
    scans = _serialized_scans(run)
    n = run.n
    trace = VirtualRoundTrace(n=n, K=K, scan_pids=[s.pid for s in scans])
    previous_rounds = [0.0] * n
    previous_view = None
    for scan in scans:
        view = scan.result  # tuple of AdsCells
        graph = decode_graph([cell.edges for cell in view], K)
        top = max(previous_rounds)
        old_leaders = [j for j in range(n) if previous_rounds[j] == top]
        if previous_view is None:
            new_leaders = [
                j for j in old_leaders if any(view[j].edges)
            ]  # changed from the all-zero initial state
        else:
            new_leaders = [
                j for j in old_leaders if view[j].edges != previous_view[j].edges
            ]
        current = list(previous_rounds)
        if new_leaders:
            anchor = min(new_leaders)
            dists = graph.all_dists_from(anchor)
            for i in range(n):
                if i in new_leaders:
                    current[i] = top + 1
                else:
                    distance = dists[i] if dists[i] != _NEG_INF else K * n
                    current[i] = top + 1 - distance
        else:
            anchor = min(old_leaders)
            dists = graph.all_dists_from(anchor)
            for i in range(n):
                distance = dists[i] if dists[i] != _NEG_INF else K * n
                current[i] = top - distance
        trace.rounds.append(current)
        previous_rounds = current
        previous_view = view
    return trace


def check_monotonicity(trace: VirtualRoundTrace) -> list[str]:
    """§6.1: each process's virtual round is non-decreasing."""
    problems = []
    for pid in range(trace.n):
        series = trace.rounds_of(pid)
        for a, (earlier, later) in enumerate(zip(series, series[1:]), start=1):
            if later < earlier:
                problems.append(
                    f"process {pid}: round dropped {earlier} -> {later} at scan {a}"
                )
    return problems


def check_decision_window(trace: VirtualRoundTrace, run: ConsensusRun) -> list[str]:
    """Lemma 6.5's shape: nobody runs more than K rounds past a decider.

    The decider's round is taken as its final virtual round; every
    process's final virtual round must lie within K of it.
    """
    problems = []
    if not run.decisions or not trace.rounds:
        return problems
    finals = trace.final_rounds
    decider_rounds = [finals[pid] for pid in run.decisions]
    earliest = min(decider_rounds)
    for pid in range(trace.n):
        if finals[pid] > earliest + trace.K:
            problems.append(
                f"process {pid} reached virtual round {finals[pid]}, more than "
                f"K={trace.K} past a decider's round {earliest}"
            )
    return problems


def analyze_run(run: ConsensusRun, K: int = 2) -> tuple[VirtualRoundTrace, list[str]]:
    """Compute the assignment and run both checks; return (trace, problems)."""
    trace = compute_virtual_rounds(run, K)
    problems = check_monotonicity(trace) + check_decision_window(trace, run)
    return trace, problems
