"""The [CIL87] regime: an atomic shared coin-flip primitive.

Chor, Israeli and Li gave the first time-efficient randomized consensus,
assuming a powerful *atomic coin flip*: a single operation whose first
invocation fixes a globally agreed random value.  With such a primitive,
one flip resolves each conflicted round perfectly, so the expected number
of rounds is O(1) with no weak-coin machinery at all.

This baseline reuses the round skeleton and resolves conflicts with one
:class:`~repro.coin.oracle.OracleCoin` per round (created on first use).
It exists as the upper baseline of the comparison table (E10): what
consensus costs if the hardware grants you the primitive the paper shows
you can live without.
"""

from __future__ import annotations

from typing import Sequence

from repro.coin.oracle import OracleCoin
from repro.consensus.aspnes_herlihy import AspnesHerlihyConsensus, RoundCell
from repro.registers.base import MemoryAudit
from repro.runtime.process import ProcessContext
from repro.runtime.simulation import Simulation


class AtomicCoinConsensus(AspnesHerlihyConsensus):
    """Round skeleton + perfect per-round oracle coins (CIL assumption)."""

    name = "atomic-coin"

    def _setup(self, sim: Simulation, inputs: Sequence[int], audit: MemoryAudit):
        factory = super()._setup(sim, inputs, audit)
        self._sim = sim
        self._oracles: dict[int, OracleCoin] = {}
        return factory

    def _oracle(self, rnd: int) -> OracleCoin:
        if rnd not in self._oracles:
            self._oracles[rnd] = OracleCoin(
                self._sim, f"oracle[{rnd}]", self._sim.n
            )
        return self._oracles[rnd]

    def _resolve_conflict_gen(self, ctx: ProcessContext, cell: RoundCell, view):
        """One atomic flip of my round's oracle; adopt it and advance."""
        value = yield from self._oracle(cell.round).read_value(ctx)
        self._flips[ctx.pid] += 1
        return self._advance(ctx.pid, cell, value), True
