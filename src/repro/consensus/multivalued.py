"""Multivalued consensus from binary consensus.

The paper's protocol is binary; its authors note it "can be extended to
handle arbitrary initial values".  This module provides the standard
reduction: agree on the *identity of a winning proposer*, bit by bit, using
⌈log₂ n⌉ instances of the binary protocol, then return the winner's
(single-writer, written-once) proposal register.

Per bit round k, each process proposes bit k of some *candidate* — a pid
whose proposal register it has seen written and whose pid agrees with the
prefix of winner bits decided so far.  Binary consensus's decision-domain
property (every decision is someone's proposal) maintains the invariant
that a written proposal matching the agreed prefix always exists:

- round 0: my own proposal is written before I first collect, so a
  candidate exists;
- round k: the decided bit was proposed by a process that, at its collect,
  saw a written candidate matching ``prefix + bit``; proposal registers are
  written once and persist, so every later collect sees it too.

Consistency: all processes decide the same bits, hence the same winner,
hence read the same once-written register.  Validity: the winner's proposal
is some process's input.  Values may be arbitrary Python objects — only
pids are fed to the binary protocol.
"""

from __future__ import annotations

from typing import Any

from repro.consensus.ads import AdsConsensusObject
from repro.registers.atomic import RegisterArray
from repro.registers.base import MemoryAudit
from repro.runtime.process import ProcessContext
from repro.runtime.simulation import Simulation

_ABSENT = object()


class MultivaluedAdsConsensus:
    """Runnable protocol wrapper: consensus on arbitrary input values.

    Mirrors :class:`~repro.consensus.ads.AdsConsensus`'s ``run`` interface
    but accepts any (comparable) input values, delegating to
    :class:`MultivaluedConsensusObject` — i.e. the paper's protocol plus
    the standard "agree on a proposer, bit by bit" reduction.
    """

    name = "ads-multivalued"

    def __init__(self, **binary_params: Any):
        self.binary_params = binary_params

    def run(
        self,
        inputs,
        scheduler=None,
        seed: int = 0,
        crash_plan=None,
        max_steps: int = 20_000_000,
    ):
        from repro.consensus.interface import ConsensusRun
        from repro.runtime.simulation import Simulation

        n = len(inputs)
        audit = MemoryAudit()
        sim = Simulation(n, scheduler=scheduler, seed=seed, crash_plan=crash_plan)
        consensus = MultivaluedConsensusObject(
            sim, "mv", n, audit=audit, **self.binary_params
        )

        def factory(pid: int):
            def body(ctx: ProcessContext):
                return (yield from consensus.propose(ctx, inputs[pid]))

            return body

        sim.spawn_all(factory)
        outcome = sim.run(max_steps)
        return ConsensusRun(
            protocol=self.name,
            n=n,
            inputs=tuple(inputs),
            outcome=outcome,
            audit=audit,
            seed=seed,
            stats={"bits": consensus.bits},
        )


def bits_needed(n: int) -> int:
    """Bits required to name a pid in 0..n-1 (at least 1)."""
    return max(1, (n - 1).bit_length())


class MultivaluedConsensusObject:
    """One-shot consensus on arbitrary values, built on binary instances."""

    def __init__(
        self,
        sim: Simulation,
        name: str,
        n: int,
        audit: MemoryAudit | None = None,
        **binary_params: Any,
    ):
        self.name = name
        self.n = n
        self.bits = bits_needed(n)
        self.proposals = RegisterArray(
            sim, f"{name}.proposal", n, initial=_ABSENT, audit=audit
        )
        self.rounds = [
            AdsConsensusObject(
                sim, f"{name}.bit[{k}]", n, audit=audit, **binary_params
            )
            for k in range(self.bits)
        ]
        self.decisions: dict[int, Any] = {}
        sim.register_shared(name, self)

    def _bit_of(self, pid: int, k: int) -> int:
        """Bit k of pid, most significant of the ``bits`` positions first."""
        return (pid >> (self.bits - 1 - k)) & 1

    def _matches_prefix(self, pid: int, prefix_bits: list[int]) -> bool:
        return all(
            self._bit_of(pid, k) == bit for k, bit in enumerate(prefix_bits)
        )

    def propose(self, ctx: ProcessContext, value: Any):
        """Agree on one proposed value; returns the common decision."""
        i = ctx.pid
        if i in self.decisions:
            return self.decisions[i]
        yield from self.proposals[i].write(ctx, value)

        prefix: list[int] = []
        for k in range(self.bits):
            candidate = None
            for pid in range(self.n):
                cell = yield from self.proposals[pid].read(ctx)
                if cell is _ABSENT or not self._matches_prefix(pid, prefix):
                    continue
                if candidate is None or pid == i:
                    candidate = pid
            assert candidate is not None, (
                "no candidate matches the agreed prefix: binary consensus "
                "decision-domain invariant broken"
            )
            bit = yield from self.rounds[k].propose(
                ctx, self._bit_of(candidate, k)
            )
            prefix.append(bit)

        winner = 0
        for bit in prefix:
            winner = (winner << 1) | bit
        decision = yield from self.proposals[winner].read(ctx)
        assert decision is not _ABSENT, "winner's proposal must be written"
        self.decisions[i] = decision
        return decision
