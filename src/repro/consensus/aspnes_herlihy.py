"""The [AH88] regime: polynomial expected time, *unbounded* memory.

This baseline keeps the same leader/round skeleton as the paper's protocol
but stores what Aspnes–Herlihy store: an ever-growing integer round number
and an unbounded strip of random-walk coins — one counter per (process,
round) pair, never recycled.  Consequently each register's content grows
without bound both in magnitude (round numbers) and in width (the strip),
which is exactly what the memory audit of experiment E6 exhibits, while the
running time matches the bounded protocol's polynomial shape (E5/E10).

The cell layout is ``(pref, round, coins)`` with ``coins`` an immutable
sorted tuple of ``(round, counter)`` pairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.coin import logic
from repro.consensus.interface import BOTTOM, ConsensusProtocol, agreed_value
from repro.registers.base import MemoryAudit
from repro.runtime.process import ProcessContext
from repro.runtime.simulation import Simulation
from repro.snapshot.sequenced import SequencedScannableMemory


@dataclass(frozen=True)
class RoundCell:
    """Shared state of one process in the round-number protocols."""

    pref: int | None
    round: int
    coins: tuple[tuple[int, int], ...] = ()  # (round, counter), sorted

    def coin_of(self, rnd: int) -> int:
        for r, c in self.coins:
            if r == rnd:
                return c
        return 0

    def with_coin(self, rnd: int, counter: int) -> "RoundCell":
        kept = tuple((r, c) for r, c in self.coins if r != rnd)
        return RoundCell(
            self.pref, self.round, tuple(sorted(kept + ((rnd, counter),)))
        )


class AspnesHerlihyConsensus(ConsensusProtocol):
    """Unbounded-rounds, unbounded-coin-strip polynomial consensus."""

    name = "aspnes-herlihy"

    def __init__(self, K: int = 2, b_barrier: int = 2):
        if K < 2:
            raise ValueError("need K >= 2")
        self.K = K
        self.b_barrier = b_barrier
        self._rounds: dict[int, int] = {}
        self._flips: dict[int, int] = {}
        self._scans: dict[int, int] = {}

    def _setup(self, sim: Simulation, inputs: Sequence[int], audit: MemoryAudit):
        n = len(inputs)
        initial = RoundCell(pref=BOTTOM, round=0)
        memory = SequencedScannableMemory(sim, "mem", n, initial=initial, audit=audit)
        self._rounds = {pid: 0 for pid in range(n)}
        self._flips = {pid: 0 for pid in range(n)}
        self._scans = {pid: 0 for pid in range(n)}
        self._memory = memory

        def factory(pid: int):
            def body(ctx: ProcessContext):
                return (yield from self._process(ctx, memory, inputs[pid], n))

            return body

        return factory

    def _collect_stats(self):
        return {
            "rounds_by_pid": dict(self._rounds),
            "flips_by_pid": dict(self._flips),
            "scans_by_pid": dict(self._scans),
            "scan_attempts": self._memory.scan_attempts(),
        }

    # -- skeleton hooks (overridden by the other baselines) --------------------

    def _resolve_conflict(self, ctx: ProcessContext, cell: RoundCell, view):
        """Leaders disagree and my pref is ⊥: drive my round's shared coin.

        Returns ``(new_cell, advanced)``; ``advanced`` means a round was
        completed (pref selected), otherwise only a flip was written.
        """
        n = len(view)
        counters = [v.coin_of(cell.round) for v in view]
        coin = logic.coin_value(
            counters[ctx.pid], counters, n, self.b_barrier, None
        )
        if coin is logic.UNDECIDED:
            stepped = logic.walk_step_value(
                cell.coin_of(cell.round), ctx.rng.random() < 0.5, None
            )
            self._flips[ctx.pid] += 1
            self._m_flips.inc()
            self._m_coin_excursion.set_max(abs(stepped))
            return cell.with_coin(cell.round, stepped), False
        return self._advance(ctx.pid, cell, coin), True

    def _advance(self, pid: int, cell: RoundCell, pref) -> RoundCell:
        self._rounds[pid] += 1
        self._m_rounds.inc()
        return RoundCell(pref=pref, round=cell.round + 1, coins=cell.coins)

    # -- the protocol ------------------------------------------------------------

    def _process(self, ctx: ProcessContext, memory, input_value: int, n: int):
        i = ctx.pid
        cell = self._advance(i, RoundCell(pref=BOTTOM, round=0), input_value)
        yield from memory.write(ctx, cell)

        while True:
            view = yield from memory.scan(ctx)
            self._scans[i] += 1
            self._m_scans.inc()
            mine = view[i]
            top = max(v.round for v in view)
            self._m_leader_gap.set_max(top - min(v.round for v in view))

            if (
                mine.pref is not BOTTOM
                and mine.round == top
                and all(
                    v.pref == mine.pref or v.round <= mine.round - self.K
                    for j, v in enumerate(view)
                    if j != i
                )
            ):
                self._m_decisions.inc()
                return mine.pref

            leaders_value = agreed_value(
                [v.pref for v in view if v.round == top]
            )
            if leaders_value is not None:
                cell = self._advance(i, cell, leaders_value)
                yield from memory.write(ctx, cell)
                continue

            if mine.pref is not BOTTOM:
                cell = RoundCell(BOTTOM, cell.round, cell.coins)
                yield from memory.write(ctx, cell)
                continue

            cell, _ = yield from self._resolve_conflict_gen(ctx, cell, view)
            yield from memory.write(ctx, cell)

    def _resolve_conflict_gen(self, ctx, cell, view):
        """Generator wrapper so subclasses may perform shared-memory steps."""
        return self._resolve_conflict(ctx, cell, view)
        yield  # pragma: no cover - generator marker
