"""The paper's protocol: bounded polynomial randomized consensus (§5).

Every process keeps its entire protocol state in its single cell of the
scannable memory:

- ``pref`` — current preference: 0, 1 or ⊥;
- ``coins[0..K]`` — K+1 bounded walk counters, the process's contributions
  to the coins of the K+1 most recent rounds (older contributions are
  *withdrawn* by recycling the slot, per Observation 1.2);
- ``current_coin`` — pointer into ``coins``; slot ``next(current_coin)`` is
  the counter for the round currently being flipped;
- ``edges[0..n-1]`` — the process's row of mod-3K edge counters encoding
  the distance graph of the rounds strip (§4.3).

The main loop is a strict scan → compute → write alternation (footnote 6 of
the paper).  With the scanned view and its decoded distance graph ``G``:

1. if I am a *leader* (I dominate everyone in ``G``), my preference is a
   value, and every process that disagrees with me trails by at least K,
   **decide** my preference;
2. else if all leaders carry the same value ``v ≠ ⊥``, adopt ``v`` and
   advance a round (``inc``: advance the coin pointer, zero the recycled
   slot, and perform ``inc_graph`` on my edge-counter row);
3. else if my preference is not ⊥, write ⊥ (same round) — I am about to
   join my round's shared coin;
4. else evaluate my round's shared coin from the view
   (``next_coin_value``): contributions are taken from each process no more
   than K-1 rounds ahead of me, at the slot its pointer occupied when it
   flipped *my* round's coin; if the coin is undecided, perform one
   ``walk_step`` on my own slot and write; otherwise adopt the coin's value
   and advance a round.

Boundedness: every field of the cell ranges over a finite domain —
``pref ∈ {0, 1, ⊥}``, each coin counter in ``{-(m+1)..m+1}``, the pointer in
``{0..K}``, each edge counter in ``{0..3K-1}`` — and the scannable memory
adds only handshake bits.  The memory audit of every run certifies this
(experiment E6).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

from repro.coin import logic
from repro.consensus.interface import BOTTOM, ConsensusProtocol, agreed_value
from repro.registers.base import MemoryAudit
from repro.runtime.process import ProcessContext
from repro.runtime.simulation import Simulation
from repro.snapshot.arrows import ArrowScannableMemory
from repro.snapshot.interface import ScannableMemory
from repro.snapshot.sequenced import SequencedScannableMemory
from repro.strip.distance_graph import DistanceGraph
from repro.strip.edge_counters import decode_graph, inc_counters


@dataclass(frozen=True)
class AdsCell:
    """One process's complete shared state (a single scannable-memory cell)."""

    pref: int | None
    coins: tuple[int, ...]  # K+1 bounded walk counters
    current_coin: int  # pointer in {0..K}
    edges: tuple[int, ...]  # n mod-3K edge counters

    def next_slot(self) -> int:
        """Index of the counter for the round currently being flipped."""
        return (self.current_coin + 1) % len(self.coins)


class AdsConsensus(ConsensusProtocol):
    """Attiya–Dolev–Shavit bounded polynomial randomized consensus."""

    name = "ads"

    # The whole protocol state lives in the process's shared cell, so a
    # restarted incarnation can recover by scanning — see _process.
    supports_recovery = True

    def __init__(
        self,
        K: int = 2,
        b_barrier: int = 2,
        m_bound: int | None = None,
        f_factor: int = 4,
        snapshot_kind: str = "arrows",
        ghost_wseqs: bool = False,
    ):
        if K < 2:
            raise ValueError("the protocol needs K >= 2 (the paper sets K = 2)")
        self.K = K
        self.b_barrier = b_barrier
        self.m_bound = m_bound
        self.f_factor = f_factor
        self.snapshot_kind = snapshot_kind
        # Ghost write sequence numbers let post-hoc analyses (virtual
        # global rounds, P3 ordering) identify scans precisely; they are
        # verification instrumentation, never read by the algorithm.
        self.ghost_wseqs = ghost_wseqs
        self._rounds: dict[int, int] = {}
        self._flips: dict[int, int] = {}
        self._scans: dict[int, int] = {}

    # -- setup ---------------------------------------------------------------

    def _initial_cell(self, n: int) -> AdsCell:
        return AdsCell(
            pref=BOTTOM,
            coins=(0,) * (self.K + 1),
            current_coin=0,
            edges=(0,) * n,
        )

    def _make_memory(
        self,
        sim: Simulation,
        n: int,
        initial: AdsCell,
        audit: MemoryAudit,
        name: str = "mem",
    ) -> ScannableMemory:
        if self.snapshot_kind == "arrows":
            return ArrowScannableMemory(
                sim, name, n, initial=initial, audit=audit, ghost=self.ghost_wseqs
            )
        if self.snapshot_kind == "arrows-bloom":
            return ArrowScannableMemory(
                sim, name, n, initial=initial, audit=audit, ghost=self.ghost_wseqs,
                arrow_kind="bloom",
            )
        if self.snapshot_kind == "sequenced":
            return SequencedScannableMemory(sim, name, n, initial=initial, audit=audit)
        if self.snapshot_kind == "embedded":
            from repro.snapshot.embedded import EmbeddedScanSnapshot

            return EmbeddedScanSnapshot(sim, name, n, initial=initial, audit=audit)
        raise ValueError(f"unknown snapshot_kind: {self.snapshot_kind!r}")

    def _setup(self, sim: Simulation, inputs: Sequence[int], audit: MemoryAudit):
        n = len(inputs)
        m = self.m_bound if self.m_bound is not None else logic.default_m(
            self.b_barrier, n, self.f_factor
        )
        initial = self._initial_cell(n)
        memory = self._make_memory(sim, n, initial, audit)
        self._rounds = {pid: 0 for pid in range(n)}
        self._flips = {pid: 0 for pid in range(n)}
        self._scans = {pid: 0 for pid in range(n)}
        self._memory = memory

        def factory(pid: int):
            def body(ctx: ProcessContext):
                return (
                    yield from self._process(
                        ctx, memory, inputs[pid], n, m, initial
                    )
                )

            return body

        return factory

    def _collect_stats(self):
        return {
            "rounds_by_pid": dict(self._rounds),
            "flips_by_pid": dict(self._flips),
            "scans_by_pid": dict(self._scans),
            "scan_attempts": self._memory.scan_attempts(),
        }

    # -- the protocol --------------------------------------------------------

    def _process(
        self,
        ctx: ProcessContext,
        memory: ScannableMemory,
        input_value: int,
        n: int,
        m: int,
        initial: AdsCell,
    ):
        i = ctx.pid
        cell = None
        if ctx.incarnation:
            # Crash recovery: the cell *is* the process's entire protocol
            # state, so a restarted incarnation scans and resumes from its
            # own slot.  To every other process this is indistinguishable
            # from the crashed incarnation merely being slow, so safety is
            # untouched.  (A write that was in flight at the crash either
            # landed or didn't — both are legal interleavings.)
            view = yield from memory.scan(ctx)
            self._scans[i] += 1
            self._m_scans.inc()
            if view[i] != initial:
                cell = view[i]
        if cell is None:
            # Initial write: one inc from the known all-initial state, with
            # the input as preference (the paper's pre-loop write).  Also
            # the recovery path for a process that crashed before its
            # pre-loop write landed: restarting fresh with the original
            # input preserves validity.
            cell = self._inc(i, initial, [initial] * n)
            cell = replace(cell, pref=input_value)
            yield from memory.write(ctx, cell)

        while True:
            view = yield from memory.scan(ctx)
            self._scans[i] += 1
            self._m_scans.inc()
            graph = decode_graph([v.edges for v in view], self.K)
            mine = view[i]
            prefs = [v.pref for v in view]
            self._observe_leader_gap(graph)

            # Line 2: leader with every disagreeing process K behind -> decide.
            if mine.pref is not BOTTOM and self._can_decide(i, graph, prefs, n):
                self._m_decisions.inc()
                return mine.pref

            # Lines 3-4: all leaders agree on a value -> adopt it, advance.
            leaders_value = agreed_value([prefs[l] for l in graph.leaders()])
            if leaders_value is not None:
                cell = self._inc(i, cell, view)
                cell = replace(cell, pref=leaders_value)
                yield from memory.write(ctx, cell)
                continue

            # Lines 5-6: leaders disagree; withdraw my preference first.
            if mine.pref is not BOTTOM:
                cell = replace(cell, pref=BOTTOM)
                yield from memory.write(ctx, cell)
                continue

            # Lines 7-8: resolve the conflict randomly (hook: the paper
            # drives the round's weak shared coin; subclasses may swap the
            # randomness source while keeping the bounded strip).
            cell = self._resolve_conflict(ctx, cell, view, graph, n, m)
            yield from memory.write(ctx, cell)

    def _resolve_conflict(
        self,
        ctx: ProcessContext,
        cell: AdsCell,
        view: Sequence[AdsCell],
        graph: DistanceGraph,
        n: int,
        m: int,
    ) -> AdsCell:
        """Paper lines 7-8: drive my round's weak shared coin."""
        coin = self._next_coin_value(ctx.pid, cell, view, graph, n, m)
        if coin is logic.UNDECIDED:
            return self._flip_next_coin(ctx, cell, m)
        cell = self._inc(ctx.pid, cell, view)
        return replace(cell, pref=coin)

    # -- protocol pieces (the paper's procedures) ------------------------------

    def _observe_leader_gap(self, graph: DistanceGraph) -> None:
        """Track the largest lead any leader holds over the trailing pack.

        The gap drives decidability (line 2 needs disagreeers to trail by
        K), so its excursion over a run is the E4 round-dynamics signal.
        Skipped when metrics are off: the extra longest-path relaxation is
        pure observability cost.
        """
        if self._metrics is None or not self._metrics.enabled:
            return
        leaders = graph.leaders()
        if not leaders:
            return
        dists = graph.all_dists_from(leaders[0])
        finite = [d for d in dists if d != float("-inf")]
        self._m_leader_gap.set_max(max(finite, default=0))

    def _can_decide(
        self, i: int, graph: DistanceGraph, prefs: list, n: int
    ) -> bool:
        """"All who disagree trail by K, and I'm a leader"."""
        if any(not graph.has_edge(i, j) for j in range(n) if j != i):
            return False  # not a leader
        dists = graph.all_dists_from(i)
        return all(
            prefs[j] == prefs[i] or dists[j] >= self.K
            for j in range(n)
            if j != i
        )

    def _inc(self, i: int, cell: AdsCell, view: Sequence[AdsCell]) -> AdsCell:
        """The paper's ``inc(round)``: advance pointer, recycle slot,
        ``inc_graph`` the edge-counter row."""
        pointer = cell.next_slot()
        coins = list(cell.coins)
        coins[(pointer + 1) % len(coins)] = 0  # withdraw round r-K, prepare r+1
        rows = [list(v.edges) for v in view]
        rows[i] = list(cell.edges)  # own row: local knowledge is freshest
        new_row = inc_counters(i, rows, self.K)
        self._rounds[i] += 1
        self._m_rounds.inc()
        self._m_edge_incs.inc(
            sum(1 for old, new in zip(cell.edges, new_row) if old != new)
        )
        return AdsCell(
            pref=cell.pref,
            coins=tuple(coins),
            current_coin=pointer,
            edges=tuple(new_row),
        )

    def _next_coin_value(
        self,
        i: int,
        cell: AdsCell,
        view: Sequence[AdsCell],
        graph: DistanceGraph,
        n: int,
        m: int,
    ):
        """The paper's ``next_coin_value(round)``.

        Assemble my round's coin from the view: process j contributes its
        counter for my round iff it is at most K-1 rounds ahead (``(j, i) ∈
        G`` with ``w(j, i) < K``); the contribution sits ``w(j, i)`` slots
        behind j's *next* slot.  Anyone K or more ahead has withdrawn its
        contribution, which costs my coin at most an extra O(n²) expected
        flips (Lemma 3.2) but never its correctness.
        """
        slots = len(cell.coins)
        counters = [0] * n
        for j in range(n):
            if j == i:
                continue
            if graph.has_edge(j, i) and graph.weight(j, i) < self.K:
                w = graph.weight(j, i)
                other = view[j]
                slot = (other.current_coin - w + 1) % slots
                counters[j] = other.coins[slot]
        counters[i] = cell.coins[cell.next_slot()]
        return logic.coin_value(counters[i], counters, n, self.b_barrier, m)

    def _flip_next_coin(self, ctx: ProcessContext, cell: AdsCell, m: int) -> AdsCell:
        """The paper's ``flip_next_coin``: one walk step on my round's slot."""
        slot = cell.next_slot()
        heads = ctx.rng.random() < 0.5
        coins = list(cell.coins)
        coins[slot] = logic.walk_step_value(coins[slot], heads, m)
        self._flips[ctx.pid] += 1
        self._m_flips.inc()
        self._m_coin_excursion.set_max(abs(coins[slot]))
        return replace(cell, coins=tuple(coins))


class AdsConsensusObject:
    """A one-shot binary consensus *shared object* (composable form).

    The protocol class above owns a whole simulation run; this wrapper
    exposes the same algorithm as an object living inside a larger
    simulation, so higher layers (multivalued consensus, the universal
    construction of :mod:`repro.universal`) can create many instances and
    have processes invoke them mid-program::

        cons = AdsConsensusObject(sim, "cons[0]", n)
        ...
        decision = yield from cons.propose(ctx, my_bit)

    ``propose`` is idempotent per process in the sense that any subset of
    the n processes may show up: absentees look exactly like crashed
    processes, which the protocol tolerates by design (wait-freedom).
    """

    def __init__(
        self,
        sim: Simulation,
        name: str,
        n: int,
        K: int = 2,
        b_barrier: int = 2,
        m_bound: int | None = None,
        f_factor: int = 4,
        snapshot_kind: str = "arrows",
        audit: MemoryAudit | None = None,
    ):
        self.name = name
        self.n = n
        self._protocol = AdsConsensus(
            K=K,
            b_barrier=b_barrier,
            m_bound=m_bound,
            f_factor=f_factor,
            snapshot_kind=snapshot_kind,
        )
        self._m = (
            m_bound
            if m_bound is not None
            else logic.default_m(b_barrier, n, f_factor)
        )
        self._protocol._bind_metrics(sim)
        self._initial = self._protocol._initial_cell(n)
        self._memory = self._protocol._make_memory(
            sim, n, self._initial, audit or MemoryAudit(), name=name
        )
        self._protocol._rounds = {pid: 0 for pid in range(n)}
        self._protocol._flips = {pid: 0 for pid in range(n)}
        self._protocol._scans = {pid: 0 for pid in range(n)}
        self._protocol._memory = self._memory
        self.decisions: dict[int, int] = {}

    def propose(self, ctx: ProcessContext, value: int):
        """Run the consensus protocol to completion; return the decision."""
        if value not in (0, 1):
            raise ValueError(f"binary consensus: value must be 0 or 1, got {value!r}")
        if ctx.pid in self.decisions:
            return self.decisions[ctx.pid]
        decision = yield from self._protocol._process(
            ctx, self._memory, value, self.n, self._m, self._initial
        )
        self.decisions[ctx.pid] = decision
        return decision

    def stats(self) -> dict:
        return self._protocol._collect_stats()


def pref_reader(sim: Simulation, pid: int):
    """Read ``pid``'s currently written preference (for SplitAdversary)."""
    memory = sim.shared.get("mem")
    if memory is None:
        return None
    cell = memory.peek_view()[pid]
    return getattr(cell, "pref", None)
