"""Causal latency attribution over recorded event timelines.

The paper's headline claim — polynomial expected time against a strong
adaptive adversary — is a statement about *schedules*, and flat counters
cannot say which part of a schedule dominated the latency.  This module
rebuilds the happens-before structure of a recorded run and attributes it:

- the **DAG**: one node per atomic :class:`~repro.runtime.events.OpEvent`,
  program-order edges between consecutive operations of each process, and
  writer→reader edges from the last visible write of a register to each
  read that observed it (Lamport's global-time model makes "last visible
  write" well defined — events carry unique increasing steps);
- the **critical path** to each process's decide event (its last atomic
  operation): the longest chain of causally ordered operations that had to
  happen, one after another, before that process could decide.  Everything
  off the path was schedulable in parallel — the path *is* the latency the
  adversary forced;
- the **attribution**: each path node is classified into a layer
  (consensus round update / coin walk / scan collect / scan retry /
  register op) via its enclosing spans, and counted per process, so the
  report answers "where did the time go" per layer and "whose steps
  mattered" per pid;
- the **adversary table**: steps granted per pid versus steps on the
  critical path per pid — a scheduler that grants many steps that never
  make the path is burning the victim's budget without delaying it.

Everything is a pure function of the recorded trace: two runs with the
same seed yield byte-identical :meth:`CausalReport.to_json` output.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.runtime.events import OpEvent, OpSpan

#: Layer names, in reporting order (stable across runs).
LAYERS: tuple[str, ...] = (
    "round.update",
    "coin.walk",
    "scan.collect",
    "scan.retry",
    "register.op",
)

#: Event kinds whose value becomes visible to subsequent readers.
_VISIBLE_WRITES = frozenset({"write", "write-commit", "atomic_flip"})

#: A clean double-collect reads every cell twice; a third read of the same
#: cell inside one scan span means the collect loop went round again.
_SCAN_CLEAN_READS = 2


def classify_event(event: OpEvent, enclosing: OpSpan | None) -> str:
    """Base layer of one event given its innermost enclosing span.

    Scan-retry refinement happens in :func:`_classify_all` (it needs the
    per-span read history, not just one event).
    """
    if event.kind == "atomic_flip" or ".c[" in event.target:
        return "coin.walk"
    if enclosing is not None:
        if enclosing.kind == "coin_read":
            return "coin.walk"
        if enclosing.kind == "scan":
            return "scan.collect"
        if enclosing.kind == "write":
            return "round.update"
    return "register.op"


def _innermost_spans(
    events: list[OpEvent], spans: Iterable[OpSpan]
) -> list[OpSpan | None]:
    """The innermost completed span of the owning pid enclosing each event.

    One pass per pid over (events, spans) both sorted by step: spans open
    when the cursor passes their invoke step and close when it passes their
    response step; the innermost active one is the top of the stack.
    """
    by_pid_spans: dict[int, list[OpSpan]] = {}
    for span in spans:
        if span.invoke_step is None or span.response_step is None:
            continue
        by_pid_spans.setdefault(span.pid, []).append(span)
    for pid_spans in by_pid_spans.values():
        pid_spans.sort(key=lambda s: (s.invoke_step, s.span_id))

    cursor: dict[int, int] = {pid: 0 for pid in by_pid_spans}
    stack: dict[int, list[OpSpan]] = {pid: [] for pid in by_pid_spans}
    result: list[OpSpan | None] = []
    for event in events:
        pid_spans = by_pid_spans.get(event.pid)
        if pid_spans is None:
            result.append(None)
            continue
        i = cursor[event.pid]
        active = stack[event.pid]
        while i < len(pid_spans) and pid_spans[i].invoke_step <= event.step:
            active.append(pid_spans[i])
            i += 1
        cursor[event.pid] = i
        while active and active[-1].response_step < event.step:
            active.pop()
        # Nested spans close out of order only at the stack top in this
        # model (a process's spans are properly nested); guard anyway by
        # scanning down for the innermost one still covering the step.
        enclosing = None
        for span in reversed(active):
            if span.response_step >= event.step:
                enclosing = span
                break
        result.append(enclosing)
    return result


def _classify_all(
    events: list[OpEvent], spans: Iterable[OpSpan]
) -> list[str]:
    """Layer of every event, with the scan-retry refinement applied."""
    enclosing = _innermost_spans(events, spans)
    reads_in_scan: dict[tuple[int, str], int] = {}
    layers: list[str] = []
    for event, span in zip(events, enclosing):
        layer = classify_event(event, span)
        if layer == "scan.collect" and event.kind == "read":
            key = (span.span_id, event.target)  # type: ignore[union-attr]
            seen = reads_in_scan.get(key, 0) + 1
            reads_in_scan[key] = seen
            if seen > _SCAN_CLEAN_READS:
                layer = "scan.retry"
        layers.append(layer)
    return layers


@dataclass(frozen=True)
class CriticalPath:
    """The longest causal chain ending at one process's decide event."""

    pid: int
    length: int
    per_layer: dict[str, int]
    per_pid: dict[int, int]
    first_step: int
    last_step: int

    def to_dict(self) -> dict[str, Any]:
        return {
            "pid": self.pid,
            "length": self.length,
            "per_layer": {k: self.per_layer[k] for k in sorted(self.per_layer)},
            "per_pid": {
                str(k): self.per_pid[k] for k in sorted(self.per_pid)
            },
            "first_step": self.first_step,
            "last_step": self.last_step,
        }


@dataclass(frozen=True)
class CausalReport:
    """Happens-before analysis of one recorded run.

    ``paths`` maps each decided pid to the critical path of its decide
    event; ``critical_pid`` names the longest of them (ties break to the
    smaller pid, so the report is deterministic).  ``adversary`` has one
    row per pid: ``granted`` (atomic steps the scheduler gave it),
    ``on_critical_path`` (how many landed on the overall critical path)
    and ``share`` — low share means the adversary burned that process's
    budget without delaying the decision.
    """

    total_events: int
    decided: list[int]
    paths: dict[int, CriticalPath]
    critical_pid: int | None
    critical_length: int
    adversary: list[dict[str, Any]] = field(default_factory=list)

    def per_layer(self) -> dict[str, int]:
        """Layer breakdown of the overall critical path (zeros included)."""
        breakdown = dict.fromkeys(LAYERS, 0)
        if self.critical_pid is not None:
            breakdown.update(self.paths[self.critical_pid].per_layer)
        return breakdown

    def to_dict(self) -> dict[str, Any]:
        return {
            "total_events": self.total_events,
            "decided": list(self.decided),
            "critical_pid": self.critical_pid,
            "critical_length": self.critical_length,
            "per_layer": self.per_layer(),
            "paths": {
                str(pid): self.paths[pid].to_dict()
                for pid in sorted(self.paths)
            },
            "adversary": list(self.adversary),
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)


def build_causal_report(
    events: list[OpEvent],
    spans: Iterable[OpSpan] = (),
    decisions: Mapping[int, Any] | None = None,
    steps_by_pid: Mapping[int, int] | None = None,
) -> CausalReport:
    """Build the happens-before DAG and attribute its critical paths.

    ``events`` must be a recorded timeline (``record_events=True``); steps
    are unique and increasing, so "the last visible write before this
    read" is well defined.  ``decisions`` selects which pids get a decide
    node (default: every pid that appears); ``steps_by_pid`` feeds the
    granted column of the adversary table (default: events per pid).
    """
    n_events = len(events)
    layers = _classify_all(events, spans)

    # Longest-path DP over the DAG, single pass (events are topologically
    # ordered by step).  dist[i] counts nodes on the longest chain ending
    # at i; choose[i] is the predecessor achieving it (ties break to the
    # earlier event, keeping reconstruction deterministic).
    dist = [1] * n_events
    choose: list[int | None] = [None] * n_events
    last_of_pid: dict[int, int] = {}
    last_write_of: dict[str, int] = {}
    for i, event in enumerate(events):
        preds = []
        prev = last_of_pid.get(event.pid)
        if prev is not None:
            preds.append(prev)
        if event.kind == "read":
            writer = last_write_of.get(event.target)
            if writer is not None:
                preds.append(writer)
        for p in sorted(preds):
            if dist[p] + 1 > dist[i]:
                dist[i] = dist[p] + 1
                choose[i] = p
        last_of_pid[event.pid] = i
        if event.kind in _VISIBLE_WRITES:
            last_write_of[event.target] = i

    decided = (
        sorted(decisions) if decisions is not None else sorted(last_of_pid)
    )
    paths: dict[int, CriticalPath] = {}
    for pid in decided:
        tail = last_of_pid.get(pid)
        if tail is None:
            continue
        per_layer = dict.fromkeys(LAYERS, 0)
        per_pid: dict[int, int] = {}
        node: int | None = tail
        first = events[tail].step
        while node is not None:
            per_layer[layers[node]] += 1
            per_pid[events[node].pid] = per_pid.get(events[node].pid, 0) + 1
            first = events[node].step
            node = choose[node]
        paths[pid] = CriticalPath(
            pid=pid,
            length=dist[tail],
            per_layer=per_layer,
            per_pid=per_pid,
            first_step=first,
            last_step=events[tail].step,
        )

    critical_pid: int | None = None
    critical_length = 0
    for pid in sorted(paths):
        if paths[pid].length > critical_length:
            critical_pid, critical_length = pid, paths[pid].length

    granted: Mapping[int, int]
    if steps_by_pid is not None:
        granted = steps_by_pid
    else:
        granted = {}
        for event in events:
            granted[event.pid] = granted.get(event.pid, 0) + 1  # type: ignore[index]
    on_path = (
        paths[critical_pid].per_pid if critical_pid is not None else {}
    )
    adversary = []
    for pid in sorted(granted):
        g = granted[pid]
        c = on_path.get(pid, 0)
        adversary.append(
            {
                "pid": pid,
                "granted": g,
                "on_critical_path": c,
                "share": round(c / g, 4) if g else 0.0,
            }
        )

    return CausalReport(
        total_events=n_events,
        decided=decided,
        paths=paths,
        critical_pid=critical_pid,
        critical_length=critical_length,
        adversary=adversary,
    )


def causal_report_for(sim: Any, outcome: Any = None) -> CausalReport:
    """Convenience wrapper: analyze a finished simulation.

    Raises :class:`ValueError` when the run recorded no events — the DAG
    needs the timeline, so construct the Simulation with
    ``record_events=True``.
    """
    if not sim.trace.events:
        raise ValueError(
            "causal analysis needs the event timeline — construct the "
            "Simulation with record_events=True"
        )
    decisions = outcome.decisions if outcome is not None else None
    steps = outcome.steps_by_pid if outcome is not None else None
    return build_causal_report(
        sim.trace.events, sim.trace.spans, decisions, steps
    )
