"""Projections over the run ledger: history, trends, gates, flakiness.

The ledger (:mod:`repro.obs.ledger`) is the event log; this module is the
read side.  Every projection is a pure function of a record list, so the
same ledger bytes always produce the same answers:

- :func:`history_rows` — per-experiment inventory (how many records,
  how many distinct fingerprints, whether any fingerprint is contested);
- :func:`trend_series` / :func:`trend_rows` — the paper's headline
  quantities as *series over recorded runs* instead of one-shot numbers:
  total steps, steps/sec, expected steps (sweep sample values), scan
  retries, disagreement rate, and the memory high-water mark;
- :func:`detect_regressions` — a rolling-baseline gate: the latest value
  of each (experiment, metric) trend is compared against the mean of the
  preceding window using the same relative-tolerance comparator as the
  benchmark gate (:func:`repro.analysis.benchgate.within_tolerance`);
- :func:`detect_violations` — the flakiness detector: any fingerprint
  filed under two *different* deterministic identities is a determinism
  violation, which in this repository (bit-identical replay everywhere)
  is alarm-grade, not noise;
- :func:`history_check` — the combination ``repro history check`` runs
  and CI gates on.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.analysis.benchgate import within_tolerance
from repro.obs.ledger import LedgerRecord
from repro.obs.metrics import parse_key

#: Rolling-baseline window (records) for regression detection.
DEFAULT_WINDOW = 5

#: Relative tolerance for the rolling-baseline gate (mirrors the bench
#: gate's default so one number means one thing repo-wide).
DEFAULT_TOLERANCE = 0.10


# -- trend metric extractors -------------------------------------------------


def _from_outcome(record: LedgerRecord, *keys: str) -> float | None:
    for key in keys:
        value = record.outcome.get(key)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return float(value)
    return None


def _steps(record: LedgerRecord) -> float | None:
    return _from_outcome(record, "total_steps", "steps_total", "steps")


def _steps_per_sec(record: LedgerRecord) -> float | None:
    """Deepest-first scan of the (host-measured) timings for a throughput
    figure — benchmark and profile records carry one, sweeps do not."""

    def scan(payload: Any) -> float | None:
        if isinstance(payload, Mapping):
            for key in sorted(payload):
                lowered = str(key).lower()
                value = payload[key]
                if "per_sec" in lowered and isinstance(value, (int, float)):
                    return float(value)
                found = scan(value)
                if found is not None:
                    return found
        return None

    return scan(record.timings)


def _expected_steps(record: LedgerRecord) -> float | None:
    """Sweep sample values: each sweep-cell record measured one seeded
    run's step count, so the trend over records *is* the expected-steps
    distribution over time."""
    if record.kind != "sweep":
        return None
    return _from_outcome(record, "value")


def _counter_total(record: LedgerRecord, name: str) -> float | None:
    counters = (record.metrics or {}).get("counters")
    if not isinstance(counters, Mapping):
        return None
    values = [
        v for k, v in counters.items() if parse_key(str(k))[0] == name
    ]
    return float(sum(values)) if values else None


def _scan_retries(record: LedgerRecord) -> float | None:
    direct = _counter_total(record, "snapshot.scan_retries")
    if direct is not None:
        return direct
    return _from_outcome(record, "scan_retries")


def _disagreement_rate(record: LedgerRecord) -> float | None:
    rate = _from_outcome(record, "disagreement_rate")
    if rate is not None:
        return rate
    disagreement = record.outcome.get("disagreement")
    if isinstance(disagreement, bool):
        return float(disagreement)
    failures = record.outcome.get("failures")
    runs = record.outcome.get("runs")
    if isinstance(failures, list) and isinstance(runs, int) and runs > 0:
        return len(failures) / runs
    return None


def _memory_high_water(record: LedgerRecord) -> float | None:
    gauges = (record.metrics or {}).get("gauges")
    if isinstance(gauges, Mapping):
        values = [
            v
            for k, v in gauges.items()
            if parse_key(str(k))[0] == "memory.max_magnitude"
        ]
        if values:
            return float(max(values))
    audit = record.outcome.get("audit")
    if isinstance(audit, Mapping):
        value = audit.get("max_magnitude")
        if isinstance(value, (int, float)):
            return float(value)
    return None


#: The named trend metrics ``repro history trends`` exposes, in display
#: order.  Each extractor returns ``None`` when a record carries no value
#: for that metric (records never all carry everything).
TREND_METRICS: dict[str, Callable[[LedgerRecord], float | None]] = {
    "steps": _steps,
    "steps_per_sec": _steps_per_sec,
    "expected_steps": _expected_steps,
    "scan_retries": _scan_retries,
    "disagreement_rate": _disagreement_rate,
    "memory_high_water": _memory_high_water,
}


# -- projections -------------------------------------------------------------


def filter_records(
    records: Iterable[LedgerRecord],
    experiment: str = "",
    kind: str = "",
) -> list[LedgerRecord]:
    """Records matching an experiment substring and/or an exact kind."""
    out = []
    for record in records:
        if experiment and experiment not in record.experiment:
            continue
        if kind and record.kind != kind:
            continue
        out.append(record)
    return out


def history_rows(records: Sequence[LedgerRecord]) -> list[dict[str, Any]]:
    """Per-(kind, experiment) inventory rows, in first-seen order."""
    groups: dict[tuple[str, str], list[LedgerRecord]] = {}
    for record in records:
        groups.setdefault((record.kind, record.experiment), []).append(record)
    rows = []
    for (kind, experiment), group in groups.items():
        by_fp: dict[str, set[str]] = {}
        for record in group:
            by_fp.setdefault(record.fingerprint, set()).add(record.identity())
        rows.append(
            {
                "kind": kind,
                "experiment": experiment,
                "records": len(group),
                "fingerprints": len(by_fp),
                "contested": sum(1 for ids in by_fp.values() if len(ids) > 1),
                "code_versions": len({r.code_version for r in group}),
            }
        )
    return rows


def trend_series(
    records: Sequence[LedgerRecord],
    metric: str,
    experiment: str = "",
) -> list[list[float]]:
    """``[record_index, value]`` points for one metric, in append order.

    The x-axis is the record's position in the ledger — append order is
    the ledger's notion of time (no wall clocks in deterministic records).
    """
    extractor = TREND_METRICS.get(metric)
    if extractor is None:
        raise KeyError(
            f"unknown trend metric {metric!r}; one of {sorted(TREND_METRICS)}"
        )
    points = []
    for index, record in enumerate(records):
        if experiment and experiment not in record.experiment:
            continue
        value = extractor(record)
        if value is not None:
            points.append([float(index), value])
    return points


def trend_rows(
    records: Sequence[LedgerRecord], experiment: str = ""
) -> list[dict[str, Any]]:
    """One row per (experiment, metric) trend with at least one point —
    the table behind ``repro history trends`` and the dashboard section."""
    experiments: list[str] = []
    for record in records:
        if record.experiment not in experiments:
            experiments.append(record.experiment)
    if experiment:
        experiments = [e for e in experiments if experiment in e]
    rows = []
    for exp in experiments:
        group = [r for r in records if r.experiment == exp]
        for metric, extractor in TREND_METRICS.items():
            values = [v for v in (extractor(r) for r in group) if v is not None]
            if not values:
                continue
            points = [[float(i), v] for i, v in enumerate(values)]
            rows.append(
                {
                    "experiment": exp,
                    "metric": metric,
                    "points": points,
                    "n": len(values),
                    "first": values[0],
                    "last": values[-1],
                    "mean": statistics.fmean(values),
                }
            )
    return rows


@dataclass(frozen=True)
class TrendAlert:
    """The latest value of one trend left its rolling-baseline band."""

    experiment: str
    metric: str
    baseline: float
    latest: float
    window: int
    tolerance: float

    @property
    def drift(self) -> float:
        denom = max(abs(self.baseline), abs(self.latest), 1e-12)
        return abs(self.latest - self.baseline) / denom

    def __str__(self) -> str:
        return (
            f"{self.experiment} {self.metric}: latest {self.latest:g} "
            f"deviates {self.drift:.1%} from the rolling baseline "
            f"{self.baseline:g} (window {self.window}, "
            f"tolerance {self.tolerance:.0%})"
        )


def detect_regressions(
    records: Sequence[LedgerRecord],
    window: int = DEFAULT_WINDOW,
    tolerance: float = DEFAULT_TOLERANCE,
    experiment: str = "",
) -> list[TrendAlert]:
    """Rolling-baseline regression detection over every trend.

    For each (experiment, metric) series with at least two points, the
    latest value is compared against the mean of up to ``window``
    preceding values with the bench-gate comparator.  Only the *latest*
    value is gated: a historical excursion that later recovered is data,
    not a standing alarm.
    """
    alerts = []
    for row in trend_rows(records, experiment=experiment):
        values = [p[1] for p in row["points"]]
        if len(values) < 2:
            continue
        baseline_values = values[-(window + 1) : -1]
        baseline = statistics.fmean(baseline_values)
        latest = values[-1]
        if not within_tolerance(baseline, latest, tolerance):
            alerts.append(
                TrendAlert(
                    experiment=row["experiment"],
                    metric=row["metric"],
                    baseline=baseline,
                    latest=latest,
                    window=len(baseline_values),
                    tolerance=tolerance,
                )
            )
    return alerts


@dataclass(frozen=True)
class DeterminismViolation:
    """One fingerprint filed under more than one deterministic identity."""

    fingerprint: str
    experiment: str
    kind: str
    records: int
    identities: int

    def __str__(self) -> str:
        return (
            f"{self.experiment} ({self.kind}): fingerprint "
            f"{self.fingerprint[:12]}… has {self.identities} distinct "
            f"outcomes across {self.records} records — the same (seed, "
            "config, code-version) must always reproduce byte-identically"
        )


def detect_violations(
    records: Sequence[LedgerRecord],
) -> list[DeterminismViolation]:
    """Flag every contested fingerprint (the flakiness detector)."""
    groups: dict[str, list[LedgerRecord]] = {}
    for record in records:
        groups.setdefault(record.fingerprint, []).append(record)
    violations = []
    for fingerprint, group in groups.items():
        identities = {r.identity() for r in group}
        if len(identities) > 1:
            violations.append(
                DeterminismViolation(
                    fingerprint=fingerprint,
                    experiment=group[0].experiment,
                    kind=group[0].kind,
                    records=len(group),
                    identities=len(identities),
                )
            )
    return violations


@dataclass
class HistoryCheck:
    """Everything ``repro history check`` gates on."""

    records: int
    regressions: list[TrendAlert] = field(default_factory=list)
    violations: list[DeterminismViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.regressions and not self.violations

    def summary(self) -> str:
        if self.ok:
            return (
                f"history check: OK — {self.records} records, no trend "
                "regressions, no determinism violations"
            )
        return (
            f"history check: FAILED — {len(self.regressions)} trend "
            f"regression(s), {len(self.violations)} determinism "
            f"violation(s) across {self.records} records"
        )


def history_check(
    records: Sequence[LedgerRecord],
    window: int = DEFAULT_WINDOW,
    tolerance: float = DEFAULT_TOLERANCE,
    experiment: str = "",
) -> HistoryCheck:
    """Run both detectors; the projection behind ``repro history check``."""
    return HistoryCheck(
        records=len(records),
        regressions=detect_regressions(
            records, window=window, tolerance=tolerance, experiment=experiment
        ),
        violations=detect_violations(
            filter_records(records, experiment=experiment)
        ),
    )
