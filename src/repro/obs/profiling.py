"""Wall-clock profiling sections backed by the metrics registry.

The simulator's own complexity measurements are *logical* (atomic steps on
the global clock); this module adds the physical counterpart: named
``perf_counter`` sections whose durations land in a registry histogram
(``profile.<name>``, seconds), so benchmark harnesses can report both
"steps taken" and "wall-clock spent" from the same snapshot.

Because timing instrumentation is only trustworthy if its own cost is
known, :func:`measure_overhead` self-tests the per-section overhead by
timing empty sections; tests assert it stays far below the sections being
measured.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator

from repro.obs.metrics import MetricsRegistry


class Profiler:
    """Named wall-clock sections recording into ``profile.*`` histograms."""

    def __init__(self, registry: MetricsRegistry | None = None):
        self.registry = registry if registry is not None else MetricsRegistry()

    @contextmanager
    def section(self, name: str) -> Iterator[None]:
        """Time a ``with`` block into the ``profile.<name>`` histogram."""
        histogram = self.registry.histogram(f"profile.{name}")
        start = time.perf_counter()
        try:
            yield
        finally:
            histogram.observe(time.perf_counter() - start)

    def seconds(self, name: str) -> float:
        """Total wall-clock seconds recorded for a section so far."""
        return sum(self.registry.histogram(f"profile.{name}").observations)


def measure_overhead(repeats: int = 1000) -> float:
    """Mean wall-clock cost (seconds) of one empty profiled section.

    The overhead self-test: what a ``section`` costs when the body is
    empty.  Kept out of any registry so the measurement itself does not
    pollute snapshots.
    """
    profiler = Profiler(MetricsRegistry())
    start = time.perf_counter()
    for _ in range(repeats):
        with profiler.section("overhead_selftest"):
            pass
    elapsed = time.perf_counter() - start
    return elapsed / repeats
