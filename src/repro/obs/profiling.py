"""Wall-clock profiling sections backed by the metrics registry.

The simulator's own complexity measurements are *logical* (atomic steps on
the global clock); this module adds the physical counterpart: named
``perf_counter`` sections whose durations land in a registry histogram
(``profile.<name>``, seconds), so benchmark harnesses can report both
"steps taken" and "wall-clock spent" from the same snapshot.

Because timing instrumentation is only trustworthy if its own cost is
known, :func:`measure_overhead` self-tests the per-section overhead by
timing empty sections; tests assert it stays far below the sections being
measured.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator

from repro.obs.metrics import MetricsRegistry


class Profiler:
    """Named wall-clock sections recording into ``profile.*`` histograms."""

    def __init__(self, registry: MetricsRegistry | None = None):
        self.registry = registry if registry is not None else MetricsRegistry()

    @contextmanager
    def section(self, name: str) -> Iterator[None]:
        """Time a ``with`` block into the ``profile.<name>`` histogram."""
        histogram = self.registry.histogram(f"profile.{name}")
        start = time.perf_counter()
        try:
            yield
        finally:
            histogram.observe(time.perf_counter() - start)

    def seconds(self, name: str) -> float:
        """Total wall-clock seconds recorded for a section so far."""
        return sum(self.registry.histogram(f"profile.{name}").observations)

    def sections(self) -> dict[str, dict[str, float]]:
        """Summary statistics of every recorded section, keyed by name
        (the ``profile.`` prefix stripped), sorted for determinism."""
        snapshot = self.registry.snapshot()
        return {
            key.removeprefix("profile."): summary
            for key, summary in sorted(snapshot.histograms.items())
            if key.startswith("profile.")
        }


def measure_overhead(repeats: int = 1000) -> float:
    """Mean wall-clock cost (seconds) of one empty profiled section.

    The overhead self-test: what a ``section`` costs when the body is
    empty.  Kept out of any registry so the measurement itself does not
    pollute snapshots.
    """
    profiler = Profiler(MetricsRegistry())
    start = time.perf_counter()
    for _ in range(repeats):
        with profiler.section("overhead_selftest"):
            pass
    elapsed = time.perf_counter() - start
    return elapsed / repeats


def measure_off_path_overhead(iterations: int = 2000, repeats: int = 9) -> float:
    """Ratio (disabled-instrumentation / bare) of a fixed workload.

    The "zero-cost when off" claim, made testable: both variants run the
    same deterministic arithmetic chunk per iteration; the instrumented
    variant additionally drives one pre-bound counter ``inc`` and one
    histogram ``observe`` against a ``MetricsRegistry(enabled=False)`` —
    the exact shape of the simulator's hot path with metrics off, where
    both handles resolve to the shared no-op instrument.

    The two variants are timed *interleaved* (one bare measurement, one
    instrumented, repeated) so slow load drift hits both sides equally,
    and best-of-``repeats`` is taken on each side because timing noise is
    one-sided.  Tests assert the ratio stays under 1.05.
    """
    registry = MetricsRegistry(enabled=False)
    counter = registry.counter("selftest.off_path")
    histogram = registry.histogram("selftest.off_path")

    def bare() -> float:
        start = time.perf_counter()
        for _ in range(iterations):
            acc = 0
            for j in range(200):
                acc += j
        return time.perf_counter() - start

    def instrumented() -> float:
        start = time.perf_counter()
        for _ in range(iterations):
            acc = 0
            for j in range(200):
                acc += j
            counter.inc()
            histogram.observe(acc)
        return time.perf_counter() - start

    bare()  # warm both code objects before measuring
    instrumented()
    bare_best = float("inf")
    instrumented_best = float("inf")
    for _ in range(repeats):
        bare_best = min(bare_best, bare())
        instrumented_best = min(instrumented_best, instrumented())
    return instrumented_best / bare_best
