"""Deterministic metric time series sampled every K scheduler steps.

Flat end-of-run counters say *that* a run took N steps; a time series says
*when* the steps were spent — which stretch of the schedule drove the scan
retries, when the coin walks flipped, how the round counter advanced.  A
:class:`SeriesRecorder` rides on a :class:`~repro.obs.metrics.MetricsRegistry`
and, every ``every`` scheduler steps, samples the tracked counters/gauges
into label-keyed ``[step, value]`` point lists.

Everything is deterministic for a fixed seed: sampling is keyed to the
logical clock (the global step index), never wall time, so two identical
runs produce byte-identical series.  Series serialize inside
:class:`~repro.obs.metrics.MetricsSnapshot` and survive the process
boundary: ``relabel`` rekeys them, :func:`merge_series_payloads` unions
them (counters sum at equal steps, gauges take the max), and
``MetricsRegistry.absorb`` carries worker series into the parent registry
intact.

Like :class:`~repro.obs.metrics.Histogram`, a series may be *bounded*
(``max_points``): the recorder then keeps the most recent points as a ring
and counts what it dropped, so memory stays O(max_points) on runs of any
length while the payload still reports how much history was shed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from repro.obs.metrics import MetricsRegistry, parse_key

#: Metric-name prefixes sampled by default: the quantities the paper's
#: analysis decomposes over time (steps, scans/retries, rounds, coin flips).
DEFAULT_TRACK: tuple[str, ...] = (
    "runtime.steps",
    "snapshot.scans",
    "snapshot.scan_retries",
    "consensus.round_advances",
    "consensus.coin_flips",
    "coin.flips",
    "faults.injected",
)


@dataclass(frozen=True)
class SeriesSpec:
    """How a :class:`SeriesRecorder` samples.

    ``every``
        Sampling period in scheduler steps (every K-th step is eligible).
    ``max_points``
        Bound on retained points per series (``None`` = keep everything);
        when exceeded the oldest points are dropped and counted.
    ``track``
        Metric-name prefixes to sample; an instrument is tracked when its
        *name* (labels stripped) starts with any of these.
    """

    every: int = 64
    max_points: int | None = None
    track: tuple[str, ...] = DEFAULT_TRACK

    def __post_init__(self) -> None:
        if self.every < 1:
            raise ValueError(f"every must be >= 1, got {self.every}")
        if self.max_points is not None and self.max_points < 1:
            raise ValueError(
                f"max_points must be >= 1 or None, got {self.max_points}"
            )

    def tracks(self, name: str) -> bool:
        return any(name.startswith(prefix) for prefix in self.track)


class SeriesRecorder:
    """Samples a registry's tracked instruments on the logical clock.

    The simulation calls :meth:`maybe_sample` once per scheduler step; the
    recorder samples when the step index crosses a period boundary, at most
    once per step (re-entrant calls are idempotent).  Call :meth:`sample`
    directly to force a final sample at run end so the last point always
    reflects the finished run.
    """

    def __init__(
        self, registry: MetricsRegistry, spec: SeriesSpec | None = None
    ) -> None:
        self.registry = registry
        self.spec = spec or SeriesSpec()
        self._points: dict[str, list[list[float]]] = {}
        self._kinds: dict[str, str] = {}
        self._dropped: dict[str, int] = {}
        self._last_step: int | None = None

    # -- sampling ------------------------------------------------------------

    def maybe_sample(self, step: int) -> None:
        """Sample iff ``step`` lands on the period (and wasn't sampled)."""
        if step % self.spec.every == 0:
            self.sample(step)

    def sample(self, step: int) -> None:
        """Record one point per tracked instrument at logical time ``step``."""
        if step == self._last_step:
            return
        self._last_step = step
        for key, counter in self.registry._counters.items():
            if self.spec.tracks(parse_key(key)[0]):
                self._append(key, "counter", step, counter.value)
        for key, gauge in self.registry._gauges.items():
            if self.spec.tracks(parse_key(key)[0]):
                self._append(key, "gauge", step, gauge.value)

    def _append(self, key: str, kind: str, step: int, value: float) -> None:
        points = self._points.get(key)
        if points is None:
            points = self._points[key] = []
            self._kinds[key] = kind
            self._dropped[key] = 0
        points.append([step, value])
        limit = self.spec.max_points
        if limit is not None and len(points) > limit:
            del points[: len(points) - limit]
            self._dropped[key] += 1

    # -- export --------------------------------------------------------------

    def export(self) -> dict[str, dict[str, Any]]:
        """Serializable payloads, sorted by key (deterministic)."""
        return {
            key: {
                "kind": self._kinds[key],
                "every": self.spec.every,
                "points": [list(p) for p in self._points[key]],
                "dropped": self._dropped[key],
            }
            for key in sorted(self._points)
        }

    def reset(self) -> None:
        self._points.clear()
        self._kinds.clear()
        self._dropped.clear()
        self._last_step = None


def merge_series_payloads(
    a: Mapping[str, Any] | None, b: Mapping[str, Any] | None
) -> dict[str, Any]:
    """Union two series payloads for the same key; commutative/associative.

    Points are unioned by step: at equal steps counters sum (two workers'
    contributions to one total) and gauges take the max, mirroring
    counter/gauge semantics in :func:`repro.obs.metrics.merge_snapshots`.
    In the common path workers' series are relabelled per task before
    merging, so keys never collide and payloads pass through verbatim.
    """
    if not a:
        return _copy_payload(b or {})
    if not b:
        return _copy_payload(a)
    kind = a.get("kind", "counter")
    combined: dict[float, float] = {}
    for step, value in _iter_points(a):
        combined[step] = value
    for step, value in _iter_points(b):
        if step in combined:
            if kind == "gauge":
                combined[step] = max(combined[step], value)
            else:
                combined[step] += value
        else:
            combined[step] = value
    return {
        "kind": kind,
        "every": min(a.get("every", 1), b.get("every", 1)),
        "points": [[step, combined[step]] for step in sorted(combined)],
        "dropped": int(a.get("dropped", 0)) + int(b.get("dropped", 0)),
    }


def _iter_points(payload: Mapping[str, Any]) -> Iterable[tuple[float, float]]:
    for point in payload.get("points", []):
        yield point[0], point[1]


def _copy_payload(payload: Mapping[str, Any]) -> dict[str, Any]:
    copied = dict(payload)
    copied["points"] = [list(p) for p in payload.get("points", [])]
    return copied
