"""Self-contained HTML dashboard: metrics, series, causality, bench deltas.

``repro report --out report.html`` renders one file answering, offline:

- what a reference run measured (the metrics snapshot, as a table);
- how the tracked counters *trended* over the schedule (inline SVG
  sparklines of the :mod:`repro.obs.timeseries` series — no external
  assets, no scripts);
- where the latency came from (the :mod:`repro.obs.causality` critical
  path, per layer and per process, plus the adversary table);
- whether the benchmark artifacts drifted from their checked-in baselines
  (one row per ``BENCH_*.json``, via the same comparison the CI
  bench-gate runs).

The output is **byte-stable**: no timestamps, no environment probes, all
iteration orders sorted and all floats formatted through one helper — two
renders over the same inputs are identical files, so the report itself can
be diffed and gated.
"""

from __future__ import annotations

import html
import pathlib
from typing import Any, Iterable, Mapping, Sequence

from repro.analysis.benchgate import GateResult, check_experiments
from repro.obs.causality import CausalReport
from repro.obs.metrics import MetricsSnapshot

#: How many gate problems the dashboard lists per benchmark before eliding.
_MAX_PROBLEMS_SHOWN = 4


def _esc(value: Any) -> str:
    return html.escape(str(value), quote=True)


def _fmt(value: Any) -> str:
    """One number formatter for the whole report (byte-stability)."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return f"{value:.4f}"
    return str(value)


def sparkline(
    points: Sequence[Sequence[float]], width: int = 220, height: int = 36
) -> str:
    """Inline SVG sparkline for ``[step, value]`` points (deterministic).

    Coordinates are formatted to two decimals through one f-string, so the
    same points always render the same bytes.
    """
    if not points:
        return '<svg class="spark" width="220" height="36"></svg>'
    xs = [float(p[0]) for p in points]
    ys = [float(p[1]) for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    pad = 2.0
    coords = []
    for x, y in zip(xs, ys):
        px = pad + (x - x_lo) / x_span * (width - 2 * pad)
        py = height - pad - (y - y_lo) / y_span * (height - 2 * pad)
        coords.append(f"{px:.2f},{py:.2f}")
    return (
        f'<svg class="spark" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}">'
        f'<polyline fill="none" stroke="currentColor" stroke-width="1.5" '
        f'points="{" ".join(coords)}" /></svg>'
    )


def _table(
    rows: Iterable[Mapping[str, Any]], columns: Sequence[str]
) -> str:
    head = "".join(f"<th>{_esc(c)}</th>" for c in columns)
    body = []
    for row in rows:
        cells = "".join(
            f"<td>{_esc(_fmt(row.get(c, '')))}</td>" for c in columns
        )
        body.append(f"<tr>{cells}</tr>")
    return (
        f'<table><thead><tr>{head}</tr></thead>'
        f'<tbody>{"".join(body)}</tbody></table>'
    )


_STYLE = """
body { font-family: ui-monospace, Menlo, Consolas, monospace;
       margin: 2rem auto; max-width: 72rem; padding: 0 1rem;
       color: #1a1f24; background: #fcfcfc; }
h1 { font-size: 1.3rem; } h2 { font-size: 1.05rem; margin-top: 2rem;
     border-bottom: 1px solid #d0d4d8; padding-bottom: .3rem; }
table { border-collapse: collapse; margin: .6rem 0; font-size: .82rem; }
th, td { border: 1px solid #d0d4d8; padding: .2rem .55rem;
         text-align: right; }
th { background: #eef1f3; } td:first-child, th:first-child
 { text-align: left; }
.ok { color: #1a7f37; } .bad { color: #b42318; font-weight: bold; }
.spark { color: #0b5fa5; vertical-align: middle; }
.meta { color: #57606a; font-size: .85rem; }
.series-row td { vertical-align: middle; }
""".strip()


def render_report(
    snapshot: MetricsSnapshot | None,
    causal: CausalReport | None,
    gates: Sequence[GateResult],
    meta: Mapping[str, Any],
    trends: Sequence[Mapping[str, Any]] | None = None,
    service: Mapping[str, Any] | None = None,
) -> str:
    """Render the dashboard HTML (a pure function of its inputs).

    ``trends`` are cross-run trend rows from the run ledger
    (:func:`repro.obs.projections.trend_rows`): one sparkline per
    (experiment, metric) series.  ``None`` renders the section with a
    pointer at how to record a ledger instead.  ``service`` is a job-log
    summary (:func:`service_summary`) for the ``repro serve`` section.
    """
    parts: list[str] = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        "<title>repro report</title>",
        f"<style>{_STYLE}</style>",
        "</head><body>",
        "<h1>repro report — Bounded Polynomial Randomized Consensus</h1>",
        '<p class="meta">'
        + " · ".join(
            f"{_esc(k)}={_esc(_fmt(meta[k]))}" for k in sorted(meta)
        )
        + "</p>",
    ]

    # -- metrics snapshot ---------------------------------------------------
    parts.append("<h2>Metrics snapshot</h2>")
    if snapshot is None:
        parts.append("<p>(metrics disabled for this run)</p>")
    else:
        rows = [r for r in snapshot.to_rows() if r["type"] != "series"]
        parts.append(
            _table(rows, ("metric", "type", "value", "mean", "p50", "p90", "max"))
        )

    # -- time series --------------------------------------------------------
    parts.append("<h2>Time series</h2>")
    if snapshot is None or not snapshot.series:
        parts.append(
            "<p>(no series recorded — pass a sampling period, e.g. "
            "<code>--series-every 64</code>)</p>"
        )
    else:
        series_rows = []
        for key in sorted(snapshot.series):
            payload = snapshot.series[key]
            points = payload.get("points", [])
            last = points[-1][1] if points else 0
            series_rows.append(
                f'<tr class="series-row"><td>{_esc(key)}</td>'
                f"<td>{_esc(payload.get('kind', ''))}</td>"
                f"<td>{_esc(len(points))}</td>"
                f"<td>{_esc(_fmt(last))}</td>"
                f"<td>{sparkline(points)}</td></tr>"
            )
        parts.append(
            "<table><thead><tr><th>series</th><th>kind</th>"
            "<th>points</th><th>last</th><th>trend</th></tr></thead>"
            f'<tbody>{"".join(series_rows)}</tbody></table>'
        )

    # -- resilience counters ------------------------------------------------
    parts.append("<h2>Resilience</h2>")
    resilience_rows = []
    if snapshot is not None:
        resilience_rows = [
            r
            for r in snapshot.to_rows()
            if r["type"] == "counter"
            and str(r["metric"]).startswith("resilience.")
        ]
    if not resilience_rows:
        parts.append(
            "<p>(no resilience events — every task completed on its first "
            "attempt within budget; retries, timeouts and shed tasks are "
            "counted here when a failure policy is active)</p>"
        )
    else:
        total_disturbed = sum(int(r["value"]) for r in resilience_rows)
        parts.append(_table(resilience_rows, ("metric", "value")))
        parts.append(
            f"<p><b>{total_disturbed}</b> task dispatches deviated from "
            "the undisturbed path (re-run from their original seeds, so "
            "merged outputs stay bit-identical).</p>"
        )

    # -- cross-run trends (the run ledger's projections) --------------------
    parts.append("<h2>Cross-run trends</h2>")
    if not trends:
        parts.append(
            "<p>(no run ledger — record one with <code>--ledger runs.jsonl"
            "</code> or <code>REPRO_LEDGER</code>, then pass it to "
            "<code>repro report --ledger</code>)</p>"
        )
    else:
        trend_cells = []
        for row in trends:
            trend_cells.append(
                f"<tr class=\"series-row\"><td>{_esc(row['experiment'])}</td>"
                f"<td>{_esc(row['metric'])}</td>"
                f"<td>{_esc(row['n'])}</td>"
                f"<td>{_esc(_fmt(row['first']))}</td>"
                f"<td>{_esc(_fmt(row['last']))}</td>"
                f"<td>{sparkline(row['points'])}</td></tr>"
            )
        parts.append(
            "<table><thead><tr><th>experiment</th><th>metric</th>"
            "<th>records</th><th>first</th><th>last</th><th>trend</th>"
            f'</tr></thead><tbody>{"".join(trend_cells)}</tbody></table>'
        )

    # -- service (the repro serve job log) ----------------------------------
    parts.append("<h2>Service</h2>")
    if not service:
        parts.append(
            "<p>(no job log — run <code>repro serve</code> and pass its "
            "<code>--jobs-log</code> to <code>repro report</code>)</p>"
        )
    elif not service.get("jobs"):
        # The log exists but holds zero entries: say so explicitly
        # instead of rendering an empty table that reads like data loss.
        parts.append(
            "<p><b>no jobs recorded</b> — the job log exists but is "
            "empty; submit work with <code>POST /jobs</code> (or "
            "<code>ServeClient.submit</code>) and re-render</p>"
        )
    else:
        states = service.get("by_state", {})
        parts.append(
            "<p>jobs: "
            + " · ".join(
                f"{_esc(state)}=<b>{_esc(states[state])}</b>"
                for state in sorted(states)
            )
            + f" · shed rate <b>{_fmt(service.get('shed_rate', 0.0))}</b></p>"
        )
        parts.append(
            _table(
                service.get("jobs", []),
                ("id", "kind", "priority", "state", "attempts"),
            )
        )

    # -- service timeline (the job trace) -----------------------------------
    if service is not None:
        parts.append("<h2>Service timeline</h2>")
        timeline = service.get("timeline") or []
        if not timeline:
            parts.append(
                "<p>(no job trace — pass the server&#x27;s "
                "<code>STATE_DIR/trace.jsonl</code> via "
                "<code>--job-trace</code> to render queue-wait / dispatch "
                "/ task / checkpoint spans per job)</p>"
            )
        else:
            parts.append(
                _table(
                    timeline,
                    ("job", "phase", "start_s", "duration_s", "detail"),
                )
            )

    # -- causal attribution -------------------------------------------------
    parts.append("<h2>Causal critical path</h2>")
    if causal is None:
        parts.append("<p>(no event timeline — causal analysis skipped)</p>")
    else:
        parts.append(
            f"<p>critical path: <b>{causal.critical_length}</b> of "
            f"{causal.total_events} recorded atomic operations "
            f"(decide of pid {_fmt(causal.critical_pid)}; "
            "everything off this chain was schedulable in parallel)</p>"
        )
        layer_rows = [
            {"layer": layer, "steps on critical path": count}
            for layer, count in causal.per_layer().items()
        ]
        parts.append(_table(layer_rows, ("layer", "steps on critical path")))
        parts.append("<h2>Adversary attribution</h2>")
        parts.append(
            "<p>steps the scheduler granted each process vs. steps that "
            "landed on the critical path — a low share means the "
            "adversary burned that process&#x27;s budget without delaying "
            "the decision.</p>"
        )
        parts.append(
            _table(
                causal.adversary,
                ("pid", "granted", "on_critical_path", "share"),
            )
        )

    # -- benchmark deltas ---------------------------------------------------
    parts.append("<h2>Benchmark baselines vs. results</h2>")
    if not gates:
        parts.append("<p>(no BENCH_*.json artifacts found)</p>")
    else:
        gate_rows = []
        for gate in gates:
            status = (
                '<span class="ok">OK</span>'
                if gate.ok
                else f'<span class="bad">{len(gate.problems)} deviations</span>'
            )
            shown = [
                _esc(p) for p in gate.problems[:_MAX_PROBLEMS_SHOWN]
            ]
            if len(gate.problems) > _MAX_PROBLEMS_SHOWN:
                shown.append(
                    f"… {len(gate.problems) - _MAX_PROBLEMS_SHOWN} more"
                )
            gate_rows.append(
                f"<tr><td>{_esc(gate.experiment.upper())}</td>"
                f"<td>{gate.compared}</td><td>{status}</td>"
                f'<td style="text-align:left">{"<br>".join(shown)}</td></tr>'
            )
        parts.append(
            "<table><thead><tr><th>experiment</th><th>values compared</th>"
            "<th>status</th><th>deviations</th></tr></thead>"
            f'<tbody>{"".join(gate_rows)}</tbody></table>'
        )
        ok = sum(1 for g in gates if g.ok)
        parts.append(
            f"<p>{ok}/{len(gates)} benchmarks within tolerance.</p>"
        )

    parts.append("</body></html>")
    return "\n".join(parts) + "\n"


def gate_all_benchmarks(
    results_dir: pathlib.Path | str,
    baselines_dir: pathlib.Path | str,
    tolerance: float = 0.10,
) -> list[GateResult]:
    """Gate every baseline benchmark against the current artifacts.

    Keyed off the *baselines* directory (the checked-in ground truth), so
    a missing artifact shows up as a problem row instead of silently
    shrinking the table.
    """
    baselines = pathlib.Path(baselines_dir)
    experiments = sorted(
        p.stem.replace("BENCH_", "").lower()
        for p in baselines.glob("BENCH_*.json")
    )
    return check_experiments(
        experiments, pathlib.Path(results_dir), baselines, tolerance
    )


def service_summary(
    jobs_log: pathlib.Path | str,
    trace_log: pathlib.Path | str | None = None,
) -> dict[str, Any]:
    """The dashboard's Service section, projected from one job log.

    Reads the ``repro serve`` JSONL event log through the same replay
    logic the server boots with, so a corrupt log raises with its
    ``<file>:<line>`` rather than rendering silently-wrong counts.
    ``trace_log`` (the server's job trace) additionally populates the
    ``timeline`` rows behind the "Service timeline" section.
    """
    from repro.serve.queue import JobQueue, JobStates
    from repro.serve.telemetry import load_job_trace, timeline_rows

    queue = JobQueue(jobs_log, requeue_running=False)
    counts = queue.counts()
    shed = counts[JobStates.SHED]
    terminal = shed + counts[JobStates.DONE] + counts[JobStates.FAILED]
    rows = [
        {
            "id": job.id[:12],
            "kind": job.spec.get("kind", ""),
            "priority": job.spec.get("priority", ""),
            "state": job.state,
            "attempts": job.attempts,
        }
        for job in queue.jobs()
    ]
    return {
        "by_state": counts,
        "shed_rate": round(shed / terminal, 4) if terminal else 0.0,
        "jobs": rows,
        "timeline": (
            timeline_rows(load_job_trace(trace_log)) if trace_log else []
        ),
    }


def write_report(
    path: pathlib.Path | str,
    snapshot: MetricsSnapshot | None,
    causal: CausalReport | None,
    gates: Sequence[GateResult],
    meta: Mapping[str, Any],
    trends: Sequence[Mapping[str, Any]] | None = None,
    service: Mapping[str, Any] | None = None,
) -> pathlib.Path:
    """Render and write the dashboard; returns the output path."""
    out = pathlib.Path(path)
    out.write_text(
        render_report(
            snapshot, causal, gates, meta, trends=trends, service=service
        )
    )
    return out
