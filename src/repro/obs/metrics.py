"""The metrics registry: counters, gauges and histograms with labels.

The paper's headline claims are *quantitative* — polynomial expected step
complexity (Theorem 6.1) and bounded register values (§5's boundedness
argument) — so every layer of the reproduction emits measurements:

- the runtime counts atomic steps per process;
- the register layer tracks operation counts and the largest value each
  audited register ever held (the live form of experiment E6's audit);
- the snapshot layer measures scan collect-rounds and handshake-arrow
  traffic (E7);
- the coin layer measures walk flips and counter excursions (E2/E3);
- the consensus layer measures round advances and the leader gap (E4).

A :class:`MetricsRegistry` is owned by every
:class:`~repro.runtime.simulation.Simulation` (``sim.metrics``) and handed
down to shared objects at construction time.  Instruments are *cached
handles*: call-sites resolve ``registry.counter(name, **labels)`` once and
then pay only an attribute increment per event, keeping the hot path cheap.
A registry can be constructed disabled (``MetricsRegistry(enabled=False)``),
in which case every instrument resolves to a shared no-op.

All state is plain Python integers/floats updated deterministically from
the simulation, so two runs with identical seeds produce *identical*
:class:`MetricsSnapshot`\\ s — snapshots are comparable, diffable and
serializable (``to_json`` / ``from_json``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.timeseries import SeriesRecorder


def _render_key(name: str, labels: Mapping[str, Any]) -> str:
    """Canonical string form ``name{k=v,...}`` with sorted label keys."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


def parse_key(key: str) -> tuple[str, dict[str, str]]:
    """Inverse of the canonical rendering (labels come back as strings)."""
    if "{" not in key:
        return key, {}
    name, _, rest = key.partition("{")
    labels = {}
    for part in rest.rstrip("}").split(","):
        if part:
            k, _, v = part.partition("=")
            labels[k] = v
    return name, labels


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value; ``set_max`` keeps a running maximum."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def set_max(self, value: float) -> None:
        if value > self.value:
            self.value = value


#: The canonical summary of a histogram that saw no observations.  Merge
#: and snapshot paths share this one shape so "empty" is always well-formed.
ZERO_SUMMARY: dict[str, float] = {
    "count": 0,
    "sum": 0.0,
    "min": 0.0,
    "max": 0.0,
    "mean": 0.0,
    "p50": 0.0,
    "p90": 0.0,
    "p99": 0.0,
}


class Histogram:
    """A distribution of observations with exact percentiles.

    Observations are kept verbatim (runs are bounded, and exactness keeps
    snapshots deterministic); summary statistics are computed lazily at
    snapshot time, over one cached sorted copy that is invalidated by the
    next :meth:`observe` — repeated percentile queries between observations
    (dashboards poll p50/p90/p99 in a burst) sort once, not once per query.
    """

    __slots__ = ("observations", "_sorted")

    def __init__(self) -> None:
        self.observations: list[float] = []
        self._sorted: list[float] | None = None

    def observe(self, value: float) -> None:
        self.observations.append(value)
        self._sorted = None

    def _ordered(self) -> list[float]:
        ordered = self._sorted
        if ordered is None:
            ordered = self._sorted = sorted(self.observations)
        return ordered

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile, ``q`` in [0, 100]."""
        if not self.observations:
            return 0.0
        return _nearest_rank(self._ordered(), q)

    def summary(self) -> dict[str, float]:
        if not self.observations:
            return dict(ZERO_SUMMARY)
        ordered = self._ordered()
        total = sum(ordered)
        return {
            "count": len(ordered),
            "sum": total,
            "min": ordered[0],
            "max": ordered[-1],
            "mean": total / len(ordered),
            "p50": _nearest_rank(ordered, 50),
            "p90": _nearest_rank(ordered, 90),
            "p99": _nearest_rank(ordered, 99),
        }


def _nearest_rank(ordered: Sequence[float], q: float) -> float:
    """Nearest-rank percentile over an already-sorted sequence."""
    rank = max(0, min(len(ordered) - 1, round(q / 100 * (len(ordered) - 1))))
    return ordered[rank]


class _NullInstrument:
    """Shared no-op stand-in used by disabled registries."""

    __slots__ = ()

    def inc(self, amount: int = 1) -> None:  # noqa: ARG002
        pass

    def set(self, value: float) -> None:  # noqa: ARG002
        pass

    def set_max(self, value: float) -> None:  # noqa: ARG002
        pass

    def observe(self, value: float) -> None:  # noqa: ARG002
        pass


#: Shared no-op instrument; also the safe default for call-sites that may
#: run before (or without) a registry being bound.
NULL_INSTRUMENT = _NullInstrument()
_NULL = NULL_INSTRUMENT


@dataclass(frozen=True)
class MetricsSnapshot:
    """Immutable, serializable view of a registry at one instant.

    Keys are the canonical ``name{label=value,...}`` strings; histogram
    values are summary dicts (count/sum/min/max/mean/p50/p90/p99); series
    values are time-series payloads (``kind``/``every``/``points``, see
    :mod:`repro.obs.timeseries`) sampled every K scheduler steps.
    """

    counters: dict[str, int] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    histograms: dict[str, dict[str, float]] = field(default_factory=dict)
    series: dict[str, dict[str, Any]] = field(default_factory=dict)

    def counter_total(self, name: str) -> int:
        """Sum of a counter over all its label sets."""
        return sum(
            v for k, v in self.counters.items() if parse_key(k)[0] == name
        )

    def gauge_max(self, name: str) -> float:
        """Maximum of a gauge over all its label sets (0 if absent)."""
        values = [v for k, v in self.gauges.items() if parse_key(k)[0] == name]
        return max(values, default=0)

    def to_json(self, indent: int | None = 2) -> str:
        payload: dict[str, Any] = {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": dict(sorted(self.histograms.items())),
        }
        if self.series:
            # Only present when a recorder ran: snapshots without series
            # keep their historical byte-for-byte JSON shape (benchmark
            # baselines embed them verbatim).
            payload["series"] = dict(sorted(self.series.items()))
        return json.dumps(payload, indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "MetricsSnapshot":
        payload = json.loads(text)
        return cls(
            counters=payload.get("counters", {}),
            gauges=payload.get("gauges", {}),
            histograms=payload.get("histograms", {}),
            series=payload.get("series", {}),
        )

    def relabel(self, **labels: Any) -> "MetricsSnapshot":
        """A copy with extra labels appended to every instrument key.

        The bridge across the process boundary: a worker returns its run's
        snapshot, the parent relabels it (``task=3``, ``worker=...``) so
        per-task series stay distinguishable after merging, then absorbs it
        into its own registry (:meth:`MetricsRegistry.absorb`) or unions it
        with its siblings (:func:`merge_snapshots`).
        """

        def rekey(key: str) -> str:
            name, existing = parse_key(key)
            merged = {**existing, **{k: str(v) for k, v in labels.items()}}
            return _render_key(name, merged)

        return MetricsSnapshot(
            counters={rekey(k): v for k, v in self.counters.items()},
            gauges={rekey(k): v for k, v in self.gauges.items()},
            histograms={rekey(k): dict(v) for k, v in self.histograms.items()},
            series={rekey(k): dict(v) for k, v in self.series.items()},
        )

    def to_rows(self) -> list[dict[str, Any]]:
        """Table rows for the CLI / reporting layer (sorted, deterministic)."""
        rows: list[dict[str, Any]] = []
        for key in sorted(self.counters):
            rows.append(
                {"metric": key, "type": "counter", "value": self.counters[key]}
            )
        for key in sorted(self.gauges):
            rows.append({"metric": key, "type": "gauge", "value": self.gauges[key]})
        for key in sorted(self.histograms):
            s = self.histograms[key]
            rows.append(
                {
                    "metric": key,
                    "type": "histogram",
                    "value": s["count"],
                    "mean": round(s["mean"], 3),
                    "p50": s["p50"],
                    "p90": s["p90"],
                    "max": s["max"],
                }
            )
        for key in sorted(self.series):
            payload = self.series[key]
            points = payload.get("points", [])
            rows.append(
                {
                    "metric": key,
                    "type": "series",
                    "value": len(points),
                    "last": points[-1][1] if points else 0,
                }
            )
        return rows


def _merge_histogram_summaries(
    a: Mapping[str, float], b: Mapping[str, float]
) -> dict[str, float]:
    """Combine two histogram summaries (count/sum/min/max exactly; mean is
    derived; percentiles are count-weighted means, the best available
    without the raw observations — exact when the inputs agree).

    Zero-count inputs never reach the count division, and merging *two*
    empty summaries yields the canonical :data:`ZERO_SUMMARY` rather than
    whatever partial dict one side happened to carry."""
    if not a.get("count") and not b.get("count"):
        return dict(ZERO_SUMMARY)
    if not a.get("count"):
        return dict(b)
    if not b.get("count"):
        return dict(a)
    count = a["count"] + b["count"]
    merged = {
        "count": count,
        "sum": a["sum"] + b["sum"],
        "min": min(a["min"], b["min"]),
        "max": max(a["max"], b["max"]),
        "mean": (a["sum"] + b["sum"]) / count,
    }
    for q in ("p50", "p90", "p99"):
        merged[q] = (a[q] * a["count"] + b[q] * b["count"]) / count
    return merged


def merge_snapshots(snapshots: "list[MetricsSnapshot]") -> MetricsSnapshot:
    """Union snapshots into one; deterministic in the input order.

    Keys that collide combine by instrument semantics: counters add,
    gauges keep the maximum, histogram summaries merge count-weighted,
    time series union pointwise (see
    :func:`repro.obs.timeseries.merge_series_payloads`).  Workers'
    snapshots relabelled with distinct labels never collide, so their
    series survive verbatim.
    """
    from repro.obs.timeseries import merge_series_payloads

    counters: dict[str, int] = {}
    gauges: dict[str, float] = {}
    histograms: dict[str, dict[str, float]] = {}
    series: dict[str, dict[str, Any]] = {}
    for snap in snapshots:
        for key, value in snap.counters.items():
            counters[key] = counters.get(key, 0) + value
        for key, value in snap.gauges.items():
            gauges[key] = max(gauges.get(key, value), value)
        for key, summary in snap.histograms.items():
            histograms[key] = _merge_histogram_summaries(
                histograms.get(key, {}), summary
            )
        for key, payload in snap.series.items():
            series[key] = merge_series_payloads(series.get(key), payload)
    return MetricsSnapshot(
        counters=dict(sorted(counters.items())),
        gauges=dict(sorted(gauges.items())),
        histograms=dict(sorted(histograms.items())),
        series=dict(sorted(series.items())),
    )


class MetricsRegistry:
    """Factory and store for labeled instruments.

    Instruments are identified by ``(name, sorted labels)``; asking twice
    for the same identity returns the same object, so call-sites can cache
    the handle and increment it directly.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        # Histogram *summaries* absorbed from worker snapshots: merged at
        # the summary level (no raw observations cross the process
        # boundary) and unioned into every snapshot() of this registry.
        self._absorbed_histograms: dict[str, dict[str, float]] = {}
        # Series payloads absorbed from worker snapshots, and the local
        # recorder (if one is bound) sampling this registry's instruments.
        self._absorbed_series: dict[str, dict[str, Any]] = {}
        self._series_recorder: "SeriesRecorder | None" = None

    # -- instrument factories ------------------------------------------------

    def counter(self, name: str, **labels: Any) -> Counter:
        if not self.enabled:
            return _NULL  # type: ignore[return-value]
        key = _render_key(name, labels)
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter()
        return instrument

    def gauge(self, name: str, **labels: Any) -> Gauge:
        if not self.enabled:
            return _NULL  # type: ignore[return-value]
        key = _render_key(name, labels)
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge()
        return instrument

    def histogram(self, name: str, **labels: Any) -> Histogram:
        if not self.enabled:
            return _NULL  # type: ignore[return-value]
        key = _render_key(name, labels)
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram()
        return instrument

    # -- live queries --------------------------------------------------------

    def counter_total(self, name: str) -> int:
        """Sum of a live counter over all its label sets (0 if absent).

        The mid-run counterpart of :meth:`MetricsSnapshot.counter_total`,
        used by online monitors (watchdogs, budget diagnostics) that must
        not pay for a full snapshot per check.
        """
        if not self.enabled:
            return 0
        prefix = name + "{"
        return sum(
            c.value
            for key, c in self._counters.items()
            if key == name or key.startswith(prefix)
        )

    # -- cross-process merging -----------------------------------------------

    def absorb(self, snapshot: MetricsSnapshot, **labels: Any) -> None:
        """Merge a worker's snapshot into this registry, labelled.

        Counters increment, gauges keep their maximum, and histogram
        summaries merge count-weighted (see
        :func:`_merge_histogram_summaries`).  The extra ``labels`` —
        typically a deterministic task id, e.g. ``task=7`` — are appended
        to every absorbed key so per-worker series stay distinguishable
        and repeated absorption of distinct tasks never collides.
        Deterministic: the merged state depends only on the snapshots and
        labels, never on which OS process produced them or when.
        """
        if not self.enabled:
            return
        if labels:
            snapshot = snapshot.relabel(**labels)
        for key, value in snapshot.counters.items():
            name, key_labels = parse_key(key)
            self.counter(name, **key_labels).inc(value)
        for key, value in snapshot.gauges.items():
            name, key_labels = parse_key(key)
            self.gauge(name, **key_labels).set_max(value)
        for key, summary in snapshot.histograms.items():
            self._absorbed_histograms[key] = _merge_histogram_summaries(
                self._absorbed_histograms.get(key, {}), summary
            )
        if snapshot.series:
            from repro.obs.timeseries import merge_series_payloads

            for key, payload in snapshot.series.items():
                self._absorbed_series[key] = merge_series_payloads(
                    self._absorbed_series.get(key), payload
                )

    # -- time series ---------------------------------------------------------

    def bind_series(self, recorder: "SeriesRecorder | None") -> None:
        """Attach (or detach, with ``None``) the recorder whose exported
        series ride on every :meth:`snapshot` of this registry."""
        self._series_recorder = recorder

    @property
    def series_recorder(self) -> "SeriesRecorder | None":
        return self._series_recorder

    # -- lifecycle -----------------------------------------------------------

    def reset(self) -> None:
        """Drop every instrument (handles cached by call-sites go stale)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self._absorbed_histograms.clear()
        self._absorbed_series.clear()
        if self._series_recorder is not None:
            self._series_recorder.reset()

    def snapshot(self) -> MetricsSnapshot:
        """Deterministic point-in-time view of every instrument."""
        histograms = {k: h.summary() for k, h in self._histograms.items()}
        for key, summary in self._absorbed_histograms.items():
            histograms[key] = _merge_histogram_summaries(
                histograms.get(key, {}), summary
            )
        series: dict[str, dict[str, Any]] = {}
        if self._series_recorder is not None:
            series.update(self._series_recorder.export())
        if self._absorbed_series:
            from repro.obs.timeseries import merge_series_payloads

            for key, payload in self._absorbed_series.items():
                series[key] = merge_series_payloads(series.get(key), payload)
        return MetricsSnapshot(
            counters={k: c.value for k, c in sorted(self._counters.items())},
            gauges={k: g.value for k, g in sorted(self._gauges.items())},
            histograms=dict(sorted(histograms.items())),
            series=dict(sorted(series.items())),
        )
