"""Structured trace export: JSONL and Chrome ``trace_event`` format.

A recorded :class:`~repro.runtime.trace.Trace` holds the run's two parallel
histories — atomic :class:`~repro.runtime.events.OpEvent`\\ s and high-level
:class:`~repro.runtime.events.OpSpan`\\ s.  This module serializes both:

- **JSONL** (one JSON object per line, ``type`` is ``"event"`` or
  ``"span"``) — greppable, streamable, and round-trippable via
  :func:`load_jsonl`;
- **Chrome trace_event JSON** — open the file in Perfetto
  (https://ui.perfetto.dev) or ``chrome://tracing``: each simulated process
  becomes a named track, spans become duration slices positioned on the
  logical clock, and atomic events become instants.

The logical clock (global step index) is used directly as the timestamp:
trace viewers render it in "microseconds", which for an interleaving
simulator reads naturally as "atomic steps".
"""

from __future__ import annotations

import json
import pathlib
from typing import Any

from repro.registers.base import slot_items
from repro.runtime.events import OpEvent, OpSpan
from repro.runtime.trace import Trace


def jsonable(value: Any) -> Any:
    """Best-effort conversion of a traced value to JSON-compatible data.

    Register cells may hold arbitrary protocol structures (tuples,
    dataclasses such as ``AdsCell`` — possibly slotted ones, which expose
    attributes via ``__slots__`` instead of ``__dict__``); anything not
    natively representable falls back to ``repr`` so the export never
    fails mid-run.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (tuple, list)):
        return [jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    if hasattr(value, "__dict__"):
        return {k: jsonable(v) for k, v in vars(value).items()}
    items = slot_items(value)
    if items is not None:
        return {k: jsonable(v) for k, v in items}
    return repr(value)


def event_to_dict(event: OpEvent) -> dict[str, Any]:
    return {
        "type": "event",
        "step": event.step,
        "pid": event.pid,
        "kind": event.kind,
        "target": event.target,
        "value": jsonable(event.value),
    }


def span_to_dict(span: OpSpan) -> dict[str, Any]:
    return {
        "type": "span",
        "span_id": span.span_id,
        "pid": span.pid,
        "kind": span.kind,
        "target": span.target,
        "invoke_step": span.invoke_step,
        "response_step": span.response_step,
        "argument": jsonable(span.argument),
        "result": jsonable(span.result),
        "meta": jsonable(span.meta),
    }


# -- JSONL ------------------------------------------------------------------


def trace_to_jsonl(trace: Trace) -> str:
    """Serialize every event and span, one JSON object per line."""
    lines = [json.dumps(event_to_dict(e), sort_keys=True) for e in trace.events]
    lines += [json.dumps(span_to_dict(s), sort_keys=True) for s in trace.spans]
    return "\n".join(lines) + ("\n" if lines else "")


def export_jsonl(trace: Trace, path: str | pathlib.Path) -> pathlib.Path:
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(trace_to_jsonl(trace))
    return path


def load_jsonl(path: str | pathlib.Path) -> dict[str, list[dict[str, Any]]]:
    """Parse a JSONL export back into ``{"events": [...], "spans": [...]}``."""
    events, spans = [], []
    for line in pathlib.Path(path).read_text().splitlines():
        if not line.strip():
            continue
        record = json.loads(line)
        (events if record.get("type") == "event" else spans).append(record)
    return {"events": events, "spans": spans}


# -- Chrome trace_event -----------------------------------------------------


def trace_to_chrome(trace: Trace) -> dict[str, Any]:
    """Convert a trace to the Chrome ``trace_event`` JSON object format.

    Spans become complete ("X") slices, atomic events become instants
    ("i"), and each simulated process gets a named track via thread-name
    metadata.  The result is loadable by Perfetto and ``chrome://tracing``.
    """
    trace_events: list[dict[str, Any]] = []
    pids = sorted(
        {e.pid for e in trace.events} | {s.pid for s in trace.spans}
    )
    for pid in pids:
        trace_events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": 0,
                "tid": pid,
                "args": {"name": f"p{pid}"},
            }
        )
    for span in trace.spans:
        if span.invoke_step is None or span.response_step is None:
            continue
        trace_events.append(
            {
                "ph": "X",
                "name": f"{span.kind} {span.target}",
                "cat": span.kind,
                "pid": 0,
                "tid": span.pid,
                "ts": span.invoke_step,
                "dur": max(1, span.response_step - span.invoke_step),
                "args": {
                    "argument": jsonable(span.argument),
                    "result": jsonable(span.result),
                    "meta": jsonable(span.meta),
                },
            }
        )
    for event in trace.events:
        trace_events.append(
            {
                "ph": "i",
                "s": "t",
                "name": f"{event.kind} {event.target}",
                "cat": event.kind,
                "pid": 0,
                "tid": event.pid,
                "ts": event.step,
                "args": {"value": jsonable(event.value)},
            }
        )
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"clock": "logical steps (1 step = 1 'us')"},
    }


def export_chrome(trace: Trace, path: str | pathlib.Path) -> pathlib.Path:
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(trace_to_chrome(trace)))
    return path


def export_trace(trace: Trace, path: str | pathlib.Path) -> pathlib.Path:
    """Export by extension: ``.jsonl`` → JSONL, anything else → Chrome."""
    path = pathlib.Path(path)
    if path.suffix == ".jsonl":
        return export_jsonl(trace, path)
    return export_chrome(trace, path)
