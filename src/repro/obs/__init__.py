"""repro.obs — runtime observability: metrics, trace export, profiling.

The paper's claims are quantitative, so the reproduction measures itself:

- :mod:`repro.obs.metrics` — the labeled counter/gauge/histogram registry
  every :class:`~repro.runtime.simulation.Simulation` owns (``sim.metrics``)
  and every layer reports into; snapshots are deterministic per seed and
  serialize to JSON;
- :mod:`repro.obs.export` — structured trace export (JSONL and Chrome
  ``trace_event`` format, openable in Perfetto / ``chrome://tracing``);
- :mod:`repro.obs.profiling` — wall-clock ``perf_counter`` sections with an
  overhead self-test;
- :mod:`repro.obs.timeseries` — deterministic metric time series sampled
  every K scheduler steps (``SeriesRecorder``/``SeriesSpec``), serialized
  inside snapshots and merged across worker processes;
- :mod:`repro.obs.causality` — happens-before DAG over the recorded event
  timeline, critical-path attribution per layer/pid (``CausalReport``);
- :mod:`repro.obs.report` — the self-contained HTML dashboard behind
  ``repro report --out report.html``;
- :mod:`repro.obs.ledger` — the append-only, content-addressed cross-run
  telemetry store (``--ledger`` / ``REPRO_LEDGER``), fingerprinting every
  run by (seed, config, code version) with cache-hit semantics;
- :mod:`repro.obs.projections` — cross-run history, trend series,
  rolling-baseline regression gating and the determinism-violation
  (flakiness) detector behind ``repro history``.

See ``docs/observability.md`` for the metric catalog and how experiments
E1–E12 map onto it.
"""

from repro.obs.metrics import (
    NULL_INSTRUMENT,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
    merge_snapshots,
    parse_key,
)
from repro.obs.export import (
    export_chrome,
    export_jsonl,
    export_trace,
    load_jsonl,
    trace_to_chrome,
    trace_to_jsonl,
)
from repro.obs.profiling import Profiler, measure_overhead
from repro.obs.timeseries import (
    DEFAULT_TRACK,
    SeriesRecorder,
    SeriesSpec,
    merge_series_payloads,
)
from repro.obs.causality import (
    CausalReport,
    CriticalPath,
    build_causal_report,
    causal_report_for,
)
from repro.obs.ledger import (
    LedgerRecord,
    RunLedger,
    compute_fingerprint,
    ledger_from_env,
    make_record,
    read_records,
)
from repro.obs.projections import (
    DeterminismViolation,
    HistoryCheck,
    TrendAlert,
    detect_regressions,
    detect_violations,
    history_check,
    history_rows,
    trend_rows,
    trend_series,
)
from repro.obs.report import render_report, write_report

__all__ = [
    "DEFAULT_TRACK",
    "NULL_INSTRUMENT",
    "CausalReport",
    "Counter",
    "CriticalPath",
    "DeterminismViolation",
    "Gauge",
    "Histogram",
    "HistoryCheck",
    "LedgerRecord",
    "MetricsRegistry",
    "MetricsSnapshot",
    "Profiler",
    "RunLedger",
    "SeriesRecorder",
    "SeriesSpec",
    "TrendAlert",
    "build_causal_report",
    "causal_report_for",
    "compute_fingerprint",
    "detect_regressions",
    "detect_violations",
    "export_chrome",
    "export_jsonl",
    "export_trace",
    "history_check",
    "history_rows",
    "ledger_from_env",
    "load_jsonl",
    "make_record",
    "measure_overhead",
    "merge_series_payloads",
    "merge_snapshots",
    "parse_key",
    "read_records",
    "render_report",
    "trace_to_chrome",
    "trace_to_jsonl",
    "trend_rows",
    "trend_series",
    "write_report",
]
