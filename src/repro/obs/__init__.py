"""repro.obs — runtime observability: metrics, trace export, profiling.

The paper's claims are quantitative, so the reproduction measures itself:

- :mod:`repro.obs.metrics` — the labeled counter/gauge/histogram registry
  every :class:`~repro.runtime.simulation.Simulation` owns (``sim.metrics``)
  and every layer reports into; snapshots are deterministic per seed and
  serialize to JSON;
- :mod:`repro.obs.export` — structured trace export (JSONL and Chrome
  ``trace_event`` format, openable in Perfetto / ``chrome://tracing``);
- :mod:`repro.obs.profiling` — wall-clock ``perf_counter`` sections with an
  overhead self-test.

See ``docs/observability.md`` for the metric catalog and how experiments
E1–E12 map onto it.
"""

from repro.obs.metrics import (
    NULL_INSTRUMENT,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
    merge_snapshots,
    parse_key,
)
from repro.obs.export import (
    export_chrome,
    export_jsonl,
    export_trace,
    load_jsonl,
    trace_to_chrome,
    trace_to_jsonl,
)
from repro.obs.profiling import Profiler, measure_overhead

__all__ = [
    "NULL_INSTRUMENT",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "Profiler",
    "export_chrome",
    "export_jsonl",
    "export_trace",
    "load_jsonl",
    "measure_overhead",
    "merge_snapshots",
    "parse_key",
    "trace_to_chrome",
    "trace_to_jsonl",
]
