"""The run ledger: an append-only, content-addressed cross-run store.

Every simulation entry point in this repository is deterministic per
(seed, configuration, code version) — that triple therefore *names* a
result.  The ledger makes the name concrete: a **fingerprint** is the
SHA-256 of the canonically-serialized triple, and a
:class:`LedgerRecord` files one run's outcome summary, metrics snapshot
(series included), wall-clock timings and code provenance under it.
Records append to a JSONL file (one canonical line per record, sorted
keys, compact separators), which buys three properties:

- **cache**: re-recording an identical result is a no-op (a *cache hit*
  — entry points use :meth:`RunLedger.cached` to skip recomputation
  outright unless asked not to);
- **byte-identity**: the deterministic entry points (sweeps, fuzz grids,
  mutation campaigns) write records containing no host measurements, and
  parents append after merging worker results in submission order — so a
  serial run and a ``workers=N`` run of the same workload produce
  byte-identical ledger files;
- **evidence**: a fingerprint that ever maps to *two different* payloads
  is a determinism violation — a strong alarm in a repository whose
  whole verification story rests on bit-identical replay — and the
  ledger keeps both records so :mod:`repro.obs.projections` can flag it.

The file format is crash-tolerant in the only way JSONL can be: a torn
trailing line (a writer died mid-append) is ignored on read; a malformed
line anywhere *else* is corruption and raises.

Enable recording with ``--ledger PATH`` on the CLI commands or the
``REPRO_LEDGER`` environment variable; it is off by default.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

try:  # POSIX advisory locks; absent on some platforms (documented below)
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX
    fcntl = None  # type: ignore[assignment]

from repro.version import LEDGER_SCHEMA, code_version, provenance

#: Environment variable enabling ledger recording process-wide (the CLI
#: ``--ledger`` flag takes precedence where both are given).
LEDGER_ENV = "REPRO_LEDGER"


def canonical_json(payload: Any) -> str:
    """The one serialization fingerprints and ledger lines are built on:
    sorted keys, compact separators, no NaN — identical input, identical
    bytes, on every platform."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def jsonable(value: Any) -> Any:
    """Coerce a value into plain JSON types (mappings/sequences recursed,
    everything exotic collapsed to ``repr``) so configs with tuples or
    dataclasses still canonicalize deterministically."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, Mapping):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        items = list(value)
        if isinstance(value, (set, frozenset)):
            items = sorted(items, key=repr)
        return [jsonable(v) for v in items]
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return jsonable(dataclasses.asdict(value))
    return repr(value)


def compute_fingerprint(
    seed: int, config: Mapping[str, Any], code: str | None = None
) -> str:
    """SHA-256 content address of one (seed, config, code-version) cell."""
    payload = canonical_json(
        {"seed": seed, "config": jsonable(dict(config)), "code": code or code_version()}
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class LedgerRecord:
    """One recorded run, filed under its content-address fingerprint.

    ``timings`` is the only host-dependent field: it never participates
    in :meth:`identity`, and the deterministic entry points leave it
    empty so their ledger files are byte-identical at any worker count.
    """

    fingerprint: str
    kind: str  # "run" | "sweep" | "fuzz" | "campaign" | "bench" | "profile"
    experiment: str  # human label, e.g. "sweep:ads:steps" or "bench:p1"
    seed: int
    config: dict[str, Any]
    code_version: str
    outcome: dict[str, Any]
    metrics: dict[str, Any] | None = None
    timings: dict[str, Any] = field(default_factory=dict)
    provenance: dict[str, Any] = field(default_factory=dict)
    schema: int = LEDGER_SCHEMA

    def identity(self) -> str:
        """Canonical bytes of everything *deterministic* about this record.

        Two records with equal fingerprints but unequal identities are a
        determinism violation; equal identities are the same result (the
        append path treats the second as a cache hit)."""
        return canonical_json(
            {
                "schema": self.schema,
                "fingerprint": self.fingerprint,
                "kind": self.kind,
                "experiment": self.experiment,
                "seed": self.seed,
                "config": self.config,
                "code_version": self.code_version,
                "outcome": self.outcome,
                "metrics": self.metrics,
                "provenance": self.provenance,
            }
        )

    def to_line(self) -> str:
        """The record's canonical JSONL line (no trailing newline)."""
        return canonical_json(
            {
                "schema": self.schema,
                "fingerprint": self.fingerprint,
                "kind": self.kind,
                "experiment": self.experiment,
                "seed": self.seed,
                "config": self.config,
                "code_version": self.code_version,
                "outcome": self.outcome,
                "metrics": self.metrics,
                "timings": self.timings,
                "provenance": self.provenance,
            }
        )

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "LedgerRecord":
        schema = int(payload.get("schema", 0))
        if schema > LEDGER_SCHEMA:
            raise ValueError(
                f"ledger record schema {schema} is newer than this code's "
                f"schema {LEDGER_SCHEMA} — upgrade repro to read this ledger"
            )
        return cls(
            fingerprint=str(payload["fingerprint"]),
            kind=str(payload.get("kind", "run")),
            experiment=str(payload.get("experiment", "")),
            seed=int(payload.get("seed", 0)),
            config=dict(payload.get("config", {})),
            code_version=str(payload.get("code_version", "")),
            outcome=dict(payload.get("outcome", {})),
            metrics=payload.get("metrics"),
            timings=dict(payload.get("timings", {})),
            provenance=dict(payload.get("provenance", {})),
            schema=schema,
        )


def make_record(
    kind: str,
    experiment: str,
    seed: int,
    config: Mapping[str, Any],
    outcome: Mapping[str, Any],
    metrics: Any = None,
    timings: Mapping[str, Any] | None = None,
    code: str | None = None,
) -> LedgerRecord:
    """Build a record, computing its fingerprint and provenance stamp.

    ``metrics`` may be a :class:`~repro.obs.metrics.MetricsSnapshot` (its
    JSON payload — series included — is taken) or any JSON-able mapping.
    """
    if metrics is not None and hasattr(metrics, "to_json"):
        metrics = json.loads(metrics.to_json())
    code = code or code_version()
    clean_config = jsonable(dict(config))
    return LedgerRecord(
        fingerprint=compute_fingerprint(seed, clean_config, code),
        kind=kind,
        experiment=experiment,
        seed=seed,
        config=clean_config,
        code_version=code,
        outcome=jsonable(dict(outcome)),
        metrics=jsonable(metrics) if metrics is not None else None,
        timings=jsonable(dict(timings)) if timings else {},
        provenance=jsonable(provenance()),
    )


class LedgerCorruption(ValueError):
    """A non-trailing ledger line failed to parse — the file is damaged
    beyond the torn-tail case the reader tolerates by design.

    The message always leads with ``<file>:<line>:`` so server-side
    ledger damage is diagnosable straight from a CI log or artifact."""


def locked_append(path: pathlib.Path | str, text: str) -> None:
    """Append ``text`` to ``path`` under an exclusive advisory lock.

    This is the one write path of every append-only JSONL store in the
    repository (run ledger, serve job log).  The lock makes concurrent
    appends from multiple processes interleave as whole lines instead of
    tearing each other mid-record; within one process, callers serialize
    through their own handle locks.  On platforms without ``fcntl`` the
    append degrades to a plain buffered write (single-writer semantics,
    the pre-existing contract).
    """
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a") as handle:
        if fcntl is not None:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
        try:
            handle.write(text)
            handle.flush()
        finally:
            if fcntl is not None:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)


def truncate_torn_tail(path: pathlib.Path | str) -> bool:
    """Physically remove a torn trailing line left by a crashed writer.

    Readers already *tolerate* a torn tail (they drop it), but the
    garbage bytes stay in the file — which breaks the serve restart
    guarantee that a resumed campaign's ledger is byte-identical to an
    undisturbed run.  Called once at server boot, before any appends.
    Returns ``True`` when something was truncated.
    """
    path = pathlib.Path(path)
    if not path.exists():
        return False
    data = path.read_bytes()
    # Writers emit "<record>\n" in one locked write, so a torn tail is
    # exactly: bytes after the last newline that do not parse as JSON.
    if not data or data.endswith(b"\n"):
        return False
    head, sep, line = data.rpartition(b"\n")
    offset = len(head) + len(sep)
    try:
        json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        with open(path, "r+b") as handle:
            if fcntl is not None:
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            try:
                handle.truncate(offset)
            finally:
                if fcntl is not None:
                    fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
        return True
    # A parsable line missing only its newline: complete it in place.
    locked_append(path, "\n")
    return False


def read_records(path: pathlib.Path | str) -> list[LedgerRecord]:
    """Read every record of a ledger file, tolerating a torn last line.

    A missing file is an empty ledger.  An unparsable *trailing* line is
    dropped silently (a writer died mid-append; the append protocol makes
    any earlier line complete).  An unparsable line before the end raises
    :class:`LedgerCorruption` with the line number.
    """
    path = pathlib.Path(path)
    if not path.exists():
        return []
    lines = path.read_text().splitlines()
    records: list[LedgerRecord] = []
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            if lineno == len(lines):
                break  # torn trailing line: a crash mid-append, not corruption
            raise LedgerCorruption(
                f"{path}:{lineno}: unparsable ledger line (not the trailing "
                f"line, so this is corruption, not a torn append): {exc}; "
                f"line starts {line[:60]!r}"
            ) from None
        try:
            records.append(LedgerRecord.from_payload(payload))
        except (KeyError, TypeError, ValueError) as exc:
            raise LedgerCorruption(
                f"{path}:{lineno}: ledger line parses as JSON but is not a "
                f"valid record ({type(exc).__name__}: {exc}); "
                f"line starts {line[:60]!r}"
            ) from None
    return records


class RunLedger:
    """Append-only, content-addressed JSONL store of run records.

    Loads its index lazily on first use and keeps it in sync with its own
    appends; one :class:`RunLedger` instance assumes it is the only
    writer for its lifetime (the CLI model — one command, one ledger
    handle).  ``use_cache=False`` makes :meth:`cached` always miss, which
    is how ``--no-cache`` forces recomputation while still recording.
    """

    def __init__(self, path: pathlib.Path | str, use_cache: bool = True):
        self.path = pathlib.Path(path)
        self.use_cache = use_cache
        self._records: list[LedgerRecord] | None = None
        self._identities: set[str] | None = None
        self._by_fingerprint: dict[str, list[LedgerRecord]] = {}
        #: Cache accounting for this handle's lifetime: how many
        #: :meth:`cached` probes were served vs missed.  Campaign resume
        #: reporting ("N cells served from checkpoint") reads these.
        self.hits = 0
        self.misses = 0

    # -- reading -------------------------------------------------------------

    def _load(self) -> None:
        if self._records is not None:
            return
        self._records = read_records(self.path)
        self._identities = {r.identity() for r in self._records}
        for record in self._records:
            self._by_fingerprint.setdefault(record.fingerprint, []).append(record)

    def records(self) -> list[LedgerRecord]:
        self._load()
        assert self._records is not None
        return list(self._records)

    def __len__(self) -> int:
        self._load()
        assert self._records is not None
        return len(self._records)

    def lookup(self, fingerprint: str) -> list[LedgerRecord]:
        """Every record filed under a fingerprint (order = append order)."""
        self._load()
        return list(self._by_fingerprint.get(fingerprint, []))

    def cached(self, fingerprint: str) -> LedgerRecord | None:
        """The cache-hit record for a fingerprint, or ``None``.

        Misses when caching is off, when the fingerprint is unknown, and
        — deliberately — when the fingerprint is *contested* (multiple
        distinct identities): contested results must be recomputed, not
        served from either side of a determinism violation.
        """
        if not self.use_cache:
            self.misses += 1
            return None
        records = self.lookup(fingerprint)
        if not records or len({r.identity() for r in records}) > 1:
            self.misses += 1
            return None
        self.hits += 1
        return records[0]

    # -- writing -------------------------------------------------------------

    def append(self, record: LedgerRecord) -> bool:
        """Append a record unless an identical one is already filed.

        Returns ``True`` when a line was written.  A record whose
        :meth:`~LedgerRecord.identity` already exists is a cache hit and
        is *not* re-appended (append-only does not mean append-duplicates);
        a record whose fingerprint exists under a *different* identity IS
        appended — that conflict is determinism-violation evidence and
        must survive for :func:`repro.obs.projections.detect_violations`.
        """
        self._load()
        assert self._records is not None and self._identities is not None
        identity = record.identity()
        if identity in self._identities:
            return False
        # Locked append: concurrent writers (serve dispatcher + a CLI run
        # sharing one ledger) interleave whole lines, never torn records.
        locked_append(self.path, record.to_line() + "\n")
        self._records.append(record)
        self._identities.add(identity)
        self._by_fingerprint.setdefault(record.fingerprint, []).append(record)
        return True

    def append_all(self, records: Iterable[LedgerRecord]) -> int:
        """Append many records; returns how many lines were written."""
        return sum(1 for record in records if self.append(record))

    def gc(self) -> tuple[int, int]:
        """Rewrite the file dropping exact-duplicate identities.

        Distinct identities under one fingerprint are *kept* — they are
        evidence, and collecting them is the flakiness detector's job.
        Returns ``(kept, dropped)``.
        """
        records = read_records(self.path)
        seen: set[str] = set()
        kept: list[LedgerRecord] = []
        for record in records:
            identity = record.identity()
            if identity in seen:
                continue
            seen.add(identity)
            kept.append(record)
        if self.path.exists() or kept:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self.path.write_text(
                "".join(record.to_line() + "\n" for record in kept)
            )
        self._records = list(kept)
        self._identities = set(seen)
        self._by_fingerprint = {}
        for record in kept:
            self._by_fingerprint.setdefault(record.fingerprint, []).append(record)
        return len(kept), len(records) - len(kept)


def ledger_from_env(
    path: str | os.PathLike | None = None, use_cache: bool = True
) -> RunLedger | None:
    """The process's ledger, or ``None`` when recording is off.

    ``path`` (a CLI ``--ledger`` value) wins; otherwise the
    ``REPRO_LEDGER`` environment variable; otherwise recording is off —
    the default, so no entry point pays ledger I/O unasked.
    """
    resolved = str(path) if path else os.environ.get(LEDGER_ENV, "").strip()
    if not resolved:
        return None
    return RunLedger(resolved, use_cache=use_cache)
