"""The Aspnes–Herlihy random-walk shared coin with unbounded counters.

Each process owns an integer counter register; a *walk step* flips a local
coin and atomically adds ±1 to the own counter; *reading* the coin collects
all counters (one atomic read each, i.e. an inconsistent cut — this is the
adversarial surface) and applies the threshold rule of
:func:`repro.coin.logic.coin_value` with ``m = ∞``.

The counters grow without bound under a long adversarial schedule; the
bounded version in :mod:`repro.coin.bounded` is the paper's fix.
"""

from __future__ import annotations

from typing import Any, Generator, TYPE_CHECKING

from repro.coin import logic
from repro.coin.interface import SharedCoin
from repro.registers.atomic import RegisterArray
from repro.registers.base import MemoryAudit
from repro.runtime.events import OpIntent
from repro.runtime.process import ProcessContext

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.simulation import Simulation


class WalkSharedCoin(SharedCoin):
    """Random-walk weak shared coin, unbounded counters (comparator)."""

    m_bound: int | None = None

    def __init__(
        self,
        sim: "Simulation",
        name: str,
        n: int,
        b_barrier: int = 2,
        audit: MemoryAudit | None = None,
    ):
        self.name = name
        self.n = n
        self.b_barrier = b_barrier
        self.total_steps = 0
        self._flips = sim.metrics.counter("coin.flips", coin=name)
        self._reads = sim.metrics.counter("coin.reads", coin=name)
        self._excursion = sim.metrics.gauge("coin.max_excursion", coin=name)
        self.counters = RegisterArray(sim, f"{name}.c", n, initial=0, audit=audit)
        # Writer-local knowledge of the own counter (the own register is
        # single-writer, so its owner need not read it back).
        self._shadow = [0] * n
        sim.register_shared(name, self)

    # -- operations ---------------------------------------------------------

    def read_value(self, ctx: ProcessContext) -> Generator[OpIntent, None, Any]:
        """Collect all counters, then apply the threshold rule."""
        span = ctx.begin_span("coin_read", self.name)
        self._reads.inc()
        collected = []
        for j in range(self.n):
            value = yield from self.counters[j].read(ctx)
            collected.append(value)
        result = logic.coin_value(
            collected[ctx.pid], collected, self.n, self.b_barrier, self.m_bound
        )
        ctx.end_span(span, result)
        return result

    def walk_step(self, ctx: ProcessContext) -> Generator[OpIntent, None, None]:
        """Flip the local coin; atomically move the own counter ±1.

        One atomic write (the paper's ``walk_step``): the current value is
        writer-local knowledge, no read-back needed.
        """
        heads = ctx.rng.random() < 0.5
        new = logic.walk_step_value(self._shadow[ctx.pid], heads, self.m_bound)
        yield from self.counters[ctx.pid].write(ctx, new)
        self._shadow[ctx.pid] = new
        self.total_steps += 1
        self._flips.inc()
        self._excursion.set_max(abs(new))

    # -- inspection -----------------------------------------------------------

    def true_walk_value(self) -> int:
        return sum(self.counters.peek_all())

    def counter_of(self, pid: int) -> int:
        return self.counters[pid].peek()

    def max_counter_magnitude(self) -> int:
        return max(abs(c) for c in self.counters.peek_all())
