"""Pure decision logic of the random-walk shared coin (§3).

These functions are shared between the standalone coin objects (which keep
counters in their own registers) and the ADS consensus protocol (whose coin
counters live inside the scannable-memory cells): given a vector of counter
values, they decide heads / tails / undecided exactly as the paper's
``coin_value`` function does.
"""

from __future__ import annotations

import math
from typing import Iterable

HEADS = 1
TAILS = 0
UNDECIDED = None


def walk_value(counters: Iterable[int]) -> int:
    """The walk's position: the sum of all per-process counters."""
    return sum(counters)


def coin_value(
    own_counter: int,
    counters: Iterable[int],
    n: int,
    b_barrier: int,
    m_bound: int | None,
):
    """The paper's ``coin_value`` function.

    Args:
        own_counter: the invoking process's own counter ``c_i``.
        counters: all counters (including ``c_i``) as read/scanned.
        n: number of processes.
        b_barrier: barrier multiplier ``b``; decision thresholds are ``±b·n``.
        m_bound: per-counter bound ``m`` (``None`` = unbounded counters).

    Returns:
        ``HEADS``, ``TAILS``, or ``UNDECIDED``, per §3:

        1. own counter outside ``{-m..m}`` → ``HEADS`` (bounded overflow
           rule; its probability is absorbed by Lemma 3.4);
        2. walk value above ``+b·n`` → ``HEADS``;
        3. walk value below ``-b·n`` → ``TAILS``;
        4. otherwise undecided.
    """
    if m_bound is not None and not -m_bound <= own_counter <= m_bound:
        return HEADS
    value = walk_value(counters)
    if value > b_barrier * n:
        return HEADS
    if value < -b_barrier * n:
        return TAILS
    return UNDECIDED


def default_m(b_barrier: int, n: int, f_factor: int = 4) -> int:
    """Default counter bound ``m = (f(b)·n)²`` per Lemma 3.3.

    The paper leaves ``f`` as a free function of ``b``; any ``f`` growing
    with the desired agreement probability works because the overflow
    probability decays as ``C·b·n/√m`` (Lemma 3.4).  We use
    ``f(b) = f_factor·b`` by default, giving ``m = (f_factor·b·n)²`` and an
    overflow probability of order ``1/f_factor``-ish — small enough that the
    deterministic-heads rule does not distort the measured disagreement
    rates (checked empirically by experiment E3).
    """
    return (f_factor * b_barrier * n) ** 2


def counter_range(m_bound: int) -> tuple[int, int]:
    """Legal counter range ``{-(m+1), …, m+1}``."""
    return (-(m_bound + 1), m_bound + 1)


def walk_step_value(current: int, heads: bool, m_bound: int | None) -> int:
    """The counter value after one walk step (±1), range-checked.

    Raises ``OverflowError`` if the step would leave the representable
    range ``{-(m+1)..m+1}``; callers must consult :func:`coin_value` before
    stepping (the protocol always does), in which case the overflow rule
    fires first and the step never happens.
    """
    new = current + (1 if heads else -1)
    if m_bound is not None:
        low, high = counter_range(m_bound)
        if not low <= new <= high:
            raise OverflowError(
                f"walk step to {new} outside bounded counter range "
                f"[{low}, {high}]; coin_value must be consulted before stepping"
            )
    return new


def predicted_expected_steps(b_barrier: int, n: int) -> int:
    """Lemma 3.2: expected total walk steps until the coin decides."""
    return (b_barrier + 1) ** 2 * n**2


def predicted_disagreement_bound(b_barrier: int) -> float:
    """Lemma 3.1 (as reconstructed): disagreement probability ≤ ~1/b.

    The lemma guarantees that for each outcome, with probability at least
    ``(b-1)/(2b)`` *all* processes see that outcome, leaving at most ``1/b``
    of the probability mass to adversary-forced disagreement.
    """
    return 1.0 / b_barrier


def predicted_overflow_bound(b_barrier: int, n: int, m_bound: int) -> float:
    """Lemma 3.4 shape: P(some counter overflows) ≤ C·b·n/√m (C = 1 here)."""
    return b_barrier * n / math.sqrt(m_bound)
