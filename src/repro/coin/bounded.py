"""§3's bounded weak shared coin.

Identical to the unbounded random-walk coin except that every per-process
counter is confined to ``{-(m+1), …, m+1}``: a process whose own counter has
left ``{-m..m}`` deterministically returns **heads** (``coin_value`` line 1).

The choice of *heads* is arbitrary but must be deterministic and global; the
adversary could try to exploit it by driving one process's counter to the
bound and the walk to the tails side — Lemma 3.3/3.4 show that for
``m = (f(b)·n)²`` the probability any single counter drifts that far before
the walk itself crosses a ``±b·n`` barrier is ``O(b·n/√m)``, which is folded
into the coin's (already non-zero) disagreement probability.  Experiment E3
measures exactly this overflow frequency.

The bound buys two things the paper needs:

- each counter fits in ``O(log m)`` bits — bounded memory;
- each process performs at most ``m + 1`` walk steps per coin — the coin is
  *deterministically* wait-free per process, not just in expectation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.coin import logic
from repro.coin.walk import WalkSharedCoin
from repro.registers.base import MemoryAudit

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.simulation import Simulation


class BoundedWalkSharedCoin(WalkSharedCoin):
    """Random-walk weak shared coin with bounded counters (the paper's)."""

    def __init__(
        self,
        sim: "Simulation",
        name: str,
        n: int,
        b_barrier: int = 2,
        m_bound: int | None = None,
        audit: MemoryAudit | None = None,
    ):
        super().__init__(sim, name, n, b_barrier=b_barrier, audit=audit)
        self.m_bound = m_bound if m_bound is not None else logic.default_m(b_barrier, n)
        self.overflows = 0
        self._overflow_counter = sim.metrics.counter("coin.overflows", coin=name)

    def read_value(self, ctx):
        """Threshold rule with the overflow-⇒-heads clause active."""
        result = yield from super().read_value(ctx)
        if result == logic.HEADS and not (
            -self.m_bound <= self._shadow[ctx.pid] <= self.m_bound
        ):
            self.overflows += 1
            self._overflow_counter.inc()
        return result

    def any_overflow(self) -> bool:
        """Whether any counter currently sits outside ``{-m..m}`` (E3)."""
        return any(abs(c) > self.m_bound for c in self.counters.peek_all())

    def counter_bits(self) -> int:
        """Bits needed per counter: the boundedness headline number."""
        return (2 * (self.m_bound + 1) + 1).bit_length()
