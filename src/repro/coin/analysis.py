"""Random-walk theory used by §3's lemmas.

Closed forms and exact small-case computations backing the predicted rows
of experiments E1–E3:

- Lemma 3.1: per-outcome agreement probability ≥ (b-1)/(2b), so the
  disagreement probability is at most ~1/b;
- Lemma 3.2: expected total walk steps (b+1)²·n²;
- Lemma 3.3: an m-step ±1 walk stays inside ±a with probability ≤ C·a/√m
  (reflection/central-limit bound) — instantiated with a = f(b)·n to bound
  the probability that a *single* counter survives long enough to overflow;
- Lemma 3.4: overall overflow probability ≤ C·b·n/√m.

The exact distributions are computed by dynamic programming for moderate
sizes (used in unit tests), with normal approximations for large ones.
"""

from __future__ import annotations

import math


def absorption_expected_steps(barrier: int) -> int:
    """E[steps] for a fair ±1 walk from 0 to hit ±barrier: exactly barrier²."""
    return barrier * barrier


def stay_inside_probability(steps: int, barrier: int) -> float:
    """Exact P(an m-step fair ±1 walk never leaves (-barrier, +barrier)).

    Dynamic programming over positions; O(steps × barrier).  This is the
    quantity ``S_m`` of Lemma 3.3 (with the walk's partial sums required to
    stay strictly inside the barriers).
    """
    if barrier <= 0:
        return 0.0
    # probabilities over positions -barrier+1 .. barrier-1
    size = 2 * barrier - 1
    offset = barrier - 1
    current = [0.0] * size
    current[offset] = 1.0
    for _ in range(steps):
        nxt = [0.0] * size
        for pos, p in enumerate(current):
            if p == 0.0:
                continue
            if pos + 1 < size:
                nxt[pos + 1] += 0.5 * p
            if pos - 1 >= 0:
                nxt[pos - 1] += 0.5 * p
        current = nxt
    return sum(current)


def stay_inside_bound(steps: int, barrier: int, constant: float = 2.0) -> float:
    """Lemma 3.3 shape: P(stay inside ±barrier for m steps) ≤ C·barrier/√m."""
    if steps == 0:
        return 1.0
    return min(1.0, constant * barrier / math.sqrt(steps))


def hitting_probability_asymmetric(start: int, low: int, high: int) -> float:
    """P(fair walk from ``start`` hits ``high`` before ``low``) (gambler's ruin)."""
    if not low <= start <= high or low == high:
        raise ValueError("need low <= start <= high, low != high")
    return (start - low) / (high - low)


def agreement_probability_lower_bound(b_barrier: int) -> float:
    """Lemma 3.1: P(all processes see heads) ≥ (b-1)/(2b) (same for tails).

    Sketch of the standard argument: if the true walk, instead of merely
    touching ``+b·n``, runs on to ``+(b+1)·n`` before ever returning to
    ``+(b-1)·n``, then every collect any process completes afterwards sums
    to more than ``b·n`` regardless of staleness (each of the n counters is
    read within n of its true value), so *everyone* sees heads.  By
    gambler's ruin the walk started at 0 reaches ``+(b+1)n`` before
    ``-(b-1)n``… combining the one-sided excursions gives the
    ``(b-1)/(2b)`` bound.
    """
    return max(0.0, (b_barrier - 1) / (2 * b_barrier))


def disagreement_probability_upper_bound(b_barrier: int) -> float:
    """At most 1 - 2·(b-1)/(2b) = 1/b of the mass can be disagreement."""
    return min(1.0, 1.0 - 2 * agreement_probability_lower_bound(b_barrier))
