"""Perfect atomic shared coin (the Chor–Israeli–Li assumption).

[CIL87] gave the first time-efficient randomized consensus with bounded
memory, but assumed a powerful *atomic coin flip* primitive: one operation
that, the first time any process invokes it, fixes a globally agreed random
outcome.  This module provides that primitive directly (it is trivially
implementable inside the simulator, where an operation takes effect at a
single instant) so the CIL regime can be benchmarked against the paper's
protocol, which needs nothing beyond read/write registers.
"""

from __future__ import annotations

from typing import Any, Generator, TYPE_CHECKING

from repro.coin.interface import SharedCoin
from repro.coin.logic import HEADS, TAILS
from repro.runtime.events import OpIntent
from repro.runtime.process import ProcessContext

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.simulation import Simulation


class OracleCoin(SharedCoin):
    """One-shot perfect shared coin: first toucher fixes the outcome."""

    def __init__(self, sim: "Simulation", name: str, n: int):
        self.name = name
        self.n = n
        self._outcome: Any = None
        sim.register_shared(name, self)

    def read_value(self, ctx: ProcessContext) -> Generator[OpIntent, None, Any]:
        """Atomic flip-or-read: decides the outcome on first invocation."""
        yield OpIntent(ctx.pid, "atomic_flip", self.name)
        if self._outcome is None:
            self._outcome = HEADS if ctx.rng.random() < 0.5 else TAILS
        ctx.record("atomic_flip", self.name, self._outcome)
        return self._outcome

    def walk_step(self, ctx: ProcessContext) -> Generator[OpIntent, None, None]:
        """No-op: a perfect coin needs no walk.  Never undecided."""
        return
        yield  # pragma: no cover - makes this a generator function

    def true_walk_value(self) -> int:
        return 0

    def counter_of(self, pid: int) -> int:
        return 0
