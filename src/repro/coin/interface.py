"""Abstract interface of a shared coin and the standard flipper program."""

from __future__ import annotations

import abc
from typing import Any, Generator

from repro.runtime.events import OpIntent
from repro.runtime.process import ProcessContext


class SharedCoin(abc.ABC):
    """A shared coin protocol instance (one logical coin toss).

    Processes interact through two sub-generators:

    - ``read_value(ctx)`` returns ``HEADS``/``TAILS``/``UNDECIDED``;
    - ``walk_step(ctx)`` contributes one (local-coin-driven) step.

    The canonical usage loop is :func:`coin_flipper_program`.
    """

    name: str
    n: int

    @abc.abstractmethod
    def read_value(self, ctx: ProcessContext) -> Generator[OpIntent, None, Any]:
        """Determine the coin's value as visible to ``ctx.pid``."""

    @abc.abstractmethod
    def walk_step(self, ctx: ProcessContext) -> Generator[OpIntent, None, None]:
        """Perform one step of the underlying randomized process."""

    @abc.abstractmethod
    def true_walk_value(self) -> int:
        """Instantaneous walk position (adversary/test access)."""

    @abc.abstractmethod
    def counter_of(self, pid: int) -> int:
        """Current counter of ``pid`` (adversary/test access)."""


def coin_flipper_program(coin: SharedCoin):
    """Program factory: flip until the coin decides; decide its value.

    Matches the paper's usage: a process repeatedly evaluates
    ``coin_value`` and performs a ``walk_step`` while undecided.
    """

    def factory(pid: int):
        def body(ctx: ProcessContext):
            while True:
                value = yield from coin.read_value(ctx)
                if value is not None:
                    return value
                yield from coin.walk_step(ctx)

        return body

    return factory
