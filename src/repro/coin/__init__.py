"""Weak shared coins (§3 of the paper).

A *weak shared coin* is a protocol by which n processes each obtain a value
in {heads, tails} such that, for each outcome, with probability bounded away
from zero *all* processes obtain that outcome — no matter what the strong
adaptive adversary does.  (The coin is "weak" because with the remaining
probability the adversary may cause disagreement; [AH88] show a perfect
shared coin cannot be built.)

Implementations:

- :class:`~repro.coin.walk.WalkSharedCoin` — the Aspnes–Herlihy random-walk
  coin with *unbounded* per-process counters (comparator);
- :class:`~repro.coin.bounded.BoundedWalkSharedCoin` — §3's bounded version:
  counters live in ``{-(m+1), …, m+1}`` and a process whose own counter
  overflows deterministically returns heads (Lemmas 3.3/3.4 make the
  overflow probability negligible for ``m = (f(b)·n)²``);
- :class:`~repro.coin.oracle.OracleCoin` — a perfect atomic shared coin (the
  primitive Chor–Israeli–Li assume; trivially strong, used as a baseline);
- :class:`~repro.coin.local.local_coin_flip` — an independent local coin
  (the Abrahamson regime; gives exponential consensus).

:mod:`repro.coin.logic` holds the pure decision function shared between the
standalone coins and the consensus protocol; :mod:`repro.coin.analysis`
holds the paper's closed-form predictions.
"""

from repro.coin.bounded import BoundedWalkSharedCoin
from repro.coin.interface import SharedCoin, coin_flipper_program
from repro.coin.local import local_coin_flip
from repro.coin.logic import HEADS, TAILS, UNDECIDED, coin_value, default_m
from repro.coin.oracle import OracleCoin
from repro.coin.walk import WalkSharedCoin

__all__ = [
    "BoundedWalkSharedCoin",
    "HEADS",
    "OracleCoin",
    "SharedCoin",
    "TAILS",
    "UNDECIDED",
    "WalkSharedCoin",
    "coin_flipper_program",
    "coin_value",
    "default_m",
    "local_coin_flip",
]
