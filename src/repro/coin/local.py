"""Independent local coins (the Abrahamson regime).

[A88] solved randomized consensus with nothing but local coin flips: each
process re-draws its preference independently when blocked.  Agreement then
requires all processes to flip the same value in the same round, which
happens with probability ``2^{-(n-1)}`` — hence the exponential expected
running time that the paper's shared coin eliminates.  The helper here is
deliberately trivial; it exists so the Abrahamson-style baseline protocol
and the benchmarks read symmetrically with the shared-coin versions.
"""

from __future__ import annotations

from repro.coin.logic import HEADS, TAILS
from repro.runtime.process import ProcessContext


def local_coin_flip(ctx: ProcessContext) -> int:
    """One fair private coin flip (local computation; costs no shared step)."""
    return HEADS if ctx.rng.random() < 0.5 else TAILS
