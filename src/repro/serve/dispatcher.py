"""The dispatcher thread: drains the job queue onto the resilient engine.

One daemon thread claims jobs oldest-first and executes them through
the *same* workload builders the CLI uses (:mod:`repro.workloads`), so
a job's ledger records are byte-identical to the equivalent CLI run.
Every job opens a fresh :class:`~repro.obs.ledger.RunLedger` handle on
the server's ledger file: cells the ledger already holds are cache
hits, fresh cells checkpoint incrementally via the experiment layer's
:class:`~repro.resilience.checkpoint.LedgerCheckpointer` — which is
exactly what makes a SIGTERM survivable: the killed server leaves a
valid submission-order ledger prefix, the restarted one requeues the
job and recomputes only the missing fingerprints.

Execution always runs under a supervising
:class:`~repro.resilience.policy.FailurePolicy` (``continue`` or
``retry`` mode, never plain fail-fast): at ``workers > 1`` the engine
then uses its supervised pool of *daemon* worker processes, which the
kernel reaps when the server process exits — an abrupt shutdown can
never orphan workers the way the chunked non-daemon pool could.
"""

from __future__ import annotations

import threading
import time
import traceback
from typing import TYPE_CHECKING, Any, Callable

from repro.obs.ledger import LedgerRecord, RunLedger
from repro.serve.queue import Job, JobQueue

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.metrics import MetricsRegistry
    from repro.resilience import AdmissionController, FailurePolicy
    from repro.serve.telemetry import TelemetryHub

#: Engine counters diffed per job into the job's progress/result.
_RESILIENCE_COUNTERS = (
    "resilience.retries",
    "resilience.timeouts",
    "resilience.shed",
)


class _TimedLedger(RunLedger):
    """A :class:`RunLedger` that timestamps its own appends.

    The dispatcher hands one of these to the workload builders; the
    experiment layer's :class:`~repro.resilience.checkpoint.
    LedgerCheckpointer` flushes through :meth:`append` as cells finish,
    so the first/last append times bracket exactly the job's
    checkpointing activity — which the dispatcher then emits as the
    job's ``checkpoint`` span in the job trace.
    """

    def __init__(self, path: Any, clock: Callable[[], float] = time.time):
        super().__init__(path)
        self.clock = clock
        self.first_append: float | None = None
        self.last_append: float | None = None
        self.appended = 0

    def append(self, record: LedgerRecord) -> bool:
        wrote = super().append(record)
        if wrote:
            now = self.clock()
            if self.first_append is None:
                self.first_append = now
            self.last_append = now
            self.appended += 1
        return wrote


class Dispatcher(threading.Thread):
    """Single-consumer worker loop over a :class:`JobQueue`.

    Args:
        queue: the persistent job queue.
        ledger_path: the server's run ledger file (every job appends to
            this one store, under the cross-process file lock).
        workers: engine worker processes per job (1 = in-process).
        policy: failure policy every job runs under (must not be plain
            fail-fast — see the module docstring).
        task_timeout: optional per-cell wall-clock deadline (seconds).
        admission: the server's admission controller; completed job
            results are charged against its budget here.
        metrics: the server's registry; engine and job counters land in
            it and surface through ``GET /metrics``.
        telemetry: the server's :class:`~repro.serve.telemetry.
            TelemetryHub`; the dispatcher contributes the per-job
            ``checkpoint`` span and retry/timeout/shed instants to the
            job trace (lifecycle spans come from the queue listener).
    """

    def __init__(
        self,
        queue: JobQueue,
        *,
        ledger_path: Any,
        workers: int = 1,
        policy: "FailurePolicy | None" = None,
        task_timeout: float | None = None,
        admission: "AdmissionController | None" = None,
        metrics: "MetricsRegistry | None" = None,
        telemetry: "TelemetryHub | None" = None,
    ):
        super().__init__(name="repro-serve-dispatcher", daemon=True)
        from repro.resilience import FailurePolicy

        self.queue = queue
        self.ledger_path = ledger_path
        self.workers = workers
        self.policy = (
            policy
            if policy is not None
            else FailurePolicy.continue_and_report()
        )
        if self.policy.mode == "fail_fast":
            raise ValueError(
                "serve dispatcher needs a continue/retry policy (fail-fast "
                "would select the non-daemon worker pool, which an abrupt "
                "server exit could orphan)"
            )
        self.task_timeout = task_timeout
        self.admission = admission
        self.metrics = metrics
        self.telemetry = telemetry
        self._halt = threading.Event()

    # -- lifecycle -----------------------------------------------------------

    def stop(self) -> None:
        self._halt.set()
        self.queue.wake.set()

    def run(self) -> None:  # pragma: no cover - exercised via the server
        while not self._halt.is_set():
            job = self.queue.claim()
            if job is None:
                self.queue.wake.wait(timeout=0.2)
                continue
            self.execute(job)

    # -- execution -----------------------------------------------------------

    def execute(self, job: Job) -> None:
        """Run one claimed job to a terminal state (DONE or FAILED)."""
        before = self._resilience_totals()
        try:
            result = self._run_spec(job)
        except Exception as exc:  # noqa: BLE001 - any job error is terminal
            detail = traceback.format_exc(limit=4)
            self._trace_resilience(job, self._resilience_delta(before))
            self._count_job("failed")
            self.queue.fail(job.id, f"{type(exc).__name__}: {exc}\n{detail}")
            return
        result["resilience"] = self._resilience_delta(before)
        self._trace_resilience(job, result["resilience"])
        self._count_job("done")
        self.queue.finish(job.id, result)
        if self.admission is not None:
            self.admission.charge(result)

    def _run_spec(self, job: Job) -> dict[str, Any]:
        kind = job.spec["kind"]
        params = job.spec["params"]
        # A fresh handle per job sees everything on disk — including
        # records a concurrent CLI run appended since the last job.
        ledger = _TimedLedger(self.ledger_path)
        runner = {
            "sweep": self._run_sweep,
            "fuzz": self._run_fuzz,
            "campaign": self._run_campaign,
            "chaos": self._run_chaos,
        }[kind]
        result = runner(job, params, ledger)
        result["cache_hits"] = ledger.hits
        result["recomputed"] = ledger.misses
        if self.telemetry is not None and ledger.first_append is not None:
            # One span bracketing the job's incremental checkpointing —
            # the last leg of the correlation-id chain (queue-wait →
            # dispatch → tasks → checkpoint).
            self.telemetry.tracer.span(
                job.id,
                "checkpoint",
                ledger.first_append,
                ledger.last_append or ledger.first_append,
                records=ledger.appended,
                cache_hits=ledger.hits,
                recomputed=ledger.misses,
            )
        return result

    def _trace_resilience(self, job: Job, delta: dict[str, int]) -> None:
        """Emit one instant per resilience kind the job tripped."""
        if self.telemetry is None:
            return
        for kind, name in (
            ("retries", "retry"),
            ("timeouts", "timeout"),
            ("shed", "shed"),
        ):
            count = delta.get(kind, 0)
            if count:
                self.telemetry.tracer.instant(
                    job.id, name, count=count, scope="task"
                )

    def _progress(self, job: Job) -> Callable[[int, int], None]:
        def progress(done: int, total: int) -> None:
            self.queue.update_progress(job.id, done=done, total=total)

        return progress

    def _run_sweep(
        self, job: Job, params: dict[str, Any], ledger: RunLedger
    ) -> dict[str, Any]:
        from repro.analysis.experiment import sweep_table
        from repro.workloads import build_sweep

        sweep = build_sweep(
            protocol=params["protocol"],
            n_values=params["n_values"],
            reps=params["reps"],
            seed_base=params["seed_base"],
            scheduler=params["scheduler"],
            metric=params["metric"],
            max_steps=params["max_steps"],
            ledger=ledger,
            policy=self.policy,
            task_timeout=self.task_timeout,
            metrics=self.metrics,
        )
        points = sweep.execute(
            workers=self.workers, progress=self._progress(job)
        )
        samples = [value for point in points for value in point.samples]
        return {
            "kind": "sweep",
            "ok": True,
            "experiment": sweep.experiment,
            "table": sweep_table(points),
            "cells": len(samples),
            "steps_total": (
                int(sum(samples)) if params["metric"] == "steps" else 0
            ),
        }

    def _run_fuzz(
        self, job: Job, params: dict[str, Any], ledger: RunLedger
    ) -> dict[str, Any]:
        from repro.verify.fuzz import fuzz_consensus
        from repro.workloads import PROTOCOLS

        report = fuzz_consensus(
            PROTOCOLS[params["protocol"]],
            n_values=params["n_values"],
            runs_per_cell=params["runs_per_cell"],
            crash_probability=params["crash_probability"],
            recovery_probability=params["recovery_probability"],
            fault_probability=params["fault_probability"],
            master_seed=params["seed"],
            workers=self.workers,
            progress=self._progress(job),
            ledger=ledger,
            experiment="fuzz",
            policy=self.policy,
            task_timeout=self.task_timeout,
            metrics=self.metrics,
        )
        return {
            "kind": "fuzz",
            "ok": report.ok,
            "summary": report.summary(),
            "runs": report.runs,
            "failures": [str(failure) for failure in report.failures],
            "task_errors": report.task_errors,
            "steps_total": report.steps_total,
        }

    def _run_campaign(
        self, job: Job, params: dict[str, Any], ledger: RunLedger
    ) -> dict[str, Any]:
        from repro.faults.campaign import run_mutation_campaign

        report = run_mutation_campaign(
            seed=params["seed"],
            consensus_max_steps=params["consensus_max_steps"],
            workers=self.workers,
            ledger=ledger,
            experiment="campaign",
            policy=self.policy,
            task_timeout=self.task_timeout,
            metrics=self.metrics,
        )
        rows = report.to_rows()
        self.queue.update_progress(job.id, done=len(rows), total=len(rows))
        return {
            "kind": "campaign",
            "ok": report.ok,
            "rows": rows,
            "holes": sorted(report.holes),
            "task_errors": report.task_errors,
        }

    def _run_chaos(
        self, job: Job, params: dict[str, Any], ledger: RunLedger
    ) -> dict[str, Any]:
        """The three ``repro chaos`` stages under their CLI experiment
        labels, so serve chaos jobs cache-hit prior CLI chaos runs."""
        from repro.consensus import AdsConsensus
        from repro.faults.campaign import run_mutation_campaign
        from repro.verify.fuzz import fuzz_consensus
        from repro.workloads import CHAOS_EXPERIMENTS

        campaign = run_mutation_campaign(
            seed=params["seed"],
            workers=self.workers,
            ledger=ledger,
            experiment=CHAOS_EXPERIMENTS["campaign"],
            policy=self.policy,
            task_timeout=self.task_timeout,
            metrics=self.metrics,
        )
        recovery = fuzz_consensus(
            AdsConsensus,
            n_values=(2, 3),
            runs_per_cell=params["runs_per_cell"],
            crash_probability=1.0,
            recovery_probability=1.0,
            master_seed=params["seed"],
            workers=self.workers,
            progress=self._progress(job),
            ledger=ledger,
            experiment=CHAOS_EXPERIMENTS["recovery"],
            policy=self.policy,
            task_timeout=self.task_timeout,
            metrics=self.metrics,
        )
        faults = fuzz_consensus(
            AdsConsensus,
            n_values=(2, 3),
            runs_per_cell=max(2, params["runs_per_cell"] // 5),
            crash_probability=0.0,
            fault_probability=1.0,
            master_seed=params["seed"],
            workers=self.workers,
            ledger=ledger,
            experiment=CHAOS_EXPERIMENTS["faults"],
            policy=self.policy,
            task_timeout=self.task_timeout,
            metrics=self.metrics,
        )
        ok = campaign.ok and recovery.ok and faults.ok
        return {
            "kind": "chaos",
            "ok": ok,
            "campaign": {
                "ok": campaign.ok,
                "holes": sorted(campaign.holes),
                "task_errors": campaign.task_errors,
            },
            "recovery": recovery.summary(),
            "faults": faults.summary(),
            "steps_total": recovery.steps_total + faults.steps_total,
        }

    # -- accounting ----------------------------------------------------------

    def _count_job(self, state: str) -> None:
        if self.metrics is not None:
            self.metrics.counter("serve.jobs", state=state).inc()

    def _resilience_totals(self) -> dict[str, int]:
        if self.metrics is None:
            return {}
        return {
            name: self.metrics.counter_total(name)
            for name in _RESILIENCE_COUNTERS
        }

    def _resilience_delta(self, before: dict[str, int]) -> dict[str, int]:
        after = self._resilience_totals()
        return {
            name.split(".", 1)[1]: after[name] - before.get(name, 0)
            for name in after
        }
