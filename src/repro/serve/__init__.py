"""Simulation-as-a-service: HTTP/JSON API over the resilient engine.

The ROADMAP north-star frames heavy traffic as consensus-simulation
requests; this package is the service layer that accepts them.  It is
stdlib-only (``http.server``) and glues together three existing layers:

- :mod:`repro.workloads` defines *what* a job runs (the same sweep /
  fuzz / chaos / campaign shapes as the CLI, so ledger bytes are
  byte-identical across entry points);
- :mod:`repro.resilience` defines *how* it runs (failure policies,
  deadlines, admission control with priority classes);
- :mod:`repro.obs.ledger` is *where* results live (the append-only
  content-addressed store — repeated submissions are cache hits, and a
  server restart resumes from the checkpointed ledger prefix).

Layout: :mod:`~repro.serve.schemas` validates and fingerprints job
specs, :mod:`~repro.serve.queue` is the persistent JSONL job log,
:mod:`~repro.serve.dispatcher` drains it onto the engine,
:mod:`~repro.serve.api` is the HTTP surface,
:mod:`~repro.serve.telemetry` the observability layer (job trace, SSE
progress streaming, Prometheus exposition, access-log middleware), and
:mod:`~repro.serve.client` the small client the tests and CI smoke use.
See ``docs/service.md`` for the API reference, lifecycle diagram and
the Observability section.
"""

from repro.serve.api import ReproServer, ServeConfig, build_server
from repro.serve.client import ServeClient, ServeError
from repro.serve.dispatcher import Dispatcher
from repro.serve.queue import Job, JobQueue, JobStates
from repro.serve.schemas import (
    JOB_KINDS,
    PRIORITIES,
    SpecError,
    job_fingerprint,
    validate_spec,
)
from repro.serve.telemetry import (
    EventBroker,
    JobTracer,
    TelemetryHub,
    job_trace_to_trace,
    load_job_trace,
    render_prometheus,
    timeline_rows,
)

__all__ = [
    "JOB_KINDS",
    "PRIORITIES",
    "Dispatcher",
    "EventBroker",
    "Job",
    "JobQueue",
    "JobStates",
    "JobTracer",
    "ReproServer",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "SpecError",
    "TelemetryHub",
    "build_server",
    "job_fingerprint",
    "job_trace_to_trace",
    "load_job_trace",
    "render_prometheus",
    "timeline_rows",
    "validate_spec",
]
