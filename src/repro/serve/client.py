"""A small stdlib client for the serve API (tests + CI smoke use it).

Thin on purpose: JSON in, JSON out, no retries of its own — the
*server* owns resilience.  Every non-2xx answer raises
:class:`ServeError` carrying the HTTP status and the decoded error
body, so callers can branch on backpressure (429/503) explicitly.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.parse
import urllib.request
from typing import Any, Iterator, Mapping

from repro.serve.queue import JobStates

#: States :meth:`ServeClient.wait` stops on.
TERMINAL_STATES = (JobStates.DONE, JobStates.FAILED, JobStates.SHED)

#: SSE event names that end a :meth:`ServeClient.stream_events` iteration.
TERMINAL_EVENTS = ("done", "failed", "shed")


class ServeError(RuntimeError):
    """An API refusal: HTTP status + decoded body."""

    def __init__(self, status: int, body: Mapping[str, Any]):
        self.status = status
        self.body = dict(body)
        super().__init__(
            f"HTTP {status}: {body.get('error') or json.dumps(body)}"
        )


class ServeClient:
    """Client bound to one server base URL (e.g. ``http://127.0.0.1:8642``)."""

    def __init__(self, base_url: str, timeout: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def _request(
        self, method: str, path: str, payload: Any = None
    ) -> dict[str, Any]:
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                return json.loads(resp.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                body = json.loads(exc.read().decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                body = {"error": str(exc)}
            raise ServeError(exc.code, body) from None

    # -- the API, verb by verb ----------------------------------------------

    def submit(
        self,
        kind: str,
        params: Mapping[str, Any] | None = None,
        priority: str = "normal",
    ) -> dict[str, Any]:
        """POST /jobs; returns the job snapshot (raises on 4xx/5xx)."""
        spec: dict[str, Any] = {"kind": kind, "priority": priority}
        if params:
            spec["params"] = dict(params)
        return self._request("POST", "/jobs", spec)

    def job(self, job_id: str) -> dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}")

    def jobs(self) -> list[dict[str, Any]]:
        return self._request("GET", "/jobs")["jobs"]

    def result(self, job_id: str) -> dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}/result")["result"]

    def health(self) -> dict[str, Any]:
        return self._request("GET", "/health")

    def metrics(self) -> dict[str, Any]:
        return self._request("GET", "/metrics")

    def metrics_prometheus(self) -> str:
        """``GET /metrics?format=prom``: the Prometheus text exposition."""
        request = urllib.request.Request(
            self.base_url + "/metrics?format=prom",
            headers={"Accept": "text/plain"},
        )
        with urllib.request.urlopen(request, timeout=self.timeout) as resp:
            return resp.read().decode("utf-8")

    # -- ledger projections over HTTP ----------------------------------------

    def _query_path(self, path: str, **query: Any) -> str:
        params = {k: str(v) for k, v in query.items() if v not in ("", None)}
        if not params:
            return path
        return path + "?" + urllib.parse.urlencode(params)

    def history(self, experiment: str = "", kind: str = "") -> dict[str, Any]:
        return self._request(
            "GET", self._query_path("/history", experiment=experiment, kind=kind)
        )

    def history_trends(
        self, experiment: str = "", metric: str = ""
    ) -> dict[str, Any]:
        """``GET /history/trends``: trend rows, or one metric's points."""
        return self._request(
            "GET",
            self._query_path(
                "/history/trends", experiment=experiment, metric=metric
            ),
        )

    def history_check(
        self,
        window: int | None = None,
        tolerance: float | None = None,
        experiment: str = "",
    ) -> dict[str, Any]:
        return self._request(
            "GET",
            self._query_path(
                "/history/check",
                window=window,
                tolerance=tolerance,
                experiment=experiment,
            ),
        )

    # -- live streaming -------------------------------------------------------

    def stream_events(
        self, job_id: str, timeout: float | None = None
    ) -> Iterator[dict[str, Any]]:
        """``GET /jobs/{id}/events``: yield parsed SSE events until terminal.

        Each yielded item is ``{"event": name, "data": payload}`` where
        ``payload`` is the decoded JSON body (or ``None`` for a bare
        frame).  The iterator ends after the job's terminal event
        (``done`` / ``failed`` / ``shed``); closing it early closes the
        HTTP connection, which the server tolerates.  ``timeout`` is the
        socket read timeout per frame — heartbeats reset it, so it
        bounds *silence*, not total stream duration.
        """
        request = urllib.request.Request(
            f"{self.base_url}/jobs/{job_id}/events",
            headers={"Accept": "text/event-stream"},
        )
        try:
            response = urllib.request.urlopen(
                request, timeout=timeout or self.timeout
            )
        except urllib.error.HTTPError as exc:
            try:
                body = json.loads(exc.read().decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                body = {"error": str(exc)}
            raise ServeError(exc.code, body) from None
        event: str | None = None
        data_lines: list[str] = []
        try:
            for raw in response:
                line = raw.decode("utf-8").rstrip("\r\n")
                if not line:  # blank line: frame boundary
                    if event is not None:
                        payload = (
                            json.loads("\n".join(data_lines))
                            if data_lines
                            else None
                        )
                        yield {"event": event, "data": payload}
                        if event in TERMINAL_EVENTS:
                            return
                    event, data_lines = None, []
                    continue
                if line.startswith("event:"):
                    event = line[len("event:") :].strip()
                elif line.startswith("data:"):
                    data_lines.append(line[len("data:") :].strip())
        finally:
            response.close()

    def wait(
        self, job_id: str, timeout: float = 60.0, poll: float = 0.1
    ) -> dict[str, Any]:
        """Poll until the job reaches a terminal state; return its snapshot.

        Raises ``TimeoutError`` if it does not settle in ``timeout``
        seconds — the caller decides what FAILED/SHED mean.
        """
        deadline = time.monotonic() + timeout
        while True:
            snapshot = self.job(job_id)
            if snapshot["state"] in TERMINAL_STATES:
                return snapshot
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id[:12]} still {snapshot['state']} "
                    f"after {timeout:.1f}s (progress {snapshot['progress']})"
                )
            time.sleep(poll)
