"""Operational telemetry for the simulation service.

PR 8 made the service *correct* (byte-identical ledgers, survivable
SIGTERM); this module makes it *observable*.  One correlation id — the
job's content-addressed fingerprint — is threaded from ``POST /jobs``
through queue admission, dispatcher execution, worker-pool task
progress and ledger checkpointing, and surfaces through four outputs:

- :class:`JobTracer` — an append-only JSONL **job trace**: span records
  (``queue-wait``, ``dispatch``, ``task``, ``checkpoint``) and instant
  records (``accepted``, ``requeued``, ``retry``, ``shed``,
  ``terminal``), each carrying the job id.  :func:`job_trace_to_trace`
  reconstructs them into a :class:`~repro.runtime.trace.Trace`, so the
  *existing* Chrome exporter (:func:`repro.obs.export.export_chrome`)
  renders a service timeline in Perfetto with one track per job.
- :class:`EventBroker` — per-job publish/subscribe behind
  ``GET /jobs/{id}/events`` (Server-Sent Events).  Publishing never
  blocks (unbounded per-subscriber queues), so a stalled or vanished
  SSE client can never wedge the dispatcher thread; each stream ends
  after exactly one terminal event.
- :class:`HttpStats` — the access-log middleware: per-request latency
  histograms and request counters (labelled by method, normalized
  route and status) in the server's metrics registry, plus an optional
  JSONL access log (``repro serve --access-log``).
- :func:`render_prometheus` — ``GET /metrics?format=prom``: the queue,
  admission, resilience and HTTP instruments in Prometheus text
  exposition format (counter/gauge/histogram families).

Everything here is *operational* data: wall-clock timestamps are
expected and deliberate, in contrast to the deterministic run ledger —
the trace answers "where did the time go", the ledger answers "what
was computed".  See ``docs/service.md`` ("Observability").
"""

from __future__ import annotations

import json
import pathlib
import queue as queue_module
import threading
import time
from typing import TYPE_CHECKING, Any, Callable, Iterator, Mapping

from repro.obs.ledger import locked_append
from repro.runtime.events import OpEvent
from repro.runtime.trace import Trace

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.metrics import MetricsRegistry
    from repro.serve.queue import Job

#: Trace-record schema version (bumped on incompatible shape changes).
TRACE_SCHEMA = 1

#: SSE event names that end a stream (exactly one is sent per stream).
TERMINAL_EVENTS = ("done", "failed", "shed")

#: Latency buckets (seconds) for the Prometheus histogram exposition.
LATENCY_BUCKETS = (
    0.001,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


# -- the job trace (JSONL spans + instants) ----------------------------------


class JobTracer:
    """Appends correlation-id'd trace records to one JSONL file.

    Records go through the same exclusive-lock whole-line append as the
    ledger and the job log, so dispatcher and HTTP threads interleave
    whole records and a crash tears at most the trailing line.
    """

    def __init__(
        self,
        path: str | pathlib.Path,
        clock: Callable[[], float] = time.time,
    ):
        self.path = pathlib.Path(path)
        self.clock = clock

    def _write(self, record: dict[str, Any]) -> None:
        record["schema"] = TRACE_SCHEMA
        locked_append(self.path, json.dumps(record, sort_keys=True) + "\n")

    def span(
        self,
        job_id: str,
        name: str,
        start: float,
        end: float,
        **args: Any,
    ) -> None:
        """One completed phase of a job (``start``/``end`` are wall-clock)."""
        self._write(
            {
                "type": "span",
                "job": job_id,
                "name": name,
                "start": start,
                "end": end,
                "args": args,
            }
        )

    def instant(self, job_id: str, name: str, **args: Any) -> None:
        """A point event on a job's timeline (stamped with the clock)."""
        self._write(
            {
                "type": "instant",
                "job": job_id,
                "name": name,
                "at": self.clock(),
                "args": args,
            }
        )


def load_job_trace(path: str | pathlib.Path) -> list[dict[str, Any]]:
    """Read a job-trace JSONL file, tolerating a torn trailing line."""
    path = pathlib.Path(path)
    if not path.exists():
        return []
    lines = path.read_text().splitlines()
    records: list[dict[str, Any]] = []
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            if lineno == len(lines):
                break  # torn trailing line: a writer died mid-append
            raise ValueError(
                f"{path}:{lineno}: unparsable job-trace line ({exc}); "
                f"line starts {line[:60]!r}"
            ) from None
        records.append(record)
    return records


def job_trace_to_trace(records: list[dict[str, Any]]) -> Trace:
    """Reconstruct a :class:`~repro.runtime.trace.Trace` from trace records.

    Each distinct job becomes one "process" track (first-appearance
    order); wall-clock seconds map to integer microseconds relative to
    the earliest timestamp, which the Chrome exporter then uses as the
    ``ts`` axis — so Perfetto renders the service timeline with real
    durations.  The result feeds the *existing* exporters unchanged
    (:func:`repro.obs.export.trace_to_chrome` / ``export_trace``).
    """
    trace = Trace(record_events=True, record_spans=True)
    lanes: dict[str, int] = {}
    stamps = [r.get("start") for r in records if r.get("type") == "span"]
    stamps += [r.get("at") for r in records if r.get("type") == "instant"]
    stamps = [s for s in stamps if isinstance(s, (int, float))]
    origin = min(stamps) if stamps else 0.0

    def lane(job_id: str) -> int:
        if job_id not in lanes:
            lanes[job_id] = len(lanes)
        return lanes[job_id]

    def us(stamp: Any) -> int:
        return max(0, int((float(stamp) - origin) * 1_000_000))

    for record in records:
        job_id = str(record.get("job", ""))
        name = str(record.get("name", ""))
        target = job_id[:12]
        if record.get("type") == "span":
            span = trace.begin_span(
                pid=lane(job_id),
                kind=name,
                target=target,
                argument=record.get("args") or None,
                step=us(record.get("start", origin)),
            )
            trace.end_span(span, us(record.get("end", origin)), None)
        elif record.get("type") == "instant":
            trace.add_event(
                OpEvent(
                    step=us(record.get("at", origin)),
                    pid=lane(job_id),
                    kind=name,
                    target=target,
                    value=record.get("args") or None,
                )
            )
    return trace


def timeline_rows(records: list[dict[str, Any]]) -> list[dict[str, Any]]:
    """Dashboard rows for the "Service timeline" section: one row per
    span, with offsets relative to the trace origin (sorted by start)."""
    spans = [r for r in records if r.get("type") == "span"]
    if not spans:
        return []
    origin = min(float(s["start"]) for s in spans)
    rows = []
    for span in sorted(spans, key=lambda s: (float(s["start"]), str(s["name"]))):
        args = span.get("args") or {}
        detail = " ".join(f"{k}={args[k]}" for k in sorted(args))
        rows.append(
            {
                "job": str(span.get("job", ""))[:12],
                "phase": span.get("name", ""),
                "start_s": round(float(span["start"]) - origin, 3),
                "duration_s": round(
                    float(span["end"]) - float(span["start"]), 3
                ),
                "detail": detail,
            }
        )
    return rows


# -- live progress streaming (SSE) -------------------------------------------


def sse_format(event: str, data: Mapping[str, Any]) -> str:
    """One Server-Sent-Events frame (``event:`` + single-line ``data:``)."""
    return f"event: {event}\ndata: {json.dumps(data, sort_keys=True)}\n\n"


class _Subscription:
    """One subscriber's unbounded event queue (puts never block)."""

    __slots__ = ("job_id", "_queue")

    def __init__(self, job_id: str):
        self.job_id = job_id
        self._queue: queue_module.Queue[tuple[str, dict[str, Any]]] = (
            queue_module.Queue()
        )

    def put(self, event: str, data: dict[str, Any]) -> None:
        self._queue.put((event, data))

    def get(self, timeout: float) -> tuple[str, dict[str, Any]]:
        return self._queue.get(timeout=timeout)


class EventBroker:
    """Per-job pub/sub used by the SSE endpoint.

    The dispatcher side (:meth:`publish`) is wait-free: events land in
    unbounded per-subscriber queues, so a slow or dead client costs the
    publisher nothing.  The consumer side (:meth:`stream`) renders SSE
    frames, emitting a ``heartbeat`` event whenever ``heartbeat``
    seconds pass without traffic — driven by the queue timeout, not by
    clock arithmetic, so heartbeats keep flowing even under a frozen
    clock (the ``clock`` only stamps the frames).
    """

    def __init__(self, clock: Callable[[], float] = time.time):
        self.clock = clock
        self._lock = threading.Lock()
        self._subscribers: dict[str, list[_Subscription]] = {}

    def subscribe(self, job_id: str) -> _Subscription:
        subscription = _Subscription(job_id)
        with self._lock:
            self._subscribers.setdefault(job_id, []).append(subscription)
        return subscription

    def unsubscribe(self, subscription: _Subscription) -> None:
        with self._lock:
            subscribers = self._subscribers.get(subscription.job_id, [])
            if subscription in subscribers:
                subscribers.remove(subscription)
            if not subscribers:
                self._subscribers.pop(subscription.job_id, None)

    def subscriber_count(self, job_id: str) -> int:
        with self._lock:
            return len(self._subscribers.get(job_id, []))

    def publish(self, job_id: str, event: str, data: dict[str, Any]) -> None:
        with self._lock:
            subscribers = list(self._subscribers.get(job_id, []))
        for subscription in subscribers:
            subscription.put(event, data)

    def stream(
        self,
        job_id: str,
        snapshot: Callable[[], dict[str, Any]],
        heartbeat: float = 15.0,
    ) -> Iterator[str]:
        """Yield SSE frames for one job until its terminal event.

        The first frame is always an ``accepted`` event carrying the
        job's *current* snapshot.  ``snapshot`` is read after
        subscribing, so a job that went terminal between the HTTP
        request and the subscription still terminates the stream (with
        its terminal event synthesized from the snapshot) instead of
        waiting for a publish that already happened — which is also what
        makes the terminal event exactly-once: either it arrives via the
        queue and ends the loop, or it was already in the snapshot and
        the queue is never drained.
        """
        subscription = self.subscribe(job_id)
        try:
            current = snapshot()
            yield sse_format("accepted", current)
            terminal = _terminal_event_for(current.get("state", ""))
            if terminal is not None:
                yield sse_format(terminal, current)
                return
            while True:
                try:
                    event, data = subscription.get(timeout=heartbeat)
                except queue_module.Empty:
                    yield sse_format("heartbeat", {"at": self.clock()})
                    continue
                yield sse_format(event, data)
                if event in TERMINAL_EVENTS:
                    return
        finally:
            self.unsubscribe(subscription)


def _terminal_event_for(state: str) -> str | None:
    """Map a queue state to its SSE terminal event name (or ``None``)."""
    return {"DONE": "done", "FAILED": "failed", "SHED": "shed"}.get(state)


# -- HTTP access accounting ---------------------------------------------------


def normalize_route(path: str) -> str:
    """Collapse job ids out of paths so metric labels stay low-cardinality."""
    parts = [p for p in path.split("?", 1)[0].split("/") if p]
    if len(parts) >= 2 and parts[0] == "jobs":
        tail = parts[2:] if len(parts) > 2 else []
        return "/".join(["/jobs/{id}"] + tail).replace("//", "/")
    return "/" + "/".join(parts) if parts else "/"


class HttpStats:
    """Access-log middleware state: latency histograms + request counters.

    Instruments live in the server's :class:`MetricsRegistry` (so the
    JSON ``/metrics`` view and the Prometheus exposition both see them),
    and each request optionally appends one JSONL line to the access
    log — the operational audit trail ``repro serve --access-log``
    enables.
    """

    def __init__(
        self,
        metrics: "MetricsRegistry",
        access_log: str | pathlib.Path | None = None,
        clock: Callable[[], float] = time.time,
    ):
        self.metrics = metrics
        self.access_log = pathlib.Path(access_log) if access_log else None
        self.clock = clock

    def observe(
        self, method: str, path: str, status: int, seconds: float
    ) -> None:
        route = normalize_route(path)
        self.metrics.counter(
            "serve.http.requests", method=method, route=route, status=status
        ).inc()
        self.metrics.histogram(
            "serve.http.request_seconds", method=method, route=route
        ).observe(seconds)
        if self.access_log is not None:
            locked_append(
                self.access_log,
                json.dumps(
                    {
                        "at": round(self.clock(), 6),
                        "method": method,
                        "path": path,
                        "status": status,
                        "seconds": round(seconds, 6),
                    },
                    sort_keys=True,
                )
                + "\n",
            )


# -- the hub: one listener for every queue transition -------------------------


class TelemetryHub:
    """Owns the tracer, broker and HTTP stats; observes queue transitions.

    Installed as the :class:`~repro.serve.queue.JobQueue` listener, it
    turns every lifecycle transition into (a) SSE events for live
    subscribers and (b) job-trace records.  The queue-wait span is
    measured here: ``submit``/``requeue`` stamp the enqueue instant,
    ``claim`` closes the span.  Per-cell ``task`` spans come from
    progress ticks (one span per tick, covering the cells completed
    since the previous tick).
    """

    def __init__(
        self,
        trace_path: str | pathlib.Path,
        metrics: "MetricsRegistry",
        access_log: str | pathlib.Path | None = None,
        clock: Callable[[], float] = time.time,
    ):
        self.clock = clock
        self.tracer = JobTracer(trace_path, clock=clock)
        self.broker = EventBroker(clock=clock)
        self.http = HttpStats(metrics, access_log, clock=clock)
        self._lock = threading.Lock()
        self._queued_at: dict[str, float] = {}
        self._dispatch_start: dict[str, float] = {}
        self._last_tick: dict[str, tuple[float, int]] = {}

    # The JobQueue listener: called after each appended transition.
    def on_job_event(self, event: str, job: "Job") -> None:
        now = self.clock()
        if event in ("submit", "requeue"):
            with self._lock:
                self._queued_at[job.id] = now
            self.tracer.instant(
                job.id,
                "accepted" if event == "submit" else "requeued",
                kind=job.spec.get("kind"),
                priority=job.spec.get("priority"),
            )
            self.broker.publish(job.id, "accepted", job.snapshot())
        elif event == "claim":
            with self._lock:
                queued_at = self._queued_at.pop(job.id, job.submitted_at)
                self._dispatch_start[job.id] = now
                self._last_tick[job.id] = (now, 0)
            self.tracer.span(job.id, "queue-wait", queued_at, now)
            self.broker.publish(job.id, "running", job.snapshot())
        elif event == "progress":
            done = int(job.progress.get("done", 0))
            total = int(job.progress.get("total", 0))
            with self._lock:
                tick_start, last_done = self._last_tick.get(job.id, (now, 0))
                self._last_tick[job.id] = (now, done)
            if done > last_done:
                self.tracer.span(
                    job.id,
                    "task",
                    tick_start,
                    now,
                    cells=f"{last_done + 1}..{done}",
                    total=total,
                )
            self.broker.publish(
                job.id, "progress", {"id": job.id, "done": done, "total": total}
            )
        elif event in ("finish", "fail", "shed"):
            with self._lock:
                self._last_tick.pop(job.id, None)
                self._queued_at.pop(job.id, None)
                dispatch_start = self._dispatch_start.pop(job.id, None)
            if dispatch_start is not None:
                self.tracer.span(
                    job.id, "dispatch", dispatch_start, now, state=job.state
                )
            self.tracer.instant(
                job.id,
                "terminal",
                state=job.state,
                reason=job.reason or None,
            )
            if event == "shed":
                self.tracer.instant(job.id, "shed", reason=job.reason)
            terminal = _terminal_event_for(job.state) or "done"
            self.broker.publish(job.id, terminal, job.snapshot())


# -- Prometheus text exposition ----------------------------------------------


def _escape_label(value: Any) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _labels(labels: Mapping[str, Any]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{k}="{_escape_label(labels[k])}"' for k in sorted(labels)
    )
    return "{" + inner + "}"


def _fmt_value(value: float) -> str:
    if isinstance(value, float) and value != int(value):
        return repr(value)
    return str(int(value))


class PromWriter:
    """Accumulates one Prometheus exposition document family by family."""

    def __init__(self) -> None:
        self.lines: list[str] = []

    def family(self, name: str, kind: str, help_text: str) -> None:
        self.lines.append(f"# HELP {name} {help_text}")
        self.lines.append(f"# TYPE {name} {kind}")

    def sample(
        self, name: str, value: float, labels: Mapping[str, Any] | None = None
    ) -> None:
        self.lines.append(f"{name}{_labels(labels or {})} {_fmt_value(value)}")

    def histogram(
        self,
        name: str,
        observations: Mapping[str, float],
        labels: Mapping[str, Any] | None = None,
        raw: list[float] | None = None,
    ) -> None:
        """Emit ``_bucket``/``_sum``/``_count`` series for one label set.

        ``raw`` (the exact observations, when available) yields exact
        bucket counts; otherwise buckets degrade to the summary's count
        at ``+Inf`` only — still a valid histogram family.
        """
        base = dict(labels or {})
        if raw is not None:
            for le in LATENCY_BUCKETS:
                count = sum(1 for v in raw if v <= le)
                self.sample(
                    f"{name}_bucket", count, {**base, "le": repr(float(le))}
                )
        self.sample(
            f"{name}_bucket",
            observations.get("count", 0),
            {**base, "le": "+Inf"},
        )
        self.sample(f"{name}_sum", observations.get("sum", 0.0), base)
        self.sample(f"{name}_count", observations.get("count", 0), base)

    def render(self) -> str:
        return "\n".join(self.lines) + "\n"


def render_prometheus(server: Any) -> str:
    """``GET /metrics?format=prom``: the service state as Prometheus text.

    ``server`` is a :class:`~repro.serve.api.ReproServer`; the function
    only reads (queue counts, admission accounting, the metrics
    registry), so scraping is side-effect free.
    """
    from repro.obs.metrics import parse_key
    from repro.serve.queue import JobStates

    writer = PromWriter()
    counts = server.queue.counts()
    accounting = server.admission.accounting()
    snapshot = server.metrics.snapshot()

    writer.family(
        "repro_uptime_seconds", "gauge", "Seconds since the server booted."
    )
    writer.sample(
        "repro_uptime_seconds", round(time.time() - server.started, 3)
    )

    writer.family(
        "repro_jobs", "gauge", "Jobs in the persistent queue, by state."
    )
    for state in JobStates.ALL:
        writer.sample("repro_jobs", counts[state], {"state": state})

    writer.family(
        "repro_queue_depth", "gauge", "Jobs waiting to be dispatched."
    )
    writer.sample("repro_queue_depth", counts[JobStates.QUEUED])

    shed = counts[JobStates.SHED]
    terminal = shed + counts[JobStates.DONE] + counts[JobStates.FAILED]
    writer.family(
        "repro_shed_rate",
        "gauge",
        "Shed jobs as a fraction of terminal jobs.",
    )
    writer.sample("repro_shed_rate", (shed / terminal) if terminal else 0.0)

    writer.family(
        "repro_admission_pressure",
        "gauge",
        "Budget pressure in [0, 1+] driving admission shedding.",
    )
    writer.sample(
        "repro_admission_pressure", float(accounting.get("pressure", 0.0))
    )
    writer.family(
        "repro_admission_decisions_total",
        "counter",
        "Admission controller decisions, by outcome.",
    )
    for outcome in ("admitted", "shed"):
        writer.sample(
            "repro_admission_decisions_total",
            int(accounting.get(outcome, 0)),
            {"outcome": outcome},
        )

    writer.family(
        "repro_resilience_total",
        "counter",
        "Engine resilience events across all jobs (retries/timeouts/shed).",
    )
    for kind in ("retries", "timeouts", "shed"):
        writer.sample(
            "repro_resilience_total",
            snapshot.counter_total(f"resilience.{kind}"),
            {"kind": kind},
        )

    writer.family(
        "repro_job_resilience_total",
        "counter",
        "Per-job resilience counters (correlation id = job fingerprint).",
    )
    for job in server.queue.jobs():
        resilience = (job.result or {}).get("resilience") or {}
        for kind in sorted(resilience):
            writer.sample(
                "repro_job_resilience_total",
                int(resilience[kind]),
                {"job": job.id[:12], "kind": kind},
            )

    writer.family(
        "repro_http_requests_total",
        "counter",
        "HTTP requests served, by method, normalized route and status.",
    )
    for key, value in sorted(snapshot.counters.items()):
        name, labels = parse_key(key)
        if name == "serve.http.requests":
            writer.sample("repro_http_requests_total", value, labels)

    writer.family(
        "repro_http_request_duration_seconds",
        "histogram",
        "HTTP request latency, by method and normalized route.",
    )
    live = server.metrics._histograms  # exact observations for buckets
    for key in sorted(snapshot.histograms):
        name, labels = parse_key(key)
        if name != "serve.http.request_seconds":
            continue
        raw = live[key].observations if key in live else None
        writer.histogram(
            "repro_http_request_duration_seconds",
            snapshot.histograms[key],
            labels,
            raw=list(raw) if raw is not None else None,
        )

    writer.family(
        "repro_engine_total",
        "counter",
        "Engine metric counters, verbatim (label: canonical metric key).",
    )
    for key, value in sorted(snapshot.counters.items()):
        if not key.startswith("serve.http."):
            writer.sample("repro_engine_total", value, {"metric": key})

    return writer.render()
