"""Job specs: validation, canonicalization, content-addressed identity.

A job spec is a small JSON object — ``{"kind": "sweep", "params":
{...}, "priority": "normal"}`` — and this module turns whatever a
client POSTs into its *canonical* form: unknown keys rejected, defaults
filled in from the same tables the CLI flags default to
(:mod:`repro.workloads`), values type- and range-checked.  The
canonical spec is then fingerprinted exactly like a ledger record —
SHA-256 over :func:`~repro.obs.ledger.canonical_json` plus the code
version — and that fingerprint *is* the job id: submitting the same
work twice yields the same id, so the queue dedupes by construction
and a completed job answers repeat submissions from its result.
"""

from __future__ import annotations

import hashlib
from typing import Any, Mapping

from repro.obs.ledger import canonical_json
from repro.resilience import Priority
from repro.version import code_version
from repro.workloads import (
    PROTOCOLS,
    SCHEDULERS,
    SWEEP_DEFAULTS,
    SWEEP_METRICS,
)


class SpecError(ValueError):
    """A job spec the service refuses; the message is the HTTP 400 body."""


#: The job kinds the dispatcher knows how to run.
JOB_KINDS = ("sweep", "fuzz", "campaign", "chaos")

#: Request priority names → engine priority classes (shed order).
PRIORITIES = {
    "critical": Priority.CRITICAL,
    "normal": Priority.NORMAL,
    "best-effort": Priority.BEST_EFFORT,
}

#: Per-kind parameter defaults.  The sweep row *is*
#: :data:`repro.workloads.SWEEP_DEFAULTS` — an empty HTTP spec and a
#: bare ``repro sweep`` name identical ledger cells.
PARAM_DEFAULTS: dict[str, dict[str, Any]] = {
    "sweep": dict(SWEEP_DEFAULTS),
    "fuzz": {
        "protocol": "ads",
        "n_values": [2, 3],
        "runs_per_cell": 10,
        "crash_probability": 0.5,
        "recovery_probability": 0.5,
        "fault_probability": 0.0,
        "seed": 0,
    },
    "campaign": {
        "seed": 0,
        "consensus_max_steps": 200_000,
    },
    # The three stages of ``repro chaos``, same defaults as its flags.
    "chaos": {
        "seed": 0,
        "runs_per_cell": 25,
    },
}


def _require_int(params: Mapping[str, Any], key: str, minimum: int) -> int:
    value = params[key]
    if isinstance(value, bool) or not isinstance(value, int):
        raise SpecError(f"params.{key} must be an integer, got {value!r}")
    if value < minimum:
        raise SpecError(f"params.{key} must be >= {minimum}, got {value}")
    return value


def _require_probability(params: Mapping[str, Any], key: str) -> float:
    value = params[key]
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise SpecError(f"params.{key} must be a number, got {value!r}")
    if not 0.0 <= value <= 1.0:
        raise SpecError(f"params.{key} must be in [0, 1], got {value}")
    return float(value)


def _require_n_values(params: Mapping[str, Any]) -> list[int]:
    values = params["n_values"]
    if (
        not isinstance(values, list)
        or not values
        or any(isinstance(v, bool) or not isinstance(v, int) for v in values)
    ):
        raise SpecError(
            f"params.n_values must be a non-empty list of integers, "
            f"got {values!r}"
        )
    if any(v < 1 for v in values):
        raise SpecError(f"params.n_values must all be >= 1, got {values!r}")
    return list(values)


def _require_choice(
    params: Mapping[str, Any], key: str, choices: Any
) -> str:
    value = params[key]
    if value not in choices:
        raise SpecError(
            f"params.{key} must be one of {sorted(choices)}, got {value!r}"
        )
    return value


def validate_spec(payload: Any) -> dict[str, Any]:
    """Canonicalize one submitted job spec; raise :class:`SpecError`.

    Returns ``{"kind": ..., "priority": ..., "params": {...}}`` with
    every parameter present (defaults merged in) and validated — the
    exact dict :func:`job_fingerprint` hashes and the dispatcher runs.
    """
    if not isinstance(payload, Mapping):
        raise SpecError(f"job spec must be a JSON object, got {payload!r}")
    unknown = set(payload) - {"kind", "params", "priority"}
    if unknown:
        raise SpecError(f"unknown spec keys: {sorted(unknown)}")
    kind = payload.get("kind")
    if kind not in JOB_KINDS:
        raise SpecError(f"kind must be one of {list(JOB_KINDS)}, got {kind!r}")
    priority = payload.get("priority", "normal")
    if priority not in PRIORITIES:
        raise SpecError(
            f"priority must be one of {sorted(PRIORITIES)}, got {priority!r}"
        )
    raw = payload.get("params", {})
    if not isinstance(raw, Mapping):
        raise SpecError(f"params must be a JSON object, got {raw!r}")
    defaults = PARAM_DEFAULTS[kind]
    unknown = set(raw) - set(defaults)
    if unknown:
        raise SpecError(
            f"unknown {kind} params: {sorted(unknown)} "
            f"(accepted: {sorted(defaults)})"
        )
    params: dict[str, Any] = {**defaults, **dict(raw)}

    if kind == "sweep":
        _require_choice(params, "protocol", PROTOCOLS)
        _require_choice(params, "scheduler", SCHEDULERS)
        _require_choice(params, "metric", SWEEP_METRICS)
        params["n_values"] = _require_n_values(params)
        _require_int(params, "reps", 1)
        _require_int(params, "seed_base", 0)
        _require_int(params, "max_steps", 1)
    elif kind == "fuzz":
        _require_choice(params, "protocol", PROTOCOLS)
        params["n_values"] = _require_n_values(params)
        _require_int(params, "runs_per_cell", 1)
        _require_int(params, "seed", 0)
        params["crash_probability"] = _require_probability(
            params, "crash_probability"
        )
        params["recovery_probability"] = _require_probability(
            params, "recovery_probability"
        )
        params["fault_probability"] = _require_probability(
            params, "fault_probability"
        )
    elif kind == "campaign":
        _require_int(params, "seed", 0)
        _require_int(params, "consensus_max_steps", 1)
    else:  # chaos
        _require_int(params, "seed", 0)
        _require_int(params, "runs_per_cell", 1)

    return {"kind": kind, "priority": priority, "params": params}


def job_fingerprint(spec: Mapping[str, Any], code: str | None = None) -> str:
    """SHA-256 content address of one canonical job spec.

    Folds in the code version exactly like ledger fingerprints do — the
    same spec against changed code is new work, not a stale cache hit.
    ``priority`` is deliberately *excluded*: the work is identical at
    any priority, so resubmitting at a higher class finds the same job.
    """
    payload = canonical_json(
        {
            "kind": spec["kind"],
            "params": spec["params"],
            "code": code or code_version(),
        }
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
