"""The HTTP surface: stdlib ``ThreadingHTTPServer`` + JSON handlers.

Routes::

    POST /jobs              submit a job spec  → 202 queued / 200 done
    GET  /jobs              list all jobs (snapshots, newest last)
    GET  /jobs/{id}         one job's status with live progress
    GET  /jobs/{id}/result  the merged outcome (DONE jobs only)
    GET  /health            liveness + job counts + uptime
    GET  /metrics           JSON projection of the metrics registry,
                            queue depth, admission accounting

Submission is idempotent by construction: the job id is the SHA-256 of
the canonical spec + code version (:func:`repro.serve.schemas.job_fingerprint`),
so resubmitting finished work returns the existing job (HTTP 200 with
``"cached": true``) instead of recomputing.  Backpressure is explicit:
a full queue answers 429, a budget-exhausted admission controller 503,
both with the refusal reason in the body — the shed job is recorded in
the job log so the decision itself is auditable.
"""

from __future__ import annotations

import json
import pathlib
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING, Any

from repro.obs.ledger import truncate_torn_tail
from repro.serve.dispatcher import Dispatcher
from repro.serve.queue import JobQueue, JobStates
from repro.serve.schemas import (
    PRIORITIES,
    SpecError,
    job_fingerprint,
    validate_spec,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.resilience import AdmissionController

#: Response cap on ``GET /jobs`` (newest are the interesting ones).
MAX_LISTED_JOBS = 200


@dataclass
class ServeConfig:
    """Everything ``repro serve`` configures, in one picklable bag."""

    host: str = "127.0.0.1"
    port: int = 8642
    workers: int = 1
    state_dir: str = ".repro-serve"
    ledger_path: str = ""  # default: <state_dir>/ledger.jsonl
    jobs_path: str = ""  # default: <state_dir>/jobs.jsonl
    retries: int = 0
    retry_backoff: float = 0.05
    task_timeout: float = 0.0
    max_queued: int = 64
    budget_steps: int = 0  # 0 = unlimited
    budget_wall_seconds: float = 0.0
    budget_tasks: int = 0
    soft_fraction: float = 0.8
    extra: dict[str, Any] = field(default_factory=dict)

    def resolved_ledger(self) -> pathlib.Path:
        return pathlib.Path(
            self.ledger_path or pathlib.Path(self.state_dir) / "ledger.jsonl"
        )

    def resolved_jobs(self) -> pathlib.Path:
        return pathlib.Path(
            self.jobs_path or pathlib.Path(self.state_dir) / "jobs.jsonl"
        )


class _Priced:
    """Adapter giving a job spec the ``priority`` attribute the
    admission controller reads."""

    def __init__(self, spec: dict[str, Any]):
        self.priority = PRIORITIES[spec["priority"]]


class ReproServer:
    """The assembled service: HTTP server + queue + dispatcher.

    Boot order matters: both JSONL stores are healed of torn trailing
    lines *before* anything reads them, so a ledger a SIGKILLed
    predecessor tore mid-append is byte-identical to an undisturbed
    prefix by the time the first job resumes from it.
    """

    def __init__(self, config: ServeConfig):
        from repro.obs.metrics import MetricsRegistry
        from repro.resilience import (
            AdmissionController,
            CampaignBudget,
            FailurePolicy,
            RetryBackoff,
        )

        self.config = config
        self.started = time.time()
        ledger_path = config.resolved_ledger()
        jobs_path = config.resolved_jobs()
        truncate_torn_tail(ledger_path)
        truncate_torn_tail(jobs_path)
        self.metrics = MetricsRegistry(enabled=True)
        self.queue = JobQueue(jobs_path)
        budget = CampaignBudget(
            max_steps=config.budget_steps or None,
            max_wall_seconds=config.budget_wall_seconds or None,
            max_tasks=config.budget_tasks or None,
            soft_fraction=config.soft_fraction,
        )
        # Always constructed — an unlimited budget admits everything but
        # still keeps the accounting /metrics reports.
        self.admission: "AdmissionController" = AdmissionController(budget)
        if config.retries > 0:
            policy = FailurePolicy.retry(
                max_attempts=config.retries + 1,
                backoff=RetryBackoff(base=config.retry_backoff, seed=0),
            )
        else:
            policy = FailurePolicy.continue_and_report()
        self.dispatcher = Dispatcher(
            self.queue,
            ledger_path=ledger_path,
            workers=config.workers,
            policy=policy,
            task_timeout=config.task_timeout or None,
            admission=self.admission,
            metrics=self.metrics,
        )
        handler = _make_handler(self)
        self.httpd = ThreadingHTTPServer((config.host, config.port), handler)
        self.httpd.daemon_threads = True

    @property
    def port(self) -> int:
        """The bound port (resolves ``--port 0``)."""
        return self.httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.config.host}:{self.port}"

    def start(self) -> None:
        self.dispatcher.start()

    def serve_forever(self) -> None:  # pragma: no cover - blocks
        self.httpd.serve_forever(poll_interval=0.1)

    def stop(self) -> None:
        self.dispatcher.stop()
        self.httpd.shutdown()
        self.httpd.server_close()

    # -- endpoint bodies (pure views over the pieces) ------------------------

    def health_body(self) -> dict[str, Any]:
        return {
            "status": "ok",
            "uptime_seconds": round(time.time() - self.started, 3),
            "jobs": self.queue.counts(),
            "workers": self.config.workers,
            "ledger": str(self.config.resolved_ledger()),
        }

    def metrics_body(self) -> dict[str, Any]:
        counts = self.queue.counts()
        done = counts[JobStates.DONE]
        shed = counts[JobStates.SHED]
        terminal = done + counts[JobStates.FAILED] + shed
        snapshot = self.metrics.snapshot()
        return {
            "queue": {
                "depth": counts[JobStates.QUEUED],
                "running": counts[JobStates.RUNNING],
                "by_state": counts,
                "shed_rate": (shed / terminal) if terminal else 0.0,
            },
            "admission": self.admission.accounting(),
            "engine": json.loads(snapshot.to_json(indent=None)),
        }

    def submit(self, payload: Any) -> tuple[int, dict[str, Any]]:
        """The POST /jobs decision tree; returns (status, body)."""
        try:
            spec = validate_spec(payload)
        except SpecError as exc:
            return 400, {"error": str(exc)}
        job_id = job_fingerprint(spec)
        existing = self.queue.get(job_id)
        if existing is not None:
            if existing.state == JobStates.DONE:
                body = existing.snapshot()
                body["cached"] = True
                return 200, body
            if existing.state in JobStates.RESUBMITTABLE:
                return 202, self.queue.requeue(job_id).snapshot()
            return 202, existing.snapshot()  # already queued/running
        if self.queue.depth() >= self.config.max_queued:
            return 429, {
                "error": (
                    f"queue full ({self.config.max_queued} jobs queued); "
                    "retry later"
                ),
                "id": job_id,
            }
        decision = self.admission.admit(_Priced(spec))
        if not decision.admitted:
            self.queue.submit(job_id, spec)
            self.queue.shed(job_id, decision.reason)
            status = 503 if decision.pressure >= 1.0 else 429
            return status, {
                "error": decision.reason,
                "id": job_id,
                "state": JobStates.SHED,
                "pressure": decision.pressure,
            }
        return 202, self.queue.submit(job_id, spec).snapshot()


def _make_handler(server: ReproServer) -> type[BaseHTTPRequestHandler]:
    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        server_version = "repro-serve"

        def log_message(self, format: str, *args: Any) -> None:
            pass  # request logging stays out of the CLI's stdout contract

        def _reply(self, status: int, body: dict[str, Any]) -> None:
            data = json.dumps(body, sort_keys=True).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(data)))
            self.end_headers()
            self.wfile.write(data)

        def do_GET(self) -> None:  # noqa: N802 - http.server API
            path = self.path.rstrip("/") or "/"
            if path == "/health":
                self._reply(200, server.health_body())
                return
            if path == "/metrics":
                self._reply(200, server.metrics_body())
                return
            if path == "/jobs":
                jobs = list(server.queue.jobs())[-MAX_LISTED_JOBS:]
                self._reply(200, {"jobs": [job.snapshot() for job in jobs]})
                return
            if path.startswith("/jobs/"):
                rest = path[len("/jobs/") :]
                job_id, _, tail = rest.partition("/")
                job = server.queue.get(job_id)
                if job is None or tail not in ("", "result"):
                    self._reply(404, {"error": f"no such resource {path!r}"})
                    return
                if tail == "":
                    self._reply(200, job.snapshot())
                    return
                if job.state != JobStates.DONE:
                    body = job.snapshot()
                    body["error"] = f"job is {job.state}, not DONE"
                    self._reply(409, body)
                    return
                self._reply(
                    200, {"id": job.id, "result": job.result or {}}
                )
                return
            self._reply(404, {"error": f"no such resource {path!r}"})

        def do_POST(self) -> None:  # noqa: N802 - http.server API
            if self.path.rstrip("/") != "/jobs":
                self._reply(404, {"error": f"no such resource {self.path!r}"})
                return
            length = int(self.headers.get("Content-Length") or 0)
            raw = self.rfile.read(length) if length else b""
            try:
                payload = json.loads(raw.decode("utf-8") or "null")
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                self._reply(400, {"error": f"request body is not JSON: {exc}"})
                return
            self._reply(*server.submit(payload))

    return Handler


def build_server(config: ServeConfig | None = None, **overrides: Any) -> ReproServer:
    """Construct (but do not start) a :class:`ReproServer`.

    Keyword overrides patch the default :class:`ServeConfig` — the
    convenience the tests use: ``build_server(port=0, state_dir=tmp)``.
    """
    if config is None:
        config = ServeConfig(**overrides)
    elif overrides:
        raise TypeError("pass either a ServeConfig or keyword overrides")
    return ReproServer(config)
