"""The HTTP surface: stdlib ``ThreadingHTTPServer`` + JSON handlers.

Routes::

    POST /jobs              submit a job spec  → 202 queued / 200 done
    GET  /jobs              list all jobs (snapshots, newest last)
    GET  /jobs/{id}         one job's status with live progress
    GET  /jobs/{id}/events  live Server-Sent-Events stream (accepted /
                            running / progress / heartbeat / terminal)
    GET  /jobs/{id}/result  the merged outcome (DONE jobs only)
    GET  /health            liveness + job counts + uptime
    GET  /metrics           JSON projection of the metrics registry,
                            queue depth, admission accounting;
                            ``?format=prom`` renders Prometheus text
    GET  /history           run-ledger inventory (obs.projections)
    GET  /history/trends    trend rows, or one metric's raw points
    GET  /history/check     the regression + determinism gate over HTTP

Every request flows through the telemetry middleware: latency lands in
the ``serve.http.request_seconds`` histogram (labelled by method and
normalized route, so ``/jobs/{id}`` is one label however many jobs
exist) and optionally in the JSONL access log
(``repro serve --access-log``).

Submission is idempotent by construction: the job id is the SHA-256 of
the canonical spec + code version (:func:`repro.serve.schemas.job_fingerprint`),
so resubmitting finished work returns the existing job (HTTP 200 with
``"cached": true``) instead of recomputing.  Backpressure is explicit:
a full queue answers 429, a budget-exhausted admission controller 503,
both with the refusal reason in the body — the shed job is recorded in
the job log so the decision itself is auditable.
"""

from __future__ import annotations

import json
import pathlib
import time
import urllib.parse
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING, Any

from repro.obs.ledger import LedgerCorruption, read_records, truncate_torn_tail
from repro.serve.dispatcher import Dispatcher
from repro.serve.queue import JobQueue, JobStates
from repro.serve.schemas import (
    PRIORITIES,
    SpecError,
    job_fingerprint,
    validate_spec,
)
from repro.serve.telemetry import TelemetryHub, render_prometheus

if TYPE_CHECKING:  # pragma: no cover
    from repro.resilience import AdmissionController

#: Response cap on ``GET /jobs`` (newest are the interesting ones).
MAX_LISTED_JOBS = 200


@dataclass
class ServeConfig:
    """Everything ``repro serve`` configures, in one picklable bag."""

    host: str = "127.0.0.1"
    port: int = 8642
    workers: int = 1
    state_dir: str = ".repro-serve"
    ledger_path: str = ""  # default: <state_dir>/ledger.jsonl
    jobs_path: str = ""  # default: <state_dir>/jobs.jsonl
    retries: int = 0
    retry_backoff: float = 0.05
    task_timeout: float = 0.0
    max_queued: int = 64
    budget_steps: int = 0  # 0 = unlimited
    budget_wall_seconds: float = 0.0
    budget_tasks: int = 0
    soft_fraction: float = 0.8
    trace_path: str = ""  # default: <state_dir>/trace.jsonl
    access_log: str = ""  # off unless set (repro serve --access-log)
    heartbeat: float = 15.0  # SSE keep-alive cadence, seconds
    extra: dict[str, Any] = field(default_factory=dict)

    def resolved_ledger(self) -> pathlib.Path:
        return pathlib.Path(
            self.ledger_path or pathlib.Path(self.state_dir) / "ledger.jsonl"
        )

    def resolved_jobs(self) -> pathlib.Path:
        return pathlib.Path(
            self.jobs_path or pathlib.Path(self.state_dir) / "jobs.jsonl"
        )

    def resolved_trace(self) -> pathlib.Path:
        return pathlib.Path(
            self.trace_path or pathlib.Path(self.state_dir) / "trace.jsonl"
        )


class _Priced:
    """Adapter giving a job spec the ``priority`` attribute the
    admission controller reads."""

    def __init__(self, spec: dict[str, Any]):
        self.priority = PRIORITIES[spec["priority"]]


class ReproServer:
    """The assembled service: HTTP server + queue + dispatcher.

    Boot order matters: both JSONL stores are healed of torn trailing
    lines *before* anything reads them, so a ledger a SIGKILLed
    predecessor tore mid-append is byte-identical to an undisturbed
    prefix by the time the first job resumes from it.
    """

    def __init__(self, config: ServeConfig):
        from repro.obs.metrics import MetricsRegistry
        from repro.resilience import (
            AdmissionController,
            CampaignBudget,
            FailurePolicy,
            RetryBackoff,
        )

        self.config = config
        self.started = time.time()
        ledger_path = config.resolved_ledger()
        jobs_path = config.resolved_jobs()
        truncate_torn_tail(ledger_path)
        truncate_torn_tail(jobs_path)
        truncate_torn_tail(config.resolved_trace())
        self.metrics = MetricsRegistry(enabled=True)
        self.telemetry = TelemetryHub(
            config.resolved_trace(),
            self.metrics,
            access_log=config.access_log or None,
        )
        self.queue = JobQueue(jobs_path)
        # The telemetry seam: attached after boot replay, so the hub
        # observes live transitions only (restart requeues stay silent).
        self.queue.listener = self.telemetry.on_job_event
        budget = CampaignBudget(
            max_steps=config.budget_steps or None,
            max_wall_seconds=config.budget_wall_seconds or None,
            max_tasks=config.budget_tasks or None,
            soft_fraction=config.soft_fraction,
        )
        # Always constructed — an unlimited budget admits everything but
        # still keeps the accounting /metrics reports.
        self.admission: "AdmissionController" = AdmissionController(budget)
        if config.retries > 0:
            policy = FailurePolicy.retry(
                max_attempts=config.retries + 1,
                backoff=RetryBackoff(base=config.retry_backoff, seed=0),
            )
        else:
            policy = FailurePolicy.continue_and_report()
        self.dispatcher = Dispatcher(
            self.queue,
            ledger_path=ledger_path,
            workers=config.workers,
            policy=policy,
            task_timeout=config.task_timeout or None,
            admission=self.admission,
            metrics=self.metrics,
            telemetry=self.telemetry,
        )
        handler = _make_handler(self)
        self.httpd = ThreadingHTTPServer((config.host, config.port), handler)
        self.httpd.daemon_threads = True

    @property
    def port(self) -> int:
        """The bound port (resolves ``--port 0``)."""
        return self.httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.config.host}:{self.port}"

    def start(self) -> None:
        self.dispatcher.start()

    def serve_forever(self) -> None:  # pragma: no cover - blocks
        self.httpd.serve_forever(poll_interval=0.1)

    def stop(self) -> None:
        self.dispatcher.stop()
        self.httpd.shutdown()
        self.httpd.server_close()

    # -- endpoint bodies (pure views over the pieces) ------------------------

    def health_body(self) -> dict[str, Any]:
        return {
            "status": "ok",
            "uptime_seconds": round(time.time() - self.started, 3),
            "jobs": self.queue.counts(),
            "workers": self.config.workers,
            "ledger": str(self.config.resolved_ledger()),
        }

    def metrics_body(self) -> dict[str, Any]:
        counts = self.queue.counts()
        done = counts[JobStates.DONE]
        shed = counts[JobStates.SHED]
        terminal = done + counts[JobStates.FAILED] + shed
        snapshot = self.metrics.snapshot()
        resilience_by_job = {}
        for job in self.queue.jobs():
            per_job = (job.result or {}).get("resilience") or {}
            if any(per_job.values()):
                resilience_by_job[job.id] = dict(per_job)
        return {
            "queue": {
                "depth": counts[JobStates.QUEUED],
                "running": counts[JobStates.RUNNING],
                "by_state": counts,
                "shed_rate": (shed / terminal) if terminal else 0.0,
            },
            "admission": self.admission.accounting(),
            "resilience_by_job": resilience_by_job,
            "engine": json.loads(snapshot.to_json(indent=None)),
        }

    # -- the run-ledger projections, served over HTTP ------------------------

    def _ledger_records(self) -> tuple[int, Any]:
        """Fresh read of the server's ledger: ``(200, records)`` or an
        error body (a fresh read sees concurrent CLI appends too)."""
        try:
            return 200, read_records(self.config.resolved_ledger())
        except LedgerCorruption as exc:
            return 500, {"error": f"ledger corrupt: {exc}"}

    def history_body(
        self, query: dict[str, str]
    ) -> tuple[int, dict[str, Any]]:
        from repro.obs.projections import filter_records, history_rows

        status, records = self._ledger_records()
        if status != 200:
            return status, records
        records = filter_records(
            records,
            experiment=query.get("experiment", ""),
            kind=query.get("kind", ""),
        )
        return 200, {
            "ledger": str(self.config.resolved_ledger()),
            "records": len(records),
            "rows": history_rows(records),
        }

    def trends_body(
        self, query: dict[str, str]
    ) -> tuple[int, dict[str, Any]]:
        from repro.obs.projections import (
            filter_records,
            trend_rows,
            trend_series,
        )

        status, records = self._ledger_records()
        if status != 200:
            return status, records
        experiment = query.get("experiment", "")
        metric = query.get("metric", "")
        if metric:
            try:
                points = trend_series(
                    records, metric, experiment=experiment
                )
            except KeyError as exc:
                return 400, {"error": str(exc).strip("'\"")}
            return 200, {
                "metric": metric,
                "experiment": experiment,
                "points": points,
            }
        records = filter_records(records, experiment=experiment)
        return 200, {
            "records": len(records),
            "trends": trend_rows(records),
        }

    def check_body(
        self, query: dict[str, str]
    ) -> tuple[int, dict[str, Any]]:
        from repro.obs.projections import (
            DEFAULT_TOLERANCE,
            DEFAULT_WINDOW,
            history_check,
        )

        status, records = self._ledger_records()
        if status != 200:
            return status, records
        try:
            window = int(query.get("window", DEFAULT_WINDOW))
            tolerance = float(query.get("tolerance", DEFAULT_TOLERANCE))
        except ValueError as exc:
            return 400, {"error": f"bad window/tolerance: {exc}"}
        check = history_check(
            records,
            window=window,
            tolerance=tolerance,
            experiment=query.get("experiment", ""),
        )
        return 200, {
            "ok": check.ok,
            "records": check.records,
            "summary": check.summary(),
            "regressions": [
                {
                    "experiment": a.experiment,
                    "metric": a.metric,
                    "baseline": a.baseline,
                    "latest": a.latest,
                    "drift": a.drift,
                    "message": str(a),
                }
                for a in check.regressions
            ],
            "violations": [
                {
                    "fingerprint": v.fingerprint,
                    "experiment": v.experiment,
                    "kind": v.kind,
                    "records": v.records,
                    "identities": v.identities,
                    "message": str(v),
                }
                for v in check.violations
            ],
        }

    def submit(self, payload: Any) -> tuple[int, dict[str, Any]]:
        """The POST /jobs decision tree; returns (status, body)."""
        try:
            spec = validate_spec(payload)
        except SpecError as exc:
            return 400, {"error": str(exc)}
        job_id = job_fingerprint(spec)
        existing = self.queue.get(job_id)
        if existing is not None:
            if existing.state == JobStates.DONE:
                body = existing.snapshot()
                body["cached"] = True
                return 200, body
            if existing.state in JobStates.RESUBMITTABLE:
                return 202, self.queue.requeue_and_snapshot(job_id)[1]
            return 202, existing.snapshot()  # already queued/running
        if self.queue.depth() >= self.config.max_queued:
            return 429, {
                "error": (
                    f"queue full ({self.config.max_queued} jobs queued); "
                    "retry later"
                ),
                "id": job_id,
            }
        decision = self.admission.admit(_Priced(spec))
        if not decision.admitted:
            self.queue.submit(job_id, spec)
            self.queue.shed(job_id, decision.reason)
            status = 503 if decision.pressure >= 1.0 else 429
            return status, {
                "error": decision.reason,
                "id": job_id,
                "state": JobStates.SHED,
                "pressure": decision.pressure,
            }
        # Snapshot captured under the queue lock: after release the
        # dispatcher may claim instantly, and the 202 must say QUEUED.
        return 202, self.queue.submit_and_snapshot(job_id, spec)[1]


def _make_handler(server: ReproServer) -> type[BaseHTTPRequestHandler]:
    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        server_version = "repro-serve"

        def log_message(self, format: str, *args: Any) -> None:
            pass  # request logging stays out of the CLI's stdout contract

        def _reply(self, status: int, body: dict[str, Any]) -> None:
            data = json.dumps(body, sort_keys=True).encode("utf-8")
            self._send(status, data, "application/json")

        def _reply_text(
            self, status: int, text: str, content_type: str
        ) -> None:
            self._send(status, text.encode("utf-8"), content_type)

        def _send(self, status: int, data: bytes, content_type: str) -> None:
            self._status = status
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(data)))
            self.end_headers()
            self.wfile.write(data)

        # -- telemetry middleware: every request is timed and counted --------

        def _timed(self, method: str, handler: Any) -> None:
            self._status = 0
            start = time.monotonic()
            try:
                handler()
            finally:
                server.telemetry.http.observe(
                    method,
                    self.path,
                    self._status,
                    time.monotonic() - start,
                )

        def do_GET(self) -> None:  # noqa: N802 - http.server API
            self._timed("GET", self._handle_get)

        def do_POST(self) -> None:  # noqa: N802 - http.server API
            self._timed("POST", self._handle_post)

        def _handle_get(self) -> None:
            split = urllib.parse.urlsplit(self.path)
            path = split.path.rstrip("/") or "/"
            query = {
                key: values[-1]
                for key, values in urllib.parse.parse_qs(split.query).items()
            }
            if path == "/health":
                self._reply(200, server.health_body())
                return
            if path == "/metrics":
                if query.get("format") == "prom":
                    self._reply_text(
                        200,
                        render_prometheus(server),
                        "text/plain; version=0.0.4; charset=utf-8",
                    )
                else:
                    self._reply(200, server.metrics_body())
                return
            if path == "/history":
                self._reply(*server.history_body(query))
                return
            if path == "/history/trends":
                self._reply(*server.trends_body(query))
                return
            if path == "/history/check":
                self._reply(*server.check_body(query))
                return
            if path == "/jobs":
                jobs = list(server.queue.jobs())[-MAX_LISTED_JOBS:]
                self._reply(200, {"jobs": [job.snapshot() for job in jobs]})
                return
            if path.startswith("/jobs/"):
                rest = path[len("/jobs/") :]
                job_id, _, tail = rest.partition("/")
                job = server.queue.get(job_id)
                if job is None or tail not in ("", "result", "events"):
                    self._reply(404, {"error": f"no such resource {path!r}"})
                    return
                if tail == "":
                    self._reply(200, job.snapshot())
                    return
                if tail == "events":
                    self._stream_events(job_id)
                    return
                if job.state != JobStates.DONE:
                    body = job.snapshot()
                    body["error"] = f"job is {job.state}, not DONE"
                    self._reply(409, body)
                    return
                self._reply(
                    200, {"id": job.id, "result": job.result or {}}
                )
                return
            self._reply(404, {"error": f"no such resource {path!r}"})

        def _stream_events(self, job_id: str) -> None:
            """``GET /jobs/{id}/events``: Server-Sent Events until terminal.

            Streaming under ``http.server`` means no Content-Length, so
            the connection is marked close-after-response; each frame is
            flushed as it is produced.  A client that disconnects
            mid-stream raises on the write — the broker subscription is
            torn down in the generator's ``finally`` and the publisher
            (the dispatcher thread) never notices: its puts go to
            unbounded queues and cannot block.
            """
            self._status = 200
            self.send_response(200)
            self.send_header("Content-Type", "text/event-stream")
            self.send_header("Cache-Control", "no-cache")
            self.send_header("Connection", "close")
            self.close_connection = True
            self.end_headers()
            job = server.queue.get(job_id)
            stream = server.telemetry.broker.stream(
                job_id,
                snapshot=lambda: (
                    server.queue.get(job_id) or job
                ).snapshot(),
                heartbeat=server.config.heartbeat,
            )
            try:
                for frame in stream:
                    self.wfile.write(frame.encode("utf-8"))
                    self.wfile.flush()
            except (BrokenPipeError, ConnectionResetError, OSError):
                pass  # client went away; the finally unsubscribes
            finally:
                stream.close()

        def _handle_post(self) -> None:
            if self.path.rstrip("/") != "/jobs":
                self._reply(404, {"error": f"no such resource {self.path!r}"})
                return
            length = int(self.headers.get("Content-Length") or 0)
            raw = self.rfile.read(length) if length else b""
            try:
                payload = json.loads(raw.decode("utf-8") or "null")
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                self._reply(400, {"error": f"request body is not JSON: {exc}"})
                return
            self._reply(*server.submit(payload))

    return Handler


def build_server(config: ServeConfig | None = None, **overrides: Any) -> ReproServer:
    """Construct (but do not start) a :class:`ReproServer`.

    Keyword overrides patch the default :class:`ServeConfig` — the
    convenience the tests use: ``build_server(port=0, state_dir=tmp)``.
    """
    if config is None:
        config = ServeConfig(**overrides)
    elif overrides:
        raise TypeError("pass either a ServeConfig or keyword overrides")
    return ReproServer(config)
