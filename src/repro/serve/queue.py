"""The persistent job queue: an append-only JSONL event log.

Jobs never mutate in place on disk — every lifecycle transition appends
one event line (``submit`` carries the canonical spec, ``state``
carries the transition plus its payload), through the same
exclusive-lock append path as the run ledger
(:func:`repro.obs.ledger.locked_append`), so concurrent writers
interleave whole lines and a crash tears at most the trailing line.
Boot replays the log to rebuild in-memory state; jobs that were
``RUNNING`` when the process died are requeued (their ledger
checkpoint makes the re-run recompute only missing cells).

States::

                    submit            claim          finish
    (new) ──────────────────▶ QUEUED ───────▶ RUNNING ───────▶ DONE
              shed at admission │ ▲              │ fail
    SHED ◀──────────────────────┘ │ requeue      ▼
      └───────────────────────────┤           FAILED
                                  └──────────────┘

``DONE`` is terminal and answers repeat submissions from its stored
result; ``FAILED``/``SHED`` are terminal but resubmittable (the next
identical POST requeues them).
"""

from __future__ import annotations

import json
import pathlib
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.obs.ledger import locked_append


class JobLogCorruption(ValueError):
    """A job log line this reader refuses; message leads with
    ``<file>:<line>:`` so damage is diagnosable from CI artifacts."""


class JobStates:
    """The five lifecycle states (string constants, stored verbatim)."""

    QUEUED = "QUEUED"
    RUNNING = "RUNNING"
    DONE = "DONE"
    FAILED = "FAILED"
    SHED = "SHED"

    ALL = (QUEUED, RUNNING, DONE, FAILED, SHED)
    #: States a repeat submission may move back to ``QUEUED``.
    RESUBMITTABLE = (FAILED, SHED)


@dataclass
class Job:
    """One job's full in-memory state (the log replayed forward)."""

    id: str
    spec: dict[str, Any]
    state: str = JobStates.QUEUED
    submitted_at: float = 0.0
    updated_at: float = 0.0
    attempts: int = 0
    #: Live progress (volatile — updated in memory as cells complete,
    #: never logged; a restart recomputes it from the ledger instead).
    progress: dict[str, Any] = field(default_factory=dict)
    result: dict[str, Any] | None = None
    error: str = ""
    reason: str = ""

    def snapshot(self) -> dict[str, Any]:
        """The API's ``GET /jobs/{id}`` body (result served separately)."""
        payload: dict[str, Any] = {
            "id": self.id,
            "kind": self.spec.get("kind"),
            "priority": self.spec.get("priority"),
            "state": self.state,
            "submitted_at": self.submitted_at,
            "updated_at": self.updated_at,
            "attempts": self.attempts,
            "progress": dict(self.progress),
        }
        if self.error:
            payload["error"] = self.error
        if self.reason:
            payload["reason"] = self.reason
        return payload


class JobQueue:
    """Thread-safe job registry backed by the JSONL event log.

    All mutation goes through methods that append the matching event
    under one lock, so the log is always a faithful serialization of
    the transitions taken.  ``wake`` is set whenever work may be
    available; the dispatcher waits on it instead of polling hot.

    ``listener`` is the telemetry seam: when set, it is called as
    ``listener(event, job)`` after each live transition (``submit`` /
    ``requeue`` / ``claim`` / ``finish`` / ``fail`` / ``shed``) and on
    every ``progress`` update — *outside* the queue lock, so a slow
    listener can delay its caller but never deadlock the queue.  Boot
    replay is silent by design: the listener observes what happens,
    not what once happened.
    """

    def __init__(
        self, path: str | pathlib.Path, requeue_running: bool = True
    ):
        self.path = pathlib.Path(path)
        self.requeue_running = requeue_running
        self._lock = threading.Lock()
        self.wake = threading.Event()
        self.listener: Callable[[str, Job], None] | None = None
        self._jobs: dict[str, Job] = {}
        self._order: list[str] = []
        self._load()

    def _notify(self, event: str, job: Job | None) -> None:
        if job is not None and self.listener is not None:
            self.listener(event, job)

    # -- persistence ---------------------------------------------------------

    def _append(self, event: dict[str, Any]) -> None:
        locked_append(self.path, json.dumps(event, sort_keys=True) + "\n")

    def _load(self) -> None:
        if not self.path.exists():
            return
        with open(self.path, "r") as handle:
            lines = handle.read().splitlines()
        for lineno, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                if lineno == len(lines):
                    break  # torn trailing line: crash mid-append
                raise JobLogCorruption(
                    f"{self.path}:{lineno}: unparsable job-log line "
                    f"({exc}); line starts {line[:60]!r}"
                ) from None
            try:
                self._replay(event)
            except (KeyError, TypeError, ValueError) as exc:
                raise JobLogCorruption(
                    f"{self.path}:{lineno}: job-log event invalid "
                    f"({type(exc).__name__}: {exc}); "
                    f"line starts {line[:60]!r}"
                ) from None
        # Jobs the dead server left RUNNING go back in line: their ledger
        # checkpoint means the re-run recomputes only the missing suffix.
        # (Read-only consumers — `repro report --jobs-log` — pass
        # requeue_running=False so projecting the log never mutates it.)
        for job in self._jobs.values():
            if self.requeue_running and job.state == JobStates.RUNNING:
                job.state = JobStates.QUEUED
                self._append(
                    {
                        "event": "state",
                        "job": job.id,
                        "state": JobStates.QUEUED,
                        "at": time.time(),
                        "reason": "requeued after restart",
                    }
                )
        if any(j.state == JobStates.QUEUED for j in self._jobs.values()):
            self.wake.set()

    def _replay(self, event: dict[str, Any]) -> None:
        kind = event["event"]
        if kind == "submit":
            job = Job(
                id=event["job"],
                spec=dict(event["spec"]),
                submitted_at=float(event["at"]),
                updated_at=float(event["at"]),
            )
            if job.id not in self._jobs:
                self._order.append(job.id)
            self._jobs[job.id] = job
        elif kind == "state":
            job = self._jobs[event["job"]]
            state = event["state"]
            if state not in JobStates.ALL:
                raise ValueError(f"unknown job state {state!r}")
            job.state = state
            job.updated_at = float(event["at"])
            job.error = event.get("error", "")
            job.reason = event.get("reason", "")
            if state == JobStates.RUNNING:
                job.attempts += 1
            if state == JobStates.DONE:
                job.result = event.get("result")
        else:
            raise ValueError(f"unknown job-log event {kind!r}")

    # -- transitions ---------------------------------------------------------

    def submit(self, job_id: str, spec: dict[str, Any]) -> Job:
        """Enqueue a new job (caller has already deduped by id)."""
        return self.submit_and_snapshot(job_id, spec)[0]

    def submit_and_snapshot(
        self, job_id: str, spec: dict[str, Any]
    ) -> tuple[Job, dict[str, Any]]:
        """Enqueue plus a snapshot captured atomically with the enqueue.

        The API answers ``POST /jobs`` with this snapshot: once the
        lock is released the dispatcher may claim the job at any
        moment, so a later ``job.snapshot()`` could already say
        RUNNING — the 202 body must reflect the submission instant.
        """
        with self._lock:
            now = time.time()
            job = Job(
                id=job_id, spec=dict(spec), submitted_at=now, updated_at=now
            )
            self._jobs[job_id] = job
            self._order.append(job_id)
            self._append(
                {"event": "submit", "job": job_id, "spec": spec, "at": now}
            )
            snapshot = job.snapshot()
            self.wake.set()
        self._notify("submit", job)
        return job, snapshot

    def _transition(self, job: Job, state: str, **extra: Any) -> None:
        job.state = state
        job.updated_at = time.time()
        job.error = extra.get("error", "")
        job.reason = extra.get("reason", "")
        if state == JobStates.RUNNING:
            job.attempts += 1
        if state == JobStates.DONE:
            job.result = extra.get("result")
        self._append(
            {
                "event": "state",
                "job": job.id,
                "state": state,
                "at": job.updated_at,
                **extra,
            }
        )

    def requeue(self, job_id: str) -> Job:
        """Move a FAILED/SHED job back to QUEUED (repeat submission)."""
        return self.requeue_and_snapshot(job_id)[0]

    def requeue_and_snapshot(
        self, job_id: str
    ) -> tuple[Job, dict[str, Any]]:
        """Requeue plus the same atomic-snapshot guarantee as submit."""
        with self._lock:
            job = self._jobs[job_id]
            if job.state not in JobStates.RESUBMITTABLE:
                return job, job.snapshot()
            self._transition(job, JobStates.QUEUED, reason="resubmitted")
            snapshot = job.snapshot()
            self.wake.set()
        self._notify("requeue", job)
        return job, snapshot

    def claim(self) -> Job | None:
        """Oldest QUEUED job → RUNNING, or ``None`` when idle."""
        with self._lock:
            claimed = None
            for job_id in self._order:
                job = self._jobs[job_id]
                if job.state == JobStates.QUEUED:
                    self._transition(job, JobStates.RUNNING)
                    claimed = job
                    break
            else:
                self.wake.clear()
        self._notify("claim", claimed)
        return claimed

    def finish(self, job_id: str, result: dict[str, Any]) -> None:
        with self._lock:
            job = self._jobs[job_id]
            self._transition(job, JobStates.DONE, result=result)
        self._notify("finish", job)

    def fail(self, job_id: str, error: str) -> None:
        with self._lock:
            job = self._jobs[job_id]
            self._transition(job, JobStates.FAILED, error=error)
        self._notify("fail", job)

    def shed(self, job_id: str, reason: str) -> None:
        with self._lock:
            job = self._jobs[job_id]
            self._transition(job, JobStates.SHED, reason=reason)
        self._notify("shed", job)

    def update_progress(self, job_id: str, **progress: Any) -> None:
        """Merge live progress counters (in-memory only, never logged)."""
        with self._lock:
            job = self._jobs[job_id]
            job.progress.update(progress)
        self._notify("progress", job)

    # -- views ---------------------------------------------------------------

    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> Iterator[Job]:
        with self._lock:
            return iter([self._jobs[job_id] for job_id in self._order])

    def depth(self) -> int:
        """QUEUED jobs waiting (the admission/backpressure signal)."""
        with self._lock:
            return sum(
                1
                for job in self._jobs.values()
                if job.state == JobStates.QUEUED
            )

    def counts(self) -> dict[str, int]:
        with self._lock:
            counts = {state: 0 for state in JobStates.ALL}
            for job in self._jobs.values():
                counts[job.state] += 1
            return counts
