"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``run``   — execute one consensus run and report decisions, statistics
              and the memory audit (optionally an ASCII timeline);
- ``coin``  — toss the standalone bounded weak shared coin repeatedly and
              report agreement rates and flip counts;
- ``strip`` — play random moves on the rounds strip, printing the game /
              graph / counter state and checking Claim 4.1 at every move;
- ``metrics`` — run one consensus execution and print its metrics snapshot
              (the ``repro.obs`` registry: steps, scan retries, coin flips,
              round advances, max register values) as a table or JSON;
              ``--series-every K`` also samples tracked counters into
              deterministic time series;
- ``trace`` — run one consensus execution with full event/span recording
              and export the trace (Chrome ``trace_event`` JSON for
              Perfetto / ``chrome://tracing``, or JSONL);
- ``experiments`` — list the E1–E12 reproduction experiments and how to
              regenerate them;
- ``report`` — print the recorded benchmark result tables
              (``benchmarks/results/``), i.e. the data behind EXPERIMENTS.md;
              with ``--out report.html``, render the self-contained HTML
              dashboard instead (metrics snapshot, time-series sparklines,
              causal critical-path attribution, baselines-vs-results
              deltas for every checked-in benchmark);
- ``chaos`` — run the fault-injection mutation campaign (every fault class
              must be caught by some checker) plus a crash-recovery and a
              fault-injection fuzz grid (see ``docs/robustness.md``);
- ``sweep`` — sweep a protocol over process counts with replicated seeded
              runs, optionally fanned out across cores (``--workers``,
              see ``docs/performance.md``);
- ``bench`` — list the machine-readable benchmark artifacts and gate them
              against the checked-in baselines (``--check``), the same
              comparison the CI ``bench-gate`` job runs;
- ``profile`` — measure serial step-loop throughput (steps/sec) for the
              P1 workloads across instrumentation modes (bare / metrics /
              trace) and print the wall-clock breakdown plus the
              instrumented-vs-bare overhead ratios (see
              ``docs/performance.md``);
- ``history`` — project the run ledger (``repro.obs.ledger``): per-
              experiment inventory (``list``), raw records by fingerprint
              (``show``), cross-run trend tables (``trends``), the
              rolling-baseline regression gate plus the determinism-
              violation detector (``check``), and duplicate compaction
              (``gc``).  See ``docs/observability.md``.

``run``, ``sweep``, ``chaos``, ``bench`` and ``profile`` accept
``--ledger PATH`` (or the ``REPRO_LEDGER`` environment variable) to
append their results to the content-addressed run ledger; re-running a
recorded (seed, config, code-version) triple is a cache hit unless
``--no-cache`` is given.

``sweep`` and ``chaos`` additionally speak the resilient campaign
runtime (``repro.resilience``, see ``docs/robustness.md``): ``--retries
N`` re-dispatches failed or killed tasks with seeded exponential backoff
(``--retry-backoff``), ``--task-timeout`` kills hung workers, and
``--resume PATH`` resumes an interrupted ledger-recorded campaign,
recomputing only the missing fingerprints.  ``chaos
--inject-worker-crash`` SIGKILLs one worker mid-campaign to prove the
retry path restores a bit-identical result.

Every command is seeded and deterministic; exit status is non-zero if a
safety check fails.
"""

from __future__ import annotations

import argparse
import random
import statistics
import sys
from typing import Sequence

from repro.analysis.reporting import format_table
from repro.coin import BoundedWalkSharedCoin, coin_flipper_program
from repro.consensus import AdsConsensus, validate_run
from repro.runtime import (
    CrashPlan,
    RandomScheduler,
    RecoveryPlan,
    Simulation,
    WalkBalancingAdversary,
)
from repro.obs.export import export_trace
from repro.runtime.timeline import render_timeline
from repro.strip import DistanceGraph, EdgeCounters, ShrunkenTokenGame
from repro.workloads import PROTOCOLS, make_scheduler as _make_scheduler

EXPERIMENTS = {
    "e1": "Lemma 3.1 — coin disagreement probability vs b",
    "e2": "Lemma 3.2 — coin flips vs (b+1)^2 n^2",
    "e3": "Lemmas 3.3/3.4 — counter overflow vs m",
    "e4": "§6.3 — expected rounds O(1) in n",
    "e5": "polynomial vs exponential total work",
    "e6": "memory boundedness vs Aspnes-Herlihy",
    "e7": "scan retries vs write contention",
    "e8": "snapshot properties P1-P3",
    "e9": "Claim 4.1 game/graph/counter equivalence",
    "e10": "the five-regime comparison table",
    "e11": "safety grid (consistency/validity everywhere)",
    "e12": "ablations (snapshot substrate, K, b)",
}


def _parse_inputs(text: str) -> list[int]:
    return [int(part) for part in text.split(",") if part != ""]


def _parse_crashes(entries: Sequence[str]) -> CrashPlan:
    plan = {}
    for entry in entries:
        pid, _, step = entry.partition(":")
        plan[int(pid)] = int(step) if step else 0
    return CrashPlan(plan)


def _parse_restarts(entries: Sequence[str]) -> RecoveryPlan | None:
    plan = {}
    for entry in entries:
        pid, _, step = entry.partition(":")
        plan[int(pid)] = int(step) if step else 0
    return RecoveryPlan(plan) if plan else None


def _open_ledger(args):
    """The command's :class:`~repro.obs.ledger.RunLedger`, or ``None``.

    ``--resume PATH`` wins outright (it *is* a ledger, with the cache
    forced on — resuming means serving every already-checkpointed cell);
    then ``--ledger PATH``, then the ``REPRO_LEDGER`` environment
    variable; recording stays off when none is set.  ``--no-cache``
    keeps recording on but makes every fingerprint lookup miss.
    """
    from repro.obs.ledger import RunLedger, ledger_from_env

    resume = getattr(args, "resume", "")
    if resume:
        return RunLedger(resume, use_cache=True)
    return ledger_from_env(
        getattr(args, "ledger", "") or None,
        use_cache=not getattr(args, "no_cache", False),
    )


def _workers_arg(text: str) -> int:
    """argparse type for ``--workers``: a clear error beats a traceback."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"{text!r} is not an integer (0 = all CPUs, 1 = serial)"
        ) from None
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"must be >= 0 (0 = all CPUs, 1 = serial), got {value}"
        )
    return value


def _batch_arg(text: str) -> int:
    """argparse type for ``--batch``: same actionable style as --workers.

    Unlike workers there is no 0-means-auto: a batch is a lane count, so
    only positive integers parse (omit the flag to disable batching).
    """
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"{text!r} is not an integer (lanes per batch; omit to disable)"
        ) from None
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"must be >= 1 (lanes per batch; omit to disable), got {value}"
        )
    return value


def _jsonl_path_arg(text: str) -> str:
    """argparse type for writable JSONL paths (``--access-log`` /
    ``--trace-log``): catch the obvious misuses at parse time, in the
    same actionable style as ``--workers``."""
    import pathlib

    if not text.strip():
        raise argparse.ArgumentTypeError(
            "needs a file path, e.g. .repro-serve/access.jsonl"
        )
    path = pathlib.Path(text)
    if path.exists() and path.is_dir():
        raise argparse.ArgumentTypeError(
            f"{text!r} is a directory, not a JSONL file path"
        )
    parent = path.parent
    if parent.exists() and not parent.is_dir():
        raise argparse.ArgumentTypeError(
            f"cannot create {text!r}: parent {str(parent)!r} is not a "
            "directory"
        )
    return text


def _resilience_policy(args):
    """Build the engine :class:`FailurePolicy` from ``--retries`` flags."""
    if not getattr(args, "retries", 0):
        return None
    from repro.resilience import FailurePolicy, RetryBackoff

    seed = getattr(args, "seed", None)
    if seed is None:
        seed = getattr(args, "seed_base", 0)
    return FailurePolicy.retry(
        max_attempts=args.retries + 1,
        backoff=RetryBackoff(base=args.retry_backoff, seed=seed),
    )


def _print_run_record(record) -> int:
    """Replay a ``repro run`` cache hit from its ledger record."""
    outcome = record.outcome
    decisions = {int(k): v for k, v in (outcome.get("decisions") or {}).items()}
    restarts = {int(k): v for k, v in (outcome.get("restarts") or {}).items()}
    rounds = {int(k): v for k, v in (outcome.get("rounds_by_pid") or {}).items()}
    audit = outcome.get("audit") or {}
    inputs = record.config.get("inputs", [])
    print(
        f"protocol  : {record.config.get('protocol')}  "
        f"(n={len(inputs)}, seed={record.seed})  "
        f"[ledger cache hit {record.fingerprint[:12]}]"
    )
    print(f"inputs    : {inputs}")
    print(f"decisions : {decisions}")
    print(f"crashed   : {sorted(outcome.get('crashed') or []) or '-'}")
    if restarts:
        print(f"restarts  : {restarts}")
    print(f"steps     : {outcome.get('total_steps')}   rounds: {rounds}")
    print(
        "memory    : max |int| stored "
        f"{audit.get('max_magnitude')}, widest cell {audit.get('max_width')}"
    )
    ok = bool(outcome.get("safety_ok"))
    verdict = "OK" if ok else "VIOLATED: " + "; ".join(outcome.get("problems") or [])
    print(f"safety    : {verdict}")
    return 0 if ok else 1


def cmd_run(args) -> int:
    inputs = _parse_inputs(args.inputs)
    ledger = _open_ledger(args)
    config = {
        "experiment": "run",
        "protocol": args.protocol,
        "inputs": inputs,
        "scheduler": args.scheduler,
        "crash": sorted(args.crash),
        "restart": sorted(args.restart),
        "max_steps": args.max_steps,
    }
    if ledger is not None and not args.timeline:
        from repro.obs.ledger import compute_fingerprint

        cached = ledger.cached(compute_fingerprint(args.seed, config))
        if cached is not None and cached.kind == "run":
            return _print_run_record(cached)
    protocol = PROTOCOLS[args.protocol]()
    run = protocol.run(
        inputs,
        scheduler=_make_scheduler(args.scheduler, args.seed),
        seed=args.seed,
        crash_plan=_parse_crashes(args.crash),
        recovery_plan=_parse_restarts(args.restart),
        max_steps=args.max_steps,
        record_spans=args.timeline,
        keep_simulation=args.timeline,
    )
    report = validate_run(run)
    print(f"protocol  : {run.protocol}  (n={run.n}, seed={args.seed})")
    print(f"inputs    : {list(run.inputs)}")
    print(f"decisions : {run.decisions}")
    print(f"crashed   : {sorted(run.outcome.crashed) or '-'}")
    if run.outcome.restarts:
        print(f"restarts  : {run.outcome.restarts}")
    print(f"steps     : {run.total_steps}   rounds: {run.stats.get('rounds_by_pid')}")
    print(
        "memory    : max |int| stored "
        f"{run.audit.max_magnitude}, widest cell {run.audit.max_width}"
    )
    verdict = "OK" if report.ok else "VIOLATED: " + "; ".join(report.problems)
    print(f"safety    : {verdict}")
    if ledger is not None:
        from repro.obs.ledger import make_record

        ledger.append(
            make_record(
                kind="run",
                experiment="run",
                seed=args.seed,
                config=config,
                outcome={
                    "decisions": run.decisions,
                    "crashed": sorted(run.outcome.crashed),
                    "restarts": run.outcome.restarts,
                    "total_steps": run.total_steps,
                    "rounds_by_pid": run.stats.get("rounds_by_pid"),
                    "audit": {
                        "max_magnitude": run.audit.max_magnitude,
                        "max_width": run.audit.max_width,
                    },
                    "safety_ok": report.ok,
                    "problems": list(report.problems),
                    "disagreement": len(set(run.decisions.values())) > 1,
                },
                metrics=run.metrics,
            )
        )
    if args.timeline and run.simulation is not None:
        print()
        print(
            render_timeline(
                run.simulation.trace,
                kinds={"scan", "write"},
                max_rows=args.timeline_rows,
            )
        )
    return 0 if report.ok else 1


def cmd_metrics(args) -> int:
    """Run one execution and print the deterministic metrics snapshot."""
    from repro.obs.timeseries import SeriesSpec

    inputs = _parse_inputs(args.inputs)
    protocol = PROTOCOLS[args.protocol]()
    series = SeriesSpec(every=args.series_every) if args.series_every else None
    run = protocol.run(
        inputs,
        scheduler=_make_scheduler(args.scheduler, args.seed),
        seed=args.seed,
        max_steps=args.max_steps,
        series=series,
    )
    snapshot = run.metrics
    assert snapshot is not None  # metrics are on by default
    if args.json:
        print(snapshot.to_json())
        return 0
    print(
        f"protocol  : {run.protocol}  (n={run.n}, seed={args.seed}, "
        f"steps={run.total_steps})"
    )
    print()
    rows = snapshot.to_rows()
    if args.filter:
        rows = [r for r in rows if args.filter in r["metric"]]
    print(format_table(rows, title="metrics snapshot"))
    return 0


def cmd_trace(args) -> int:
    """Run one execution with recording on and export the trace.

    With ``--from-job-trace``, skip the run entirely and instead
    reconstruct a service job trace (``repro serve``'s
    ``STATE_DIR/trace.jsonl``) into the same exporters — one Perfetto
    track per job, wall-clock microseconds on the time axis.
    """
    if args.from_job_trace:
        from repro.serve.telemetry import job_trace_to_trace, load_job_trace

        records = load_job_trace(args.from_job_trace)
        if not records:
            print(f"no job-trace records in {args.from_job_trace}")
            return 1
        trace = job_trace_to_trace(records)
        path = export_trace(trace, args.export)
        fmt = "JSONL" if path.suffix == ".jsonl" else "Chrome trace_event"
        jobs = len({r.get("job") for r in records})
        print(
            f"reconstructed {len(records)} job-trace records "
            f"({jobs} job(s)) into {len(trace.spans)} spans and "
            f"{len(trace.events)} instants ({fmt}) at {path}"
        )
        if fmt != "JSONL":
            print("open it at https://ui.perfetto.dev or chrome://tracing")
        return 0
    inputs = _parse_inputs(args.inputs)
    protocol = PROTOCOLS[args.protocol]()
    run = protocol.run(
        inputs,
        scheduler=_make_scheduler(args.scheduler, args.seed),
        seed=args.seed,
        max_steps=args.max_steps,
        record_events=True,
        record_spans=True,
        keep_simulation=True,
    )
    trace = run.simulation.trace
    path = export_trace(trace, args.export)
    fmt = "JSONL" if path.suffix == ".jsonl" else "Chrome trace_event"
    print(
        f"exported {len(trace.events)} events and {len(trace.spans)} spans "
        f"({fmt}) to {path}"
    )
    if fmt != "JSONL":
        print("open it at https://ui.perfetto.dev or chrome://tracing")
    return 0


def cmd_coin(args) -> int:
    rows = []
    disagreements = 0
    flips = []
    for seed in range(args.reps):
        scheduler = (
            WalkBalancingAdversary("coin", seed=seed)
            if args.adversary
            else RandomScheduler(seed=seed)
        )
        sim = Simulation(args.n, scheduler, seed=seed)
        coin = BoundedWalkSharedCoin(
            sim, "coin", args.n, b_barrier=args.barrier, m_bound=args.m
        )
        sim.spawn_all(coin_flipper_program(coin))
        outcome = sim.run(args.max_steps)
        if len(set(outcome.decisions.values())) > 1:
            disagreements += 1
        flips.append(coin.total_steps)
    rows.append(
        {
            "n": args.n,
            "b": args.barrier,
            "tosses": args.reps,
            "disagree rate": disagreements / args.reps,
            "paper bound": 1 / args.barrier,
            "mean flips": statistics.mean(flips),
            "paper flips": (args.barrier + 1) ** 2 * args.n**2,
        }
    )
    print(format_table(rows, title="bounded weak shared coin"))
    return 0


def cmd_strip(args) -> int:
    rng = random.Random(args.seed)
    game = ShrunkenTokenGame(args.n, args.K)
    graph = DistanceGraph.initial(args.n, args.K)
    counters = EdgeCounters(args.n, args.K)
    for move_index in range(args.moves):
        mover = rng.randrange(args.n)
        game.move_token(mover)
        graph.inc(mover)
        counters.inc(mover)
        expected = DistanceGraph.from_positions(game.positions, args.K)
        status = "ok" if graph == expected == counters.graph() else "DIVERGED"
        print(
            f"move {move_index:>3}: token {mover}  positions={game.positions}  "
            f"claim-4.1 {status}"
        )
        if status != "ok":
            return 1
    print(f"\nfinal graph: {graph}")
    print(f"max edge counter: {counters.max_counter()} (< 3K = {3 * args.K})")
    return 0


def cmd_report(args) -> int:
    import pathlib

    if args.out:
        return _report_dashboard(args)
    results = pathlib.Path(args.results_dir)
    files = sorted(results.glob("*.txt"))
    if not files:
        print(
            f"no recorded results in {results}/ — run "
            "`pytest benchmarks/ --benchmark-only` first"
        )
        return 1
    for path in files:
        print(path.read_text().rstrip())
        print()
    return 0


def _report_dashboard(args) -> int:
    """Render the self-contained HTML dashboard (``repro report --out``).

    Drives one fully-instrumented reference run (events + spans + series)
    for the metrics/series/causality sections, then gates every baseline
    ``BENCH_*.json`` against the current artifacts for the deltas table.
    Deterministic: same arguments and artifact set ⇒ byte-identical file.
    """
    from repro.obs.causality import causal_report_for
    from repro.obs.report import gate_all_benchmarks, write_report
    from repro.obs.timeseries import SeriesSpec

    inputs = _parse_inputs(args.inputs)
    protocol = PROTOCOLS[args.protocol]()
    run = protocol.run(
        inputs,
        scheduler=_make_scheduler(args.scheduler, args.seed),
        seed=args.seed,
        max_steps=args.max_steps,
        record_events=True,
        record_spans=True,
        keep_simulation=True,
        series=SeriesSpec(every=args.series_every),
    )
    causal = causal_report_for(run.simulation, run.outcome)
    gates = gate_all_benchmarks(args.results_dir, args.baselines_dir)
    meta = {
        "protocol": run.protocol,
        "n": run.n,
        "seed": args.seed,
        "scheduler": args.scheduler,
        "steps": run.total_steps,
        "series_every": args.series_every,
    }
    trends = None
    ledger = _open_ledger(args)
    if ledger is not None:
        from repro.obs.projections import trend_rows

        trends = trend_rows(ledger.records())
    service = None
    if args.jobs_log:
        from repro.obs.report import service_summary

        service = service_summary(args.jobs_log, trace_log=args.job_trace or None)
    path = write_report(
        args.out, run.metrics, causal, gates, meta, trends=trends, service=service
    )
    ok = sum(1 for g in gates if g.ok)
    print(
        f"wrote {path} — {run.total_steps} steps analyzed, "
        f"critical path {causal.critical_length}, "
        f"{ok}/{len(gates)} benchmarks within tolerance"
    )
    return 0


def cmd_chaos(args) -> int:
    """Mutation-test the checkers, then fuzz crash-recovery and faults."""
    import json
    import tempfile

    from repro.faults.campaign import run_mutation_campaign
    from repro.obs.metrics import MetricsRegistry
    from repro.verify.fuzz import fuzz_consensus

    ledger = _open_ledger(args)
    policy = _resilience_policy(args)
    registry = MetricsRegistry(enabled=True)
    task_wrapper = None
    crash_dir = None
    if args.inject_worker_crash:
        # A CrashOnce SIGKILL in the serial path would kill *this* process,
        # and without retries the murdered cell is simply lost — refuse the
        # combinations that cannot demonstrate anything.
        if (args.workers or 0) < 2 or policy is None:
            print(
                "chaos: --inject-worker-crash needs --workers >= 2 and "
                "--retries >= 1 (the killed worker's task must be "
                "re-dispatchable)"
            )
            return 2
        from repro.resilience import CrashOnce

        crash_dir = tempfile.TemporaryDirectory(prefix="repro-chaos-")
        marker = f"{crash_dir.name}/crashed"
        task_wrapper = lambda fn: CrashOnce(fn, marker)  # noqa: E731

    campaign = run_mutation_campaign(
        seed=args.seed,
        workers=args.workers,
        ledger=ledger,
        experiment="chaos:campaign",
        policy=policy,
        task_timeout=args.task_timeout or None,
        metrics=registry,
        task_wrapper=task_wrapper,
        batch_size=args.batch,
    )
    columns = ("fault", "layer", "checker", "injections", "detected", "expected", "ok")
    rows = [{k: row[k] for k in columns} for row in campaign.to_rows()]
    print(format_table(rows, title="checker mutation campaign"))
    print(f"detections by fault class: {campaign.detections_by_kind()}")
    if campaign.holes:
        print(f"HOLES (fault classes no checker caught): {campaign.holes}")

    print()
    recovery = fuzz_consensus(
        lambda: AdsConsensus(),
        n_values=(2, 3),
        runs_per_cell=args.runs_per_cell,
        crash_probability=1.0,
        recovery_probability=1.0,
        master_seed=args.seed,
        workers=args.workers,
        ledger=ledger,
        experiment="chaos:recovery",
        policy=policy,
        task_timeout=args.task_timeout or None,
        metrics=registry,
        task_wrapper=task_wrapper,
        batch_size=args.batch,
    )
    print(f"crash-recovery fuzz : {recovery.summary()}")
    for failure in recovery.failures:
        print(f"  FAIL {failure}")

    faults = fuzz_consensus(
        lambda: AdsConsensus(),
        n_values=(2, 3),
        runs_per_cell=max(2, args.runs_per_cell // 5),
        crash_probability=0.0,
        fault_probability=1.0,
        master_seed=args.seed,
        workers=args.workers,
        ledger=ledger,
        experiment="chaos:faults",
        policy=policy,
        task_timeout=args.task_timeout or None,
        metrics=registry,
        task_wrapper=task_wrapper,
        batch_size=args.batch,
    )
    print(f"fault-injection fuzz: {faults.summary()}")
    if crash_dir is not None:
        crash_dir.cleanup()

    snapshot = registry.snapshot()
    resilience = {
        "retries": snapshot.counter_total("resilience.retries"),
        "timeouts": snapshot.counter_total("resilience.timeouts"),
        "shed": snapshot.counter_total("resilience.shed"),
        "cache_hits": campaign.cache_hits
        + recovery.cache_hits
        + faults.cache_hits,
        "task_errors": campaign.task_errors
        + recovery.task_errors
        + faults.task_errors,
    }
    if any(resilience[k] for k in ("retries", "timeouts", "shed", "cache_hits")):
        print(
            f"resilience: {resilience['retries']} retries, "
            f"{resilience['timeouts']} timeouts, {resilience['shed']} shed, "
            f"{resilience['cache_hits']} cells served from checkpoint"
        )
    if ledger is not None:
        print(
            f"ledger    : {len(ledger)} records in {ledger.path} "
            f"({ledger.hits} cell lookups served, {ledger.misses} recomputed)"
        )

    ok = campaign.ok and recovery.ok and faults.ok
    if args.json:
        payload = {
            "seed": args.seed,
            "ok": ok,
            "campaign": json.loads(campaign.to_json(indent=None)),
            "recovery_fuzz": {
                "runs": recovery.runs,
                "recovery_runs": recovery.recovery_runs,
                "degraded_runs": recovery.degraded_runs,
                "failures": [str(f) for f in recovery.failures],
            },
            "fault_fuzz": {
                "runs": faults.runs,
                "fault_runs": faults.fault_runs,
                "fault_injections": faults.fault_injections,
                "fault_detections": faults.fault_detections,
                "failures": [str(f) for f in faults.failures],
            },
            "resilience": resilience,
        }
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"\nwrote JSON report to {args.json}")
    print(f"\nchaos: {'OK' if ok else 'FAILED'}")
    return 0 if ok else 1


def cmd_sweep(args) -> int:
    """Sweep a protocol over process counts with replicated, seeded runs.

    The parallel counterpart of repeated ``repro run`` invocations: every
    (n, seed) cell is an independent simulation, so ``--workers`` fans the
    grid out across cores and the table is identical for any worker count.
    """
    from repro.analysis.experiment import sweep_table
    from repro.workloads import build_sweep

    n_values = _parse_inputs(args.n_values)
    metric = args.metric

    def progress(done: int, total: int) -> None:
        print(f"\r{done}/{total} runs", end="", file=sys.stderr, flush=True)

    ledger = _open_ledger(args)
    # build_sweep is the single definition of the sweep's cells: the serve
    # dispatcher calls it too, so HTTP-submitted sweeps write ledger bytes
    # identical to this command's.
    sweep = build_sweep(
        protocol=args.protocol,
        n_values=n_values,
        reps=args.reps,
        seed_base=args.seed_base,
        scheduler=args.scheduler,
        metric=metric,
        max_steps=args.max_steps,
        ledger=ledger,
        policy=_resilience_policy(args),
        task_timeout=args.task_timeout or None,
        batch_size=args.batch,
    )
    points = sweep.execute(
        workers=args.workers, progress=progress if args.progress else None
    )
    if args.progress:
        print(file=sys.stderr)
    print(
        format_table(
            sweep_table(points),
            title=(
                f"{args.protocol} — {metric} vs n "
                f"({args.reps} reps, {args.scheduler} scheduler, "
                f"workers={args.workers})"
            ),
        )
    )
    if ledger is not None:
        print(
            f"ledger    : {len(ledger)} records in {ledger.path} "
            f"({ledger.hits} cells served from checkpoint, "
            f"{ledger.misses} recomputed)"
        )
    return 0


def cmd_bench(args) -> int:
    """List benchmark artifacts, gate them against baselines, or update."""
    import pathlib

    from repro.analysis.benchgate import (
        check_experiments,
        update_baselines,
    )

    results_dir = pathlib.Path(args.results_dir)
    baselines_dir = pathlib.Path(args.baselines_dir)
    experiments = (
        [e.strip().lower() for e in args.experiments.split(",") if e.strip()]
        if args.experiments
        else sorted(
            p.stem.replace("BENCH_", "").lower()
            for p in results_dir.glob("BENCH_*.json")
        )
    )
    if not experiments:
        print(f"no BENCH_*.json artifacts in {results_dir}/ — run the benchmarks")
        return 1
    ledger = _open_ledger(args)
    if ledger is not None:
        appended = _bench_record_artifacts(ledger, experiments, results_dir)
        print(
            f"ledger    : appended {appended} artifact record(s) to {ledger.path}"
        )
    if args.update:
        copied = update_baselines(experiments, results_dir, baselines_dir)
        print(f"updated baselines for: {', '.join(e.upper() for e in copied)}")
        missing = sorted(set(experiments) - set(copied))
        if missing:
            print(f"no artifact yet for: {', '.join(e.upper() for e in missing)}")
        return 0 if not missing else 1
    if not args.check:
        rows = []
        for experiment in experiments:
            name = f"BENCH_{experiment.upper()}.json"
            rows.append(
                {
                    "experiment": experiment.upper(),
                    "artifact": (results_dir / name).exists(),
                    "baseline": (baselines_dir / name).exists(),
                }
            )
        print(format_table(rows, title="benchmark artifacts"))
        print("run `repro bench --check` to gate artifacts against baselines")
        return 0
    results = check_experiments(
        experiments, results_dir, baselines_dir, tolerance=args.tolerance
    )
    for result in results:
        print(result.summary())
        if not result.ok:
            print(f"  baseline : {result.baseline_file}")
            print(f"  artifact : {result.artifact_file}")
        diffed = {d["location"] for d in result.deviations}
        for dev in result.deviations:
            drift = f"  drift {dev['drift']:.1%}" if "drift" in dev else ""
            print(
                f"  REGRESSION {dev['location']}: expected {dev['expected']!r}"
                f" -> actual {dev['actual']!r}{drift}"
            )
        for problem in result.problems:
            # Value-level problems were already printed as structured
            # expected-vs-actual lines above; only shape/missing-file
            # problems have no deviation entry.
            if any(problem.startswith(f"{loc}:") for loc in diffed):
                continue
            print(f"  REGRESSION {problem}")
    ok = all(r.ok for r in results)
    print(f"\nbench gate: {'OK' if ok else 'FAILED'} (tolerance {args.tolerance:.0%})")
    return 0 if ok else 1


def _bench_record_artifacts(ledger, experiments, results_dir) -> int:
    """Append every present ``BENCH_*.json`` artifact to the run ledger.

    Mirrors ``benchmarks/_common.record_ledger`` (same kind, config and
    timing-stripped outcome), so recording an artifact here and at bench
    time produces the same deterministic identity — a cache hit, not a
    duplicate.  Returns how many records were actually appended.
    """
    import json

    from repro.analysis.benchgate import strip_timing_values
    from repro.obs.ledger import make_record

    appended = 0
    for experiment in experiments:
        path = results_dir / f"BENCH_{experiment.upper()}.json"
        if not path.exists():
            continue
        payload = json.loads(path.read_text())
        appended += ledger.append(
            make_record(
                kind="bench",
                experiment=f"bench:{experiment}",
                seed=0,
                config={"experiment": experiment, "kind": "bench"},
                outcome=strip_timing_values(
                    {
                        "tables": payload.get("tables", []),
                        "metrics": payload.get("metrics", {}),
                    }
                ),
                timings=payload.get("timings", {}),
            )
        )
    return appended


def cmd_profile(args) -> int:
    """Measure step-loop throughput and instrumentation overhead (P1)."""
    from repro.analysis.perfbench import DEFAULT_SEEDS, profile_breakdown

    seeds = range(DEFAULT_SEEDS[0], DEFAULT_SEEDS[0] + args.runs)
    rows, profiler = profile_breakdown(seeds=list(seeds), repeats=args.repeats)
    batched = None
    if args.batch is not None:
        from repro.analysis.perfbench import measure_batched_throughput

        batched = measure_batched_throughput(
            seeds=list(seeds),
            lanes=args.batch,
            repeats=args.repeats,
            profiler=profiler,
        )
    print(
        format_table(
            rows,
            title=(
                f"serial step-loop throughput ({args.runs} seeded runs per "
                f"cell, best of {args.repeats})"
            ),
        )
    )
    timing_rows = [
        {
            "section": section,
            "repeats": int(summary["count"]),
            "min_s": round(summary["min"], 4),
            "mean_s": round(summary["mean"], 4),
            "max_s": round(summary["max"], 4),
        }
        for section, summary in profiler.sections().items()
    ]
    print()
    print(format_table(timing_rows, title="wall-clock per section (seconds)"))
    bare = {r["workload"]: r["steps_per_sec"] for r in rows if r["mode"] == "bare"}
    worst = max(
        (r["overhead_vs_bare"] for r in rows if r["mode"] == "metrics"),
        default=0.0,
    )
    print(
        f"\nbare consensus throughput: {bare.get('consensus', 0):,} steps/sec; "
        f"worst metrics-on overhead: {worst:.2f}x"
    )
    if batched is not None:
        speedup = (
            batched.steps_per_sec / bare["consensus"] if bare.get("consensus") else 0.0
        )
        print()
        print(
            format_table(
                [
                    {
                        "workload": batched.workload,
                        "mode": batched.mode,
                        "lanes": args.batch,
                        "steps": batched.steps,
                        "steps_per_sec": round(batched.steps_per_sec),
                        "speedup_vs_bare_wall": round(speedup, 2),
                    }
                ],
                title=(
                    f"batched struct-of-arrays loop ({args.batch} lanes through "
                    f"one fused step loop, best of {args.repeats})"
                ),
            )
        )
    ledger = _open_ledger(args)
    if ledger is not None:
        from repro.obs.ledger import make_record

        # Throughput is a host measurement, so it rides in ``timings``
        # (outside the deterministic identity): one record per code
        # version, and the steps/sec *trend* across versions is what
        # ``repro history trends`` plots.
        ledger.append(
            make_record(
                kind="profile",
                experiment="profile",
                seed=0,
                config={
                    "experiment": "profile",
                    "runs": args.runs,
                    "repeats": args.repeats,
                    "batch": args.batch,
                },
                outcome={
                    "workloads": sorted({r["workload"] for r in rows}),
                    "modes": sorted({r["mode"] for r in rows})
                    + (["batched"] if batched is not None else []),
                },
                timings={
                    "throughput": {
                        f"{r['workload']}/{r['mode']}": {
                            "steps_per_sec": r["steps_per_sec"]
                        }
                        for r in rows
                    }
                    | (
                        {
                            "consensus/batched": {
                                "steps_per_sec": round(batched.steps_per_sec),
                                "lanes": args.batch,
                            }
                        }
                        if batched is not None
                        else {}
                    ),
                },
            )
        )
        print(f"ledger    : recorded profile in {ledger.path}")
    return 0


def _discover_experiments(bench_dir) -> dict[str, tuple[str, str]]:
    """Scan ``benchmarks/bench_<id>_*.py`` for ``id -> (claim, script)``.

    The claim is the static E1–E12 index entry when the id is known there,
    otherwise the benchmark module's docstring first line — so new
    benchmarks (P1, X1, ...) appear in ``repro experiments`` without
    anyone remembering to extend a hand-maintained table.
    """
    import re

    found: dict[str, tuple[str, str]] = {}
    for path in sorted(bench_dir.glob("bench_*.py")):
        match = re.match(r"bench_([a-z]+[0-9]+)_", path.name)
        if not match:
            continue
        key = match.group(1)
        claim = EXPERIMENTS.get(key, "")
        if not claim:
            doc = re.search(r'"{3}\s*([^\n"]+)', path.read_text())
            claim = doc.group(1).strip() if doc else ""
        found[key] = (claim, path.name)
    return found


def cmd_experiments(args) -> int:
    """List the reproduction experiments (benchmarks/ scanned dynamically)."""
    import pathlib
    import re

    found = _discover_experiments(pathlib.Path(args.benchmarks_dir))
    # Static fallback for ids whose script is not visible from here (or
    # when run outside the repository root): the hand-written index.
    for key, text in EXPERIMENTS.items():
        found.setdefault(key, (text, f"bench_{key}_*.py"))

    def sort_key(key: str) -> tuple[int, str, int]:
        letter, digits = re.match(r"([a-z]+)([0-9]+)", key).groups()
        return (0 if letter == "e" else 1, letter, int(digits))

    rows = [
        {
            "id": key.upper(),
            "claim": found[key][0],
            "regenerate": f"pytest benchmarks/{found[key][1]} --benchmark-only -s",
        }
        for key in sorted(found, key=sort_key)
    ]
    print(format_table(rows, title="reproduction experiments (see EXPERIMENTS.md)"))
    return 0


def cmd_history(args) -> int:
    """Project the run ledger: list, show, trends, check, or gc."""
    from repro.obs.ledger import LEDGER_ENV, LedgerCorruption, ledger_from_env
    from repro.obs.projections import (
        filter_records,
        history_check,
        history_rows,
        trend_rows,
        trend_series,
    )

    ledger = ledger_from_env(args.ledger or None)
    if ledger is None:
        print(f"no ledger: pass --ledger PATH or set {LEDGER_ENV}")
        return 2

    try:
        if args.action == "gc":
            kept, dropped = ledger.gc()
            print(
                f"ledger gc: kept {kept} record(s), dropped {dropped} "
                "duplicate(s)"
            )
            return 0
        records = ledger.records()
    except LedgerCorruption as exc:
        # The message leads with <file>:<line> — print it instead of a
        # traceback so CI artifacts point straight at the damaged line.
        print(f"LEDGER CORRUPT {exc}")
        return 3
    if args.action == "list":
        records = filter_records(records, experiment=args.experiment)
        if not records:
            suffix = f" matching {args.experiment!r}" if args.experiment else ""
            print(f"ledger {ledger.path}: no records{suffix}")
            return 0
        print(
            format_table(
                history_rows(records),
                title=f"run ledger {ledger.path} — {len(records)} records",
            )
        )
        return 0

    if args.action == "show":
        if not args.fingerprint:
            print("history show needs --fingerprint PREFIX (see `history list`)")
            return 2
        matches = [
            r for r in records if r.fingerprint.startswith(args.fingerprint)
        ]
        if not matches:
            print(f"no records match fingerprint {args.fingerprint!r}")
            return 1
        for record in matches:
            print(record.to_line())
        return 0

    if args.action == "trends":
        records = filter_records(records, experiment=args.experiment)
        if args.metric:
            for index, value in trend_series(records, args.metric):
                print(f"{int(index):>6}  {value:g}")
            return 0
        rows = [
            {k: row[k] for k in ("experiment", "metric", "n", "first", "last", "mean")}
            for row in trend_rows(records)
        ]
        if not rows:
            print("no trend data (no recorded metric the trends know about)")
            return 0
        print(format_table(rows, title="cross-run trends"))
        return 0

    assert args.action == "check"
    check = history_check(
        records,
        window=args.window,
        tolerance=args.tolerance,
        experiment=args.experiment,
    )
    for alert in check.regressions:
        print(f"REGRESSION {alert}")
    for violation in check.violations:
        # The full fingerprint (not the display-truncated prefix) so CI
        # logs can be fed straight to `repro history show --fingerprint`.
        print(f"VIOLATION  {violation}")
        print(f"           fingerprint: {violation.fingerprint}")
    print(check.summary())
    return 0 if check.ok else 1


def cmd_serve(args) -> int:
    """Run the simulation service: HTTP/JSON API + persistent job queue."""
    import os
    import signal

    from repro.serve import ServeConfig, build_server

    config = ServeConfig(
        host=args.host,
        port=args.port,
        workers=args.workers if args.workers is not None else 1,
        state_dir=args.state_dir,
        ledger_path=args.ledger,
        jobs_path=args.jobs_log,
        retries=args.retries,
        retry_backoff=args.retry_backoff,
        task_timeout=args.task_timeout,
        max_queued=args.max_queued,
        budget_steps=args.budget_steps,
        budget_wall_seconds=args.budget_wall_seconds,
        budget_tasks=args.budget_tasks,
        soft_fraction=args.soft_fraction,
        trace_path=args.trace_log or "",
        access_log=args.access_log or "",
    )
    server = build_server(config)

    def terminate(signum, frame):  # noqa: ARG001 - signal API
        # Immediate exit is safe by design: engine workers are daemon
        # processes (reaped with us), appends are whole locked lines, and
        # the next boot heals at most one torn trailing line — so the
        # checkpointed ledger prefix is the durable state and the
        # restarted server recomputes only missing fingerprints.
        print("\nrepro serve: caught SIGTERM, exiting", flush=True)
        os._exit(0)

    signal.signal(signal.SIGTERM, terminate)
    server.start()
    print(f"repro serve: listening on {server.url}", flush=True)
    print(
        f"repro serve: ledger {config.resolved_ledger()}  "
        f"jobs-log {config.resolved_jobs()}  workers {config.workers}",
        flush=True,
    )
    print(
        f"repro serve: job-trace {config.resolved_trace()}"
        + (f"  access-log {config.access_log}" if config.access_log else ""),
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nrepro serve: shutting down")
        server.stop()
    return 0


def _add_resilience_args(parser: argparse.ArgumentParser) -> None:
    """Flags for the campaign resilience layer (``repro.resilience``)."""
    parser.add_argument(
        "--retries",
        type=int,
        default=0,
        metavar="N",
        help="re-dispatch a failed/killed task up to N times with seeded "
        "exponential backoff (retried tasks re-run from their original "
        "seed, so results stay bit-identical; default 0 = fail fast)",
    )
    parser.add_argument(
        "--retry-backoff",
        type=float,
        default=0.05,
        metavar="SECONDS",
        help="base delay of the seeded exponential backoff between "
        "attempts (default 0.05; 0 disables sleeping)",
    )
    parser.add_argument(
        "--task-timeout",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="per-task wall-clock deadline; an overdue worker is killed "
        "and the task counts as a timeout (needs --workers >= 2; "
        "0 = no deadline)",
    )
    parser.add_argument(
        "--resume",
        default="",
        metavar="PATH",
        help="resume an interrupted campaign from this checkpoint ledger: "
        "cells it already holds are served from it, only missing "
        "fingerprints are recomputed (implies --ledger PATH with "
        "caching forced on)",
    )


def _add_ledger_args(parser: argparse.ArgumentParser, cache: bool = True) -> None:
    parser.add_argument(
        "--ledger",
        default="",
        metavar="PATH",
        help="append run records to this content-addressed ledger "
        "(default: $REPRO_LEDGER; recording off when neither is set)",
    )
    if cache:
        parser.add_argument(
            "--no-cache",
            action="store_true",
            help="recompute even when the ledger already holds this "
            "(seed, config, code-version) fingerprint",
        )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Bounded Polynomial Randomized Consensus (PODC 1989) — "
            "reproduction toolkit"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one consensus execution")
    run.add_argument("--protocol", choices=sorted(PROTOCOLS), default="ads")
    run.add_argument("--inputs", default="0,1,0,1", help="comma-separated bits")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--scheduler",
        choices=["random", "round-robin", "split", "lockstep"],
        default="random",
    )
    run.add_argument(
        "--crash",
        action="append",
        default=[],
        metavar="PID[:STEP]",
        help="crash PID at STEP (repeatable)",
    )
    run.add_argument(
        "--restart",
        action="append",
        default=[],
        metavar="PID[:STEP]",
        help="restart a crashed PID at STEP with local state lost (repeatable)",
    )
    run.add_argument("--max-steps", type=int, default=50_000_000)
    run.add_argument("--timeline", action="store_true", help="print span timeline")
    run.add_argument("--timeline-rows", type=int, default=40)
    _add_ledger_args(run)
    run.set_defaults(func=cmd_run)

    metrics = sub.add_parser(
        "metrics", help="run one execution and print its metrics snapshot"
    )
    metrics.add_argument("--protocol", choices=sorted(PROTOCOLS), default="ads")
    metrics.add_argument("--inputs", default="0,1,0,1", help="comma-separated bits")
    metrics.add_argument("--seed", type=int, default=0)
    metrics.add_argument(
        "--scheduler",
        choices=["random", "round-robin", "split", "lockstep"],
        default="random",
    )
    metrics.add_argument("--max-steps", type=int, default=50_000_000)
    metrics.add_argument("--json", action="store_true", help="print snapshot as JSON")
    metrics.add_argument(
        "--filter", default="", help="only metrics whose name contains this substring"
    )
    metrics.add_argument(
        "--series-every",
        type=int,
        default=0,
        metavar="K",
        help="also sample tracked counters every K steps into time series "
        "(0 = off)",
    )
    metrics.set_defaults(func=cmd_metrics)

    trace = sub.add_parser(
        "trace", help="run one execution and export its trace for Perfetto"
    )
    trace.add_argument("--protocol", choices=sorted(PROTOCOLS), default="ads")
    trace.add_argument("--inputs", default="0,1,0,1", help="comma-separated bits")
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument(
        "--scheduler",
        choices=["random", "round-robin", "split", "lockstep"],
        default="random",
    )
    trace.add_argument("--max-steps", type=int, default=50_000_000)
    trace.add_argument(
        "--export",
        default="trace.json",
        metavar="PATH",
        help="output file; .jsonl exports JSONL, anything else Chrome trace_event",
    )
    trace.add_argument(
        "--from-job-trace",
        default="",
        metavar="PATH",
        help="reconstruct a `repro serve` job trace (STATE_DIR/trace.jsonl) "
        "instead of running a simulation: one Perfetto track per job with "
        "queue-wait/dispatch/task/checkpoint spans",
    )
    trace.set_defaults(func=cmd_trace)

    coin = sub.add_parser("coin", help="toss the bounded weak shared coin")
    coin.add_argument("--n", type=int, default=4)
    coin.add_argument("--barrier", "-b", type=int, default=2)
    coin.add_argument("--m", type=int, default=None)
    coin.add_argument("--reps", type=int, default=30)
    coin.add_argument("--adversary", action="store_true")
    coin.add_argument("--max-steps", type=int, default=10_000_000)
    coin.set_defaults(func=cmd_coin)

    strip = sub.add_parser("strip", help="play the rounds-strip game")
    strip.add_argument("--n", type=int, default=3)
    strip.add_argument("--K", type=int, default=2)
    strip.add_argument("--moves", type=int, default=15)
    strip.add_argument("--seed", type=int, default=0)
    strip.set_defaults(func=cmd_strip)

    chaos = sub.add_parser(
        "chaos", help="mutation-test the checkers and fuzz recovery/faults"
    )
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument(
        "--runs-per-cell",
        type=int,
        default=25,
        metavar="N",
        help="recovery-fuzz runs per (n, scheduler) cell (default 25 → 200 runs)",
    )
    chaos.add_argument(
        "--json", default="", metavar="PATH", help="also write a JSON report"
    )
    chaos.add_argument(
        "--workers",
        type=_workers_arg,
        default=None,
        metavar="N",
        help="worker processes for campaign + fuzz cells "
        "(default serial; 0 = all CPUs; results identical at any count)",
    )
    chaos.add_argument(
        "--batch",
        type=_batch_arg,
        default=None,
        metavar="N",
        help="cells per batch task (default REPRO_BATCH; results "
        "identical at any batch size)",
    )
    chaos.add_argument(
        "--inject-worker-crash",
        action="store_true",
        help="chaos-test the harness itself: SIGKILL one worker "
        "mid-campaign and prove the retry path restores a bit-identical "
        "result (needs --workers >= 2 and --retries >= 1)",
    )
    _add_ledger_args(chaos)
    _add_resilience_args(chaos)
    chaos.set_defaults(func=cmd_chaos)

    sweep = sub.add_parser(
        "sweep", help="sweep a protocol over n with replicated parallel runs"
    )
    sweep.add_argument("--protocol", choices=sorted(PROTOCOLS), default="ads")
    sweep.add_argument(
        "--n-values", default="2,3,4", help="comma-separated process counts"
    )
    sweep.add_argument("--reps", type=int, default=10, help="seeded runs per point")
    sweep.add_argument("--seed-base", type=int, default=0)
    sweep.add_argument(
        "--scheduler",
        choices=["random", "round-robin", "split", "lockstep"],
        default="random",
    )
    sweep.add_argument("--metric", choices=["steps", "rounds"], default="steps")
    sweep.add_argument("--max-steps", type=int, default=50_000_000)
    sweep.add_argument(
        "--workers",
        type=_workers_arg,
        default=None,
        metavar="N",
        help="worker processes (default serial; 0 = all CPUs)",
    )
    sweep.add_argument(
        "--batch",
        type=_batch_arg,
        default=None,
        metavar="N",
        help="simulation lanes per batch through the fused "
        "struct-of-arrays step loop (default REPRO_BATCH; results and "
        "ledger bytes identical at any batch size)",
    )
    sweep.add_argument(
        "--progress", action="store_true", help="tick run completion on stderr"
    )
    _add_ledger_args(sweep)
    _add_resilience_args(sweep)
    sweep.set_defaults(func=cmd_sweep)

    bench = sub.add_parser(
        "bench", help="list/gate benchmark artifacts against baselines"
    )
    bench.add_argument(
        "--check", action="store_true", help="fail on deviation from baselines"
    )
    bench.add_argument(
        "--update", action="store_true", help="copy current artifacts to baselines"
    )
    bench.add_argument(
        "--experiments",
        default="",
        metavar="E1,E6,...",
        help="experiments to gate (default: every artifact present)",
    )
    bench.add_argument("--results-dir", default="benchmarks/results")
    bench.add_argument("--baselines-dir", default="benchmarks/baselines")
    bench.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        help="relative deviation allowed per value (default 0.10)",
    )
    _add_ledger_args(bench, cache=False)
    bench.set_defaults(func=cmd_bench)

    profile = sub.add_parser(
        "profile",
        help="measure step-loop throughput and instrumentation overhead",
    )
    profile.add_argument(
        "--runs",
        type=int,
        default=6,
        metavar="N",
        help="seeded runs per (workload, mode) cell (default 6)",
    )
    profile.add_argument(
        "--repeats",
        type=int,
        default=3,
        metavar="N",
        help="timing repeats per cell, best one kept (default 3)",
    )
    profile.add_argument(
        "--batch",
        type=_batch_arg,
        metavar="N",
        help=(
            "also profile the batched struct-of-arrays loop with N lanes "
            "through one fused step loop (omit to skip)"
        ),
    )
    _add_ledger_args(profile, cache=False)
    profile.set_defaults(func=cmd_profile)

    experiments = sub.add_parser(
        "experiments", help="list the reproduction experiments (E1-E12, P*, X*)"
    )
    experiments.add_argument(
        "--benchmarks-dir",
        default="benchmarks",
        help="directory scanned for bench_*.py scripts",
    )
    experiments.set_defaults(func=cmd_experiments)

    from repro.obs.projections import DEFAULT_TOLERANCE, DEFAULT_WINDOW, TREND_METRICS

    history = sub.add_parser(
        "history",
        help="inspect the run ledger: list / show / trends / check / gc",
    )
    history.add_argument(
        "action",
        choices=["list", "show", "trends", "check", "gc"],
        help="list experiments, show records by fingerprint, print trend "
        "tables, run the regression + determinism gates, or compact "
        "duplicate records",
    )
    history.add_argument(
        "--ledger",
        default="",
        metavar="PATH",
        help="ledger file (default: $REPRO_LEDGER)",
    )
    history.add_argument(
        "--experiment",
        default="",
        help="only experiments whose label contains this substring",
    )
    history.add_argument(
        "--metric",
        default="",
        choices=["", *TREND_METRICS],
        help="trends: print one metric's raw points instead of the table",
    )
    history.add_argument(
        "--fingerprint",
        default="",
        metavar="PREFIX",
        help="show: print every record whose fingerprint starts with this",
    )
    history.add_argument(
        "--window",
        type=int,
        default=DEFAULT_WINDOW,
        help=f"check: rolling-baseline window (default {DEFAULT_WINDOW})",
    )
    history.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="check: relative deviation allowed for the latest trend value "
        f"(default {DEFAULT_TOLERANCE})",
    )
    history.set_defaults(func=cmd_history)

    serve = sub.add_parser(
        "serve",
        help="run the simulation service: HTTP job API over the run ledger",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=8642,
        help="TCP port (0 = pick a free one, printed at startup)",
    )
    serve.add_argument(
        "--workers",
        type=_workers_arg,
        default=None,
        metavar="N",
        help="engine worker processes per job (default 1; 0 = all CPUs)",
    )
    serve.add_argument(
        "--state-dir",
        default=".repro-serve",
        metavar="DIR",
        help="where the service ledger and job log live (default .repro-serve)",
    )
    serve.add_argument(
        "--ledger",
        default="",
        metavar="PATH",
        help="run ledger file (default: STATE_DIR/ledger.jsonl)",
    )
    serve.add_argument(
        "--jobs-log",
        default="",
        metavar="PATH",
        help="job event log (default: STATE_DIR/jobs.jsonl)",
    )
    serve.add_argument(
        "--retries",
        type=int,
        default=0,
        metavar="N",
        help="per-cell retries with seeded backoff (default 0)",
    )
    serve.add_argument(
        "--retry-backoff",
        type=float,
        default=0.05,
        metavar="SECONDS",
        help="base delay of the seeded retry backoff (default 0.05)",
    )
    serve.add_argument(
        "--task-timeout",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="per-cell wall-clock deadline (0 = none; needs --workers >= 2)",
    )
    serve.add_argument(
        "--max-queued",
        type=int,
        default=64,
        metavar="N",
        help="queue-full threshold: POSTs beyond N queued jobs get 429",
    )
    serve.add_argument(
        "--budget-steps",
        type=int,
        default=0,
        metavar="N",
        help="campaign step budget for admission control (0 = unlimited)",
    )
    serve.add_argument(
        "--budget-wall-seconds",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="wall-clock budget for admission control (0 = unlimited)",
    )
    serve.add_argument(
        "--budget-tasks",
        type=int,
        default=0,
        metavar="N",
        help="admitted-jobs budget for admission control (0 = unlimited)",
    )
    serve.add_argument(
        "--soft-fraction",
        type=float,
        default=0.8,
        metavar="F",
        help="load level where best-effort jobs start shedding (default 0.8)",
    )
    serve.add_argument(
        "--trace-log",
        type=_jsonl_path_arg,
        default=None,  # argparse would run str defaults through the type
        metavar="PATH",
        help="job-trace JSONL (queue-wait/dispatch/task/checkpoint spans; "
        "default: STATE_DIR/trace.jsonl — render with "
        "`repro trace --from-job-trace`)",
    )
    serve.add_argument(
        "--access-log",
        type=_jsonl_path_arg,
        default=None,  # see --trace-log

        metavar="PATH",
        help="append one JSONL line per HTTP request (method, path, "
        "status, seconds); off by default",
    )
    serve.set_defaults(func=cmd_serve)

    report = sub.add_parser(
        "report",
        help="print recorded benchmark tables, or render the HTML dashboard",
    )
    report.add_argument("--results-dir", default="benchmarks/results")
    report.add_argument("--baselines-dir", default="benchmarks/baselines")
    report.add_argument(
        "--out",
        default="",
        metavar="PATH",
        help="write the self-contained HTML dashboard (metrics, time "
        "series, causal critical path, baseline deltas) instead of "
        "printing tables",
    )
    report.add_argument("--protocol", choices=sorted(PROTOCOLS), default="ads")
    report.add_argument("--inputs", default="0,1,1", help="comma-separated bits")
    report.add_argument("--seed", type=int, default=0)
    report.add_argument(
        "--scheduler",
        choices=["random", "round-robin", "split", "lockstep"],
        default="random",
    )
    report.add_argument("--max-steps", type=int, default=50_000_000)
    report.add_argument(
        "--series-every",
        type=int,
        default=64,
        metavar="K",
        help="series sampling period for the dashboard's reference run",
    )
    report.add_argument(
        "--jobs-log",
        default="",
        metavar="PATH",
        help="render the Service section from this `repro serve` job log",
    )
    report.add_argument(
        "--job-trace",
        default="",
        metavar="PATH",
        help="render the Service timeline section from this `repro serve` "
        "job trace (STATE_DIR/trace.jsonl; needs --jobs-log)",
    )
    _add_ledger_args(report, cache=False)
    report.set_defaults(func=cmd_report)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
