"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``run``   — execute one consensus run and report decisions, statistics
              and the memory audit (optionally an ASCII timeline);
- ``coin``  — toss the standalone bounded weak shared coin repeatedly and
              report agreement rates and flip counts;
- ``strip`` — play random moves on the rounds strip, printing the game /
              graph / counter state and checking Claim 4.1 at every move;
- ``metrics`` — run one consensus execution and print its metrics snapshot
              (the ``repro.obs`` registry: steps, scan retries, coin flips,
              round advances, max register values) as a table or JSON;
              ``--series-every K`` also samples tracked counters into
              deterministic time series;
- ``trace`` — run one consensus execution with full event/span recording
              and export the trace (Chrome ``trace_event`` JSON for
              Perfetto / ``chrome://tracing``, or JSONL);
- ``experiments`` — list the E1–E12 reproduction experiments and how to
              regenerate them;
- ``report`` — print the recorded benchmark result tables
              (``benchmarks/results/``), i.e. the data behind EXPERIMENTS.md;
              with ``--out report.html``, render the self-contained HTML
              dashboard instead (metrics snapshot, time-series sparklines,
              causal critical-path attribution, baselines-vs-results
              deltas for every checked-in benchmark);
- ``chaos`` — run the fault-injection mutation campaign (every fault class
              must be caught by some checker) plus a crash-recovery and a
              fault-injection fuzz grid (see ``docs/robustness.md``);
- ``sweep`` — sweep a protocol over process counts with replicated seeded
              runs, optionally fanned out across cores (``--workers``,
              see ``docs/performance.md``);
- ``bench`` — list the machine-readable benchmark artifacts and gate them
              against the checked-in baselines (``--check``), the same
              comparison the CI ``bench-gate`` job runs;
- ``profile`` — measure serial step-loop throughput (steps/sec) for the
              P1 workloads across instrumentation modes (bare / metrics /
              trace) and print the wall-clock breakdown plus the
              instrumented-vs-bare overhead ratios (see
              ``docs/performance.md``).

Every command is seeded and deterministic; exit status is non-zero if a
safety check fails.
"""

from __future__ import annotations

import argparse
import random
import statistics
import sys
from typing import Sequence

from repro.analysis.reporting import format_table
from repro.coin import BoundedWalkSharedCoin, coin_flipper_program
from repro.consensus import (
    AdsConsensus,
    AspnesHerlihyConsensus,
    AtomicCoinConsensus,
    BoundedLocalCoinConsensus,
    LocalCoinConsensus,
    validate_run,
)
from repro.consensus.ads import pref_reader
from repro.runtime import (
    CrashPlan,
    RandomScheduler,
    RecoveryPlan,
    RoundRobinScheduler,
    Simulation,
    SplitAdversary,
    WalkBalancingAdversary,
)
from repro.obs.export import export_trace
from repro.runtime.adversary import LockstepAdversary
from repro.runtime.timeline import render_timeline
from repro.strip import DistanceGraph, EdgeCounters, ShrunkenTokenGame

PROTOCOLS = {
    "ads": AdsConsensus,
    "aspnes-herlihy": AspnesHerlihyConsensus,
    "local-coin": LocalCoinConsensus,
    "bounded-local-coin": BoundedLocalCoinConsensus,
    "atomic-coin": AtomicCoinConsensus,
}

EXPERIMENTS = {
    "e1": "Lemma 3.1 — coin disagreement probability vs b",
    "e2": "Lemma 3.2 — coin flips vs (b+1)^2 n^2",
    "e3": "Lemmas 3.3/3.4 — counter overflow vs m",
    "e4": "§6.3 — expected rounds O(1) in n",
    "e5": "polynomial vs exponential total work",
    "e6": "memory boundedness vs Aspnes-Herlihy",
    "e7": "scan retries vs write contention",
    "e8": "snapshot properties P1-P3",
    "e9": "Claim 4.1 game/graph/counter equivalence",
    "e10": "the five-regime comparison table",
    "e11": "safety grid (consistency/validity everywhere)",
    "e12": "ablations (snapshot substrate, K, b)",
}


def _make_scheduler(name: str, seed: int):
    if name == "random":
        return RandomScheduler(seed=seed)
    if name == "round-robin":
        return RoundRobinScheduler()
    if name == "split":
        return SplitAdversary(pref_reader, seed=seed)
    if name == "lockstep":
        return LockstepAdversary("mem", seed=seed)
    raise ValueError(f"unknown scheduler: {name}")


def _parse_inputs(text: str) -> list[int]:
    return [int(part) for part in text.split(",") if part != ""]


def _parse_crashes(entries: Sequence[str]) -> CrashPlan:
    plan = {}
    for entry in entries:
        pid, _, step = entry.partition(":")
        plan[int(pid)] = int(step) if step else 0
    return CrashPlan(plan)


def _parse_restarts(entries: Sequence[str]) -> RecoveryPlan | None:
    plan = {}
    for entry in entries:
        pid, _, step = entry.partition(":")
        plan[int(pid)] = int(step) if step else 0
    return RecoveryPlan(plan) if plan else None


def cmd_run(args) -> int:
    inputs = _parse_inputs(args.inputs)
    protocol = PROTOCOLS[args.protocol]()
    run = protocol.run(
        inputs,
        scheduler=_make_scheduler(args.scheduler, args.seed),
        seed=args.seed,
        crash_plan=_parse_crashes(args.crash),
        recovery_plan=_parse_restarts(args.restart),
        max_steps=args.max_steps,
        record_spans=args.timeline,
        keep_simulation=args.timeline,
    )
    report = validate_run(run)
    print(f"protocol  : {run.protocol}  (n={run.n}, seed={args.seed})")
    print(f"inputs    : {list(run.inputs)}")
    print(f"decisions : {run.decisions}")
    print(f"crashed   : {sorted(run.outcome.crashed) or '-'}")
    if run.outcome.restarts:
        print(f"restarts  : {run.outcome.restarts}")
    print(f"steps     : {run.total_steps}   rounds: {run.stats.get('rounds_by_pid')}")
    print(
        "memory    : max |int| stored "
        f"{run.audit.max_magnitude}, widest cell {run.audit.max_width}"
    )
    verdict = "OK" if report.ok else "VIOLATED: " + "; ".join(report.problems)
    print(f"safety    : {verdict}")
    if args.timeline and run.simulation is not None:
        print()
        print(
            render_timeline(
                run.simulation.trace,
                kinds={"scan", "write"},
                max_rows=args.timeline_rows,
            )
        )
    return 0 if report.ok else 1


def cmd_metrics(args) -> int:
    """Run one execution and print the deterministic metrics snapshot."""
    from repro.obs.timeseries import SeriesSpec

    inputs = _parse_inputs(args.inputs)
    protocol = PROTOCOLS[args.protocol]()
    series = SeriesSpec(every=args.series_every) if args.series_every else None
    run = protocol.run(
        inputs,
        scheduler=_make_scheduler(args.scheduler, args.seed),
        seed=args.seed,
        max_steps=args.max_steps,
        series=series,
    )
    snapshot = run.metrics
    assert snapshot is not None  # metrics are on by default
    if args.json:
        print(snapshot.to_json())
        return 0
    print(
        f"protocol  : {run.protocol}  (n={run.n}, seed={args.seed}, "
        f"steps={run.total_steps})"
    )
    print()
    rows = snapshot.to_rows()
    if args.filter:
        rows = [r for r in rows if args.filter in r["metric"]]
    print(format_table(rows, title="metrics snapshot"))
    return 0


def cmd_trace(args) -> int:
    """Run one execution with recording on and export the trace."""
    inputs = _parse_inputs(args.inputs)
    protocol = PROTOCOLS[args.protocol]()
    run = protocol.run(
        inputs,
        scheduler=_make_scheduler(args.scheduler, args.seed),
        seed=args.seed,
        max_steps=args.max_steps,
        record_events=True,
        record_spans=True,
        keep_simulation=True,
    )
    trace = run.simulation.trace
    path = export_trace(trace, args.export)
    fmt = "JSONL" if path.suffix == ".jsonl" else "Chrome trace_event"
    print(
        f"exported {len(trace.events)} events and {len(trace.spans)} spans "
        f"({fmt}) to {path}"
    )
    if fmt != "JSONL":
        print("open it at https://ui.perfetto.dev or chrome://tracing")
    return 0


def cmd_coin(args) -> int:
    rows = []
    disagreements = 0
    flips = []
    for seed in range(args.reps):
        scheduler = (
            WalkBalancingAdversary("coin", seed=seed)
            if args.adversary
            else RandomScheduler(seed=seed)
        )
        sim = Simulation(args.n, scheduler, seed=seed)
        coin = BoundedWalkSharedCoin(
            sim, "coin", args.n, b_barrier=args.barrier, m_bound=args.m
        )
        sim.spawn_all(coin_flipper_program(coin))
        outcome = sim.run(args.max_steps)
        if len(set(outcome.decisions.values())) > 1:
            disagreements += 1
        flips.append(coin.total_steps)
    rows.append(
        {
            "n": args.n,
            "b": args.barrier,
            "tosses": args.reps,
            "disagree rate": disagreements / args.reps,
            "paper bound": 1 / args.barrier,
            "mean flips": statistics.mean(flips),
            "paper flips": (args.barrier + 1) ** 2 * args.n**2,
        }
    )
    print(format_table(rows, title="bounded weak shared coin"))
    return 0


def cmd_strip(args) -> int:
    rng = random.Random(args.seed)
    game = ShrunkenTokenGame(args.n, args.K)
    graph = DistanceGraph.initial(args.n, args.K)
    counters = EdgeCounters(args.n, args.K)
    for move_index in range(args.moves):
        mover = rng.randrange(args.n)
        game.move_token(mover)
        graph.inc(mover)
        counters.inc(mover)
        expected = DistanceGraph.from_positions(game.positions, args.K)
        status = "ok" if graph == expected == counters.graph() else "DIVERGED"
        print(
            f"move {move_index:>3}: token {mover}  positions={game.positions}  "
            f"claim-4.1 {status}"
        )
        if status != "ok":
            return 1
    print(f"\nfinal graph: {graph}")
    print(f"max edge counter: {counters.max_counter()} (< 3K = {3 * args.K})")
    return 0


def cmd_report(args) -> int:
    import pathlib

    if args.out:
        return _report_dashboard(args)
    results = pathlib.Path(args.results_dir)
    files = sorted(results.glob("*.txt"))
    if not files:
        print(
            f"no recorded results in {results}/ — run "
            "`pytest benchmarks/ --benchmark-only` first"
        )
        return 1
    for path in files:
        print(path.read_text().rstrip())
        print()
    return 0


def _report_dashboard(args) -> int:
    """Render the self-contained HTML dashboard (``repro report --out``).

    Drives one fully-instrumented reference run (events + spans + series)
    for the metrics/series/causality sections, then gates every baseline
    ``BENCH_*.json`` against the current artifacts for the deltas table.
    Deterministic: same arguments and artifact set ⇒ byte-identical file.
    """
    from repro.obs.causality import causal_report_for
    from repro.obs.report import gate_all_benchmarks, write_report
    from repro.obs.timeseries import SeriesSpec

    inputs = _parse_inputs(args.inputs)
    protocol = PROTOCOLS[args.protocol]()
    run = protocol.run(
        inputs,
        scheduler=_make_scheduler(args.scheduler, args.seed),
        seed=args.seed,
        max_steps=args.max_steps,
        record_events=True,
        record_spans=True,
        keep_simulation=True,
        series=SeriesSpec(every=args.series_every),
    )
    causal = causal_report_for(run.simulation, run.outcome)
    gates = gate_all_benchmarks(args.results_dir, args.baselines_dir)
    meta = {
        "protocol": run.protocol,
        "n": run.n,
        "seed": args.seed,
        "scheduler": args.scheduler,
        "steps": run.total_steps,
        "series_every": args.series_every,
    }
    path = write_report(args.out, run.metrics, causal, gates, meta)
    ok = sum(1 for g in gates if g.ok)
    print(
        f"wrote {path} — {run.total_steps} steps analyzed, "
        f"critical path {causal.critical_length}, "
        f"{ok}/{len(gates)} benchmarks within tolerance"
    )
    return 0


def cmd_chaos(args) -> int:
    """Mutation-test the checkers, then fuzz crash-recovery and faults."""
    import json

    from repro.faults.campaign import run_mutation_campaign
    from repro.verify.fuzz import fuzz_consensus

    campaign = run_mutation_campaign(seed=args.seed, workers=args.workers)
    columns = ("fault", "layer", "checker", "injections", "detected", "expected", "ok")
    rows = [{k: row[k] for k in columns} for row in campaign.to_rows()]
    print(format_table(rows, title="checker mutation campaign"))
    print(f"detections by fault class: {campaign.detections_by_kind()}")
    if campaign.holes:
        print(f"HOLES (fault classes no checker caught): {campaign.holes}")

    print()
    recovery = fuzz_consensus(
        lambda: AdsConsensus(),
        n_values=(2, 3),
        runs_per_cell=args.runs_per_cell,
        crash_probability=1.0,
        recovery_probability=1.0,
        master_seed=args.seed,
        workers=args.workers,
    )
    print(f"crash-recovery fuzz : {recovery.summary()}")
    for failure in recovery.failures:
        print(f"  FAIL {failure}")

    faults = fuzz_consensus(
        lambda: AdsConsensus(),
        n_values=(2, 3),
        runs_per_cell=max(2, args.runs_per_cell // 5),
        crash_probability=0.0,
        fault_probability=1.0,
        master_seed=args.seed,
        workers=args.workers,
    )
    print(f"fault-injection fuzz: {faults.summary()}")

    ok = campaign.ok and recovery.ok and faults.ok
    if args.json:
        payload = {
            "seed": args.seed,
            "ok": ok,
            "campaign": json.loads(campaign.to_json(indent=None)),
            "recovery_fuzz": {
                "runs": recovery.runs,
                "recovery_runs": recovery.recovery_runs,
                "degraded_runs": recovery.degraded_runs,
                "failures": [str(f) for f in recovery.failures],
            },
            "fault_fuzz": {
                "runs": faults.runs,
                "fault_runs": faults.fault_runs,
                "fault_injections": faults.fault_injections,
                "fault_detections": faults.fault_detections,
                "failures": [str(f) for f in faults.failures],
            },
        }
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"\nwrote JSON report to {args.json}")
    print(f"\nchaos: {'OK' if ok else 'FAILED'}")
    return 0 if ok else 1


def cmd_sweep(args) -> int:
    """Sweep a protocol over process counts with replicated, seeded runs.

    The parallel counterpart of repeated ``repro run`` invocations: every
    (n, seed) cell is an independent simulation, so ``--workers`` fans the
    grid out across cores and the table is identical for any worker count.
    """
    from repro.analysis.experiment import Sweep, sweep_table

    n_values = _parse_inputs(args.n_values)
    metric = args.metric

    def run_once(n: int, seed: int) -> float:
        protocol = PROTOCOLS[args.protocol]()
        inputs = [(seed + i) % 2 for i in range(n)]
        run = protocol.run(
            inputs,
            scheduler=_make_scheduler(args.scheduler, seed),
            seed=seed,
            max_steps=args.max_steps,
        )
        report = validate_run(run)
        if not report.ok:
            raise RuntimeError(
                f"unsafe run (n={n}, seed={seed}): " + "; ".join(report.problems)
            )
        return float(run.max_rounds() if metric == "rounds" else run.total_steps)

    def progress(done: int, total: int) -> None:
        print(f"\r{done}/{total} runs", end="", file=sys.stderr, flush=True)

    sweep = Sweep(
        "n",
        n_values,
        run_once,
        repetitions=args.reps,
        seed_base=args.seed_base,
    )
    points = sweep.execute(
        workers=args.workers, progress=progress if args.progress else None
    )
    if args.progress:
        print(file=sys.stderr)
    print(
        format_table(
            sweep_table(points),
            title=(
                f"{args.protocol} — {metric} vs n "
                f"({args.reps} reps, {args.scheduler} scheduler, "
                f"workers={args.workers})"
            ),
        )
    )
    return 0


def cmd_bench(args) -> int:
    """List benchmark artifacts, gate them against baselines, or update."""
    import pathlib

    from repro.analysis.benchgate import (
        check_experiments,
        update_baselines,
    )

    results_dir = pathlib.Path(args.results_dir)
    baselines_dir = pathlib.Path(args.baselines_dir)
    experiments = (
        [e.strip().lower() for e in args.experiments.split(",") if e.strip()]
        if args.experiments
        else sorted(
            p.stem.replace("BENCH_", "").lower()
            for p in results_dir.glob("BENCH_*.json")
        )
    )
    if not experiments:
        print(f"no BENCH_*.json artifacts in {results_dir}/ — run the benchmarks")
        return 1
    if args.update:
        copied = update_baselines(experiments, results_dir, baselines_dir)
        print(f"updated baselines for: {', '.join(e.upper() for e in copied)}")
        missing = sorted(set(experiments) - set(copied))
        if missing:
            print(f"no artifact yet for: {', '.join(e.upper() for e in missing)}")
        return 0 if not missing else 1
    if not args.check:
        rows = []
        for experiment in experiments:
            name = f"BENCH_{experiment.upper()}.json"
            rows.append(
                {
                    "experiment": experiment.upper(),
                    "artifact": (results_dir / name).exists(),
                    "baseline": (baselines_dir / name).exists(),
                }
            )
        print(format_table(rows, title="benchmark artifacts"))
        print("run `repro bench --check` to gate artifacts against baselines")
        return 0
    results = check_experiments(
        experiments, results_dir, baselines_dir, tolerance=args.tolerance
    )
    for result in results:
        print(result.summary())
        for problem in result.problems:
            print(f"  REGRESSION {problem}")
    ok = all(r.ok for r in results)
    print(f"\nbench gate: {'OK' if ok else 'FAILED'} (tolerance {args.tolerance:.0%})")
    return 0 if ok else 1


def cmd_profile(args) -> int:
    """Measure step-loop throughput and instrumentation overhead (P1)."""
    from repro.analysis.perfbench import DEFAULT_SEEDS, profile_breakdown

    seeds = range(DEFAULT_SEEDS[0], DEFAULT_SEEDS[0] + args.runs)
    rows, profiler = profile_breakdown(seeds=list(seeds), repeats=args.repeats)
    print(
        format_table(
            rows,
            title=(
                f"serial step-loop throughput ({args.runs} seeded runs per "
                f"cell, best of {args.repeats})"
            ),
        )
    )
    timing_rows = [
        {
            "section": section,
            "repeats": int(summary["count"]),
            "min_s": round(summary["min"], 4),
            "mean_s": round(summary["mean"], 4),
            "max_s": round(summary["max"], 4),
        }
        for section, summary in profiler.sections().items()
    ]
    print()
    print(format_table(timing_rows, title="wall-clock per section (seconds)"))
    bare = {r["workload"]: r["steps_per_sec"] for r in rows if r["mode"] == "bare"}
    worst = max(
        (r["overhead_vs_bare"] for r in rows if r["mode"] == "metrics"),
        default=0.0,
    )
    print(
        f"\nbare consensus throughput: {bare.get('consensus', 0):,} steps/sec; "
        f"worst metrics-on overhead: {worst:.2f}x"
    )
    return 0


def cmd_experiments(args) -> int:
    rows = [
        {
            "id": key.upper(),
            "claim": text,
            "regenerate": f"pytest benchmarks/bench_{key}_*.py --benchmark-only -s",
        }
        for key, text in EXPERIMENTS.items()
    ]
    print(format_table(rows, title="reproduction experiments (see EXPERIMENTS.md)"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Bounded Polynomial Randomized Consensus (PODC 1989) — "
            "reproduction toolkit"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one consensus execution")
    run.add_argument("--protocol", choices=sorted(PROTOCOLS), default="ads")
    run.add_argument("--inputs", default="0,1,0,1", help="comma-separated bits")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--scheduler",
        choices=["random", "round-robin", "split", "lockstep"],
        default="random",
    )
    run.add_argument(
        "--crash",
        action="append",
        default=[],
        metavar="PID[:STEP]",
        help="crash PID at STEP (repeatable)",
    )
    run.add_argument(
        "--restart",
        action="append",
        default=[],
        metavar="PID[:STEP]",
        help="restart a crashed PID at STEP with local state lost (repeatable)",
    )
    run.add_argument("--max-steps", type=int, default=50_000_000)
    run.add_argument("--timeline", action="store_true", help="print span timeline")
    run.add_argument("--timeline-rows", type=int, default=40)
    run.set_defaults(func=cmd_run)

    metrics = sub.add_parser(
        "metrics", help="run one execution and print its metrics snapshot"
    )
    metrics.add_argument("--protocol", choices=sorted(PROTOCOLS), default="ads")
    metrics.add_argument("--inputs", default="0,1,0,1", help="comma-separated bits")
    metrics.add_argument("--seed", type=int, default=0)
    metrics.add_argument(
        "--scheduler",
        choices=["random", "round-robin", "split", "lockstep"],
        default="random",
    )
    metrics.add_argument("--max-steps", type=int, default=50_000_000)
    metrics.add_argument("--json", action="store_true", help="print snapshot as JSON")
    metrics.add_argument(
        "--filter", default="", help="only metrics whose name contains this substring"
    )
    metrics.add_argument(
        "--series-every",
        type=int,
        default=0,
        metavar="K",
        help="also sample tracked counters every K steps into time series "
        "(0 = off)",
    )
    metrics.set_defaults(func=cmd_metrics)

    trace = sub.add_parser(
        "trace", help="run one execution and export its trace for Perfetto"
    )
    trace.add_argument("--protocol", choices=sorted(PROTOCOLS), default="ads")
    trace.add_argument("--inputs", default="0,1,0,1", help="comma-separated bits")
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument(
        "--scheduler",
        choices=["random", "round-robin", "split", "lockstep"],
        default="random",
    )
    trace.add_argument("--max-steps", type=int, default=50_000_000)
    trace.add_argument(
        "--export",
        default="trace.json",
        metavar="PATH",
        help="output file; .jsonl exports JSONL, anything else Chrome trace_event",
    )
    trace.set_defaults(func=cmd_trace)

    coin = sub.add_parser("coin", help="toss the bounded weak shared coin")
    coin.add_argument("--n", type=int, default=4)
    coin.add_argument("--barrier", "-b", type=int, default=2)
    coin.add_argument("--m", type=int, default=None)
    coin.add_argument("--reps", type=int, default=30)
    coin.add_argument("--adversary", action="store_true")
    coin.add_argument("--max-steps", type=int, default=10_000_000)
    coin.set_defaults(func=cmd_coin)

    strip = sub.add_parser("strip", help="play the rounds-strip game")
    strip.add_argument("--n", type=int, default=3)
    strip.add_argument("--K", type=int, default=2)
    strip.add_argument("--moves", type=int, default=15)
    strip.add_argument("--seed", type=int, default=0)
    strip.set_defaults(func=cmd_strip)

    chaos = sub.add_parser(
        "chaos", help="mutation-test the checkers and fuzz recovery/faults"
    )
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument(
        "--runs-per-cell",
        type=int,
        default=25,
        metavar="N",
        help="recovery-fuzz runs per (n, scheduler) cell (default 25 → 200 runs)",
    )
    chaos.add_argument(
        "--json", default="", metavar="PATH", help="also write a JSON report"
    )
    chaos.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for campaign + fuzz cells "
        "(default serial; 0 = all CPUs; results identical at any count)",
    )
    chaos.set_defaults(func=cmd_chaos)

    sweep = sub.add_parser(
        "sweep", help="sweep a protocol over n with replicated parallel runs"
    )
    sweep.add_argument("--protocol", choices=sorted(PROTOCOLS), default="ads")
    sweep.add_argument(
        "--n-values", default="2,3,4", help="comma-separated process counts"
    )
    sweep.add_argument("--reps", type=int, default=10, help="seeded runs per point")
    sweep.add_argument("--seed-base", type=int, default=0)
    sweep.add_argument(
        "--scheduler",
        choices=["random", "round-robin", "split", "lockstep"],
        default="random",
    )
    sweep.add_argument("--metric", choices=["steps", "rounds"], default="steps")
    sweep.add_argument("--max-steps", type=int, default=50_000_000)
    sweep.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes (default serial; 0 = all CPUs)",
    )
    sweep.add_argument(
        "--progress", action="store_true", help="tick run completion on stderr"
    )
    sweep.set_defaults(func=cmd_sweep)

    bench = sub.add_parser(
        "bench", help="list/gate benchmark artifacts against baselines"
    )
    bench.add_argument(
        "--check", action="store_true", help="fail on deviation from baselines"
    )
    bench.add_argument(
        "--update", action="store_true", help="copy current artifacts to baselines"
    )
    bench.add_argument(
        "--experiments",
        default="",
        metavar="E1,E6,...",
        help="experiments to gate (default: every artifact present)",
    )
    bench.add_argument("--results-dir", default="benchmarks/results")
    bench.add_argument("--baselines-dir", default="benchmarks/baselines")
    bench.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        help="relative deviation allowed per value (default 0.10)",
    )
    bench.set_defaults(func=cmd_bench)

    profile = sub.add_parser(
        "profile",
        help="measure step-loop throughput and instrumentation overhead",
    )
    profile.add_argument(
        "--runs",
        type=int,
        default=6,
        metavar="N",
        help="seeded runs per (workload, mode) cell (default 6)",
    )
    profile.add_argument(
        "--repeats",
        type=int,
        default=3,
        metavar="N",
        help="timing repeats per cell, best one kept (default 3)",
    )
    profile.set_defaults(func=cmd_profile)

    experiments = sub.add_parser("experiments", help="list E1-E12")
    experiments.set_defaults(func=cmd_experiments)

    report = sub.add_parser(
        "report",
        help="print recorded benchmark tables, or render the HTML dashboard",
    )
    report.add_argument("--results-dir", default="benchmarks/results")
    report.add_argument("--baselines-dir", default="benchmarks/baselines")
    report.add_argument(
        "--out",
        default="",
        metavar="PATH",
        help="write the self-contained HTML dashboard (metrics, time "
        "series, causal critical path, baseline deltas) instead of "
        "printing tables",
    )
    report.add_argument("--protocol", choices=sorted(PROTOCOLS), default="ads")
    report.add_argument("--inputs", default="0,1,1", help="comma-separated bits")
    report.add_argument("--seed", type=int, default=0)
    report.add_argument(
        "--scheduler",
        choices=["random", "round-robin", "split", "lockstep"],
        default="random",
    )
    report.add_argument("--max-steps", type=int, default=50_000_000)
    report.add_argument(
        "--series-every",
        type=int,
        default=64,
        metavar="K",
        help="series sampling period for the dashboard's reference run",
    )
    report.set_defaults(func=cmd_report)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
