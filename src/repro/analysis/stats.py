"""Statistical estimators used by the experiments."""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass
from typing import Sequence


@dataclass
class Summary:
    """Five-number-ish summary of a sample."""

    count: int
    mean: float
    stdev: float
    minimum: float
    maximum: float
    ci_low: float
    ci_high: float

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.3g} "
            f"[{self.ci_low:.3g}, {self.ci_high:.3g}]"
        )


def mean_and_ci(
    samples: Sequence[float], z: float = 1.96
) -> tuple[float, float, float]:
    """Sample mean with a normal-approximation confidence interval."""
    if not samples:
        raise ValueError("empty sample")
    mean = statistics.fmean(samples)
    if len(samples) < 2:
        return mean, mean, mean
    half = z * statistics.stdev(samples) / math.sqrt(len(samples))
    return mean, mean - half, mean + half


def summarize(samples: Sequence[float]) -> Summary:
    mean, low, high = mean_and_ci(samples)
    return Summary(
        count=len(samples),
        mean=mean,
        stdev=statistics.stdev(samples) if len(samples) > 1 else 0.0,
        minimum=min(samples),
        maximum=max(samples),
        ci_low=low,
        ci_high=high,
    )


def wilson_interval(
    successes: int, trials: int, z: float = 1.96
) -> tuple[float, float, float]:
    """Wilson score interval for a binomial proportion (rate, low, high).

    Preferred over the normal approximation because the measured rates
    (coin disagreement, counter overflow) are often near 0.
    """
    if trials == 0:
        raise ValueError("no trials")
    p = successes / trials
    denom = 1 + z * z / trials
    centre = (p + z * z / (2 * trials)) / denom
    half = (
        z
        * math.sqrt(p * (1 - p) / trials + z * z / (4 * trials * trials))
        / denom
    )
    return p, max(0.0, centre - half), min(1.0, centre + half)


def growth_exponent(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope of log(y) against log(x).

    An estimated polynomial degree: ~2 for quadratic scaling, etc.  Used to
    compare measured scaling curves against the paper's asymptotics (E2,
    E5).
    """
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need two aligned samples at least")
    lx = [math.log(x) for x in xs]
    ly = [math.log(max(y, 1e-12)) for y in ys]
    mx = statistics.fmean(lx)
    my = statistics.fmean(ly)
    num = sum((a - mx) * (b - my) for a, b in zip(lx, ly))
    den = sum((a - mx) ** 2 for a in lx)
    return num / den


def doubling_ratio(ys: Sequence[float]) -> float:
    """Geometric mean of consecutive ratios — ~2 for 2^n growth (E5)."""
    if len(ys) < 2:
        raise ValueError("need at least two points")
    ratios = [b / a for a, b in zip(ys, ys[1:]) if a > 0]
    return math.exp(statistics.fmean([math.log(r) for r in ratios]))
