"""Experiment framework: seeded runs, sweeps, statistics and reporting.

Every benchmark (E1–E12) is expressed as a parameter sweep over seeded
simulation runs; this package provides the plumbing so the benchmarks stay
declarative: :mod:`repro.analysis.experiment` runs and aggregates,
:mod:`repro.analysis.stats` estimates (means, Wilson intervals, log-log
growth slopes), :mod:`repro.analysis.theory` supplies the paper-predicted
rows, and :mod:`repro.analysis.reporting` renders the paper-vs-measured
tables that EXPERIMENTS.md records.
"""

from repro.analysis.experiment import Sweep, repeat_runs, sweep_table
from repro.analysis.reporting import format_table, render_rows
from repro.analysis.stats import (
    growth_exponent,
    mean_and_ci,
    summarize,
    wilson_interval,
)

__all__ = [
    "Sweep",
    "format_table",
    "growth_exponent",
    "mean_and_ci",
    "render_rows",
    "repeat_runs",
    "summarize",
    "sweep_table",
    "wilson_interval",
]
