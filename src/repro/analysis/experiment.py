"""Seeded experiment execution: repetitions and parameter sweeps.

Both entry points accept a ``workers`` count and fan their replications
out through :mod:`repro.parallel`.  Each replication derives all of its
randomness from its own seed, so the parallel path returns results
bit-identical to the serial loop — same seeds, same outputs, any worker
count (see ``docs/performance.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from repro.analysis.stats import Summary, summarize
from repro.parallel import run_tasks


def repeat_runs(
    run_once: Callable[[int], float],
    seeds: Iterable[int],
    workers: int | None = None,
    progress: Callable[[int, int], None] | None = None,
) -> list[float]:
    """Execute ``run_once(seed)`` for every seed; collect the metric.

    ``workers`` > 1 distributes the seeds across a process pool; results
    come back in seed order either way.  ``progress(done, total)`` is
    called in the parent as replications complete.
    """
    return run_tasks(run_once, seeds, workers=workers, progress=progress)


@dataclass
class SweepPoint:
    """One parameter setting with its replicated measurements."""

    params: dict[str, Any]
    samples: list[float]
    extra: dict[str, Any] = field(default_factory=dict)

    @property
    def summary(self) -> Summary:
        return summarize(self.samples)


@dataclass
class Sweep:
    """A one-dimensional parameter sweep with repetitions per point.

    Args:
        parameter: name of the swept parameter.
        values: the values it takes.
        run_once: ``run_once(value, seed) -> metric``.
        repetitions: seeds 0..repetitions-1 are used per point (offset by
            ``seed_base`` so different experiments never share streams).
        workers: default process count for :meth:`execute` (``None`` →
            serial unless ``REPRO_WORKERS`` is set).
    """

    parameter: str
    values: Sequence[Any]
    run_once: Callable[[Any, int], float]
    repetitions: int = 10
    seed_base: int = 0
    workers: int | None = None

    def execute(
        self,
        workers: int | None = None,
        progress: Callable[[int, int], None] | None = None,
    ) -> list[SweepPoint]:
        """Run every (value, seed) cell; chunked across workers if asked.

        The full cross product is submitted as one task list (better pool
        utilisation than per-point batches when repetitions are few), then
        regrouped by point in value order — output is identical to the
        serial nested loop for any worker count.
        """
        if workers is None:
            workers = self.workers
        tasks = [
            (value, self.seed_base + rep)
            for value in self.values
            for rep in range(self.repetitions)
        ]
        samples = run_tasks(
            lambda task: self.run_once(task[0], task[1]),
            tasks,
            workers=workers,
            progress=progress,
        )
        points = []
        for i, value in enumerate(self.values):
            chunk = samples[i * self.repetitions : (i + 1) * self.repetitions]
            points.append(SweepPoint({self.parameter: value}, list(chunk)))
        return points


def sweep_table(
    points: Sequence[SweepPoint],
    predicted: Callable[[Any], float] | None = None,
    parameter: str | None = None,
) -> list[dict[str, Any]]:
    """Rows of measured (and optionally predicted) values per sweep point."""
    rows = []
    for point in points:
        if parameter is None:
            parameter = next(iter(point.params))
        summary = point.summary
        row: dict[str, Any] = {
            parameter: point.params[parameter],
            "mean": summary.mean,
            "ci_low": summary.ci_low,
            "ci_high": summary.ci_high,
            "reps": summary.count,
        }
        if predicted is not None:
            row["predicted"] = predicted(point.params[parameter])
        row.update(point.extra)
        rows.append(row)
    return rows
