"""Seeded experiment execution: repetitions and parameter sweeps.

Both entry points accept a ``workers`` count and fan their replications
out through :mod:`repro.parallel`.  Each replication derives all of its
randomness from its own seed, so the parallel path returns results
bit-identical to the serial loop — same seeds, same outputs, any worker
count (see ``docs/performance.md``).

Both also accept a :class:`~repro.obs.ledger.RunLedger`: every
replication is then content-addressed by (seed, cell config, code
version), replications whose fingerprint the ledger already holds are
served from it instead of recomputed (cache hits — disable with the
ledger's ``use_cache=False``), and fresh results are appended
*parent-side in submission order after the parallel merge*, so the ledger
bytes are identical at any worker count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterable, Mapping, Sequence

from repro.analysis.stats import Summary, summarize
from repro.parallel import ParallelExecutionError, run_tasks, run_tasks_partial

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.ledger import RunLedger
    from repro.resilience.policy import FailurePolicy


def _run_recorded(
    run_task: Callable[[Any], float],
    tasks: Sequence[Any],
    cells: "Sequence[tuple[int, Mapping[str, Any]]]",
    ledger: "RunLedger",
    experiment: str,
    workers: int | None,
    progress: Callable[[int, int], None] | None,
    policy: "FailurePolicy | None" = None,
    task_timeout: float | None = None,
    metrics: Any = None,
    batch_size: int | None = None,
) -> list[float]:
    """Run tasks through the ledger: serve cached cells, record fresh ones.

    ``cells[i] = (seed, config)`` is task ``i``'s content address.  Fresh
    tasks go through the same engine as the unrecorded path, and their
    records checkpoint to the ledger *incrementally* in submission order
    as results arrive — an interrupted sweep leaves a valid ledger prefix
    behind, and the re-run recomputes only the missing fingerprints.
    """
    from repro.obs.ledger import compute_fingerprint, make_record
    from repro.resilience.checkpoint import LedgerCheckpointer

    fingerprints = [compute_fingerprint(seed, config) for seed, config in cells]
    results: list[float | None] = [None] * len(tasks)
    pending: list[int] = []
    checkpointer = LedgerCheckpointer(ledger)
    for index, fingerprint in enumerate(fingerprints):
        record = ledger.cached(fingerprint)
        if record is not None and isinstance(
            record.outcome.get("value"), (int, float)
        ):
            results[index] = float(record.outcome["value"])
            checkpointer.skip(index)
        else:
            pending.append(index)

    def checkpoint(position: int, value: float) -> None:
        index = pending[position]
        results[index] = value
        seed, config = cells[index]
        checkpointer.offer(
            index,
            make_record(
                kind="sweep",
                experiment=experiment,
                seed=seed,
                config=config,
                outcome={"value": value},
            ),
        )

    pending_tasks = [tasks[index] for index in pending]
    if batch_size is not None:
        # Batched dispatch reports results under the same flat indices,
        # so the checkpointer flushes identical ledger bytes (the cell
        # fingerprints never see the batch boundary).
        from repro.batch import run_tasks_batched

        partial = run_tasks_batched(
            run_task,
            pending_tasks,
            batch_size=batch_size,
            workers=workers,
            progress=progress,
            metrics=metrics,
            policy=policy,
            task_timeout=task_timeout,
            on_result=checkpoint,
        )
    else:
        partial = run_tasks_partial(
            run_task,
            pending_tasks,
            workers=workers,
            progress=progress,
            metrics=metrics,
            policy=policy,
            task_timeout=task_timeout,
            on_result=checkpoint,
        )
    checkpointer.close()
    if partial.errors:
        raise ParallelExecutionError(partial.errors)
    return [v for v in results if v is not None]


def repeat_runs(
    run_once: Callable[[int], float],
    seeds: Iterable[int],
    workers: int | None = None,
    progress: Callable[[int, int], None] | None = None,
    *,
    ledger: "RunLedger | None" = None,
    experiment: str = "",
    config: Mapping[str, Any] | None = None,
    policy: "FailurePolicy | None" = None,
    task_timeout: float | None = None,
    batch_size: int | None = None,
) -> list[float]:
    """Execute ``run_once(seed)`` for every seed; collect the metric.

    ``workers`` > 1 distributes the seeds across a process pool; results
    come back in seed order either way.  ``progress(done, total)`` is
    called in the parent as replications complete.  With a ``ledger``,
    each seed's result is content-addressed by (seed, ``config`` +
    ``experiment`` label, code version): known fingerprints are cache
    hits (not recomputed), fresh ones checkpoint incrementally in seed
    order.  ``policy``/``task_timeout`` flow to the engine (fail-fast and
    retry policies only: a replication that is terminally lost raises —
    silently dropping samples would skew the statistics).  ``batch_size``
    (default: the ``REPRO_BATCH`` environment variable) groups seeds into
    batches per pool task — and through the fused interpreter when
    ``run_once`` carries ``batch_lane``/``batch_value`` hooks (see
    :mod:`repro.batch`) — with results bit-identical either way.
    """
    from repro.batch import resolve_batch_size

    seeds = list(seeds)
    batch_size = resolve_batch_size(batch_size)
    if ledger is None:
        if batch_size is not None:
            from repro.batch import run_tasks_batched

            partial = run_tasks_batched(
                run_once,
                seeds,
                batch_size=batch_size,
                workers=workers,
                progress=progress,
                policy=policy,
                task_timeout=task_timeout,
            )
            if partial.errors:
                raise ParallelExecutionError(partial.errors)
            return [value for value in partial.results if value is not None]
        return run_tasks(
            run_once,
            seeds,
            workers=workers,
            progress=progress,
            policy=policy,
            task_timeout=task_timeout,
        )
    base = {"experiment": experiment, **dict(config or {})}
    cells = [(seed, base) for seed in seeds]
    return _run_recorded(
        run_once,
        seeds,
        cells,
        ledger,
        experiment,
        workers,
        progress,
        policy=policy,
        task_timeout=task_timeout,
        batch_size=batch_size,
    )


@dataclass
class SweepPoint:
    """One parameter setting with its replicated measurements."""

    params: dict[str, Any]
    samples: list[float]
    extra: dict[str, Any] = field(default_factory=dict)

    @property
    def summary(self) -> Summary:
        return summarize(self.samples)


@dataclass
class Sweep:
    """A one-dimensional parameter sweep with repetitions per point.

    Args:
        parameter: name of the swept parameter.
        values: the values it takes.
        run_once: ``run_once(value, seed) -> metric``.
        repetitions: seeds 0..repetitions-1 are used per point (offset by
            ``seed_base`` so different experiments never share streams).
        workers: default process count for :meth:`execute` (``None`` →
            serial unless ``REPRO_WORKERS`` is set).
        ledger: optional :class:`~repro.obs.ledger.RunLedger`; every
            (value, seed) cell is then content-addressed under
            ``experiment`` + ``config`` + the swept parameter value, with
            cache hits served from the ledger and fresh cells recorded
            parent-side in submission order (byte-identical at any
            worker count).
    """

    parameter: str
    values: Sequence[Any]
    run_once: Callable[[Any, int], float]
    repetitions: int = 10
    seed_base: int = 0
    workers: int | None = None
    ledger: "RunLedger | None" = None
    experiment: str = ""
    config: Mapping[str, Any] | None = None
    #: Optional engine resilience knobs (fail-fast / retry policies only;
    #: a terminally lost replication raises rather than skewing stats).
    policy: "FailurePolicy | None" = None
    task_timeout: float | None = None
    #: Optional :class:`~repro.obs.metrics.MetricsRegistry` the engine
    #: records its dispatch shape and resilience counters into.
    metrics: Any = None
    #: Lanes per batch (``None`` → the ``REPRO_BATCH`` environment
    #: variable, unset meaning unbatched).  Cells whose ``run_once``
    #: carries ``batch_lane``/``batch_value`` hooks go through the fused
    #: struct-of-arrays interpreter; everything else runs grouped-serial.
    #: Results and ledger bytes are identical at any batch size.
    batch_size: int | None = None

    def execute(
        self,
        workers: int | None = None,
        progress: Callable[[int, int], None] | None = None,
        batch_size: int | None = None,
    ) -> list[SweepPoint]:
        """Run every (value, seed) cell; chunked across workers if asked.

        The full cross product is submitted as one task list (better pool
        utilisation than per-point batches when repetitions are few), then
        regrouped by point in value order — output is identical to the
        serial nested loop for any worker count.
        """
        from repro.batch import resolve_batch_size

        if workers is None:
            workers = self.workers
        if batch_size is None:
            batch_size = self.batch_size
        batch_size = resolve_batch_size(batch_size)
        tasks = [
            (value, self.seed_base + rep)
            for value in self.values
            for rep in range(self.repetitions)
        ]
        run_task = lambda task: self.run_once(task[0], task[1])  # noqa: E731
        # The fused-lane hooks live on run_once; re-expose them on the
        # task-shaped wrapper so batched dispatch can see them.
        for hook in ("batch_lane", "batch_value"):
            bound = getattr(self.run_once, hook, None)
            if bound is not None:
                setattr(run_task, hook, bound)
        if self.ledger is None:
            if batch_size is not None:
                from repro.batch import run_tasks_batched

                partial = run_tasks_batched(
                    run_task,
                    tasks,
                    batch_size=batch_size,
                    workers=workers,
                    progress=progress,
                    metrics=self.metrics,
                    policy=self.policy,
                    task_timeout=self.task_timeout,
                )
                if partial.errors:
                    raise ParallelExecutionError(partial.errors)
                samples = [v for v in partial.results if v is not None]
            else:
                samples = run_tasks(
                    run_task,
                    tasks,
                    workers=workers,
                    progress=progress,
                    metrics=self.metrics,
                    policy=self.policy,
                    task_timeout=self.task_timeout,
                )
        else:
            base = {"experiment": self.experiment, **dict(self.config or {})}
            cells = [
                (seed, {**base, self.parameter: value})
                for value, seed in tasks
            ]
            samples = _run_recorded(
                run_task,
                tasks,
                cells,
                self.ledger,
                self.experiment,
                workers,
                progress,
                policy=self.policy,
                task_timeout=self.task_timeout,
                metrics=self.metrics,
                batch_size=batch_size,
            )
        points = []
        for i, value in enumerate(self.values):
            chunk = samples[i * self.repetitions : (i + 1) * self.repetitions]
            points.append(SweepPoint({self.parameter: value}, list(chunk)))
        return points


def sweep_table(
    points: Sequence[SweepPoint],
    predicted: Callable[[Any], float] | None = None,
    parameter: str | None = None,
) -> list[dict[str, Any]]:
    """Rows of measured (and optionally predicted) values per sweep point."""
    rows = []
    for point in points:
        if parameter is None:
            parameter = next(iter(point.params))
        summary = point.summary
        row: dict[str, Any] = {
            parameter: point.params[parameter],
            "mean": summary.mean,
            "ci_low": summary.ci_low,
            "ci_high": summary.ci_high,
            "reps": summary.count,
        }
        if predicted is not None:
            row["predicted"] = predicted(point.params[parameter])
        row.update(point.extra)
        rows.append(row)
    return rows
