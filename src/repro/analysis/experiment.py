"""Seeded experiment execution: repetitions and parameter sweeps."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from repro.analysis.stats import Summary, summarize


def repeat_runs(
    run_once: Callable[[int], float], seeds: Iterable[int]
) -> list[float]:
    """Execute ``run_once(seed)`` for every seed; collect the metric."""
    return [run_once(seed) for seed in seeds]


@dataclass
class SweepPoint:
    """One parameter setting with its replicated measurements."""

    params: dict[str, Any]
    samples: list[float]
    extra: dict[str, Any] = field(default_factory=dict)

    @property
    def summary(self) -> Summary:
        return summarize(self.samples)


@dataclass
class Sweep:
    """A one-dimensional parameter sweep with repetitions per point.

    Args:
        parameter: name of the swept parameter.
        values: the values it takes.
        run_once: ``run_once(value, seed) -> metric``.
        repetitions: seeds 0..repetitions-1 are used per point (offset by
            ``seed_base`` so different experiments never share streams).
    """

    parameter: str
    values: Sequence[Any]
    run_once: Callable[[Any, int], float]
    repetitions: int = 10
    seed_base: int = 0

    def execute(self) -> list[SweepPoint]:
        points = []
        for value in self.values:
            samples = [
                self.run_once(value, self.seed_base + rep)
                for rep in range(self.repetitions)
            ]
            points.append(SweepPoint({self.parameter: value}, samples))
        return points


def sweep_table(
    points: Sequence[SweepPoint],
    predicted: Callable[[Any], float] | None = None,
    parameter: str | None = None,
) -> list[dict[str, Any]]:
    """Rows of measured (and optionally predicted) values per sweep point."""
    rows = []
    for point in points:
        if parameter is None:
            parameter = next(iter(point.params))
        summary = point.summary
        row: dict[str, Any] = {
            parameter: point.params[parameter],
            "mean": summary.mean,
            "ci_low": summary.ci_low,
            "ci_high": summary.ci_high,
            "reps": summary.count,
        }
        if predicted is not None:
            row["predicted"] = predicted(point.params[parameter])
        row.update(point.extra)
        rows.append(row)
    return rows
