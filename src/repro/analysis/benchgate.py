"""The benchmark regression gate: compare ``BENCH_*.json`` to baselines.

Every benchmark writes a machine-readable artifact
(``benchmarks/results/BENCH_<ID>.json``, see ``benchmarks/_common.py``)
whose measured values are **deterministic per seed** — the simulations
draw all randomness from derived streams.  That makes regression gating
simple: check the current artifact against a checked-in baseline
(``benchmarks/baselines/BENCH_<ID>.json``) value by value, within a
relative tolerance band.

What is compared: every numeric cell of every result table, plus any
attached metrics snapshots.  What is *not*: wall-clock data (timings,
speedups, worker counts, cpu counts) — those measure the host, not the
protocols, and live under keys the gate skips by name.

Used by ``repro bench --check`` locally and the CI ``bench-gate`` job.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

#: Key substrings (lowercased) whose values measure the host rather than
#: the simulation — never compared against baselines.
TIMING_KEY_MARKERS = (
    "wall",
    "seconds",
    "elapsed",
    "speedup",
    "workers",
    "cpu",
    "timing",
    "per_sec",
)

DEFAULT_TOLERANCE = 0.10


def is_timing_key(key: str) -> bool:
    lowered = key.lower()
    return any(marker in lowered for marker in TIMING_KEY_MARKERS)


def strip_timing_values(payload: Any) -> Any:
    """A deep copy of a payload with every timing-marker key removed.

    The inverse view of :func:`is_timing_key`: what remains is exactly
    the host-independent content the gate compares, which is also what
    the run ledger files under a record's deterministic identity."""
    if isinstance(payload, Mapping):
        return {
            str(k): strip_timing_values(v)
            for k, v in payload.items()
            if not is_timing_key(str(k))
        }
    if isinstance(payload, list):
        return [strip_timing_values(v) for v in payload]
    return payload


@dataclass
class GateResult:
    """Outcome of gating one experiment's artifact against its baseline.

    ``problems`` are the human-readable findings; ``deviations`` mirror
    the value-level ones structurally (location, expected, actual) so the
    CLI can print an expected-vs-actual diff instead of a bare mismatch.
    """

    experiment: str
    problems: list[str] = field(default_factory=list)
    compared: int = 0
    deviations: list[dict] = field(default_factory=list)
    baseline_file: str = ""
    artifact_file: str = ""

    @property
    def ok(self) -> bool:
        return not self.problems

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.problems)} deviations"
        text = f"{self.experiment.upper()}: {self.compared} values compared, {status}"
        if not self.ok and self.baseline_file:
            text += f" (baseline {self.baseline_file})"
        return text


def within_tolerance(baseline: float, measured: float, tolerance: float) -> bool:
    """The repo-wide relative comparator: equal, or within ``tolerance``
    of the larger magnitude.  Shared by the benchmark gate and the run
    ledger's rolling-baseline trend gate (``repro history check``)."""
    if baseline == measured:
        return True
    denom = max(abs(baseline), abs(measured), 1e-12)
    return abs(measured - baseline) / denom <= tolerance


# Backwards-compatible private alias (pre-ledger name).
_within = within_tolerance


def _compare_value(
    result: GateResult,
    location: str,
    baseline: Any,
    measured: Any,
    tolerance: float,
) -> None:
    if isinstance(baseline, bool) or isinstance(measured, bool):
        # bools are ints in Python; compare them exactly, not numerically.
        if baseline != measured:
            result.problems.append(
                f"{location}: expected {baseline!r}, got {measured!r}"
            )
            result.deviations.append(
                {"location": location, "expected": baseline, "actual": measured}
            )
        result.compared += 1
        return
    if isinstance(baseline, (int, float)) and isinstance(measured, (int, float)):
        result.compared += 1
        if not within_tolerance(float(baseline), float(measured), tolerance):
            denom = max(abs(baseline), abs(measured), 1e-12)
            drift = abs(measured - baseline) / denom
            result.problems.append(
                f"{location}: {measured!r} deviates {drift:.1%} from baseline "
                f"{baseline!r} (tolerance {tolerance:.0%})"
            )
            result.deviations.append(
                {
                    "location": location,
                    "expected": baseline,
                    "actual": measured,
                    "drift": round(drift, 4),
                }
            )
        return
    if isinstance(baseline, Mapping) and isinstance(measured, Mapping):
        for key in sorted(set(baseline) | set(measured)):
            if is_timing_key(str(key)):
                continue
            if key not in baseline:
                result.problems.append(f"{location}.{key}: not in baseline")
            elif key not in measured:
                result.problems.append(f"{location}.{key}: missing from artifact")
            else:
                _compare_value(
                    result, f"{location}.{key}", baseline[key], measured[key], tolerance
                )
        return
    if isinstance(baseline, list) and isinstance(measured, list):
        if len(baseline) != len(measured):
            result.problems.append(
                f"{location}: {len(measured)} entries vs baseline {len(baseline)}"
            )
            return
        for i, (b, m) in enumerate(zip(baseline, measured)):
            _compare_value(result, f"{location}[{i}]", b, m, tolerance)
        return
    result.compared += 1
    if baseline != measured:
        result.problems.append(f"{location}: expected {baseline!r}, got {measured!r}")
        result.deviations.append(
            {"location": location, "expected": baseline, "actual": measured}
        )


def compare_payloads(
    experiment: str,
    baseline: Mapping[str, Any],
    measured: Mapping[str, Any],
    tolerance: float = DEFAULT_TOLERANCE,
) -> GateResult:
    """Gate one artifact payload against its baseline payload.

    Tables are matched by title (order-insensitive) so adding a table is
    reported as exactly one problem, not a cascade of shifted rows.
    """
    result = GateResult(experiment=experiment)
    base_tables = {
        t.get("title", ""): t.get("rows", []) for t in baseline.get("tables", [])
    }
    meas_tables = {
        t.get("title", ""): t.get("rows", []) for t in measured.get("tables", [])
    }
    for title in sorted(set(base_tables) | set(meas_tables)):
        if title not in meas_tables:
            result.problems.append(f"table {title!r}: missing from artifact")
        elif title not in base_tables:
            result.problems.append(f"table {title!r}: not in baseline")
        else:
            _compare_value(
                result,
                f"table {title!r}",
                base_tables[title],
                meas_tables[title],
                tolerance,
            )
    _compare_value(
        result,
        "metrics",
        baseline.get("metrics", {}),
        measured.get("metrics", {}),
        tolerance,
    )
    return result


def check_experiment(
    experiment: str,
    results_dir: pathlib.Path,
    baselines_dir: pathlib.Path,
    tolerance: float = DEFAULT_TOLERANCE,
) -> GateResult:
    """Load one experiment's artifact + baseline from disk and gate them."""
    name = f"BENCH_{experiment.upper()}.json"
    artifact = pathlib.Path(results_dir) / name
    baseline = pathlib.Path(baselines_dir) / name
    result = GateResult(
        experiment=experiment,
        baseline_file=str(baseline),
        artifact_file=str(artifact),
    )
    if not baseline.exists():
        result.problems.append(
            f"no baseline {baseline} — record one with `repro bench --update`"
        )
        return result
    if not artifact.exists():
        result.problems.append(
            f"no artifact {artifact} — run the benchmark first "
            f"(`python benchmarks/bench_{experiment}_*.py`)"
        )
        return result
    result = compare_payloads(
        experiment,
        json.loads(baseline.read_text()),
        json.loads(artifact.read_text()),
        tolerance,
    )
    result.baseline_file = str(baseline)
    result.artifact_file = str(artifact)
    return result


def check_experiments(
    experiments: Iterable[str],
    results_dir: pathlib.Path,
    baselines_dir: pathlib.Path,
    tolerance: float = DEFAULT_TOLERANCE,
) -> list[GateResult]:
    return [
        check_experiment(exp, results_dir, baselines_dir, tolerance)
        for exp in experiments
    ]


def update_baselines(
    experiments: Iterable[str],
    results_dir: pathlib.Path,
    baselines_dir: pathlib.Path,
) -> list[str]:
    """Copy current artifacts over the baselines; returns experiments copied."""
    results_dir = pathlib.Path(results_dir)
    baselines_dir = pathlib.Path(baselines_dir)
    baselines_dir.mkdir(parents=True, exist_ok=True)
    copied = []
    for experiment in experiments:
        name = f"BENCH_{experiment.upper()}.json"
        artifact = results_dir / name
        if artifact.exists():
            (baselines_dir / name).write_text(artifact.read_text())
            copied.append(experiment)
    return copied
