"""Hot-path throughput measurement (steps/sec) and overhead attribution.

The simulator's regression story has two halves.  The *semantic* half is
deterministic and exactly gated: step counts, metrics snapshots and audit
numbers are identical for identical seeds, so ``repro bench --check``
compares them value-by-value.  The *physical* half — how many atomic
steps per wall-clock second the serial step loop sustains — measures the
host as much as the code, so it is recorded (``BENCH_P1.json``) but only
loosely gated.

This module provides both halves for the P1 throughput benchmark and the
``repro profile`` command:

- three serial **workloads** exercising different layer mixes:
  ``consensus`` (the full ADS protocol: snapshot + coin + strip),
  ``scan`` (arrow scannable-memory traffic only) and ``coin`` (bounded
  shared-coin traffic only);
- three **instrumentation modes** per workload: ``bare`` (metrics
  disabled, no event/span recording — the zero-cost-when-off path),
  ``metrics`` (the default: counters/gauges/histograms on, recording
  off) and ``trace`` (metrics plus full event+span recording);
- :func:`measure_throughput` / :func:`throughput_table` timing each cell
  best-of-``repeats`` into ``steps_per_sec``;
- :func:`overhead_rows` reducing the table to instrumented-vs-bare
  overhead ratios, the number the "zero-cost instrumentation" claim is
  judged by.

Every workload's *step count* is deterministic per seed and identical
across the three modes (instrumentation must not change the schedule);
:func:`throughput_table` asserts that invariant on every run, so merely
measuring throughput doubles as an A/B equivalence check.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.consensus.ads import AdsConsensus
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiling import Profiler
from repro.runtime.scheduler import RandomScheduler
from repro.runtime.simulation import Simulation

#: Instrumentation modes: (metrics enabled, record events, record spans).
MODES: dict[str, tuple[bool, bool, bool]] = {
    "bare": (False, False, False),
    "metrics": (True, False, False),
    "trace": (True, True, True),
}

WORKLOADS = ("consensus", "scan", "coin")

#: Default seeds per throughput cell (small: CI runs every cell 3 modes).
DEFAULT_SEEDS = tuple(range(100, 106))

#: Per-process operation count for the scan/coin micro-workloads.
SCAN_ITERATIONS = 40
COIN_FLIPPERS = 4
SCAN_PROCESSES = 4
CONSENSUS_PROCESSES = 4


@dataclass(frozen=True)
class ThroughputSample:
    """One measured (workload, mode) cell."""

    workload: str
    mode: str
    steps: int
    wall_seconds: float

    @property
    def steps_per_sec(self) -> float:
        return self.steps / self.wall_seconds if self.wall_seconds > 0 else 0.0


def _registry(mode: str) -> MetricsRegistry:
    return MetricsRegistry(enabled=MODES[mode][0])


def _run_consensus(mode: str, seed: int) -> int:
    enabled, events, spans = MODES[mode]
    run = AdsConsensus().run(
        [(seed + i) % 2 for i in range(CONSENSUS_PROCESSES)],
        seed=seed,
        metrics=MetricsRegistry(enabled=enabled),
        record_events=events,
        record_spans=spans,
    )
    return run.total_steps


def _run_scan(mode: str, seed: int) -> int:
    from repro.snapshot.arrows import ArrowScannableMemory

    enabled, events, spans = MODES[mode]
    sim = Simulation(
        SCAN_PROCESSES,
        RandomScheduler(seed=seed),
        seed=seed,
        record_events=events,
        record_spans=spans,
        metrics=MetricsRegistry(enabled=enabled),
    )
    mem = ArrowScannableMemory(sim, "M", SCAN_PROCESSES)

    def factory(pid: int):
        def body(ctx):
            for k in range(SCAN_ITERATIONS):
                yield from mem.write(ctx, (pid, k))
                yield from mem.scan(ctx)
            return None

        return body

    sim.spawn_all(factory)
    return sim.run(5_000_000).total_steps


def _run_coin(mode: str, seed: int) -> int:
    from repro.coin import BoundedWalkSharedCoin, coin_flipper_program

    enabled, events, spans = MODES[mode]
    sim = Simulation(
        COIN_FLIPPERS,
        RandomScheduler(seed=seed),
        seed=seed,
        record_events=events,
        record_spans=spans,
        metrics=MetricsRegistry(enabled=enabled),
    )
    coin = BoundedWalkSharedCoin(sim, "coin", COIN_FLIPPERS, b_barrier=2)
    sim.spawn_all(coin_flipper_program(coin))
    return sim.run(5_000_000).total_steps


_RUNNERS: dict[str, Callable[[str, int], int]] = {
    "consensus": _run_consensus,
    "scan": _run_scan,
    "coin": _run_coin,
}


def run_workload(workload: str, mode: str, seeds: Sequence[int]) -> int:
    """Run one workload over ``seeds``; return total atomic steps taken."""
    runner = _RUNNERS[workload]
    return sum(runner(mode, seed) for seed in seeds)


def measure_throughput(
    workload: str,
    mode: str,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    repeats: int = 3,
    profiler: Profiler | None = None,
) -> ThroughputSample:
    """Best-of-``repeats`` wall-clock for one (workload, mode) cell.

    Best-of (not mean) because throughput noise is one-sided: the host
    can only steal time, never donate it.  With a ``profiler``, every
    repeat also lands in the ``profile.<workload>.<mode>`` histogram.
    """
    steps = 0
    best = float("inf")
    for _ in range(max(1, repeats)):
        if profiler is not None:
            with profiler.section(f"{workload}.{mode}"):
                start = time.perf_counter()
                steps = run_workload(workload, mode, seeds)
                elapsed = time.perf_counter() - start
        else:
            start = time.perf_counter()
            steps = run_workload(workload, mode, seeds)
            elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return ThroughputSample(workload, mode, steps, best)


def throughput_table(
    workloads: Sequence[str] = WORKLOADS,
    modes: Sequence[str] = tuple(MODES),
    seeds: Sequence[int] = DEFAULT_SEEDS,
    repeats: int = 3,
    profiler: Profiler | None = None,
) -> list[ThroughputSample]:
    """Measure every (workload, mode) cell.

    Asserts the A/B invariant that instrumentation never changes the
    schedule: all modes of one workload must take exactly the same number
    of atomic steps.
    """
    samples = [
        measure_throughput(w, m, seeds, repeats, profiler)
        for w in workloads
        for m in modes
    ]
    for workload in workloads:
        counts = {s.steps for s in samples if s.workload == workload}
        if len(counts) > 1:
            raise AssertionError(
                f"instrumentation changed the schedule of {workload!r}: "
                f"step counts {sorted(counts)} differ across modes"
            )
    return samples


def overhead_rows(samples: Sequence[ThroughputSample]) -> list[dict]:
    """Per-workload overhead ratios relative to the ``bare`` mode.

    ``overhead_vs_bare`` is mode-time / bare-time, a slowdown factor:
    1.00 means the mode costs nothing over bare; 1.30 means 30% dearer.
    """
    by_cell = {(s.workload, s.mode): s for s in samples}
    rows = []
    for workload in dict.fromkeys(s.workload for s in samples):
        bare = by_cell.get((workload, "bare"))
        if bare is None or bare.wall_seconds <= 0:
            continue
        for mode in dict.fromkeys(s.mode for s in samples):
            cell = by_cell.get((workload, mode))
            if cell is None:
                continue
            rows.append(
                {
                    "workload": workload,
                    "mode": mode,
                    "steps": cell.steps,
                    "steps_per_sec": round(cell.steps_per_sec),
                    "overhead_vs_bare": round(
                        cell.wall_seconds / bare.wall_seconds, 3
                    ),
                }
            )
    return rows


def profile_breakdown(
    seeds: Sequence[int] = DEFAULT_SEEDS, repeats: int = 3
) -> tuple[list[dict], Profiler]:
    """The ``repro profile`` payload: throughput cells + wall-clock histograms.

    Returns the overhead table and the :class:`Profiler` whose
    ``profile.<workload>.<mode>`` histograms hold every timed repeat, so
    callers can report min/mean/max per cell from one measurement pass.
    """
    profiler = Profiler(MetricsRegistry())
    samples = throughput_table(seeds=seeds, repeats=repeats, profiler=profiler)
    return overhead_rows(samples), profiler


# ---------------------------------------------------------------------------
# Batched mode: the struct-of-arrays engine measured against serial bare.
# ---------------------------------------------------------------------------

#: Lanes per batched measurement.  The first ``len(DEFAULT_SEEDS)`` lane
#: seeds coincide with the serial consensus cell, so the batched run's
#: equivalence with serial is checked inside the measurement itself.
BATCHED_LANES = 32

#: The floor BENCH_P1 gates in CI: batched aggregate steps/sec must be at
#: least this multiple of the serial consensus/bare row on the same host.
BATCHED_FLOOR = 5.0


def batched_lane_specs(seeds: Sequence[int] = DEFAULT_SEEDS, lanes: int = BATCHED_LANES):
    """Consensus lane specs: ``lanes`` consecutive seeds from ``seeds[0]``,
    each the exact (inputs, seed) cell ``_run_consensus`` runs serially."""
    from repro.batch import LaneSpec

    base = seeds[0]
    return [
        LaneSpec(
            inputs=tuple((seed + i) % 2 for i in range(CONSENSUS_PROCESSES)),
            seed=seed,
        )
        for seed in range(base, base + lanes)
    ]


def measure_batched_throughput(
    seeds: Sequence[int] = DEFAULT_SEEDS,
    lanes: int = BATCHED_LANES,
    repeats: int = 3,
    profiler: Profiler | None = None,
) -> ThroughputSample:
    """Best-of-``repeats`` aggregate steps/sec of the fused batch loop.

    Raises if any lane needed a serial fallback — the benchmark exists to
    measure the fast path, and a silent fallback would quietly measure
    the wrong interpreter.
    """
    from repro.batch import run_lanes

    specs = batched_lane_specs(seeds, lanes)
    steps = 0
    best = float("inf")
    for _ in range(max(1, repeats)):
        if profiler is not None:
            with profiler.section("consensus.batched"):
                start = time.perf_counter()
                results = run_lanes(specs)
                elapsed = time.perf_counter() - start
        else:
            start = time.perf_counter()
            results = run_lanes(specs)
            elapsed = time.perf_counter() - start
        fallbacks = [r.fallback for r in results if r.fallback is not None]
        if fallbacks:
            raise AssertionError(
                f"batched benchmark lanes fell back to serial: {fallbacks}"
            )
        steps = sum(r.total_steps for r in results)
        best = min(best, elapsed)
    return ThroughputSample("consensus", "batched", steps, best)


def batched_rows(
    bare: ThroughputSample,
    batched: ThroughputSample,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    lanes: int = BATCHED_LANES,
    floor: float = BATCHED_FLOOR,
) -> list[dict]:
    """The BENCH_P1 ``batched`` row, gate-ready.

    ``steps`` and ``serial_prefix_steps`` are deterministic (numerically
    gated); ``matches_serial`` and ``meets_floor_5x`` are booleans (gated
    exactly); the speedup and steps/sec figures measure the host and ride
    under timing-marker keys the gate skips.
    """
    from repro.batch import run_lanes

    prefix = run_lanes(batched_lane_specs(seeds, len(seeds)))
    prefix_steps = sum(r.total_steps for r in prefix)
    speedup = (
        batched.steps_per_sec / bare.steps_per_sec if bare.steps_per_sec else 0.0
    )
    return [
        {
            "workload": "consensus",
            "mode": "batched",
            "lanes": lanes,
            "steps": batched.steps,
            "serial_prefix_steps": prefix_steps,
            # The lanes sharing the serial cell's seeds must reproduce its
            # step counts exactly — bit-identity, gated as a boolean.
            "matches_serial": prefix_steps == bare.steps,
            "meets_floor_5x": speedup >= floor,
            "steps_per_sec": round(batched.steps_per_sec),
            "speedup_vs_bare_wall": round(speedup, 2),
        }
    ]
