"""Paper-predicted values for every experiment (the "paper" columns).

Each function returns the quantity the corresponding lemma/claim predicts,
so benchmarks can print paper-vs-measured rows.  Reproduction is judged on
*shape* (direction of trends, growth exponents, who wins), not absolute
constants — the paper's bounds carry unspecified constants.
"""

from __future__ import annotations

from repro.coin import analysis as coin_analysis
from repro.coin import logic as coin_logic


def e1_disagreement_bound(b_barrier: int) -> float:
    """Lemma 3.1: coin disagreement probability ≤ ~1/b."""
    return coin_analysis.disagreement_probability_upper_bound(b_barrier)


def e2_expected_flips(b_barrier: int, n: int) -> int:
    """Lemma 3.2: expected total flips ≈ (b+1)²·n²."""
    return coin_logic.predicted_expected_steps(b_barrier, n)


def e3_overflow_bound(b_barrier: int, n: int, m_bound: int) -> float:
    """Lemma 3.4: overflow probability ≤ C·b·n/√m (C = 1 for the shape)."""
    return coin_logic.predicted_overflow_bound(b_barrier, n, m_bound)


def e4_expected_rounds(n: int) -> float:
    """§6.3: expected rounds is a constant, independent of n.

    The constant is 1/ε for the per-round success probability ε of
    Lemmas 3.1/3.4; with b = 2 the per-round agreement probability is at
    least 2·(b-1)/(2b) = 1/2, so ≤ ~2 conflicted rounds are expected on top
    of the ≤ 2 closing rounds.  We report the *constant-ness* (slope ≈ 0
    in n), not the constant.
    """
    return 4.0


def e5_growth_exponent_ads() -> float:
    """ADS total work is polynomial: per round O(1) coins of O(n²) flips,
    each flip surrounded by an O(n)-step scan ⇒ expected O(n³) total steps
    (log-log slope ≈ 3, and certainly far from exponential)."""
    return 3.0


def e5_doubling_ratio_local_coin() -> float:
    """Local-coin rounds double with each added process (2^{n-1})."""
    return 2.0


def e6_bounded_magnitude(K: int, b_barrier: int, n: int, m_bound: int) -> int:
    """Largest integer the ADS protocol ever stores: max(m+1, 3K-1, n·K…).

    Coin counters reach at most m+1; edge counters at most 3K-1; the
    pointer at most K.  The scannable memory adds only bits.
    """
    return max(m_bound + 1, 3 * K - 1, K + 1)


def e9_equivalence() -> float:
    """Claim 4.1: the games agree on every move (violation rate 0)."""
    return 0.0
